//! # ncc-kmachine — Appendix A: the k-machine model
//!
//! The k-machine model \[36\] has `k` fully-interconnected machines; each of
//! the `k(k−1)/2` links carries `O(log n)` bits (a constant number of
//! messages) per round. Theorem A.1 / Corollary 2: randomly partition the
//! `n` NCC nodes over the machines and replay the NCC execution — because
//! an NCC round moves at most `Õ(n)` messages and every node sends at most
//! `O(log n)` of them (`∆′ = O(log n)`), the expected per-link load per NCC
//! round is `Õ(n/k²)`, so a `T`-round NCC execution costs `Õ(n·T/k²)`
//! k-machine rounds.
//!
//! [`KMachineModel`] is the **execution model**: plugged into the engine
//! via [`Engine::with_model`](ncc_model::Engine::with_model) (or a runner
//! `ScenarioSpec` with `ModelSpec::KMachine`), it routes every delivered
//! message through the machine partition, enforces the per-link capacity by
//! charging `⌈bottleneck link load / link_capacity⌉` k-machine rounds per
//! engine round, and reports the charge as `km_rounds` in
//! [`ExecStats`](ncc_model::ExecStats) — links operate in parallel, so the
//! bottleneck pair dominates, and messages between co-hosted nodes are
//! free, as in the model.
//!
//! [`KMachineCost`] is the underlying streaming accountant. It doubles as a
//! passive [`TraceSink`] for observing an NCC execution without changing
//! its model (the pre-promotion interface, still used by the conversion
//! benches).

use std::any::Any;

use ncc_model::rng::derive_seed;
use ncc_model::{Capacity, NetworkModel, NodeId, RecvPolicy, TraceEvent, TraceSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random vertex partition: node → machine, each machine drawn uniformly
/// (the "random vertex partitioning" of Theorem A.1).
pub fn random_assignment(n: usize, k: usize, seed: u64) -> Vec<u32> {
    assert!(k >= 1);
    let mut rng = SmallRng::seed_from_u64(derive_seed(&[seed, 0x6b6d, k as u64]));
    (0..n).map(|_| rng.gen_range(0..k as u32)).collect()
}

/// Streaming k-machine cost model. For every NCC round it bins delivered
/// messages by (source machine, destination machine) and charges
/// `max_pair ⌈load / link_capacity⌉` k-machine rounds (links operate in
/// parallel; the bottleneck pair dominates).
#[derive(Debug, Clone)]
pub struct KMachineCost {
    pub k: usize,
    assignment: Vec<u32>,
    /// Messages per link per k-machine round (the `O(log n)`-bits budget in
    /// message units; 1 = one `O(log n)`-bit message per link per round).
    pub link_capacity: u64,
    /// Charged k-machine rounds so far.
    pub km_rounds: u64,
    /// Observed NCC rounds.
    pub ncc_rounds: u64,
    /// Total messages crossing machine boundaries.
    pub cross_messages: u64,
    /// Total messages staying inside one machine (free).
    pub local_messages: u64,
    /// Peak single-pair load in any NCC round.
    pub max_pair_load: u64,
    scratch: Vec<u64>,
}

impl KMachineCost {
    pub fn new(assignment: Vec<u32>, k: usize, link_capacity: u64) -> Self {
        assert!(link_capacity >= 1);
        assert!(assignment.iter().all(|&m| (m as usize) < k));
        KMachineCost {
            k,
            assignment,
            link_capacity,
            km_rounds: 0,
            ncc_rounds: 0,
            cross_messages: 0,
            local_messages: 0,
            max_pair_load: 0,
            scratch: vec![0; k * k],
        }
    }

    /// Convenience: fresh random partition.
    pub fn with_random_assignment(n: usize, k: usize, seed: u64, link_capacity: u64) -> Self {
        Self::new(random_assignment(n, k, seed), k, link_capacity)
    }

    #[inline]
    fn machine(&self, v: NodeId) -> usize {
        self.assignment[v as usize] as usize
    }

    /// Zeroes every running counter (charged rounds, message tallies, peak
    /// loads) while keeping the partition and link capacity — the machine
    /// assignment is scenario identity, the counters are per-run state.
    pub fn reset(&mut self) {
        self.km_rounds = 0;
        self.ncc_rounds = 0;
        self.cross_messages = 0;
        self.local_messages = 0;
        self.max_pair_load = 0;
        self.scratch.iter_mut().for_each(|x| *x = 0);
    }

    /// The nodes hosted per machine (for load-balance reporting).
    pub fn machine_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &m in &self.assignment {
            sizes[m as usize] += 1;
        }
        sizes
    }
}

impl KMachineCost {
    /// Bins one engine round's delivered messages by (source machine,
    /// destination machine), updates the running totals, and returns the
    /// k-machine rounds this engine round costs:
    /// `max(1, ⌈bottleneck pair load / link_capacity⌉)` (an empty round
    /// still costs one synchronised k-machine round).
    pub fn charge_round(&mut self, _round: u64, delivered: &[TraceEvent]) -> u64 {
        self.ncc_rounds += 1;
        let charge = if delivered.is_empty() {
            1
        } else {
            self.scratch.iter_mut().for_each(|x| *x = 0);
            let mut max_load = 0u64;
            for ev in delivered {
                let (ms, md) = (self.machine(ev.src), self.machine(ev.dst));
                if ms == md {
                    self.local_messages += 1;
                    continue;
                }
                self.cross_messages += 1;
                let slot = &mut self.scratch[ms * self.k + md];
                *slot += 1;
                max_load = max_load.max(*slot);
            }
            self.max_pair_load = self.max_pair_load.max(max_load);
            max_load.div_ceil(self.link_capacity).max(1)
        };
        self.km_rounds += charge;
        charge
    }
}

impl TraceSink for KMachineCost {
    fn on_round(&mut self, round: u64, delivered: &[TraceEvent]) {
        self.charge_round(round, delivered);
    }
}

/// Summary of a finished conversion (extracted from the sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMachineReport {
    pub k: usize,
    pub km_rounds: u64,
    pub ncc_rounds: u64,
    pub cross_messages: u64,
    pub local_messages: u64,
    pub max_pair_load: u64,
}

impl KMachineCost {
    pub fn report(&self) -> KMachineReport {
        KMachineReport {
            k: self.k,
            km_rounds: self.km_rounds,
            ncc_rounds: self.ncc_rounds,
            cross_messages: self.cross_messages,
            local_messages: self.local_messages,
            max_pair_load: self.max_pair_load,
        }
    }
}

/// The k-machine model as a first-class [`NetworkModel`].
///
/// NCC node caps apply unchanged — the model *simulates* the NCC execution
/// (Theorem A.1) — but every delivered message is routed through the
/// machine partition and the per-link capacity is enforced by time
/// dilation: an engine round whose bottleneck link carries `L` messages is
/// charged `⌈L / link_capacity⌉` k-machine rounds, reported as
/// `km_rounds` in the execution stats. After a run, downcast
/// [`Engine::model`](ncc_model::Engine::model) via `as_any` to read the
/// full [`KMachineReport`] (cross-machine traffic, bottleneck loads).
#[derive(Debug, Clone)]
pub struct KMachineModel {
    cost: KMachineCost,
}

impl KMachineModel {
    /// Random vertex partition of `n` nodes over `k` machines, keyed by
    /// `seed` (the Theorem A.1 setup).
    pub fn new(n: usize, k: usize, seed: u64, link_capacity: u64) -> Self {
        KMachineModel {
            cost: KMachineCost::with_random_assignment(n, k, seed, link_capacity),
        }
    }

    /// Explicit node → machine assignment.
    pub fn from_assignment(assignment: Vec<u32>, k: usize, link_capacity: u64) -> Self {
        KMachineModel {
            cost: KMachineCost::new(assignment, k, link_capacity),
        }
    }

    pub fn report(&self) -> KMachineReport {
        self.cost.report()
    }

    pub fn machine_sizes(&self) -> Vec<usize> {
        self.cost.machine_sizes()
    }
}

impl NetworkModel for KMachineModel {
    fn name(&self) -> &'static str {
        "kmachine"
    }

    fn recv_policy(&self, cap: &Capacity) -> RecvPolicy {
        // NCC semantics underneath: the k-machine model replays the NCC
        // execution, so receive-cap drops are identical to the Ncc model.
        RecvPolicy::NodeCap { recv: cap.recv }
    }

    fn wants_delivered_pairs(&self) -> bool {
        true
    }

    fn charge_round(&mut self, round: u64, delivered: &[TraceEvent]) -> u64 {
        self.cost.charge_round(round, delivered)
    }

    fn reset(&mut self) {
        self.cost.reset();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A handle-keeping wrapper: the engine owns the sink as a boxed trait
/// object, so callers that need to read the cost afterwards install a
/// `SharedSink` and keep the `Arc`.
pub struct SharedSink(pub std::sync::Arc<std::sync::Mutex<KMachineCost>>);

impl SharedSink {
    pub fn new(cost: KMachineCost) -> (Self, std::sync::Arc<std::sync::Mutex<KMachineCost>>) {
        let arc = std::sync::Arc::new(std::sync::Mutex::new(cost));
        (SharedSink(arc.clone()), arc)
    }
}

impl TraceSink for SharedSink {
    fn on_round(&mut self, round: u64, delivered: &[TraceEvent]) {
        self.0.lock().expect("cost lock").on_round(round, delivered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_sink_accumulates_through_handle() {
        let (mut sink, handle) = SharedSink::new(KMachineCost::new(vec![0, 1], 2, 1));
        sink.on_round(0, &[TraceEvent { src: 0, dst: 1 }]);
        assert_eq!(handle.lock().unwrap().cross_messages, 1);
    }

    #[test]
    fn reset_zeroes_counters_but_keeps_partition() {
        let mut model = KMachineModel::from_assignment(vec![0, 1, 0, 1], 2, 1);
        let evs = [
            TraceEvent { src: 0, dst: 1 },
            TraceEvent { src: 2, dst: 3 },
            TraceEvent { src: 0, dst: 2 },
        ];
        let charge1 = NetworkModel::charge_round(&mut model, 0, &evs);
        assert!(model.report().km_rounds > 0);
        assert_eq!(model.report().cross_messages, 2);
        NetworkModel::reset(&mut model);
        let fresh = model.report();
        assert_eq!(fresh.km_rounds, 0);
        assert_eq!(fresh.ncc_rounds, 0);
        assert_eq!(fresh.cross_messages, 0);
        assert_eq!(fresh.local_messages, 0);
        assert_eq!(fresh.max_pair_load, 0);
        // the partition is identity, not state: the recharge is identical
        let charge2 = NetworkModel::charge_round(&mut model, 0, &evs);
        assert_eq!(charge1, charge2);
        assert_eq!(model.machine_sizes(), vec![2, 2]);
    }

    #[test]
    fn assignment_is_balanced_and_deterministic() {
        let a = random_assignment(1000, 8, 7);
        assert_eq!(a, random_assignment(1000, 8, 7));
        let cost = KMachineCost::new(a, 8, 1);
        let sizes = cost.machine_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for &s in &sizes {
            assert!((80..=175).contains(&s), "unbalanced machine: {s}");
        }
    }

    #[test]
    fn local_messages_are_free() {
        // all nodes on one machine of k = 2: everything local
        let mut cost = KMachineCost::new(vec![0; 10], 2, 1);
        let evs: Vec<TraceEvent> = (0..9).map(|i| TraceEvent { src: i, dst: i + 1 }).collect();
        cost.on_round(0, &evs);
        assert_eq!(cost.cross_messages, 0);
        assert_eq!(cost.local_messages, 9);
        assert_eq!(cost.km_rounds, 1); // sync round only
    }

    #[test]
    fn bottleneck_pair_dominates() {
        // nodes 0..5 on machine 0, nodes 5..10 on machine 1
        let assignment: Vec<u32> = (0..10).map(|v| (v >= 5) as u32).collect();
        let mut cost = KMachineCost::new(assignment, 2, 1);
        // 7 messages 0→1 direction, 2 messages 1→0
        let mut evs = Vec::new();
        for i in 0..7u32 {
            evs.push(TraceEvent {
                src: i % 5,
                dst: 5 + (i % 5),
            });
        }
        evs.push(TraceEvent { src: 6, dst: 1 });
        evs.push(TraceEvent { src: 7, dst: 2 });
        cost.on_round(0, &evs);
        assert_eq!(cost.cross_messages, 9);
        assert_eq!(cost.km_rounds, 7);
        assert_eq!(cost.max_pair_load, 7);
    }

    #[test]
    fn link_capacity_divides_cost() {
        let assignment: Vec<u32> = (0..10).map(|v| (v >= 5) as u32).collect();
        let mut cost = KMachineCost::new(assignment.clone(), 2, 4);
        let evs: Vec<TraceEvent> = (0..8u32)
            .map(|i| TraceEvent { src: i % 5, dst: 5 })
            .collect();
        cost.on_round(0, &evs);
        assert_eq!(cost.km_rounds, 2); // ⌈8/4⌉

        let mut cost1 = KMachineCost::new(assignment, 2, 1);
        cost1.on_round(0, &evs);
        assert_eq!(cost1.km_rounds, 8);
    }

    #[test]
    fn more_machines_cost_less_on_uniform_traffic() {
        // synthetic uniform traffic: n random messages per round
        let n = 512u32;
        let mut rng = SmallRng::seed_from_u64(42);
        let mut rounds_for = |k: usize| {
            let mut cost = KMachineCost::with_random_assignment(n as usize, k, 1, 1);
            for r in 0..50 {
                let evs: Vec<TraceEvent> = (0..n)
                    .map(|_| TraceEvent {
                        src: rng.gen_range(0..n),
                        dst: rng.gen_range(0..n),
                    })
                    .collect();
                cost.on_round(r, &evs);
            }
            cost.km_rounds
        };
        let (r2, r8) = (rounds_for(2), rounds_for(8));
        // Corollary 2: cost scales like n/k² — k: 2→8 should give ≈ 16×;
        // accept anything beyond 6× (variance, max-vs-mean effects)
        assert!(r2 >= 6 * r8, "r2 = {r2}, r8 = {r8}");
    }

    #[test]
    fn empty_rounds_cost_one() {
        let mut cost = KMachineCost::new(vec![0, 1], 2, 1);
        cost.on_round(0, &[]);
        cost.on_round(1, &[]);
        assert_eq!(cost.km_rounds, 2);
        assert_eq!(cost.ncc_rounds, 2);
    }

    #[test]
    fn charge_round_returns_per_round_charge() {
        let assignment: Vec<u32> = (0..10).map(|v| (v >= 5) as u32).collect();
        let mut cost = KMachineCost::new(assignment, 2, 2);
        let evs: Vec<TraceEvent> = (0..6u32)
            .map(|i| TraceEvent { src: i % 5, dst: 5 })
            .collect();
        assert_eq!(cost.charge_round(0, &evs), 3); // ⌈6/2⌉
        assert_eq!(cost.charge_round(1, &[]), 1);
        assert_eq!(cost.km_rounds, 4);
    }

    mod model {
        use super::super::*;
        use ncc_model::{Ctx, Engine, Envelope, NetConfig, NodeProgram};

        /// Every node relays one token around the ring for `hops` rounds.
        struct RingRelay;
        impl NodeProgram for RingRelay {
            type State = ();
            type Payload = u64;
            fn init(&self, _st: &mut (), ctx: &mut Ctx<'_, u64>) {
                ctx.send((ctx.id + 1) % ctx.n as u32, 1);
            }
            fn round(&self, _st: &mut (), inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
                if ctx.round < 4 {
                    for e in inbox {
                        ctx.send((ctx.id + 1) % ctx.n as u32, e.payload);
                    }
                }
            }
        }

        #[test]
        fn engine_charges_km_rounds_in_stats() {
            let n = 64;
            let model = KMachineModel::new(n, 4, 9, 1);
            let mut eng = Engine::with_model(NetConfig::new(n, 7), Box::new(model));
            let mut states = vec![(); n];
            let stats = eng.execute(&RingRelay, &mut states).unwrap();
            // every engine round is charged at least one k-machine round
            assert!(stats.km_rounds >= stats.rounds, "{stats:?}");
            // ring traffic crosses machine boundaries, so some rounds cost
            // more than the sync floor
            assert!(stats.km_rounds > stats.rounds);
            let km = eng
                .model()
                .as_any()
                .downcast_ref::<KMachineModel>()
                .expect("kmachine model");
            let rep = km.report();
            assert_eq!(rep.km_rounds, stats.km_rounds);
            assert_eq!(rep.ncc_rounds, stats.rounds);
            assert_eq!(
                rep.cross_messages + rep.local_messages,
                stats.delivered,
                "every delivered message is either local or cross-machine"
            );
        }

        #[test]
        fn km_execution_matches_ncc_deliveries_exactly() {
            // the k-machine model replays the NCC execution: everything but
            // km_rounds must be identical to the default-model run
            let n = 48;
            let run = |model: Option<KMachineModel>| {
                let cfg = NetConfig::new(n, 21);
                let mut eng = match model {
                    Some(m) => Engine::with_model(cfg, Box::new(m)),
                    None => Engine::new(cfg),
                };
                let mut states = vec![(); n];
                eng.execute(&RingRelay, &mut states).unwrap()
            };
            let ncc = run(None);
            let km = run(Some(KMachineModel::new(n, 8, 3, 1)));
            assert_eq!(ncc.rounds, km.rounds);
            assert_eq!(ncc.sent, km.sent);
            assert_eq!(ncc.delivered, km.delivered);
            assert_eq!(ncc.dropped, km.dropped);
            assert_eq!(ncc.km_rounds, 0);
            assert!(km.km_rounds > 0);
        }
    }
}
