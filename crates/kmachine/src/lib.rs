//! # ncc-kmachine — Appendix A: simulation in the k-machine model
//!
//! The k-machine model \[36\] has `k` fully-interconnected machines; each of
//! the `k(k−1)/2` links carries `O(log n)` bits (a constant number of
//! messages) per round. Theorem A.1 / Corollary 2: randomly partition the
//! `n` NCC nodes over the machines and replay the NCC execution — because
//! an NCC round moves at most `Õ(n)` messages and every node sends at most
//! `O(log n)` of them (`∆′ = O(log n)`), the expected per-link load per NCC
//! round is `Õ(n/k²)`, so a `T`-round NCC execution costs `Õ(n·T/k²)`
//! k-machine rounds.
//!
//! [`KMachineCost`] implements this conversion as a streaming
//! [`TraceSink`]: attach it to an engine, run any protocol, and read off
//! the charged k-machine rounds. Messages between nodes hosted on the same
//! machine are free, as in the model.

use ncc_model::rng::derive_seed;
use ncc_model::{NodeId, TraceEvent, TraceSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random vertex partition: node → machine, each machine drawn uniformly
/// (the "random vertex partitioning" of Theorem A.1).
pub fn random_assignment(n: usize, k: usize, seed: u64) -> Vec<u32> {
    assert!(k >= 1);
    let mut rng = SmallRng::seed_from_u64(derive_seed(&[seed, 0x6b6d, k as u64]));
    (0..n).map(|_| rng.gen_range(0..k as u32)).collect()
}

/// Streaming k-machine cost model. For every NCC round it bins delivered
/// messages by (source machine, destination machine) and charges
/// `max_pair ⌈load / link_capacity⌉` k-machine rounds (links operate in
/// parallel; the bottleneck pair dominates).
#[derive(Debug, Clone)]
pub struct KMachineCost {
    pub k: usize,
    assignment: Vec<u32>,
    /// Messages per link per k-machine round (the `O(log n)`-bits budget in
    /// message units; 1 = one `O(log n)`-bit message per link per round).
    pub link_capacity: u64,
    /// Charged k-machine rounds so far.
    pub km_rounds: u64,
    /// Observed NCC rounds.
    pub ncc_rounds: u64,
    /// Total messages crossing machine boundaries.
    pub cross_messages: u64,
    /// Total messages staying inside one machine (free).
    pub local_messages: u64,
    /// Peak single-pair load in any NCC round.
    pub max_pair_load: u64,
    scratch: Vec<u64>,
}

impl KMachineCost {
    pub fn new(assignment: Vec<u32>, k: usize, link_capacity: u64) -> Self {
        assert!(link_capacity >= 1);
        assert!(assignment.iter().all(|&m| (m as usize) < k));
        KMachineCost {
            k,
            assignment,
            link_capacity,
            km_rounds: 0,
            ncc_rounds: 0,
            cross_messages: 0,
            local_messages: 0,
            max_pair_load: 0,
            scratch: vec![0; k * k],
        }
    }

    /// Convenience: fresh random partition.
    pub fn with_random_assignment(n: usize, k: usize, seed: u64, link_capacity: u64) -> Self {
        Self::new(random_assignment(n, k, seed), k, link_capacity)
    }

    #[inline]
    fn machine(&self, v: NodeId) -> usize {
        self.assignment[v as usize] as usize
    }

    /// The nodes hosted per machine (for load-balance reporting).
    pub fn machine_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &m in &self.assignment {
            sizes[m as usize] += 1;
        }
        sizes
    }
}

impl TraceSink for KMachineCost {
    fn on_round(&mut self, _round: u64, delivered: &[TraceEvent]) {
        self.ncc_rounds += 1;
        if delivered.is_empty() {
            // an NCC round with no messages still costs one k-machine round
            // of synchronised progress
            self.km_rounds += 1;
            return;
        }
        self.scratch.iter_mut().for_each(|x| *x = 0);
        let mut max_load = 0u64;
        for ev in delivered {
            let (ms, md) = (self.machine(ev.src), self.machine(ev.dst));
            if ms == md {
                self.local_messages += 1;
                continue;
            }
            self.cross_messages += 1;
            let slot = &mut self.scratch[ms * self.k + md];
            *slot += 1;
            max_load = max_load.max(*slot);
        }
        self.max_pair_load = self.max_pair_load.max(max_load);
        self.km_rounds += max_load.div_ceil(self.link_capacity).max(1);
    }
}

/// Summary of a finished conversion (extracted from the sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMachineReport {
    pub k: usize,
    pub km_rounds: u64,
    pub ncc_rounds: u64,
    pub cross_messages: u64,
    pub local_messages: u64,
    pub max_pair_load: u64,
}

impl KMachineCost {
    pub fn report(&self) -> KMachineReport {
        KMachineReport {
            k: self.k,
            km_rounds: self.km_rounds,
            ncc_rounds: self.ncc_rounds,
            cross_messages: self.cross_messages,
            local_messages: self.local_messages,
            max_pair_load: self.max_pair_load,
        }
    }
}

/// A handle-keeping wrapper: the engine owns the sink as a boxed trait
/// object, so callers that need to read the cost afterwards install a
/// `SharedSink` and keep the `Arc`.
pub struct SharedSink(pub std::sync::Arc<std::sync::Mutex<KMachineCost>>);

impl SharedSink {
    pub fn new(cost: KMachineCost) -> (Self, std::sync::Arc<std::sync::Mutex<KMachineCost>>) {
        let arc = std::sync::Arc::new(std::sync::Mutex::new(cost));
        (SharedSink(arc.clone()), arc)
    }
}

impl TraceSink for SharedSink {
    fn on_round(&mut self, round: u64, delivered: &[TraceEvent]) {
        self.0.lock().expect("cost lock").on_round(round, delivered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_sink_accumulates_through_handle() {
        let (mut sink, handle) = SharedSink::new(KMachineCost::new(vec![0, 1], 2, 1));
        sink.on_round(0, &[TraceEvent { src: 0, dst: 1 }]);
        assert_eq!(handle.lock().unwrap().cross_messages, 1);
    }

    #[test]
    fn assignment_is_balanced_and_deterministic() {
        let a = random_assignment(1000, 8, 7);
        assert_eq!(a, random_assignment(1000, 8, 7));
        let cost = KMachineCost::new(a, 8, 1);
        let sizes = cost.machine_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for &s in &sizes {
            assert!((80..=175).contains(&s), "unbalanced machine: {s}");
        }
    }

    #[test]
    fn local_messages_are_free() {
        // all nodes on one machine of k = 2: everything local
        let mut cost = KMachineCost::new(vec![0; 10], 2, 1);
        let evs: Vec<TraceEvent> = (0..9).map(|i| TraceEvent { src: i, dst: i + 1 }).collect();
        cost.on_round(0, &evs);
        assert_eq!(cost.cross_messages, 0);
        assert_eq!(cost.local_messages, 9);
        assert_eq!(cost.km_rounds, 1); // sync round only
    }

    #[test]
    fn bottleneck_pair_dominates() {
        // nodes 0..5 on machine 0, nodes 5..10 on machine 1
        let assignment: Vec<u32> = (0..10).map(|v| (v >= 5) as u32).collect();
        let mut cost = KMachineCost::new(assignment, 2, 1);
        // 7 messages 0→1 direction, 2 messages 1→0
        let mut evs = Vec::new();
        for i in 0..7u32 {
            evs.push(TraceEvent {
                src: i % 5,
                dst: 5 + (i % 5),
            });
        }
        evs.push(TraceEvent { src: 6, dst: 1 });
        evs.push(TraceEvent { src: 7, dst: 2 });
        cost.on_round(0, &evs);
        assert_eq!(cost.cross_messages, 9);
        assert_eq!(cost.km_rounds, 7);
        assert_eq!(cost.max_pair_load, 7);
    }

    #[test]
    fn link_capacity_divides_cost() {
        let assignment: Vec<u32> = (0..10).map(|v| (v >= 5) as u32).collect();
        let mut cost = KMachineCost::new(assignment.clone(), 2, 4);
        let evs: Vec<TraceEvent> = (0..8u32)
            .map(|i| TraceEvent { src: i % 5, dst: 5 })
            .collect();
        cost.on_round(0, &evs);
        assert_eq!(cost.km_rounds, 2); // ⌈8/4⌉

        let mut cost1 = KMachineCost::new(assignment, 2, 1);
        cost1.on_round(0, &evs);
        assert_eq!(cost1.km_rounds, 8);
    }

    #[test]
    fn more_machines_cost_less_on_uniform_traffic() {
        // synthetic uniform traffic: n random messages per round
        let n = 512u32;
        let mut rng = SmallRng::seed_from_u64(42);
        let mut rounds_for = |k: usize| {
            let mut cost = KMachineCost::with_random_assignment(n as usize, k, 1, 1);
            for r in 0..50 {
                let evs: Vec<TraceEvent> = (0..n)
                    .map(|_| TraceEvent {
                        src: rng.gen_range(0..n),
                        dst: rng.gen_range(0..n),
                    })
                    .collect();
                cost.on_round(r, &evs);
            }
            cost.km_rounds
        };
        let (r2, r8) = (rounds_for(2), rounds_for(8));
        // Corollary 2: cost scales like n/k² — k: 2→8 should give ≈ 16×;
        // accept anything beyond 6× (variance, max-vs-mean effects)
        assert!(r2 >= 6 * r8, "r2 = {r2}, r8 = {r8}");
    }

    #[test]
    fn empty_rounds_cost_one() {
        let mut cost = KMachineCost::new(vec![0, 1], 2, 1);
        cost.on_round(0, &[]);
        cost.on_round(1, &[]);
        assert_eq!(cost.km_rounds, 2);
        assert_eq!(cost.ncc_rounds, 2);
    }
}
