//! Property tests for the engine itself: conservation laws, determinism,
//! sequential ≡ parallel equivalence under randomized programs, and
//! equivalence of the batched router with the pre-refactor per-envelope
//! delivery semantics.

use ncc_model::rng::network_rng;
use ncc_model::router::reference_route;
use ncc_model::{Capacity, Ctx, Engine, Envelope, NetConfig, NodeProgram, Router};
use proptest::prelude::*;
use rand::Rng;

/// A randomized scatter program: for `waves` rounds, every node sends
/// `fanout` messages to destinations drawn from its private stream.
struct Scatter {
    waves: u64,
    fanout: usize,
}

#[derive(Debug, Clone, Default)]
struct ScatterState {
    received: u64,
    checksum: u64,
}

impl NodeProgram for Scatter {
    type State = ScatterState;
    type Payload = u64;

    fn init(&self, _st: &mut ScatterState, ctx: &mut Ctx<'_, u64>) {
        for _ in 0..self.fanout {
            let dst = ctx.rng.gen_range(0..ctx.n as u32);
            ctx.send(dst, ctx.id as u64);
        }
        if self.waves > 1 {
            ctx.stay_awake();
        }
    }

    fn round(&self, st: &mut ScatterState, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
        for env in inbox {
            st.received += 1;
            st.checksum = st.checksum.wrapping_mul(31).wrapping_add(env.payload);
        }
        if ctx.round < self.waves {
            for _ in 0..self.fanout {
                let dst = ctx.rng.gen_range(0..ctx.n as u32);
                ctx.send(dst, ctx.id as u64);
            }
            if ctx.round + 1 < self.waves {
                ctx.stay_awake();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Conservation: every sent message is delivered or dropped, never both
    /// or neither — under arbitrary capacity squeezes.
    #[test]
    fn message_conservation(
        n in 4usize..200,
        fanout in 1usize..12,
        waves in 1u64..6,
        recv_cap in 1usize..32,
        seed in any::<u64>(),
    ) {
        let cfg = NetConfig::new(n, seed)
            .with_capacity(Capacity::squeezed(64, recv_cap))
            .permissive();
        let mut eng = Engine::new(cfg);
        let mut states = vec![ScatterState::default(); n];
        let stats = eng.execute(&Scatter { waves, fanout: fanout.min(63) }, &mut states).unwrap();
        prop_assert_eq!(stats.delivered + stats.dropped, stats.sent);
        let received_total: u64 = states.iter().map(|s| s.received).sum();
        prop_assert_eq!(received_total, stats.delivered);
        // per-node receive cap held every round
        prop_assert!(states.iter().all(|s| s.received <= recv_cap as u64 * (waves + 1)));
    }

    /// With unbounded capacity nothing is ever dropped.
    #[test]
    fn unbounded_never_drops(
        n in 4usize..150,
        fanout in 1usize..10,
        seed in any::<u64>(),
    ) {
        let cfg = NetConfig::new(n, seed).with_capacity(Capacity::unbounded());
        let mut eng = Engine::new(cfg);
        let mut states = vec![ScatterState::default(); n];
        let stats = eng.execute(&Scatter { waves: 3, fanout }, &mut states).unwrap();
        prop_assert_eq!(stats.dropped, 0);
        prop_assert_eq!(stats.delivered, stats.sent);
    }

    /// Bit-identical execution across thread counts, including under drops.
    /// Covers both executor phases: the chunked step and the partitioned
    /// counting-sort route.
    #[test]
    fn parallel_equivalence(
        n in 150usize..400,
        fanout in 1usize..6,
        recv_cap in 2usize..16,
        seed in any::<u64>(),
    ) {
        let run = |threads: usize| {
            let cfg = NetConfig::new(n, seed)
                .with_capacity(Capacity::squeezed(32, recv_cap))
                .permissive()
                .with_threads(threads);
            let mut eng = Engine::new(cfg);
            let mut states = vec![ScatterState::default(); n];
            let stats = eng.execute(&Scatter { waves: 3, fanout }, &mut states).unwrap();
            let sums: Vec<(u64, u64)> = states.iter().map(|s| (s.received, s.checksum)).collect();
            (stats, sums)
        };
        let (s1, r1) = run(1);
        for threads in [2usize, 4, 8] {
            let (st, rt) = run(threads);
            prop_assert_eq!(s1, st, "stats diverged at {} threads", threads);
            prop_assert_eq!(&r1, &rt, "states diverged at {} threads", threads);
        }
    }

    /// The batched router reproduces the pre-refactor delivery semantics
    /// exactly — same survivor sets, same inbox ordering, same drop count —
    /// on raw random send batches, for every thread count.
    #[test]
    fn router_matches_reference_semantics(
        n in 2usize..300,
        msgs in 0usize..6000,
        recv_cap in 1usize..24,
        seed in any::<u64>(),
        round in 0u64..1000,
    ) {
        // deterministic synthetic send batch with hot spots (dst % 7 == 0
        // redirects to a small range, forcing over-cap destinations)
        let mut gen = network_rng(seed ^ 0xba7c4, 0, 0);
        let sends: Vec<Envelope<u64>> = (0..msgs)
            .map(|i| {
                let src = gen.gen_range(0..n as u32);
                let dst = if i % 7 == 0 {
                    gen.gen_range(0..n as u32) % (1 + n as u32 / 16)
                } else {
                    gen.gen_range(0..n as u32)
                };
                Envelope::new(src, dst, i as u64)
            })
            .collect();

        let (ref_inboxes, ref_dropped) = reference_route(&sends, n, recv_cap, seed, round);

        for threads in [1usize, 2, 4, 8] {
            // threshold 1 forces the parallel path whenever threads > 1, so
            // the partitioned counting sort is exercised on small batches too
            let mut router: Router<u64> =
                Router::new(n, seed, threads).with_min_parallel_sends(1);
            let mut batch = sends.clone();
            let report = router.route(&mut batch, round, recv_cap);
            prop_assert_eq!(report.dropped, ref_dropped, "dropped diverged at {} threads", threads);
            prop_assert_eq!(
                report.delivered + report.dropped,
                sends.len() as u64,
                "conservation failed at {} threads", threads
            );
            for d in 0..n as u32 {
                prop_assert_eq!(
                    router.inbox(d),
                    ref_inboxes[d as usize].as_slice(),
                    "inbox {} diverged at {} threads", d, threads
                );
            }
        }
    }

    /// Determinism: the same seed reproduces stats and states exactly;
    /// max_in/max_out are consistent with the caps.
    #[test]
    fn deterministic_and_bounded(
        n in 4usize..120,
        fanout in 1usize..8,
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut eng = Engine::new(NetConfig::new(n, seed).permissive());
            let mut states = vec![ScatterState::default(); n];
            let stats = eng.execute(&Scatter { waves: 2, fanout }, &mut states).unwrap();
            (stats, states.iter().map(|s| s.checksum).collect::<Vec<_>>())
        };
        let (s1, c1) = run();
        let (s2, c2) = run();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(c1, c2);
        prop_assert!(s1.max_out <= fanout as u64);
    }
}
