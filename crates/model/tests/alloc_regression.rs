//! Steady-state allocation regression: a resident engine replaying the
//! same execution after [`Engine::reset`] must perform **zero** heap
//! allocations once every buffer has grown to its high-water capacity.
//! This is the executable form of the SoA/recycled-buffer memory model:
//! send buffer, inbox arena, per-worker out vectors, router tables,
//! radix scratch, and the activity lists are all retained across resets,
//! so the only remaining work is moves through pre-sized storage.
//!
//! The harness is a counting `#[global_allocator]`; the file holds a
//! single test so no concurrent test can pollute the counter. The
//! contract is pinned for `threads = 1` — the resident-replay
//! configuration — because the parallel step/route paths allocate scoped
//! thread handles each round by design.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ncc_model::{Ctx, Engine, Envelope, NetConfig, NodeProgram};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new_size) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A replay workload that exercises every steady-state path: round 0
/// floods node 0 (setting the arena and sample-permutation high-water
/// and triggering receive-cap drops), then 100 nodes stay awake for
/// `ticks` rounds each sending one message to scattered distinct
/// destinations — 100 touched destinations, which crosses the router's
/// radix gate on the sparse path.
struct ReplayLoad {
    ticks: u32,
}

impl NodeProgram for ReplayLoad {
    type State = u32;
    type Payload = u64;

    fn init(&self, st: &mut u32, ctx: &mut Ctx<'_, u64>) {
        if ctx.id != 0 {
            ctx.send(0, ctx.id as u64);
        }
        if ctx.id < 100 {
            *st = self.ticks;
            ctx.stay_awake();
        }
    }

    fn round(&self, st: &mut u32, _inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
        if ctx.id < 100 && *st > 0 {
            *st -= 1;
            // 19 is odd, hence invertible mod the power-of-two n: the 100
            // destinations are distinct every round
            ctx.send(
                (ctx.id.wrapping_mul(19).wrapping_add(ctx.round as u32 * 7)) % ctx.n as u32,
                *st as u64,
            );
            if *st > 0 {
                ctx.stay_awake();
            }
        }
    }
}

#[test]
fn resident_replay_allocates_nothing_in_steady_state() {
    let n = 2048;
    let prog = ReplayLoad { ticks: 40 };
    let mut eng = Engine::new(NetConfig::new(n, 7));
    let mut states = vec![0u32; n];

    // Baseline + warmup: three reset/execute cycles grow every buffer to
    // its high-water capacity.
    let baseline = eng.execute(&prog, &mut states).expect("replay runs");
    let baseline_states = states.clone();
    for _ in 0..2 {
        eng.reset();
        states.fill(0);
        let stats = eng.execute(&prog, &mut states).expect("warmup replay runs");
        assert_eq!(stats, baseline, "reset replays must be byte-identical");
    }

    let footprint = eng.resident_bytes();
    assert!(footprint.total() > 0, "warm engine holds resident state");

    // Steady state: five more replays, zero allocations allowed.
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5 {
        eng.reset();
        states.fill(0);
        let stats = eng.execute(&prog, &mut states).expect("steady replay runs");
        assert_eq!(stats.rounds, baseline.rounds);
        assert_eq!(stats.dropped, baseline.dropped);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state resident replay must not touch the allocator"
    );

    // The replays above really did the work: results match the baseline
    // and the footprint did not grow past its high-water mark.
    assert_eq!(states, baseline_states);
    assert_eq!(eng.resident_bytes().total(), footprint.total());
}
