//! Property tests for the lane multiplexer: running `k` random programs as
//! lanes of one [`Mux`] is equivalent to `k` isolated sequential
//! `engine.execute` runs (per-lane RNG streams keyed by `(lane seed,
//! node)`), across thread counts and capacity regimes; and mux executions
//! are bit-identical for 1/2/4/8 worker threads.

use ncc_model::{
    take_lane_states, Capacity, Ctx, Engine, Envelope, MuxBuilder, NetConfig, NodeProgram,
};
use proptest::prelude::*;
use rand::Rng;

/// A randomized program family: every node relays for `waves` rounds,
/// sending `fanout` messages to destinations drawn from its private
/// stream, and folds received payloads into a checksum. Parameters vary
/// per proptest case, so lanes in one mux run different programs.
#[derive(Debug, Clone)]
struct RandomProto {
    waves: u64,
    fanout: usize,
    salt: u64,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ProtoState {
    received: u64,
    checksum: u64,
}

impl RandomProto {
    fn burst(&self, st: &ProtoState, ctx: &mut Ctx<'_, u64>) {
        for _ in 0..self.fanout {
            let dst = ctx.rng.gen_range(0..ctx.n as u32);
            let val: u64 = ctx.rng.gen();
            ctx.send(dst, val ^ self.salt ^ st.checksum);
        }
    }
}

impl NodeProgram for RandomProto {
    type State = ProtoState;
    type Payload = u64;

    fn init(&self, st: &mut ProtoState, ctx: &mut Ctx<'_, u64>) {
        self.burst(st, ctx);
        if self.waves > 1 {
            ctx.stay_awake();
        }
    }

    fn round(&self, st: &mut ProtoState, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
        for env in inbox {
            st.received += 1;
            st.checksum = st.checksum.wrapping_mul(31).wrapping_add(env.payload);
        }
        if ctx.round < self.waves {
            self.burst(st, ctx);
            if ctx.round + 1 < self.waves {
                ctx.stay_awake();
            }
        }
    }
}

/// Isolated baseline: each program on its own engine whose master seed is
/// the lane seed, so `node_rng(lane_seed, node)` matches the mux's
/// per-lane streams. Unbounded caps keep the runs clean (no drops), which
/// is what makes exact state equivalence well-defined.
fn run_isolated(n: usize, threads: usize, prog: &RandomProto, lane_seed: u64) -> Vec<ProtoState> {
    let cfg = NetConfig::new(n, lane_seed)
        .with_capacity(Capacity::unbounded())
        .with_threads(threads);
    let mut eng = Engine::new(cfg);
    let mut states = vec![ProtoState::default(); n];
    eng.execute(prog, &mut states).unwrap();
    states
}

fn run_muxed(
    n: usize,
    threads: usize,
    engine_seed: u64,
    capacity: Capacity,
    protos: &[(RandomProto, u64)],
) -> (ncc_model::ExecStats, Vec<Vec<ProtoState>>) {
    let cfg = NetConfig::new(n, engine_seed)
        .with_capacity(capacity)
        .with_threads(threads)
        .permissive();
    let mut eng = Engine::new(cfg);
    let mut b = MuxBuilder::new(n);
    let ids: Vec<_> = protos
        .iter()
        .map(|(p, seed)| b.lane_seeded(p.clone(), vec![ProtoState::default(); n], *seed))
        .collect();
    let (mux, mut states) = b.build();
    let stats = eng.execute(&mux, &mut states).unwrap();
    let lanes = ids
        .into_iter()
        .map(|id| take_lane_states::<ProtoState>(&mut states, id))
        .collect();
    (stats, lanes)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// k lanes of one mux ≡ k isolated executions, for threads {1, 4} and
    /// capacities {tight (the default Θ(log n) budget), unbounded}. The
    /// tight runs stay clean because each lane's per-round fanout is small;
    /// cleanliness is asserted, as drops would (legitimately) break exact
    /// equivalence.
    #[test]
    fn mux_lanes_equal_isolated_runs(
        n in 8usize..96,
        k in 2usize..5,
        waves in 1u64..5,
        engine_seed in any::<u64>(),
        base_seed in any::<u64>(),
    ) {
        let protos: Vec<(RandomProto, u64)> = (0..k)
            .map(|i| {
                (
                    RandomProto {
                        waves,
                        fanout: 1 + i % 2,
                        salt: base_seed ^ (i as u64),
                    },
                    base_seed.wrapping_add(1 + i as u64),
                )
            })
            .collect();
        let isolated: Vec<Vec<ProtoState>> = protos
            .iter()
            .map(|(p, seed)| run_isolated(n, 1, p, *seed))
            .collect();
        for threads in [1usize, 4] {
            for capacity in [Capacity::default_for(n), Capacity::unbounded()] {
                let (stats, lanes) = run_muxed(n, threads, engine_seed, capacity, &protos);
                prop_assert_eq!(stats.dropped, 0, "tight run must stay clean");
                prop_assert_eq!(stats.truncated, 0);
                for (lane, iso) in lanes.iter().zip(isolated.iter()) {
                    prop_assert_eq!(lane, iso, "threads={} cap={:?}", threads, capacity);
                }
            }
        }
    }

    /// Mux executions are bit-identical across 1/2/4/8 worker threads:
    /// same statistics (incl. bits and drop counts) and same final states.
    #[test]
    fn mux_deterministic_across_threads(
        n in 130usize..300, // above the parallel step threshold
        k in 1usize..4,
        waves in 1u64..4,
        engine_seed in any::<u64>(),
        base_seed in any::<u64>(),
    ) {
        let protos: Vec<(RandomProto, u64)> = (0..k)
            .map(|i| {
                (
                    RandomProto { waves, fanout: 2, salt: i as u64 },
                    base_seed.wrapping_add(i as u64),
                )
            })
            .collect();
        let baseline = run_muxed(n, 1, engine_seed, Capacity::default_for(n), &protos);
        for threads in [2usize, 4, 8] {
            let got = run_muxed(n, threads, engine_seed, Capacity::default_for(n), &protos);
            prop_assert_eq!(&got.0, &baseline.0, "stats diverge at threads={}", threads);
            prop_assert_eq!(&got.1, &baseline.1, "states diverge at threads={}", threads);
        }
    }
}
