//! Cross-model property tests: the conservation laws and determinism
//! guarantees must hold for **every** [`NetworkModel`], not just the
//! default NCC — and the NCC model itself must stay pinned to the
//! pre-refactor engine semantics.
//!
//! * conservation: `delivered + dropped == sent`, with send-side
//!   `truncated` disjoint, for every model × thread count;
//! * thread-count independence: bit-identical stats and states for 1 and 4
//!   workers under every model;
//! * the unbounded-capacity regression of the cap-arithmetic audit: a
//!   protocol at `Capacity::unbounded()` (`usize::MAX` caps) through the
//!   batched router, sequential and forced-parallel, loses nothing and
//!   wraps nothing.

use ncc_model::rng::network_rng;
use ncc_model::router::reference_route;
use ncc_model::{
    Capacity, CongestedClique, Ctx, Engine, Envelope, HybridLocal, Ncc, NetConfig, NetworkModel,
    NodeProgram, RecvPolicy, Router,
};
use proptest::prelude::*;
use rand::Rng;

/// A randomized scatter program: for `waves` rounds, every node sends
/// `fanout` messages, mixing ring-neighbour destinations (local edges
/// under the hybrid model) with uniform random ones.
struct Scatter {
    waves: u64,
    fanout: usize,
}

#[derive(Debug, Clone, Default)]
struct ScatterState {
    received: u64,
    checksum: u64,
}

impl Scatter {
    fn emit(&self, ctx: &mut Ctx<'_, u64>) {
        for f in 0..self.fanout {
            let dst = if f % 3 == 0 {
                (ctx.id + 1) % ctx.n as u32 // ring neighbour: hybrid-local
            } else {
                ctx.rng.gen_range(0..ctx.n as u32)
            };
            ctx.send(dst, ctx.id as u64);
        }
    }
}

impl NodeProgram for Scatter {
    type State = ScatterState;
    type Payload = u64;

    fn init(&self, _st: &mut ScatterState, ctx: &mut Ctx<'_, u64>) {
        self.emit(ctx);
        if self.waves > 1 {
            ctx.stay_awake();
        }
    }

    fn round(&self, st: &mut ScatterState, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
        for env in inbox {
            st.received += 1;
            st.checksum = st.checksum.wrapping_mul(31).wrapping_add(env.payload);
        }
        if ctx.round < self.waves {
            self.emit(ctx);
            if ctx.round + 1 < self.waves {
                ctx.stay_awake();
            }
        }
    }
}

/// The ring adjacency the scatter program's neighbour sends travel on.
fn ring_model(n: usize, local_edge_cap: usize) -> HybridLocal {
    HybridLocal::from_edges(
        n,
        (0..n as u32).map(|u| (u, (u + 1) % n as u32)),
        local_edge_cap,
    )
}

/// Every model under test, freshly built for network size `n`. The
/// kmachine crate sits above ncc-model in the workspace, so the "wants
/// delivered pairs + charges rounds" trait surface is exercised here with
/// [`ChargingModel`]; the real `KMachineModel` is covered by
/// `ncc-kmachine`'s own engine tests.
fn all_models(n: usize) -> Vec<Box<dyn NetworkModel>> {
    vec![
        Box::new(Ncc),
        Box::new(CongestedClique::new(2)),
        Box::new(ChargingModel),
        Box::new(ring_model(n, 1)),
    ]
}

/// Minimal cost-accounting model: NCC semantics, charges one extra round
/// per 10 delivered messages.
struct ChargingModel;

impl NetworkModel for ChargingModel {
    fn name(&self) -> &'static str {
        "charging-stub"
    }
    fn recv_policy(&self, cap: &Capacity) -> RecvPolicy {
        RecvPolicy::NodeCap { recv: cap.recv }
    }
    fn wants_delivered_pairs(&self) -> bool {
        true
    }
    fn charge_round(&mut self, _round: u64, delivered: &[ncc_model::TraceEvent]) -> u64 {
        1 + delivered.len() as u64 / 10
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn run_model(
    model: Box<dyn NetworkModel>,
    n: usize,
    seed: u64,
    recv_cap: usize,
    waves: u64,
    fanout: usize,
    threads: usize,
) -> (ncc_model::ExecStats, Vec<(u64, u64)>) {
    let cfg = NetConfig::new(n, seed)
        .with_capacity(Capacity::squeezed(64, recv_cap))
        .permissive()
        .with_threads(threads);
    let mut eng = Engine::with_model(cfg, model);
    let mut states = vec![ScatterState::default(); n];
    let stats = eng
        .execute(&Scatter { waves, fanout }, &mut states)
        .unwrap();
    let sums = states.iter().map(|s| (s.received, s.checksum)).collect();
    (stats, sums)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Conservation for every model × threads ∈ {1, 4}: each sent message
    /// is delivered or dropped, never both or neither; truncation stays on
    /// the send side (disjoint from drops); node inboxes account exactly
    /// for the delivered total.
    #[test]
    fn cross_model_conservation(
        n in 8usize..160,
        fanout in 1usize..10,
        waves in 1u64..5,
        recv_cap in 1usize..24,
        seed in any::<u64>(),
    ) {
        for threads in [1usize, 4] {
            for model in all_models(n) {
                let name = model.name();
                let (stats, sums) = run_model(model, n, seed, recv_cap, waves, fanout, threads);
                prop_assert_eq!(
                    stats.delivered + stats.dropped,
                    stats.sent,
                    "conservation violated under {} at {} threads", name, threads
                );
                // truncated messages were never sent: the sum of inbox
                // sizes equals delivered exactly
                let received: u64 = sums.iter().map(|&(r, _)| r).sum();
                prop_assert_eq!(received, stats.delivered, "model {}", name);
                prop_assert_eq!(stats.lost(), stats.dropped + stats.truncated);
            }
        }
    }

    /// Bit-identical execution across thread counts, for every model.
    #[test]
    fn cross_model_parallel_equivalence(
        n in 130usize..300,
        fanout in 1usize..6,
        recv_cap in 2usize..16,
        seed in any::<u64>(),
    ) {
        for (a, b) in all_models(n).into_iter().zip(all_models(n)) {
            let name = a.name();
            let (s1, r1) = run_model(a, n, seed, recv_cap, 3, fanout, 1);
            let (s4, r4) = run_model(b, n, seed, recv_cap, 3, fanout, 4);
            prop_assert_eq!(s1, s4, "stats diverged under {}", name);
            prop_assert_eq!(r1, r4, "states diverged under {}", name);
        }
    }

    /// Byte-identity oracle: the engine under an *explicit* `Ncc` model
    /// reproduces the default-construction engine (the pre-refactor path)
    /// exactly, and its routing matches the pre-refactor per-envelope
    /// delivery semantics kept verbatim in `reference_route`.
    #[test]
    fn ncc_model_pins_pre_refactor_semantics(
        n in 4usize..150,
        fanout in 1usize..8,
        recv_cap in 1usize..16,
        seed in any::<u64>(),
    ) {
        let (s_default, r_default) = {
            let cfg = NetConfig::new(n, seed)
                .with_capacity(Capacity::squeezed(64, recv_cap))
                .permissive();
            let mut eng = Engine::new(cfg);
            let mut states = vec![ScatterState::default(); n];
            let stats = eng.execute(&Scatter { waves: 3, fanout }, &mut states).unwrap();
            (stats, states.iter().map(|s| s.checksum).collect::<Vec<_>>())
        };
        let (s_explicit, r_explicit) =
            run_model(Box::new(Ncc), n, seed, recv_cap, 3, fanout, 1);
        prop_assert_eq!(s_default, s_explicit);
        prop_assert_eq!(r_default, r_explicit.iter().map(|&(_, c)| c).collect::<Vec<_>>());

        // router-level: NodeCap policy ≡ the seed engine's delivery phase
        let mut gen = network_rng(seed ^ 0x0a11, 0, 0);
        let sends: Vec<Envelope<u64>> = (0..500)
            .map(|i| {
                Envelope::new(
                    gen.gen_range(0..n as u32),
                    gen.gen_range(0..n as u32) % (1 + n as u32 / 4),
                    i as u64,
                )
            })
            .collect();
        let (ref_inboxes, ref_dropped) = reference_route(&sends, n, recv_cap, seed, 7);
        let mut router: Router<u64> = Router::new(n, seed, 1);
        let mut batch = sends.clone();
        let report = router.route_model(
            &mut batch,
            7,
            RecvPolicy::NodeCap { recv: recv_cap },
            &Ncc,
        );
        prop_assert_eq!(report.dropped, ref_dropped);
        for d in 0..n as u32 {
            prop_assert_eq!(router.inbox(d), ref_inboxes[d as usize].as_slice());
        }
    }
}

/// Cap-arithmetic audit regression: `Capacity::unbounded()` pushes
/// `usize::MAX` through the send-cap comparison, the counting sort, and
/// the sample phase — nothing may wrap, nothing may drop, on both the
/// sequential and the forced-parallel batched router.
#[test]
fn unbounded_capacity_through_batched_router() {
    let n = 96;
    for threads in [1usize, 4] {
        let cfg = NetConfig::new(n, 11)
            .with_capacity(Capacity::unbounded())
            .with_threads(threads);
        let mut eng = Engine::with_model(cfg, Box::new(Ncc));
        let mut states = vec![ScatterState::default(); n];
        let stats = eng
            .execute(
                &Scatter {
                    waves: 3,
                    fanout: 40,
                },
                &mut states,
            )
            .unwrap();
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.truncated, 0);
        assert_eq!(stats.delivered, stats.sent);
        assert_eq!(stats.sent, 3 * n as u64 * 40); // send waves 0..3, nothing cut
        assert!(stats.clean());
    }

    // Router-level, parallel path forced on a small batch with
    // recv = usize::MAX and an over-concentrated destination.
    let mut router: Router<u64> = Router::new(8, 3, 4).with_min_parallel_sends(1);
    let mut sends: Vec<Envelope<u64>> = (0..1000u32)
        .map(|i| Envelope::new(i % 8, 0, i as u64))
        .collect();
    let report = router.route(&mut sends, 0, usize::MAX);
    assert_eq!(report.delivered, 1000);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.max_in, 1000);
    assert_eq!(router.inbox(0).len(), 1000);

    // Congested-Clique with an unbounded edge cap must not wrap either.
    let cc = CongestedClique::new(usize::MAX);
    let mut router: Router<u64> = Router::new(8, 3, 1);
    let mut sends: Vec<Envelope<u64>> = (0..1000u32)
        .map(|i| Envelope::new(i % 8, 0, i as u64))
        .collect();
    let report = router.route_model(&mut sends, 0, cc.recv_policy(&Capacity::unbounded()), &cc);
    assert_eq!(report.delivered, 1000);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.max_edge_load, 125); // 1000 sends / 8 senders
}

/// Hybrid local messages bypass the node send cap: a node may saturate its
/// global budget and still reach every graph neighbour.
#[test]
fn hybrid_local_lane_bypasses_send_cap() {
    struct LocalPlusGlobal;
    impl NodeProgram for LocalPlusGlobal {
        type State = u64;
        type Payload = u64;
        fn init(&self, _st: &mut u64, ctx: &mut Ctx<'_, u64>) {
            if ctx.id == 0 {
                // 2 global sends (the full node budget) + 1 local send
                ctx.send(2, 100);
                ctx.send(3, 101);
                ctx.send(1, 102); // ring neighbour: local lane
            }
        }
        fn round(&self, st: &mut u64, inbox: &[Envelope<u64>], _ctx: &mut Ctx<'_, u64>) {
            *st += inbox.len() as u64;
        }
    }
    let n = 6;
    let cfg = NetConfig::new(n, 1).with_capacity(Capacity::squeezed(2, 8));
    // strict mode: 3 sends against a send cap of 2 would abort under NCC…
    let mut ncc = Engine::new(cfg.clone());
    let mut states = vec![0u64; n];
    assert!(ncc.execute(&LocalPlusGlobal, &mut states).is_err());
    // …but under the hybrid model the neighbour send rides the local edge.
    let mut hybrid = Engine::with_model(cfg, Box::new(ring_model(n, 1)));
    let mut states = vec![0u64; n];
    let stats = hybrid.execute(&LocalPlusGlobal, &mut states).unwrap();
    assert_eq!(stats.sent, 3);
    assert_eq!(stats.delivered, 3);
    assert_eq!(states[1], 1);
    assert_eq!(states[2], 1);
    assert_eq!(states[3], 1);
}

/// `Engine::reset` restores the just-constructed state exactly: a second
/// execution after reset is byte-identical to the first (and to a fresh
/// engine), for every model — the residency contract `ncc-serve` leans on.
/// Without the reset, the advanced node RNGs and the drop-sampling round
/// key make the rerun diverge, which is also asserted so the test would
/// catch a reset that silently became unnecessary (or a no-op).
#[test]
fn reset_restores_byte_identical_execution() {
    let n = 96;
    let prog = Scatter {
        waves: 3,
        fanout: 6,
    };
    for model_fresh in all_models(n) {
        let name = model_fresh.name();
        let cfg = NetConfig::new(n, 17)
            .with_capacity(Capacity::squeezed(64, 5))
            .permissive();
        let mut eng = Engine::with_model(cfg, model_fresh);

        let mut first = vec![ScatterState::default(); n];
        let s1 = eng.execute(&prog, &mut first).unwrap();
        let sums1: Vec<(u64, u64)> = first.iter().map(|s| (s.received, s.checksum)).collect();
        assert_eq!(eng.total, s1, "cumulative totals mirror the single run");

        // a rerun *without* reset diverges (advanced RNG streams + round key)
        let mut stale = vec![ScatterState::default(); n];
        let s_stale = eng.execute(&prog, &mut stale).unwrap();
        let sums_stale: Vec<(u64, u64)> = stale.iter().map(|s| (s.received, s.checksum)).collect();
        assert!(
            s_stale != s1 || sums_stale != sums1,
            "{name}: reuse without reset should diverge — if this starts \
             passing, the engine stopped carrying cross-run state and reset \
             may be droppable"
        );

        // after reset, the rerun is byte-identical to the first
        eng.reset();
        assert_eq!(eng.global_round(), 0);
        assert_eq!(eng.total, ncc_model::ExecStats::default());
        let mut again = vec![ScatterState::default(); n];
        let s2 = eng.execute(&prog, &mut again).unwrap();
        let sums2: Vec<(u64, u64)> = again.iter().map(|s| (s.received, s.checksum)).collect();
        assert_eq!(s1, s2, "{name}: stats must survive reset");
        assert_eq!(sums1, sums2, "{name}: states must survive reset");
    }
}
