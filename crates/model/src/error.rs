//! Error types for model violations.

use std::fmt;

/// Violations of the Node-Capacitated Clique contract detected by the engine.
///
/// In *strict* mode (the default for all algorithms in this repository) a
/// violation aborts the execution: the paper's algorithms are designed never
/// to exceed the caps w.h.p., so a violation is a protocol bug, not a runtime
/// condition. In *permissive* mode violations are counted in the statistics
/// instead (used by the failure-injection tests and by baselines that
/// deliberately overload nodes, e.g. naive star-broadcast in E16).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A node attempted to send more messages in one round than `cap_send`.
    SendCapExceeded {
        node: u32,
        round: u64,
        attempted: usize,
        cap: usize,
    },
    /// A payload declared a bit width above the `O(log n)` budget.
    PayloadTooWide {
        node: u32,
        round: u64,
        bits: u32,
        budget: u32,
    },
    /// A message was addressed outside `{0..n}`.
    BadDestination {
        node: u32,
        round: u64,
        dst: u32,
        n: usize,
    },
    /// The run exceeded its round limit without reaching quiescence.
    RoundLimitExceeded { limit: u64 },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::SendCapExceeded {
                node,
                round,
                attempted,
                cap,
            } => write!(
                f,
                "node {node} attempted to send {attempted} messages in round {round} (cap {cap})"
            ),
            ModelError::PayloadTooWide {
                node,
                round,
                bits,
                budget,
            } => write!(
                f,
                "node {node} sent a {bits}-bit payload in round {round} (budget {budget} bits)"
            ),
            ModelError::BadDestination {
                node,
                round,
                dst,
                n,
            } => write!(
                f,
                "node {node} addressed non-existent node {dst} in round {round} (n = {n})"
            ),
            ModelError::RoundLimitExceeded { limit } => {
                write!(f, "execution did not quiesce within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::SendCapExceeded {
            node: 3,
            round: 7,
            attempted: 99,
            cap: 80,
        };
        let s = e.to_string();
        assert!(s.contains("node 3"));
        assert!(s.contains("99"));
        assert!(s.contains("80"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = ModelError::RoundLimitExceeded { limit: 10 };
        let b = ModelError::RoundLimitExceeded { limit: 10 };
        assert_eq!(a, b);
    }
}
