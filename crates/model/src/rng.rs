//! Deterministic randomness plumbing.
//!
//! Every source of randomness in a simulation is derived from a single
//! `u64` master seed through SplitMix64 stream derivation, so that
//! executions are reproducible regardless of thread count:
//!
//! * each node owns a private RNG stream keyed by `(seed, node)`;
//! * network-level choices (which excess inbound messages to drop) are keyed
//!   by `(seed, round, destination)` — independent of execution order.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One step of the SplitMix64 output function. A high-quality 64-bit mixer;
/// used for cheap stream derivation, not as the simulation RNG itself.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a sequence of words into a single derived seed.
#[inline]
pub fn derive_seed(words: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64; // pi fraction, arbitrary non-zero constant
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    acc
}

/// RNG for a given node's private stream.
pub fn node_rng(master: u64, node: u32) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(&[
        master,
        0x6e6f6465, /* "node" */
        node as u64,
    ]))
}

/// RNG for the network's drop decision at `(round, dst)`.
pub fn network_rng(master: u64, round: u64, dst: u32) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(&[
        master, 0x6e6574, /* "net" */
        round, dst as u64,
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // avalanche smoke test: flipping one bit changes roughly half the output bits
        let a = splitmix64(0x1234);
        let b = splitmix64(0x1235);
        let diff = (a ^ b).count_ones();
        assert!((16..=48).contains(&diff), "poor avalanche: {diff}");
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = node_rng(42, 0);
        let mut b = node_rng(42, 1);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_reproducible() {
        let mut a1 = node_rng(42, 7);
        let mut a2 = node_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a1.gen::<u64>(), a2.gen::<u64>());
        }
    }

    #[test]
    fn network_rng_keyed_by_round_and_dst() {
        let mut r1 = network_rng(9, 3, 5);
        let mut r2 = network_rng(9, 4, 5);
        let mut r3 = network_rng(9, 3, 6);
        let v1: u64 = r1.gen();
        assert_ne!(v1, r2.gen::<u64>());
        assert_ne!(v1, r3.gen::<u64>());
    }

    #[test]
    fn derive_seed_order_sensitive() {
        assert_ne!(derive_seed(&[1, 2]), derive_seed(&[2, 1]));
        assert_ne!(derive_seed(&[1]), derive_seed(&[1, 0]));
    }
}
