//! Per-node communication capacity (the defining constraint of the model).
//!
//! The paper allows each node to send and receive `O(log n)` messages of
//! `O(log n)` bits per round. Asymptotic statements hide constants, but a
//! simulator must pick them; [`Capacity`] makes the constants explicit and
//! the experiment harness reports the measured load so the hidden constants
//! can be audited (experiment E15).

use serde::{Deserialize, Serialize};

use crate::ilog2_ceil;

/// Per-round, per-node message budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capacity {
    /// Maximum number of messages a node may send per round.
    pub send: usize,
    /// Maximum number of messages a node may receive per round; excess
    /// inbound messages are dropped by the network.
    pub recv: usize,
    /// Maximum payload width in bits (the `O(log n)` message-size budget).
    pub payload_bits: u32,
}

impl Capacity {
    /// Capacity scaled as `κ · ⌈log₂ n⌉` messages (minimum `κ` for tiny `n`)
    /// and `β · ⌈log₂ n⌉` payload bits (minimum 128, so a tagged machine
    /// word plus a group header always fits at tiny `n` — identifiers,
    /// weights and hash values in this codebase are machine words
    /// representing `O(log n)`-bit quantities, and the accounting rounds
    /// *up* to the machine-word width, never down).
    ///
    /// The defaults used across the repository are `κ = 8`, `β = 16`; the
    /// butterfly emulation needs `κ ≥ 5` (each emulated column touches at
    /// most `4(d+1) + O(1)` butterfly edges) and the measured loads stay
    /// well inside this budget (see EXPERIMENTS.md, E15).
    pub fn log_scaled(n: usize, kappa: usize, beta: u32) -> Self {
        let logn = ilog2_ceil(n).max(1) as usize;
        // Saturating: callers may probe with `usize::MAX`-ish constants
        // (unbounded-capacity sweeps); a silent wrap here would turn an
        // "effectively infinite" budget into a tiny one.
        Capacity {
            send: kappa.saturating_mul(logn).max(kappa),
            recv: kappa.saturating_mul(logn).max(kappa),
            payload_bits: beta.saturating_mul(logn as u32).max(128),
        }
    }

    /// The repository-default capacity: `8·log₂n` messages, `24·log₂n` bits
    /// (the bit constant leaves room for a group header plus two packed
    /// `O(log n)`-bit words, e.g. the FindMin range multicasts of §3).
    pub fn default_for(n: usize) -> Self {
        Self::log_scaled(n, 8, 24)
    }

    /// An effectively-unlimited capacity, useful for baselines that model
    /// the *Congested Clique* (per-edge bandwidth, no node cap) or for
    /// isolating algorithmic round counts from capacity effects in tests.
    pub fn unbounded() -> Self {
        Capacity {
            send: usize::MAX,
            recv: usize::MAX,
            payload_bits: u32::MAX,
        }
    }

    /// A deliberately squeezed capacity, used by failure-injection tests to
    /// exercise the drop path.
    pub fn squeezed(send: usize, recv: usize) -> Self {
        Capacity {
            send,
            recv,
            payload_bits: u32::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_scaled_values() {
        let c = Capacity::log_scaled(1024, 8, 16);
        assert_eq!(c.send, 80);
        assert_eq!(c.recv, 80);
        assert_eq!(c.payload_bits, 160);
    }

    #[test]
    fn tiny_n_has_minimum_capacity() {
        let c = Capacity::log_scaled(1, 8, 16);
        assert_eq!(c.send, 8);
        assert_eq!(c.payload_bits, 128);
        let c2 = Capacity::log_scaled(2, 4, 16);
        assert_eq!(c2.send, 4);
    }

    #[test]
    fn default_capacity_values() {
        let c = Capacity::default_for(1024);
        assert_eq!(c.send, 80);
        assert_eq!(c.payload_bits, 240);
    }

    #[test]
    fn capacity_monotone_in_n() {
        let mut prev = 0;
        for k in 1..14 {
            let c = Capacity::default_for(1 << k);
            assert!(c.send >= prev);
            prev = c.send;
        }
    }

    #[test]
    fn unbounded_is_unbounded() {
        let c = Capacity::unbounded();
        assert_eq!(c.send, usize::MAX);
        assert_eq!(c.recv, usize::MAX);
    }

    #[test]
    fn log_scaled_saturates_instead_of_wrapping() {
        let c = Capacity::log_scaled(1 << 20, usize::MAX, u32::MAX);
        assert_eq!(c.send, usize::MAX);
        assert_eq!(c.recv, usize::MAX);
        assert_eq!(c.payload_bits, u32::MAX);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Capacity::default_for(256);
        let s = serde_json::to_string(&c).unwrap();
        let back: Capacity = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
