//! The synchronous round engine.
//!
//! [`Engine::execute`] drives a [`NodeProgram`] to quiescence:
//!
//! ```text
//! round r:  1. every *active* node runs its step function
//!              (active = received a message, or asked to stay awake;
//!               at round 0 every node runs `init`)
//!           2. send cap and payload width are enforced per node
//!           3. the batched router counting-sorts the round's flat send
//!              buffer into a per-destination inbox arena; destinations
//!              over their receive cap get a seeded-random subset and the
//!              rest are dropped (counted per destination)
//!           4. arena buckets become the inboxes of round r + 1
//! ```
//!
//! Delivery is a *batched routing problem*, not per-message dispatch: the
//! whole round's traffic is one counting sort into a reusable flat arena
//! (see [`crate::router`]), so the steady state of an execution performs no
//! heap allocation in the delivery phase at all.
//!
//! ## A round costs O(active + messages), not O(n)
//!
//! The paper's target regime (§1) is huge overlays where most nodes idle
//! most rounds. The engine never scans all `n` nodes after round 0: the
//! next active set is the merge of the nodes that kept themselves awake
//! (a subset of the current active set, walked in order) with the
//! router's ascending occupied-destination list — the router already
//! knows exactly who got mail. Both inputs are sorted, so the merge
//! reproduces the seed engine's sorted, deduplicated full scan
//! byte-for-byte in O(active + occupied) time. Trace/cost-accounting
//! inbox walks likewise visit only occupied buckets, and the router's
//! sparse path keeps the count/prefix tables O(sends) when sends ≪ n.
//! [`NetConfig::dense_activity_scan`] pins the original O(n) scans as a
//! baseline; property tests assert both modes are bit-identical.
//!
//! The engine persists across program executions (its global round counter
//! and cumulative statistics keep running), so a high-level algorithm that
//! invokes many primitive protocols in sequence — the way §3–§5 of the paper
//! compose Aggregation / Multicast / Aggregate-and-Broadcast — accumulates
//! an honest total round count.
//!
//! ## Determinism
//!
//! Executions are reproducible for a fixed `(seed, n)` regardless of the
//! number of worker threads: per-node RNG streams are keyed by node id, the
//! network's drop choices are keyed by `(seed, global round, destination)`,
//! and message ordering is fixed by (sending node id, send order). The
//! multi-threaded step phase partitions the active set into contiguous
//! chunks and concatenates the per-chunk outputs in chunk order, which
//! reproduces the sequential order exactly; the multi-threaded route phase
//! is a partitioned counting sort whose arena layout and drop choices are
//! bit-identical to the sequential path. Property tests assert
//! sequential ≡ parallel for 1, 2, 4 and 8 threads on random programs.

use std::any::{Any, TypeId};

use rand::rngs::SmallRng;

use crate::capacity::Capacity;
use crate::error::ModelError;
use crate::network::{Lane, Ncc, NetworkModel};
use crate::payload::{Envelope, Payload};
use crate::program::{Ctx, NodeProgram};
use crate::rng::node_rng;
use crate::router::{Router, RouterScratch, SendPtr};
use crate::stats::{ExecStats, MemoryFootprint, RoundStats};
use crate::trace::{TraceEvent, TraceSink};
use crate::NodeId;

/// Static parameters of a simulated network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of nodes.
    pub n: usize,
    /// Per-node, per-round communication budget.
    pub capacity: Capacity,
    /// Master seed for all randomness (node streams + network choices).
    pub seed: u64,
    /// Strict mode: cap/payload violations abort with an error. Permissive
    /// mode: violations are counted and excess sends are truncated.
    pub strict: bool,
    /// Worker threads for the step and route phases. `1` = sequential.
    pub threads: usize,
    /// Abort if a single program execution exceeds this many rounds.
    pub max_rounds: u64,
    /// Active-set size below which the step phase stays sequential even
    /// with worker threads configured (thread-scope overhead beats
    /// stepping a small set in parallel). Results are identical either
    /// way; mirrors the router's `with_min_parallel_sends` crossover.
    pub min_parallel_active: usize,
    /// Compat mode: rebuild the next-active set with the seed engine's
    /// full O(n) scan and route through the dense table path, instead of
    /// the O(active + messages) dirty-set scheduling. Byte-identical
    /// results — this is the honest cost baseline the sparse-activity
    /// property tests and benchmarks compare against.
    pub dense_activity_scan: bool,
}

impl NetConfig {
    /// Default configuration: strict, sequential, default `Θ(log n)` caps.
    pub fn new(n: usize, seed: u64) -> Self {
        NetConfig {
            n,
            capacity: Capacity::default_for(n),
            seed,
            strict: true,
            threads: 1,
            max_rounds: 2_000_000,
            min_parallel_active: 128,
            dense_activity_scan: false,
        }
    }

    pub fn with_capacity(mut self, c: Capacity) -> Self {
        self.capacity = c;
        self
    }

    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    /// Overrides the sequential→parallel step-phase crossover (default:
    /// 128 active nodes). Mainly for tests that need to pin one path on
    /// small scenarios; results are identical on both sides.
    pub fn with_min_parallel_active(mut self, m: usize) -> Self {
        self.min_parallel_active = m.max(1);
        self
    }

    /// Pins the seed engine's O(n)-per-round activity scans (see
    /// [`NetConfig::dense_activity_scan`]). Runtime-only, like `threads`:
    /// never part of a scenario's identity.
    pub fn with_dense_activity_scan(mut self, on: bool) -> Self {
        self.dense_activity_scan = on;
        self
    }

    pub fn permissive(mut self) -> Self {
        self.strict = false;
        self
    }
}

/// The simulated network: `n` synchronous nodes driven under a pluggable
/// [`NetworkModel`] (the Node-Capacitated Clique by default).
pub struct Engine {
    cfg: NetConfig,
    node_rngs: Vec<SmallRng>,
    global_round: u64,
    /// Cumulative statistics across every execution on this engine.
    pub total: ExecStats,
    sink: Option<Box<dyn TraceSink>>,
    model: Box<dyn NetworkModel>,
    scratch: EngineScratch,
}

/// Cross-execution scratch: the router's payload-independent tables plus
/// the engine's own per-round lists and the recycled payload-typed
/// buffers. Owned by the engine so that repeat executions — the
/// multi-phase algorithm pipelines, and resident-engine replays after
/// [`Engine::reset`] — allocate nothing in the steady state. Pure
/// scratch: contents never influence results, so `reset()` leaves it
/// alone.
///
/// Node state is held struct-of-arrays style: parallel columns indexed
/// by position (ascending activity lists, per-worker buffers) instead of
/// per-node structs. The old O(n) awake bool column is gone — a node's
/// stay-awake flag lives on the stepping worker's stack and is collected
/// into an ascending id list, so an execution's footprint beyond the
/// router tables is O(active), not O(n).
#[derive(Default)]
struct EngineScratch {
    router: RouterScratch,
    active: Vec<NodeId>,
    next_active: Vec<NodeId>,
    /// Ascending ids of nodes that kept themselves awake this round —
    /// a subset of `active`, rebuilt every round.
    awake: Vec<NodeId>,
    /// Per-worker awake lists for the parallel step phase, concatenated
    /// into `awake` in chunk order.
    awake_locals: Vec<Vec<NodeId>>,
    trace_buf: Vec<TraceEvent>,
    /// Recycled payload-typed buffer sets, keyed by payload `TypeId`.
    /// Linear scan: an engine sees a handful of payload types, ever.
    typed: Vec<(TypeId, Box<dyn RecycledBufs>)>,
}

impl EngineScratch {
    /// Detaches the recycled buffers for payload type `P`, or fresh empty
    /// ones the first time `P` executes on this engine.
    fn take_bufs<P: Payload>(&mut self) -> PayloadBufs<P> {
        let key = TypeId::of::<P>();
        for (k, b) in &mut self.typed {
            if *k == key {
                let bufs = b
                    .as_any_mut()
                    .downcast_mut::<PayloadBufs<P>>()
                    .expect("entry keyed by payload TypeId");
                return std::mem::take(bufs);
            }
        }
        PayloadBufs::default()
    }

    /// Returns `P`'s buffers for reuse by the next execution.
    fn put_bufs<P: Payload>(&mut self, bufs: PayloadBufs<P>) {
        let key = TypeId::of::<P>();
        for (k, b) in &mut self.typed {
            if *k == key {
                *b.as_any_mut()
                    .downcast_mut::<PayloadBufs<P>>()
                    .expect("entry keyed by payload TypeId") = bufs;
                return;
            }
        }
        self.typed.push((key, Box::new(bufs)));
    }
}

/// Type-erased face of [`PayloadBufs`], so one scratch can hold recycled
/// buffers for several payload types at once.
trait RecycledBufs: Send {
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn resident_bytes(&self) -> usize;
}

/// Every payload-typed buffer one execution needs: the flat send buffer,
/// the router's inbox arena, and the step phase's per-worker out/send
/// vectors. Retained across executions (and [`Engine::reset`]) so a
/// steady-state replay performs no heap allocation at all once each
/// buffer has grown to its high-water capacity.
struct PayloadBufs<P: Payload> {
    sends: Vec<Envelope<P>>,
    arena: Vec<Envelope<P>>,
    /// Per-worker `Ctx::out` buffers (index 0 doubles as the sequential
    /// path's buffer).
    outs: Vec<Vec<(NodeId, P)>>,
    /// Per-worker send-buffer shards for the parallel step phase.
    locals: Vec<Vec<Envelope<P>>>,
}

impl<P: Payload> Default for PayloadBufs<P> {
    fn default() -> Self {
        PayloadBufs {
            sends: Vec::new(),
            arena: Vec::new(),
            outs: Vec::new(),
            locals: Vec::new(),
        }
    }
}

impl<P: Payload> RecycledBufs for PayloadBufs<P> {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.sends.capacity() + self.arena.capacity()) * size_of::<Envelope<P>>()
            + self
                .outs
                .iter()
                .map(|o| o.capacity() * size_of::<(NodeId, P)>())
                .sum::<usize>()
            + self
                .locals
                .iter()
                .map(|l| l.capacity() * size_of::<Envelope<P>>())
                .sum::<usize>()
    }
}

impl Engine {
    /// An engine under the default [`Ncc`] model (per-node caps; the
    /// paper's setting). Executions are byte-identical to the pre-model
    /// engine for any `(seed, n, capacity)`.
    pub fn new(cfg: NetConfig) -> Self {
        Self::with_model(cfg, Box::new(Ncc))
    }

    /// An engine under an explicit network model (Congested Clique,
    /// k-machine, hybrid local+global, or anything user-provided).
    pub fn with_model(cfg: NetConfig, model: Box<dyn NetworkModel>) -> Self {
        let node_rngs = (0..cfg.n as NodeId)
            .map(|i| node_rng(cfg.seed, i))
            .collect();
        Engine {
            cfg,
            node_rngs,
            global_round: 0,
            total: ExecStats::default(),
            sink: None,
            model,
            scratch: EngineScratch::default(),
        }
    }

    /// Returns the engine to its just-constructed state: node RNGs are
    /// reseeded from the config seed, the global round counter and the
    /// cumulative totals are zeroed, and the network model clears its
    /// accumulated cost accounting ([`NetworkModel::reset`]).
    ///
    /// After `reset()`, an execution sequence is byte-identical to the same
    /// sequence on a freshly built engine — drop sampling is keyed by
    /// `(seed, global_round, dst)` and per-node randomness by
    /// `(seed, node)`, and both are restored exactly. This is what lets a
    /// resident service (`ncc-serve`) keep an engine alive across requests
    /// instead of rebuilding it, without forking the deterministic record
    /// history (gated the same way thread-count invariance is). An
    /// installed trace sink is left in place; callers that need a fresh
    /// sink swap it explicitly.
    ///
    /// The engine's reusable scratch (router tables, activity lists) is
    /// deliberately *not* cleared: it is pure cost-side state that never
    /// influences results, and keeping it is what makes resident-engine
    /// replays allocate nothing O(n) in the steady state.
    pub fn reset(&mut self) {
        for (i, r) in self.node_rngs.iter_mut().enumerate() {
            *r = node_rng(self.cfg.seed, i as NodeId);
        }
        self.global_round = 0;
        self.total = ExecStats::default();
        self.model.reset();
    }

    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The active network model (downcast via
    /// [`NetworkModel::as_any`] for model-specific post-run reports).
    pub fn model(&self) -> &dyn NetworkModel {
        &*self.model
    }

    pub fn n(&self) -> usize {
        self.cfg.n
    }

    /// Rounds elapsed across all executions on this engine.
    pub fn global_round(&self) -> u64 {
        self.global_round
    }

    /// Installs a trace sink that observes every delivered message.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Runs `prog` to quiescence (no messages in flight, no node awake).
    /// Returns the statistics of this execution alone; the engine's
    /// cumulative totals are updated as a side effect.
    pub fn execute<Prog: NodeProgram>(
        &mut self,
        prog: &Prog,
        states: &mut [Prog::State],
    ) -> Result<ExecStats, ModelError> {
        assert_eq!(states.len(), self.cfg.n, "one state per node required");
        let Engine {
            cfg,
            node_rngs,
            global_round,
            total,
            sink,
            model,
            scratch,
        } = self;
        let n = cfg.n;
        let cap = cfg.capacity;
        let send_cap = model.send_cap(&cap);
        let recv_policy = model.recv_policy(&cap);
        let wants_pairs = model.wants_delivered_pairs();

        // The router adopts the engine's reusable tables and the recycled
        // payload buffers for the duration of this execution and hands
        // them back below, so repeat executions allocate nothing.
        let PayloadBufs {
            mut sends,
            arena,
            mut outs,
            mut locals,
        } = scratch.take_bufs::<Prog::Payload>();
        let mut router: Router<Prog::Payload> = Router::with_recycled(
            n,
            cfg.seed,
            cfg.threads,
            std::mem::take(&mut scratch.router),
            arena,
        )
        .with_dense_scan(cfg.dense_activity_scan);
        let EngineScratch {
            active,
            next_active,
            awake,
            awake_locals,
            trace_buf,
            ..
        } = scratch;
        // Round 0 runs `init` on every node. Between executions the awake
        // list is empty: each round drains exactly what its step pushed,
        // and the error path below sweeps the rest.
        active.clear();
        active.extend(0..n as NodeId);
        debug_assert!(awake.is_empty());
        let mut local_round: u64 = 0;

        let result = (|| -> Result<ExecStats, ModelError> {
            let mut stats = ExecStats::default();
            loop {
                let mut round_stats = RoundStats {
                    active_nodes: active.len() as u64,
                    ..RoundStats::default()
                };
                sends.clear();

                // ---- step phase ---------------------------------------------
                let violation = if cfg.threads > 1 && active.len() >= cfg.min_parallel_active {
                    step_parallel(
                        prog,
                        states,
                        &router,
                        awake,
                        awake_locals,
                        active,
                        local_round,
                        &mut sends,
                        &mut outs,
                        &mut locals,
                        cfg,
                        node_rngs,
                        send_cap,
                        &**model,
                    )
                } else {
                    step_sequential(
                        prog,
                        states,
                        &router,
                        awake,
                        active,
                        local_round,
                        &mut sends,
                        &mut outs,
                        cfg,
                        node_rngs,
                        send_cap,
                        &**model,
                    )
                };

                // ---- cap / payload enforcement ------------------------------
                // `sends` is ordered by (node order within `active`, send
                // order), so per-node runs are contiguous.
                if let Some((node, attempted)) = violation.send_over {
                    if cfg.strict {
                        return Err(ModelError::SendCapExceeded {
                            node,
                            round: *global_round,
                            attempted,
                            cap: send_cap,
                        });
                    }
                }
                if let Some((node, bits)) = violation.payload_over {
                    if cfg.strict {
                        return Err(ModelError::PayloadTooWide {
                            node,
                            round: *global_round,
                            bits,
                            budget: cap.payload_bits,
                        });
                    }
                }
                if let Some((node, dst)) = violation.bad_dst {
                    return Err(ModelError::BadDestination {
                        node,
                        round: *global_round,
                        dst,
                        n,
                    });
                }
                round_stats.send_cap_violations = violation.violations;
                round_stats.max_out = violation.max_out;
                round_stats.sent = sends.len() as u64;
                round_stats.bits = violation.bits;
                round_stats.truncated = violation.truncated;

                // ---- route + deliver ----------------------------------------
                let report = router.route_model(&mut sends, *global_round, recv_policy, &**model);
                round_stats.delivered = report.delivered;
                round_stats.dropped = report.dropped;
                round_stats.max_in = report.max_in;
                round_stats.over_cap_dsts = report.over_cap_dsts;
                round_stats.max_edge_load = report.max_edge_load;

                // ---- model cost accounting + tracing ------------------------
                // Only the occupied buckets hold mail, and the occupied list
                // is ascending, so this walk sees exactly the events the old
                // full 0..n scan produced — in O(messages), not O(n).
                if sink.is_some() || wants_pairs {
                    trace_buf.clear();
                    for &d in router.occupied() {
                        for e in router.inbox(d) {
                            trace_buf.push(TraceEvent { src: e.src, dst: d });
                        }
                    }
                    if wants_pairs {
                        round_stats.km_rounds = model.charge_round(*global_round, trace_buf);
                    }
                    if let Some(sink) = sink.as_mut() {
                        sink.on_round(*global_round, trace_buf);
                        if !router.drops().is_empty() {
                            sink.on_drops(*global_round, router.drops());
                        }
                    }
                }

                // ---- next active set ----------------------------------------
                // The awake list is ascending and duplicate-free (each
                // stepped node pushes at most once, `active` is ascending,
                // and parallel chunks concatenate in order), as is the
                // router's occupied list, so both schedulers below are
                // plain ordered merges.
                next_active.clear();
                if cfg.dense_activity_scan {
                    // Seed-engine baseline: scan every id in order (sorted,
                    // deduplicated by construction).
                    let mut ai = 0;
                    for i in 0..n as NodeId {
                        let is_awake = ai < awake.len() && awake[ai] == i;
                        if is_awake {
                            ai += 1;
                        }
                        if is_awake || router.has_mail(i) {
                            next_active.push(i);
                        }
                    }
                } else {
                    // Dirty set: two-pointer merge-dedup of the awake list
                    // with the occupied list. Same sorted, deduplicated set
                    // as the full scan, in O(active + occupied) instead of
                    // O(n).
                    let occ = router.occupied();
                    let (mut ai, mut oi) = (0, 0);
                    while ai < awake.len() && oi < occ.len() {
                        let (a, o) = (awake[ai], occ[oi]);
                        next_active.push(a.min(o));
                        ai += (a <= o) as usize;
                        oi += (o <= a) as usize;
                    }
                    next_active.extend_from_slice(&awake[ai..]);
                    next_active.extend_from_slice(&occ[oi..]);
                }
                awake.clear();

                stats.absorb_round(&round_stats);
                total.absorb_round(&round_stats);
                *global_round += 1;
                local_round += 1;

                if next_active.is_empty() {
                    break;
                }
                if local_round >= cfg.max_rounds {
                    return Err(ModelError::RoundLimitExceeded {
                        limit: cfg.max_rounds,
                    });
                }
                std::mem::swap(active, next_active);
            }
            Ok(stats)
        })();

        if result.is_err() {
            // An abort mid-round can leave the round's awake pushes in
            // place; drain them so they never leak into a later execution
            // on this engine.
            awake.clear();
        }
        let (router_sc, arena) = router.into_recycled();
        scratch.router = router_sc;
        scratch.put_bufs(PayloadBufs {
            sends,
            arena,
            outs,
            locals,
        });
        result
    }

    /// Estimated resident heap footprint of the engine's long-lived
    /// state, by component — what a resident scenario service pays per
    /// node to keep this engine warm. Capacity-based (what is held, not
    /// what is momentarily in use) and never part of a deterministic
    /// snapshot.
    pub fn resident_bytes(&self) -> MemoryFootprint {
        use std::mem::size_of;
        let sc = &self.scratch;
        let activity_lists = (sc.active.capacity()
            + sc.next_active.capacity()
            + sc.awake.capacity()
            + sc.awake_locals.iter().map(|v| v.capacity()).sum::<usize>())
            * size_of::<NodeId>()
            + sc.trace_buf.capacity() * size_of::<TraceEvent>();
        MemoryFootprint {
            node_rngs: self.node_rngs.capacity() * size_of::<SmallRng>(),
            activity_lists,
            router_tables: sc.router.resident_bytes(),
            payload_bufs: sc.typed.iter().map(|(_, b)| b.resident_bytes()).sum(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn step_sequential<Prog: NodeProgram>(
    prog: &Prog,
    states: &mut [Prog::State],
    router: &Router<Prog::Payload>,
    awake: &mut Vec<NodeId>,
    active: &[NodeId],
    local_round: u64,
    sends: &mut Vec<Envelope<Prog::Payload>>,
    outs: &mut Vec<Vec<(NodeId, Prog::Payload)>>,
    cfg: &NetConfig,
    node_rngs: &mut [SmallRng],
    send_cap: usize,
    model: &dyn NetworkModel,
) -> Violation {
    let mut v = Violation::default();
    if outs.is_empty() {
        outs.push(Vec::new());
    }
    let out = &mut outs[0];
    for &node in active {
        let i = node as usize;
        out.clear();
        // The stay-awake flag is a stack local, not an O(n) column:
        // nodes that set it are collected into the ascending awake list.
        let mut stay = false;
        {
            let mut ctx = Ctx {
                id: node,
                n: cfg.n,
                round: local_round,
                rng: &mut node_rngs[i],
                out,
                awake: &mut stay,
            };
            if local_round == 0 {
                prog.init(&mut states[i], &mut ctx);
            } else {
                prog.round(&mut states[i], router.inbox(node), &mut ctx);
            }
        }
        if stay {
            awake.push(node);
        }
        v.account(node, out, cfg, send_cap, model, sends);
    }
    v
}

#[allow(clippy::too_many_arguments)]
fn step_parallel<Prog: NodeProgram>(
    prog: &Prog,
    states: &mut [Prog::State],
    router: &Router<Prog::Payload>,
    awake: &mut Vec<NodeId>,
    awake_locals: &mut Vec<Vec<NodeId>>,
    active: &[NodeId],
    local_round: u64,
    sends: &mut Vec<Envelope<Prog::Payload>>,
    outs: &mut Vec<Vec<(NodeId, Prog::Payload)>>,
    locals: &mut Vec<Vec<Envelope<Prog::Payload>>>,
    cfg: &NetConfig,
    node_rngs: &mut [SmallRng],
    send_cap: usize,
    model: &dyn NetworkModel,
) -> Violation {
    let threads = cfg.threads.min(active.len());
    let chunk = active.len().div_ceil(threads);
    let nchunks = active.len().div_ceil(chunk);
    let n = cfg.n;
    while outs.len() < nchunks {
        outs.push(Vec::new());
    }
    while locals.len() < nchunks {
        locals.push(Vec::new());
    }
    while awake_locals.len() < nchunks {
        awake_locals.push(Vec::new());
    }

    // SAFETY: the active list contains unique node ids (engine invariant:
    // built by an ascending id scan), and chunks partition it, so every
    // thread touches a disjoint set of indices in `states` and
    // `node_rngs`. The router is only read (shared inbox slices).
    let states_ptr = SendPtr(states.as_mut_ptr());
    let rngs_ptr = SendPtr(node_rngs.as_mut_ptr());

    let violations: Vec<Violation> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nchunks);
        let worker_bufs = outs[..nchunks]
            .iter_mut()
            .zip(locals[..nchunks].iter_mut())
            .zip(awake_locals[..nchunks].iter_mut());
        for (slice, ((out, local), awl)) in active.chunks(chunk).zip(worker_bufs) {
            let cfg = cfg.clone();
            let (states_ptr, rngs_ptr) = (states_ptr, rngs_ptr);
            handles.push(scope.spawn(move || {
                let mut v = Violation::default();
                local.clear();
                awl.clear();
                for &node in slice {
                    let i = node as usize;
                    debug_assert!(i < n);
                    // SAFETY: disjoint indices per the invariant above.
                    let (state, rng) =
                        unsafe { (&mut *states_ptr.get().add(i), &mut *rngs_ptr.get().add(i)) };
                    out.clear();
                    let mut stay = false;
                    {
                        let mut ctx = Ctx {
                            id: node,
                            n,
                            round: local_round,
                            rng,
                            out,
                            awake: &mut stay,
                        };
                        if local_round == 0 {
                            prog.init(state, &mut ctx);
                        } else {
                            prog.round(state, router.inbox(node), &mut ctx);
                        }
                    }
                    if stay {
                        awl.push(node);
                    }
                    v.account(node, out, &cfg, send_cap, model, local);
                }
                v
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut v = Violation::default();
    for cv in violations {
        v.merge(cv);
    }
    // Chunk-order concatenation reproduces the sequential order exactly —
    // for the send buffer and for the ascending awake list alike.
    for local in &mut locals[..nchunks] {
        sends.append(local);
    }
    for awl in &mut awake_locals[..nchunks] {
        awake.extend_from_slice(awl);
        awl.clear();
    }
    v
}

/// Per-round cap bookkeeping shared by both step drivers.
#[derive(Default)]
struct Violation {
    /// First node (in step order) that exceeded the send cap, with count.
    send_over: Option<(NodeId, usize)>,
    /// First payload-width violation.
    payload_over: Option<(NodeId, u32)>,
    /// First out-of-range destination.
    bad_dst: Option<(NodeId, NodeId)>,
    violations: u64,
    max_out: u64,
    bits: u64,
    /// Messages cut by permissive-mode send-cap truncation (never queued,
    /// hence disjoint from the network's receive-cap drops).
    truncated: u64,
}

impl Violation {
    /// Applies the model's send-side budgets to one node's outgoing
    /// messages and moves the survivors into the flat send buffer.
    ///
    /// `send_cap` is the model's node-level budget; in lane-splitting
    /// models (`!model.uniform_lanes()`) only `Lane::Global` messages count
    /// against it — local-edge messages always reach the network and are
    /// budgeted there (per edge, in the route phase). Under a uniform-lane
    /// model this reduces exactly to the pre-model positional truncation:
    /// the first `send_cap` messages survive.
    fn account<P: Payload>(
        &mut self,
        node: NodeId,
        out: &[(NodeId, P)],
        cfg: &NetConfig,
        send_cap: usize,
        model: &dyn NetworkModel,
        sends: &mut Vec<Envelope<P>>,
    ) {
        let cap = &cfg.capacity;
        let attempted = out.len();
        self.max_out = self.max_out.max(attempted as u64);
        let uniform = model.uniform_lanes();
        // One pass: classify each message's lane exactly once, admitting
        // the first `send_cap` cap-counted messages and tallying the rest
        // as truncated (recorded after the loop).
        let mut counted = 0usize;
        let mut taken = 0usize;
        for (dst, p) in out.iter() {
            let global = uniform || model.lane(node, *dst) == Lane::Global;
            if global {
                counted += 1;
                if taken >= send_cap {
                    continue; // over the node budget: truncated
                }
                taken += 1;
            }
            if (*dst as usize) >= cfg.n {
                if self.bad_dst.is_none() {
                    self.bad_dst = Some((node, *dst));
                }
                continue;
            }
            let bits = p.bit_size();
            if bits > cap.payload_bits {
                self.violations += 1;
                if self.payload_over.is_none() {
                    self.payload_over = Some((node, bits));
                }
                if cfg.strict {
                    // strict mode aborts anyway; skip queuing
                    continue;
                }
            }
            self.bits += bits as u64;
            sends.push(Envelope::new(node, *dst, p.clone()));
        }
        if counted > send_cap {
            self.violations += 1;
            self.truncated += (counted - send_cap) as u64;
            if self.send_over.is_none() {
                self.send_over = Some((node, counted));
            }
        }
    }

    fn merge(&mut self, other: Violation) {
        // Chunks are processed in node order, so "first" merges left-to-right.
        if self.send_over.is_none() {
            self.send_over = other.send_over;
        }
        if self.payload_over.is_none() {
            self.payload_over = other.payload_over;
        }
        if self.bad_dst.is_none() {
            self.bad_dst = other.bad_dst;
        }
        self.violations += other.violations;
        self.max_out = self.max_out.max(other.max_out);
        self.bits += other.bits;
        self.truncated += other.truncated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RecordingSink;

    /// Every node sends one message to (id+1) mod n for `hops` rounds.
    struct RingRelay {
        hops: u64,
    }
    #[derive(Default, Clone)]
    struct RelayState {
        received: u64,
    }
    impl NodeProgram for RingRelay {
        type State = RelayState;
        type Payload = u64;
        fn init(&self, _st: &mut RelayState, ctx: &mut Ctx<'_, u64>) {
            ctx.send((ctx.id + 1) % ctx.n as u32, 1);
        }
        fn round(&self, st: &mut RelayState, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
            st.received += inbox.len() as u64;
            if ctx.round < self.hops {
                ctx.send((ctx.id + 1) % ctx.n as u32, 1);
            }
        }
    }

    #[test]
    fn ring_relay_runs_expected_rounds() {
        let mut eng = Engine::new(NetConfig::new(8, 7));
        let mut states = vec![RelayState::default(); 8];
        let stats = eng.execute(&RingRelay { hops: 5 }, &mut states).unwrap();
        // waves are sent in rounds 0..=4 (init + rounds where round < hops);
        // round 5 receives the last wave, sends nothing, and the run stops
        assert_eq!(stats.rounds, 6);
        assert_eq!(stats.sent, 8 * 5);
        assert_eq!(stats.dropped, 0);
        assert!(stats.clean());
        for st in &states {
            assert_eq!(st.received, 5);
        }
    }

    /// All nodes flood node 0 — must trigger receive-cap drops.
    struct Flood;
    impl NodeProgram for Flood {
        type State = ();
        type Payload = u64;
        fn init(&self, _st: &mut (), ctx: &mut Ctx<'_, u64>) {
            if ctx.id != 0 {
                ctx.send(0, ctx.id as u64);
            }
        }
        fn round(&self, _st: &mut (), _inbox: &[Envelope<u64>], _ctx: &mut Ctx<'_, u64>) {}
    }

    #[test]
    fn receive_cap_drops_excess() {
        let n = 512;
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let cap = eng.config().capacity.recv;
        let mut states = vec![(); n];
        let stats = eng.execute(&Flood, &mut states).unwrap();
        assert_eq!(stats.sent, (n - 1) as u64);
        assert_eq!(stats.delivered, cap as u64);
        assert_eq!(stats.dropped, (n - 1 - cap) as u64);
        assert_eq!(stats.max_in, (n - 1) as u64);
        assert_eq!(stats.over_cap_dsts, 1);
        assert_eq!(stats.truncated, 0);
        assert_eq!(stats.lost(), stats.dropped);
    }

    /// A node that oversends must abort in strict mode.
    struct OverSend;
    impl NodeProgram for OverSend {
        type State = ();
        type Payload = u64;
        fn init(&self, _st: &mut (), ctx: &mut Ctx<'_, u64>) {
            if ctx.id == 3 {
                for d in 0..ctx.n as u32 {
                    ctx.send(d, 0);
                }
            }
        }
        fn round(&self, _st: &mut (), _inbox: &[Envelope<u64>], _ctx: &mut Ctx<'_, u64>) {}
    }

    #[test]
    fn strict_mode_rejects_oversend() {
        let n = 256;
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let mut states = vec![(); n];
        let err = eng.execute(&OverSend, &mut states).unwrap_err();
        match err {
            ModelError::SendCapExceeded {
                node, attempted, ..
            } => {
                assert_eq!(node, 3);
                assert_eq!(attempted, n);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn permissive_mode_truncates_oversend() {
        let n = 256;
        let mut eng = Engine::new(NetConfig::new(n, 3).permissive());
        let cap = eng.config().capacity.send;
        let mut states = vec![(); n];
        let stats = eng.execute(&OverSend, &mut states).unwrap();
        assert_eq!(stats.sent, cap as u64);
        assert_eq!(stats.send_cap_violations, 1);
        // truncated and dropped are disjoint: the cut messages were never
        // sent, and nothing here hits the receive cap.
        assert_eq!(stats.truncated, (n - cap) as u64);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.lost(), stats.truncated);
        assert_eq!(stats.delivered + stats.dropped, stats.sent);
    }

    #[test]
    fn engine_accumulates_across_executions() {
        let mut eng = Engine::new(NetConfig::new(8, 7));
        let mut states = vec![RelayState::default(); 8];
        let s1 = eng.execute(&RingRelay { hops: 2 }, &mut states).unwrap();
        let before = eng.global_round();
        let mut states2 = vec![RelayState::default(); 8];
        let s2 = eng.execute(&RingRelay { hops: 2 }, &mut states2).unwrap();
        assert_eq!(s1.rounds, s2.rounds);
        assert_eq!(eng.global_round(), before + s2.rounds);
        assert_eq!(eng.total.rounds, s1.rounds + s2.rounds);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let n = 600; // above the parallel threshold
        let run = |threads: usize| {
            let mut eng = Engine::new(NetConfig::new(n, 99).with_threads(threads));
            let mut states = vec![RelayState::default(); n];
            let stats = eng.execute(&RingRelay { hops: 9 }, &mut states).unwrap();
            (stats, states.iter().map(|s| s.received).collect::<Vec<_>>())
        };
        let (s1, r1) = run(1);
        let (s4, r4) = run(4);
        assert_eq!(s1, s4);
        assert_eq!(r1, r4);
    }

    #[test]
    fn trace_sink_sees_deliveries() {
        let mut eng = Engine::new(NetConfig::new(8, 7));
        eng.set_sink(Box::new(RecordingSink::default()));
        let mut states = vec![RelayState::default(); 8];
        eng.execute(&RingRelay { hops: 1 }, &mut states).unwrap();
        let sink = eng.take_sink().unwrap();
        // Downcast is awkward through Box<dyn TraceSink>; instead re-run with
        // a local sink through a fresh engine to keep the test simple.
        drop(sink);
        struct Counter(std::sync::Arc<std::sync::atomic::AtomicUsize>);
        impl TraceSink for Counter {
            fn on_round(&mut self, _r: u64, d: &[TraceEvent]) {
                self.0
                    .fetch_add(d.len(), std::sync::atomic::Ordering::Relaxed);
            }
        }
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut eng = Engine::new(NetConfig::new(8, 7));
        eng.set_sink(Box::new(Counter(counter.clone())));
        let mut states = vec![RelayState::default(); 8];
        let stats = eng.execute(&RingRelay { hops: 1 }, &mut states).unwrap();
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed) as u64,
            stats.delivered
        );
    }

    #[test]
    fn trace_sink_sees_drops() {
        let n = 512;
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let cap = eng.config().capacity.recv;
        eng.set_sink(Box::new(RecordingSink::default()));
        let mut states = vec![(); n];
        let stats = eng.execute(&Flood, &mut states).unwrap();
        // can't downcast through Box<dyn TraceSink>; assert via stats and a
        // fresh recording run instead
        drop(eng.take_sink());
        let mut sink = RecordingSink::default();
        let mut reference: Router<u64> = Router::new(n, 3, 1);
        let mut sends: Vec<Envelope<u64>> = (1..n as u32)
            .map(|i| Envelope::new(i, 0, i as u64))
            .collect();
        reference.route(&mut sends, 0, cap);
        sink.on_drops(0, reference.drops());
        assert_eq!(sink.total_drops(), stats.dropped);
        assert_eq!(stats.dropped, (n - 1 - cap) as u64);
    }

    /// Quiescence: a program that never sends ends after the init round.
    struct Silent;
    impl NodeProgram for Silent {
        type State = ();
        type Payload = ();
        fn init(&self, _st: &mut (), _ctx: &mut Ctx<'_, ()>) {}
        fn round(&self, _st: &mut (), _inbox: &[Envelope<()>], _ctx: &mut Ctx<'_, ()>) {}
    }

    #[test]
    fn silent_program_quiesces_immediately() {
        let mut eng = Engine::new(NetConfig::new(16, 0));
        let mut states = vec![(); 16];
        let stats = eng.execute(&Silent, &mut states).unwrap();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.sent, 0);
    }

    /// stay_awake keeps a node running without messages.
    struct CountDown;
    impl NodeProgram for CountDown {
        type State = u32;
        type Payload = ();
        fn init(&self, st: &mut u32, ctx: &mut Ctx<'_, ()>) {
            *st = 5;
            ctx.stay_awake();
        }
        fn round(&self, st: &mut u32, _inbox: &[Envelope<()>], ctx: &mut Ctx<'_, ()>) {
            *st -= 1;
            if *st > 0 {
                ctx.stay_awake();
            }
        }
    }

    #[test]
    fn stay_awake_drives_rounds() {
        let mut eng = Engine::new(NetConfig::new(4, 0));
        let mut states = vec![0u32; 4];
        let stats = eng.execute(&CountDown, &mut states).unwrap();
        assert_eq!(stats.rounds, 6);
        assert!(states.iter().all(|&s| s == 0));
    }

    /// Only node 0 does anything after round 0: it counts down via
    /// stay_awake and occasionally pings a far-away node.
    struct LoneWalker {
        ticks: u32,
    }
    impl NodeProgram for LoneWalker {
        type State = u32;
        type Payload = u64;
        fn init(&self, st: &mut u32, ctx: &mut Ctx<'_, u64>) {
            if ctx.id == 0 {
                *st = self.ticks;
                ctx.stay_awake();
            }
        }
        fn round(&self, st: &mut u32, _inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
            if ctx.id == 0 && *st > 0 {
                *st -= 1;
                if (*st).is_multiple_of(7) {
                    ctx.send((ctx.n as u32) / 2, *st as u64);
                }
                if *st > 0 {
                    ctx.stay_awake();
                }
            }
        }
    }

    #[test]
    fn dense_and_dirty_activity_scans_are_bit_identical() {
        for threads in [1usize, 4] {
            let run = |dense: bool| {
                let mut eng = Engine::new(
                    NetConfig::new(600, 99)
                        .with_threads(threads)
                        .with_dense_activity_scan(dense),
                );
                let mut states = vec![RelayState::default(); 600];
                let stats = eng.execute(&RingRelay { hops: 9 }, &mut states).unwrap();
                let mut walkers = vec![0u32; 600];
                let ws = eng
                    .execute(&LoneWalker { ticks: 40 }, &mut walkers)
                    .unwrap();
                (
                    stats,
                    ws,
                    states.iter().map(|s| s.received).collect::<Vec<_>>(),
                    walkers,
                )
            };
            assert_eq!(run(false), run(true), "threads={threads}");
        }
    }

    #[test]
    fn min_parallel_active_threshold_is_bit_identical() {
        // n=600 nodes are active every round; a threshold of 1 forces the
        // parallel step path, usize::MAX forces the sequential one.
        let run = |min_par: usize| {
            let mut eng = Engine::new(
                NetConfig::new(600, 5)
                    .with_threads(4)
                    .with_min_parallel_active(min_par),
            );
            let mut states = vec![RelayState::default(); 600];
            let stats = eng.execute(&RingRelay { hops: 6 }, &mut states).unwrap();
            (stats, states.iter().map(|s| s.received).collect::<Vec<_>>())
        };
        assert_eq!(run(1), run(usize::MAX));
    }

    #[test]
    fn quiescent_tail_costs_o_active_not_o_n() {
        // One active node on n=10⁵ for a 500-round tail. With the dirty-set
        // scheduler each tail round costs O(1); `node_rounds` (sum_active)
        // certifies the engine stepped n + ticks nodes, not rounds × n.
        let n = 100_000;
        let ticks = 500u32;
        let mut eng = Engine::new(NetConfig::new(n, 7));
        let mut states = vec![0u32; n];
        let stats = eng.execute(&LoneWalker { ticks }, &mut states).unwrap();
        assert_eq!(stats.peak_active, n as u64);
        // Round 0 steps all n; each later round steps node 0 plus at most
        // one ping recipient.
        assert!(stats.rounds > ticks as u64);
        assert!(stats.node_rounds < n as u64 + 2 * ticks as u64 + 2);
        assert_eq!(states[0], 0);
    }

    #[test]
    fn peak_active_tracks_widest_round() {
        let mut eng = Engine::new(NetConfig::new(64, 3));
        let mut states = vec![0u32; 64];
        let stats = eng.execute(&LoneWalker { ticks: 10 }, &mut states).unwrap();
        assert_eq!(stats.peak_active, 64); // round 0 inits everyone
        assert!(stats.node_rounds < 64 + 2 * 10 + 2);
    }

    #[test]
    fn scratch_reuse_matches_fresh_engines_across_programs() {
        // One engine reused across heterogeneous executions (different
        // payload types, different n is impossible — cfg pins n — but
        // programs and activity shapes vary) must match fresh engines.
        let mut reused = Engine::new(NetConfig::new(64, 11));
        let mut s1 = vec![RelayState::default(); 64];
        let r1 = reused.execute(&RingRelay { hops: 3 }, &mut s1).unwrap();
        let mut s2 = vec![0u32; 64];
        let r2 = reused.execute(&CountDown, &mut s2).unwrap();
        let mut s3 = vec![0u32; 64];
        let r3 = reused.execute(&LoneWalker { ticks: 9 }, &mut s3).unwrap();

        let mut f1 = Engine::new(NetConfig::new(64, 11));
        let mut t1 = vec![RelayState::default(); 64];
        assert_eq!(r1, f1.execute(&RingRelay { hops: 3 }, &mut t1).unwrap());
        // Fresh-engine comparisons for later runs need the same global
        // round offset, which only replay affects drop sampling; CountDown
        // and LoneWalker drop nothing, so stats must match exactly.
        let mut f2 = Engine::new(NetConfig::new(64, 11));
        let mut t2 = vec![0u32; 64];
        let fr2 = f2.execute(&CountDown, &mut t2).unwrap();
        assert_eq!(r2.rounds, fr2.rounds);
        assert_eq!(r2.sent, fr2.sent);
        assert_eq!(s2, t2);
        let mut f3 = Engine::new(NetConfig::new(64, 11));
        let mut t3 = vec![0u32; 64];
        let fr3 = f3.execute(&LoneWalker { ticks: 9 }, &mut t3).unwrap();
        assert_eq!(r3.rounds, fr3.rounds);
        assert_eq!(r3.node_rounds, fr3.node_rounds);
        assert_eq!(s3, t3);
    }

    #[test]
    fn error_exit_leaves_no_stale_awake_bits() {
        // A strict-mode abort happens mid-round, after step set awake bits
        // but before the round cleared them. The next execution on the same
        // engine must not see ghosts of that activity.
        struct AwakeThenOversend;
        impl NodeProgram for AwakeThenOversend {
            type State = ();
            type Payload = u64;
            fn init(&self, _st: &mut (), ctx: &mut Ctx<'_, u64>) {
                ctx.stay_awake();
                if ctx.id == 1 {
                    for d in 0..ctx.n as u32 {
                        ctx.send(d, 0);
                    }
                }
            }
            fn round(&self, _st: &mut (), _i: &[Envelope<u64>], _ctx: &mut Ctx<'_, u64>) {}
        }
        let n = 64;
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let mut states = vec![(); n];
        eng.execute(&AwakeThenOversend, &mut states).unwrap_err();
        let mut silent_states = vec![(); n];
        let stats = eng.execute(&Silent, &mut silent_states).unwrap();
        assert_eq!(stats.rounds, 1, "stale awake bits leaked across executes");
    }

    #[test]
    fn round_limit_enforced() {
        struct Forever;
        impl NodeProgram for Forever {
            type State = ();
            type Payload = ();
            fn init(&self, _st: &mut (), ctx: &mut Ctx<'_, ()>) {
                ctx.stay_awake();
            }
            fn round(&self, _st: &mut (), _i: &[Envelope<()>], ctx: &mut Ctx<'_, ()>) {
                ctx.stay_awake();
            }
        }
        let mut cfg = NetConfig::new(2, 0);
        cfg.max_rounds = 50;
        let mut eng = Engine::new(cfg);
        let mut states = vec![(); 2];
        let err = eng.execute(&Forever, &mut states).unwrap_err();
        assert_eq!(err, ModelError::RoundLimitExceeded { limit: 50 });
    }
}
