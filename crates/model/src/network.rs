//! The pluggable network-model layer: *which* communication model the
//! engine executes.
//!
//! The paper's headline contrast (§1) is between communication **models**:
//! the Node-Capacitated Clique moves `Θ̃(n)` messages per round under
//! per-node caps, the Congested Clique moves `Θ̃(n²)` under per-edge
//! bandwidth, Appendix A prices executions in the k-machine model, and the
//! §1 hybrid setting combines CONGEST-style local edges with the global
//! NCC. A [`NetworkModel`] captures everything that differs between them —
//! who may talk to whom, the per-round send/receive/bandwidth budgets, the
//! drop rules, and the cost accounting — so "which model" is one more
//! scenario dimension instead of a hardcoded engine property.
//!
//! Four implementations ship with the repository:
//!
//! | model                          | node caps        | pairwise budget      | extra accounting            |
//! |--------------------------------|------------------|----------------------|-----------------------------|
//! | [`Ncc`]                        | send + recv      | —                    | —                           |
//! | [`CongestedClique`]            | none             | per-edge `edge_cap`  | `max_edge_load`             |
//! | `KMachineModel` (ncc-kmachine) | send + recv      | per-link charge      | `km_rounds` in `ExecStats`  |
//! | [`HybridLocal`]                | global msgs only | per-local-edge cap   | `max_edge_load` (local)     |
//!
//! The engine's batched delivery pipeline (count → prefix → scatter →
//! sample, see [`crate::router`]) is shared by every model: a model never
//! installs a slow path, it only parameterises the sample phase through a
//! [`RecvPolicy`] and (for lane-splitting models) a per-message [`Lane`]
//! classification. The default [`Ncc`] model reproduces the pre-refactor
//! engine bit for bit.

use std::any::Any;

use serde::{Deserialize, Serialize};

use crate::capacity::Capacity;
use crate::trace::TraceEvent;
use crate::NodeId;

/// Which kind of link a message travels in models that distinguish the
/// input graph's *local* edges from the *global* clique (the §1 hybrid
/// setting). Models without local edges classify everything as `Global`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// A CONGEST-style edge of the input graph: bypasses the node-level
    /// send/receive caps, but is budgeted per edge per round.
    Local,
    /// The global network: subject to the model's node-level caps.
    Global,
}

/// How the router's sample phase treats each destination's inbox bucket.
///
/// Every variant slots into the same batched pipeline — the policy only
/// decides which messages of an over-full bucket survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvPolicy {
    /// NCC semantics: at most `recv` messages per destination per round; an
    /// over-cap destination receives a seeded-random subset (keyed by
    /// `(seed, round, destination)` — byte-identical to the pre-refactor
    /// engine).
    NodeCap { recv: usize },
    /// No destination-side limit (the pairwise budgets, if any, are the
    /// only constraint). Used by cost-accounting models that deliver
    /// everything and charge rounds instead.
    Unlimited,
    /// Congested-Clique semantics: each ordered edge `(src, dst)` carries at
    /// most `edge_cap` messages per round; the first `edge_cap` arrivals per
    /// sender survive, the rest are dropped by the network. Per-edge loads
    /// are measured honestly (`max_edge_load`).
    EdgeCap { edge_cap: usize },
    /// Hybrid semantics: *local* arrivals (input-graph edges) are budgeted
    /// `local_edge_cap` per directed edge per round; *global* arrivals are
    /// sampled under the NCC receive cap `recv` (seeded exactly like
    /// [`RecvPolicy::NodeCap`], over the global arrivals only).
    Hybrid { recv: usize, local_edge_cap: usize },
}

/// A communication model, pluggable into the engine.
///
/// Implementations must be cheap to consult: `send_cap`/`recv_policy` are
/// called once per round, `lane` once per message but only when
/// [`NetworkModel::uniform_lanes`] is `false`, and `charge_round` once per
/// round but only when [`NetworkModel::wants_delivered_pairs`] is `true` —
/// the default `Ncc` path performs no per-message virtual dispatch at all.
pub trait NetworkModel: Send + Sync {
    /// Short lowercase model name (`ncc`, `congested-clique`, `kmachine`,
    /// `hybrid`).
    fn name(&self) -> &'static str;

    /// Node-level send budget under the configured capacity. The engine
    /// truncates (permissive) or rejects (strict) send batches beyond this;
    /// `usize::MAX` means sends are only pairwise-budgeted.
    fn send_cap(&self, cap: &Capacity) -> usize {
        cap.send
    }

    /// How the route phase treats each destination's bucket.
    fn recv_policy(&self, cap: &Capacity) -> RecvPolicy;

    /// `true` when every message counts against the node-level send cap.
    /// Lane-splitting models return `false` and implement
    /// [`NetworkModel::lane`].
    fn uniform_lanes(&self) -> bool {
        true
    }

    /// Classifies one message. Only consulted when
    /// [`NetworkModel::uniform_lanes`] is `false`.
    fn lane(&self, _src: NodeId, _dst: NodeId) -> Lane {
        Lane::Global
    }

    /// `true` when the model needs the round's delivered `(src, dst)` pairs
    /// for cost accounting; the engine then calls
    /// [`NetworkModel::charge_round`] with them (from a reusable buffer —
    /// no steady-state allocation).
    fn wants_delivered_pairs(&self) -> bool {
        false
    }

    /// Cost accounting over one round's *delivered* messages. Returns the
    /// number of model rounds this engine round is charged (recorded as
    /// `km_rounds` in [`crate::stats::RoundStats`]); models without extra
    /// accounting return 0.
    fn charge_round(&mut self, _round: u64, _delivered: &[TraceEvent]) -> u64 {
        0
    }

    /// Clears any accumulated cost-accounting state, returning the model to
    /// its just-constructed condition. Called by [`crate::Engine::reset`]
    /// so a resident engine can be reused across runs with byte-identical
    /// results (the serve layer's cache-hit path). Stateless models keep
    /// the default no-op; models with running counters (the k-machine
    /// charge) must zero them here.
    fn reset(&mut self) {}

    /// Downcast access for callers that need model-specific reports after an
    /// execution (e.g. the k-machine link-load summary).
    fn as_any(&self) -> &dyn Any;
}

// ---------------------------------------------------------------------------
// Ncc — the default model

/// The Node-Capacitated Clique: per-node send/receive caps, seeded-random
/// receive-cap drops. This is the paper's model and the engine default; its
/// executions are byte-identical to the pre-refactor engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ncc;

impl NetworkModel for Ncc {
    fn name(&self) -> &'static str {
        "ncc"
    }

    fn recv_policy(&self, cap: &Capacity) -> RecvPolicy {
        RecvPolicy::NodeCap { recv: cap.recv }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// CongestedClique

/// The Congested Clique: no node-level caps; every ordered edge `(u, v)`
/// carries at most `edge_cap` messages of `O(log n)` bits per round —
/// `Θ̃(n²)` network-wide, against the NCC's `Θ̃(n)`. Excess messages on an
/// edge are dropped by the network (counted per destination), and the
/// per-edge load is measured honestly (`max_edge_load` in the stats) —
/// replacing the old `Capacity::unbounded()` approximation that did no
/// per-edge accounting at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CongestedClique {
    /// Messages per ordered edge per round (the `Θ̃(1)` bandwidth constant).
    pub edge_cap: usize,
}

impl CongestedClique {
    pub fn new(edge_cap: usize) -> Self {
        CongestedClique {
            edge_cap: edge_cap.max(1),
        }
    }

    /// The repository-default edge bandwidth: `8·⌈log₂ n⌉` messages per
    /// edge per round — the same `Θ̃(1)` constant the NCC uses per node, so
    /// any NCC-legal round is also CC-legal.
    pub fn default_for(n: usize) -> Self {
        Self::new(Capacity::default_for(n).send)
    }
}

impl NetworkModel for CongestedClique {
    fn name(&self) -> &'static str {
        "congested-clique"
    }

    fn send_cap(&self, _cap: &Capacity) -> usize {
        usize::MAX
    }

    fn recv_policy(&self, _cap: &Capacity) -> RecvPolicy {
        RecvPolicy::EdgeCap {
            edge_cap: self.edge_cap,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// HybridLocal

/// The §1 hybrid setting: nodes own cheap CONGEST-style links along the
/// edges of the *input graph* (each directed edge carries `local_edge_cap`
/// messages per round, outside the node caps) **plus** membership in the
/// global NCC (node-capped as usual). Messages between graph neighbours
/// automatically ride the local edge; everything else pays the global
/// budget.
///
/// The adjacency is stored as its own CSR copy (sorted neighbour slices,
/// binary-search membership) so the model layer stays independent of the
/// graph crate.
#[derive(Debug, Clone)]
pub struct HybridLocal {
    n: usize,
    offsets: Vec<u32>,
    adj: Vec<NodeId>,
    /// Messages per directed local edge per round (CONGEST budget).
    pub local_edge_cap: usize,
}

impl HybridLocal {
    /// Builds the model from an undirected edge list over nodes `0..n`.
    /// Self-loops and duplicates are ignored.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
        local_edge_cap: usize,
    ) -> Self {
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "hybrid edge endpoint out of range"
            );
            if u != v {
                pairs.push((u, v));
                pairs.push((v, u));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0u32; n + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let adj = pairs.into_iter().map(|(_, v)| v).collect();
        HybridLocal {
            n,
            offsets,
            adj,
            local_edge_cap: local_edge_cap.max(1),
        }
    }

    /// Whether `{u, v}` is a local (input-graph) edge.
    #[inline]
    pub fn is_local(&self, u: NodeId, v: NodeId) -> bool {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        self.adj[lo..hi].binary_search(&v).is_ok()
    }

    /// Number of undirected local edges.
    pub fn local_edges(&self) -> usize {
        self.adj.len() / 2
    }

    pub fn n(&self) -> usize {
        self.n
    }
}

impl NetworkModel for HybridLocal {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn recv_policy(&self, cap: &Capacity) -> RecvPolicy {
        RecvPolicy::Hybrid {
            recv: cap.recv,
            local_edge_cap: self.local_edge_cap,
        }
    }

    fn uniform_lanes(&self) -> bool {
        false
    }

    fn lane(&self, src: NodeId, dst: NodeId) -> Lane {
        if self.is_local(src, dst) {
            Lane::Local
        } else {
            Lane::Global
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// ModelSpec — the serializable description

/// Serializable description of a network model: the data a
/// `ScenarioSpec` carries so a JSON file fully names the execution model.
/// Instantiation into a live [`NetworkModel`] happens one layer up (the
/// runner), which owns the input graph (hybrid adjacency) and the node
/// count / seed (k-machine partition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Per-node caps (the paper's model; the default).
    #[default]
    Ncc,
    /// Per-edge bandwidth, no node caps. Scenarios under this model usually
    /// pair it with [`Capacity::unbounded`] so adaptive protocols see the
    /// missing node cap.
    CongestedClique {
        /// Messages per ordered edge per round.
        edge_cap: usize,
    },
    /// NCC execution priced in the k-machine model (Appendix A): random
    /// vertex partition over `k` machines, each inter-machine link carrying
    /// `link_capacity` messages per round; charged rounds appear as
    /// `km_rounds` in the stats.
    KMachine { k: usize, link_capacity: u64 },
    /// CONGEST-style budgets on the input graph's edges plus the global
    /// NCC (§1 hybrid setting).
    HybridLocal {
        /// Messages per directed local edge per round.
        local_edge_cap: usize,
    },
}

impl ModelSpec {
    /// Short lowercase model name, matching the `ncc-cli --model` vocabulary.
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::Ncc => "ncc",
            ModelSpec::CongestedClique { .. } => "congested-clique",
            ModelSpec::KMachine { .. } => "kmachine",
            ModelSpec::HybridLocal { .. } => "hybrid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncc_policy_mirrors_capacity() {
        let cap = Capacity::default_for(256);
        assert_eq!(Ncc.send_cap(&cap), cap.send);
        assert_eq!(
            Ncc.recv_policy(&cap),
            RecvPolicy::NodeCap { recv: cap.recv }
        );
        assert!(Ncc.uniform_lanes());
        assert!(!Ncc.wants_delivered_pairs());
        assert_eq!(Ncc.charge_round(0, &[]), 0);
    }

    #[test]
    fn congested_clique_unbinds_node_caps() {
        let cap = Capacity::default_for(256);
        let cc = CongestedClique::default_for(256);
        assert_eq!(cc.edge_cap, cap.send);
        assert_eq!(cc.send_cap(&cap), usize::MAX);
        assert_eq!(
            cc.recv_policy(&cap),
            RecvPolicy::EdgeCap { edge_cap: cap.send }
        );
    }

    #[test]
    fn hybrid_classifies_lanes_by_adjacency() {
        let h = HybridLocal::from_edges(5, [(0, 1), (1, 2), (2, 2), (1, 0)], 2);
        assert_eq!(h.local_edges(), 2);
        assert!(h.is_local(0, 1));
        assert!(h.is_local(1, 0));
        assert!(!h.is_local(0, 2));
        assert_eq!(h.lane(1, 2), Lane::Local);
        assert_eq!(h.lane(0, 3), Lane::Global);
        assert!(!h.uniform_lanes());
        let cap = Capacity::default_for(5);
        assert_eq!(
            h.recv_policy(&cap),
            RecvPolicy::Hybrid {
                recv: cap.recv,
                local_edge_cap: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hybrid_rejects_out_of_range_edges() {
        HybridLocal::from_edges(3, [(0, 3)], 1);
    }

    #[test]
    fn model_spec_serde_round_trips() {
        for spec in [
            ModelSpec::Ncc,
            ModelSpec::CongestedClique { edge_cap: 48 },
            ModelSpec::KMachine {
                k: 8,
                link_capacity: 2,
            },
            ModelSpec::HybridLocal { local_edge_cap: 4 },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ModelSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "{json}");
        }
        assert_eq!(ModelSpec::default(), ModelSpec::Ncc);
        assert_eq!(
            ModelSpec::KMachine {
                k: 4,
                link_capacity: 1
            }
            .name(),
            "kmachine"
        );
    }
}
