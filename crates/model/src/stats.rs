//! Execution statistics.
//!
//! The paper's results are *round complexity* bounds plus the standing claim
//! (Lemma 4.11) that no node ever sends or receives more than `O(log n)`
//! messages per round. These counters are the measured side of both: the
//! experiment harness prints them next to the theoretical bound for every
//! table and theorem.

use serde::{Deserialize, Serialize};

/// Statistics for a single round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Messages handed to the network this round (after send-cap check).
    pub sent: u64,
    /// Messages delivered to inboxes next round.
    pub delivered: u64,
    /// Messages dropped because a destination exceeded its receive cap.
    /// Disjoint from `truncated`: a dropped message was `sent` first.
    pub dropped: u64,
    /// Messages cut by permissive-mode send-cap truncation. Disjoint from
    /// `dropped`: a truncated message never reached the network and is not
    /// part of `sent`.
    pub truncated: u64,
    /// Destinations whose pre-drop in-degree exceeded the receive cap.
    pub over_cap_dsts: u64,
    /// Total payload bits sent.
    pub bits: u64,
    /// Maximum messages sent by any single node this round.
    pub max_out: u64,
    /// Maximum messages addressed to any single node this round
    /// (before the receive cap is applied).
    pub max_in: u64,
    /// Largest per-ordered-edge load this round. Only measured by models
    /// with pairwise budgets (Congested Clique edges, hybrid local edges);
    /// 0 under plain NCC.
    pub max_edge_load: u64,
    /// Number of nodes that executed their step function this round.
    pub active_nodes: u64,
    /// Send-cap violations observed (permissive mode only; strict mode errors).
    pub send_cap_violations: u64,
    /// Model rounds charged by the active network model's cost accounting
    /// (the k-machine conversion of Appendix A); 0 for models that charge
    /// nothing beyond the engine round itself.
    pub km_rounds: u64,
}

/// Accumulated statistics for a full execution (or a phase of one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Number of communication rounds consumed.
    pub rounds: u64,
    pub sent: u64,
    pub delivered: u64,
    pub dropped: u64,
    /// Send-side permissive truncations; disjoint from `dropped` (see
    /// [`RoundStats::truncated`]), so `lost() == dropped + truncated`.
    pub truncated: u64,
    /// Sum over rounds of destinations that exceeded the receive cap.
    pub over_cap_dsts: u64,
    pub bits: u64,
    /// Max over rounds of the per-round max out-degree.
    pub max_out: u64,
    /// Max over rounds of the per-round max in-degree (pre-drop).
    pub max_in: u64,
    /// Max over rounds of the per-round max per-edge load (pairwise-budget
    /// models only; 0 under plain NCC).
    pub max_edge_load: u64,
    pub send_cap_violations: u64,
    /// Sum over rounds of active node counts (total "node-rounds" of work).
    /// This is the `sum_active` quantity the sparse-activity engine bounds:
    /// a round costs O(active + messages), so `node_rounds` — not
    /// `rounds × n` — is the real step-phase work of an execution.
    pub node_rounds: u64,
    /// Max over rounds of the active node count — how wide the widest
    /// round was. Together with `node_rounds` this shows how sparse an
    /// execution's activity actually is (`node_rounds / rounds` is the
    /// mean, `peak_active` the worst case).
    pub peak_active: u64,
    /// Total model rounds charged by the network model's cost accounting
    /// (k-machine rounds under the `KMachine` model; 0 otherwise).
    pub km_rounds: u64,
}

impl ExecStats {
    /// Folds one round's numbers into the running totals.
    ///
    /// Asserts (in debug builds) the conservation law that keeps `dropped`
    /// and `truncated` disjoint: every message handed to the network is
    /// delivered or dropped — truncated messages were never handed over.
    pub fn absorb_round(&mut self, r: &RoundStats) {
        debug_assert_eq!(
            r.delivered + r.dropped,
            r.sent,
            "sent messages must be exactly delivered + dropped (truncated are not sent)"
        );
        self.rounds += 1;
        self.sent += r.sent;
        self.delivered += r.delivered;
        self.dropped += r.dropped;
        self.truncated += r.truncated;
        self.over_cap_dsts += r.over_cap_dsts;
        self.bits += r.bits;
        self.max_out = self.max_out.max(r.max_out);
        self.max_in = self.max_in.max(r.max_in);
        self.max_edge_load = self.max_edge_load.max(r.max_edge_load);
        self.send_cap_violations += r.send_cap_violations;
        self.node_rounds += r.active_nodes;
        self.peak_active = self.peak_active.max(r.active_nodes);
        self.km_rounds += r.km_rounds;
    }

    /// Merges the totals of another execution (phase) into this one.
    /// Rounds add; maxima take the max.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rounds += other.rounds;
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.truncated += other.truncated;
        self.over_cap_dsts += other.over_cap_dsts;
        self.bits += other.bits;
        self.max_out = self.max_out.max(other.max_out);
        self.max_in = self.max_in.max(other.max_in);
        self.max_edge_load = self.max_edge_load.max(other.max_edge_load);
        self.send_cap_violations += other.send_cap_violations;
        self.node_rounds += other.node_rounds;
        self.peak_active = self.peak_active.max(other.peak_active);
        self.km_rounds += other.km_rounds;
    }

    /// `true` when no message was lost and no cap was violated — the
    /// "w.h.p. clean execution" the paper's analyses assume.
    pub fn clean(&self) -> bool {
        self.dropped == 0 && self.send_cap_violations == 0
    }

    /// Peak per-node per-round load (max of send-side and receive-side),
    /// the quantity Lemma 4.11 bounds by `O(log n)`.
    pub fn peak_load(&self) -> u64 {
        self.max_out.max(self.max_in)
    }

    /// Messages lost for any reason. The two counters are disjoint by
    /// construction — `dropped` messages were sent and hit the receive cap,
    /// `truncated` messages were cut at the sender and never sent — so the
    /// sum never double-counts a message.
    pub fn lost(&self) -> u64 {
        self.dropped + self.truncated
    }
}

/// Resident heap footprint of an engine's long-lived state, by component
/// (see `Engine::resident_bytes`). Capacity-based estimates of what a
/// warm engine holds between executions — a cost report for sizing
/// n = 10⁷ deployments, never part of a deterministic snapshot
/// (`ExecStats`/`RoundStats` stay untouched so records do not drift).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct MemoryFootprint {
    /// Per-node RNG streams (the one unavoidable O(n) column).
    pub node_rngs: usize,
    /// Activity lists: active/next-active/awake id columns + trace buffer.
    pub activity_lists: usize,
    /// Router tables: start/len/counts columns, cursors, sample scratch.
    pub router_tables: usize,
    /// Recycled payload-typed buffers (send buffer, inbox arena,
    /// per-worker shards), summed over payload types seen so far.
    pub payload_bufs: usize,
}

impl MemoryFootprint {
    pub fn total(&self) -> usize {
        self.node_rngs + self.activity_lists + self.router_tables + self.payload_bufs
    }

    /// Average resident bytes per node — the headline scaling number.
    pub fn per_node(&self, n: usize) -> f64 {
        self.total() as f64 / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(sent: u64, max_out: u64, max_in: u64) -> RoundStats {
        RoundStats {
            sent,
            delivered: sent,
            dropped: 0,
            truncated: 0,
            over_cap_dsts: 0,
            bits: sent * 10,
            max_out,
            max_in,
            active_nodes: 4,
            ..RoundStats::default()
        }
    }

    #[test]
    fn km_rounds_accumulate_and_edge_load_maxes() {
        let mut e = ExecStats::default();
        let mut r1 = round(4, 1, 1);
        r1.km_rounds = 3;
        r1.max_edge_load = 2;
        let mut r2 = round(4, 1, 1);
        r2.km_rounds = 5;
        r2.max_edge_load = 7;
        e.absorb_round(&r1);
        e.absorb_round(&r2);
        assert_eq!(e.km_rounds, 8);
        assert_eq!(e.max_edge_load, 7);
        let mut other = ExecStats::default();
        other.absorb_round(&r1);
        e.merge(&other);
        assert_eq!(e.km_rounds, 11);
        assert_eq!(e.max_edge_load, 7);
    }

    #[test]
    fn absorb_accumulates() {
        let mut e = ExecStats::default();
        e.absorb_round(&round(10, 3, 5));
        e.absorb_round(&round(20, 7, 2));
        assert_eq!(e.rounds, 2);
        assert_eq!(e.sent, 30);
        assert_eq!(e.max_out, 7);
        assert_eq!(e.max_in, 5);
        assert_eq!(e.node_rounds, 8);
        assert_eq!(e.peak_active, 4);
        assert!(e.clean());
        assert_eq!(e.peak_load(), 7);
    }

    #[test]
    fn peak_active_maxes_across_rounds_and_merges() {
        let mut a = ExecStats::default();
        let mut r1 = round(1, 1, 1);
        r1.active_nodes = 9;
        let mut r2 = round(1, 1, 1);
        r2.active_nodes = 2;
        a.absorb_round(&r1);
        a.absorb_round(&r2);
        assert_eq!(a.peak_active, 9);
        assert_eq!(a.node_rounds, 11);
        let mut b = ExecStats::default();
        let mut r3 = round(1, 1, 1);
        r3.active_nodes = 30;
        b.absorb_round(&r3);
        a.merge(&b);
        assert_eq!(a.peak_active, 30);
        assert_eq!(a.node_rounds, 41);
    }

    #[test]
    fn merge_adds_rounds_and_maxes() {
        let mut a = ExecStats::default();
        a.absorb_round(&round(1, 1, 9));
        let mut b = ExecStats::default();
        b.absorb_round(&round(2, 8, 1));
        b.absorb_round(&round(2, 2, 1));
        a.merge(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.sent, 5);
        assert_eq!(a.max_out, 8);
        assert_eq!(a.max_in, 9);
    }

    #[test]
    fn dirty_when_drops() {
        let mut e = ExecStats::default();
        let mut r = round(5, 1, 1);
        r.delivered = 4;
        r.dropped = 1;
        r.over_cap_dsts = 1;
        e.absorb_round(&r);
        assert!(!e.clean());
        assert_eq!(e.over_cap_dsts, 1);
    }

    #[test]
    fn lost_is_disjoint_sum_of_dropped_and_truncated() {
        let mut e = ExecStats::default();
        let mut r = round(10, 2, 6);
        r.delivered = 7;
        r.dropped = 3; // receive-cap drops: part of `sent`
        r.truncated = 4; // send-side truncation: never sent
        e.absorb_round(&r);
        assert_eq!(e.sent, 10);
        assert_eq!(e.dropped, 3);
        assert_eq!(e.truncated, 4);
        assert_eq!(e.lost(), 7);
        // conservation: sent splits exactly into delivered + dropped
        assert_eq!(e.delivered + e.dropped, e.sent);
    }

    #[test]
    #[should_panic(expected = "delivered + dropped")]
    #[cfg(debug_assertions)]
    fn absorb_rejects_double_counted_losses() {
        let mut e = ExecStats::default();
        let mut r = round(5, 1, 1);
        // delivered still 5: a message counted both delivered and dropped
        r.dropped = 1;
        e.absorb_round(&r);
    }
}
