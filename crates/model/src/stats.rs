//! Execution statistics.
//!
//! The paper's results are *round complexity* bounds plus the standing claim
//! (Lemma 4.11) that no node ever sends or receives more than `O(log n)`
//! messages per round. These counters are the measured side of both: the
//! experiment harness prints them next to the theoretical bound for every
//! table and theorem.

use serde::{Deserialize, Serialize};

/// Statistics for a single round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Messages handed to the network this round (after send-cap check).
    pub sent: u64,
    /// Messages delivered to inboxes next round.
    pub delivered: u64,
    /// Messages dropped because a destination exceeded its receive cap.
    pub dropped: u64,
    /// Total payload bits sent.
    pub bits: u64,
    /// Maximum messages sent by any single node this round.
    pub max_out: u64,
    /// Maximum messages addressed to any single node this round
    /// (before the receive cap is applied).
    pub max_in: u64,
    /// Number of nodes that executed their step function this round.
    pub active_nodes: u64,
    /// Send-cap violations observed (permissive mode only; strict mode errors).
    pub send_cap_violations: u64,
}

/// Accumulated statistics for a full execution (or a phase of one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Number of communication rounds consumed.
    pub rounds: u64,
    pub sent: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub bits: u64,
    /// Max over rounds of the per-round max out-degree.
    pub max_out: u64,
    /// Max over rounds of the per-round max in-degree (pre-drop).
    pub max_in: u64,
    pub send_cap_violations: u64,
    /// Sum over rounds of active node counts (total "node-rounds" of work).
    pub node_rounds: u64,
}

impl ExecStats {
    /// Folds one round's numbers into the running totals.
    pub fn absorb_round(&mut self, r: &RoundStats) {
        self.rounds += 1;
        self.sent += r.sent;
        self.delivered += r.delivered;
        self.dropped += r.dropped;
        self.bits += r.bits;
        self.max_out = self.max_out.max(r.max_out);
        self.max_in = self.max_in.max(r.max_in);
        self.send_cap_violations += r.send_cap_violations;
        self.node_rounds += r.active_nodes;
    }

    /// Merges the totals of another execution (phase) into this one.
    /// Rounds add; maxima take the max.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rounds += other.rounds;
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.bits += other.bits;
        self.max_out = self.max_out.max(other.max_out);
        self.max_in = self.max_in.max(other.max_in);
        self.send_cap_violations += other.send_cap_violations;
        self.node_rounds += other.node_rounds;
    }

    /// `true` when no message was lost and no cap was violated — the
    /// "w.h.p. clean execution" the paper's analyses assume.
    pub fn clean(&self) -> bool {
        self.dropped == 0 && self.send_cap_violations == 0
    }

    /// Peak per-node per-round load (max of send-side and receive-side),
    /// the quantity Lemma 4.11 bounds by `O(log n)`.
    pub fn peak_load(&self) -> u64 {
        self.max_out.max(self.max_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(sent: u64, max_out: u64, max_in: u64) -> RoundStats {
        RoundStats {
            sent,
            delivered: sent,
            dropped: 0,
            bits: sent * 10,
            max_out,
            max_in,
            active_nodes: 4,
            send_cap_violations: 0,
        }
    }

    #[test]
    fn absorb_accumulates() {
        let mut e = ExecStats::default();
        e.absorb_round(&round(10, 3, 5));
        e.absorb_round(&round(20, 7, 2));
        assert_eq!(e.rounds, 2);
        assert_eq!(e.sent, 30);
        assert_eq!(e.max_out, 7);
        assert_eq!(e.max_in, 5);
        assert_eq!(e.node_rounds, 8);
        assert!(e.clean());
        assert_eq!(e.peak_load(), 7);
    }

    #[test]
    fn merge_adds_rounds_and_maxes() {
        let mut a = ExecStats::default();
        a.absorb_round(&round(1, 1, 9));
        let mut b = ExecStats::default();
        b.absorb_round(&round(2, 8, 1));
        b.absorb_round(&round(2, 2, 1));
        a.merge(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.sent, 5);
        assert_eq!(a.max_out, 8);
        assert_eq!(a.max_in, 9);
    }

    #[test]
    fn dirty_when_drops() {
        let mut e = ExecStats::default();
        let mut r = round(5, 1, 1);
        r.dropped = 1;
        e.absorb_round(&r);
        assert!(!e.clean());
    }
}
