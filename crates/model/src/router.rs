//! Batched message routing: the delivery phase of the round engine.
//!
//! The seed engine grouped messages into `Vec<Vec<Envelope>>` inboxes with
//! per-envelope pushes and re-allocated the grouping state every round. The
//! [`Router`] replaces that with a *batched* formulation — delivery is one
//! counting sort over the round's flat send buffer:
//!
//! 1. **count** — one pass over the sends builds the per-destination
//!    in-degree table (this is also the `max_in` measurement);
//! 2. **prefix** — an exclusive prefix sum turns counts into bucket offsets
//!    into a single flat inbox arena;
//! 3. **scatter** — each envelope is moved (not cloned) into its bucket
//!    slot; within a bucket, arrival order is exactly global send order,
//!    i.e. `(sender, send order)`, preserving the documented ordering
//!    contract;
//! 4. **sample** — the active [`NetworkModel`]'s [`RecvPolicy`] decides
//!    which messages of an over-full bucket survive:
//!    [`RecvPolicy::NodeCap`] keeps a seeded-random subset (partial
//!    Fisher–Yates keyed by `(seed, round, destination)` — identical
//!    choice sequence to the seed engine), [`RecvPolicy::EdgeCap`] keeps
//!    the first `edge_cap` arrivals per sender (Congested-Clique edge
//!    bandwidth), [`RecvPolicy::Hybrid`] budgets local-edge arrivals per
//!    sender and samples the global remainder under the node cap, and
//!    [`RecvPolicy::Unlimited`] delivers everything. Buckets are compacted
//!    in place, keeping survivor arrival order.
//!
//! Every model runs through this same pipeline — pairwise budgets slot into
//! the sample phase as a per-bucket scan with stamped per-sender counters,
//! not a fallback slow path.
//!
//! ## Sparse rounds cost O(sends), not O(n)
//!
//! The router maintains an **occupied-destination list** (ascending ids of
//! the buckets that kept at least one message) and two cross-round
//! invariants: the count table is all zeros between rounds, and a bucket
//! length is non-zero only for occupied destinations. Clearing a round is
//! therefore O(occupied) — an empty round is O(1) — and when a round's
//! sends are far below `n` the **sparse path** counts, prefixes, samples,
//! and re-zeroes only the round's distinct destinations (collected on
//! first touch, then sorted), never scanning the full tables. Consumers
//! ([`Router::occupied`]) get the same list to drive the engine's
//! dirty-set activity scheduling. Results are bit-identical between the
//! sparse and dense paths; [`Router::with_dense_scan`] pins the old dense
//! behavior as a cost baseline.
//!
//! ## Steady-state zero allocation
//!
//! All buffers — the inbox arena, the offset/length/count tables, the
//! sample-phase scratch (Fisher–Yates permutations, per-sender stamp
//! counters, survivor index lists), and the per-thread histograms — are
//! owned by the `Router` and reused across rounds. After the high-water
//! round of an execution, routing performs **no heap allocation at all**;
//! `route` only clears and refills what it owns. (The arena grows to the
//! largest round's send volume and stays there.) The payload-independent
//! tables live in a detachable [`RouterScratch`], so a long-lived owner
//! (the engine) can recycle them across whole executions too.
//!
//! ## Deterministic parallelism
//!
//! With `threads > 1` and a large enough round, every phase runs
//! partitioned: per-thread histograms (count), a sequential combine that
//! also computes per-`(thread, destination)` scatter cursors (prefix), a
//! disjoint-slot parallel scatter, and a parallel per-destination-range
//! sample/compact. Each phase produces bit-identical arena layout and drop
//! choices to the sequential path for every policy — survivor choices
//! depend only on `(seed, round, destination)` and bucket content, never on
//! thread count — so results do not depend on the number of workers. The
//! property tests assert this for 1, 2, 4 and 8 threads.

use rand::Rng;

use crate::network::{Lane, Ncc, NetworkModel, RecvPolicy};
use crate::payload::{Envelope, Payload};
use crate::rng::network_rng;
use crate::NodeId;

/// Minimum sends in a round before the parallel route path is worth the
/// thread-scope and histogram-zeroing overhead. Routing is a memory-bound
/// counting sort (~tens of ns per message sequentially), so the crossover
/// sits far higher than for the compute-bound step phase.
const PAR_MIN_SENDS: usize = 1 << 16;

/// A round is routed through the sparse (touched-destination) path when
/// `sends × SPARSE_FACTOR < n`: below that, collecting and sorting the
/// ≤ `sends` distinct destinations costs far less than the three O(n)
/// table passes the dense path performs. At or above it, the dense
/// counting sort's straight-line scans win.
const SPARSE_FACTOR: usize = 8;

/// What the network did with one round's sends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteReport {
    /// Messages placed into inboxes.
    pub delivered: u64,
    /// Messages dropped by the receive policy (node-cap sampling or
    /// pairwise edge budgets).
    pub dropped: u64,
    /// Largest pre-drop in-degree of any destination.
    pub max_in: u64,
    /// Destinations that lost at least one message this round.
    pub over_cap_dsts: u64,
    /// Largest per-ordered-edge load (only measured by pairwise policies;
    /// 0 under [`RecvPolicy::NodeCap`] / [`RecvPolicy::Unlimited`]).
    pub max_edge_load: u64,
}

/// Per-worker sample-phase scratch: everything one thread needs to apply a
/// receive policy to its destination range. Reused across rounds.
#[derive(Default)]
struct SampleScratch {
    /// Fisher–Yates permutation buffer (node-cap sampling).
    perm: Vec<u32>,
    /// Survivor bucket indices, ascending (pairwise policies).
    keep: Vec<u32>,
    /// Global-lane bucket indices (hybrid policy).
    globals: Vec<u32>,
    /// `(destination, dropped)` pairs produced by this worker, ascending.
    drops: Vec<(NodeId, u32)>,
    /// Stamped per-sender arrival counters (pairwise policies); lazily
    /// sized to `n` the first time a pairwise policy routes.
    edge_stamp: Vec<u64>,
    edge_cnt: Vec<u32>,
    stamp: u64,
}

impl SampleScratch {
    fn ensure_edges(&mut self, n: usize) {
        if self.edge_stamp.len() < n {
            self.edge_stamp.resize(n, 0);
            self.edge_cnt.resize(n, 0);
        }
    }

    #[inline]
    fn begin_bucket(&mut self) {
        self.stamp += 1;
    }

    /// Counts one more arrival from `src` in the current bucket and returns
    /// the running per-sender total (saturating — `u32::MAX` arrivals from
    /// one sender are beyond any real round, but unbounded caps must never
    /// wrap the counter).
    #[inline]
    fn bump(&mut self, src: NodeId) -> u32 {
        let s = src as usize;
        if self.edge_stamp[s] != self.stamp {
            self.edge_stamp[s] = self.stamp;
            self.edge_cnt[s] = 0;
        }
        self.edge_cnt[s] = self.edge_cnt[s].saturating_add(1);
        self.edge_cnt[s]
    }
}

/// Outcome of applying a pairwise receive policy to one bucket.
struct BucketOutcome {
    kept: usize,
    dropped: usize,
    max_edge: u64,
}

/// Every payload-independent routing table a [`Router`] owns: the
/// per-destination offset/length/count tables, the per-thread histogram
/// and sample scratch, the drop list, and the occupied-destination list.
///
/// [`Router<P>`] is generic over the payload (its inbox arena holds
/// `Envelope<P>`), but these tables — the O(n) part of a router's memory —
/// are not. Splitting them out lets a non-generic owner (the `Engine`)
/// keep them alive across `execute` calls of *different* programs:
/// [`Router::with_scratch`] adopts them, [`Router::into_scratch`] hands
/// them back, and steady-state replays (`ncc-serve` resident engines)
/// stop paying an O(n) allocation per execution.
///
/// Between rounds the tables hold two invariants the sparse route path
/// relies on: `counts` is all zeros, and `len[d] != 0` only for
/// `d ∈ occupied`. Every route path restores both before returning.
#[derive(Default)]
pub struct RouterScratch {
    /// Pre-drop bucket offsets into the arena (exclusive prefix of
    /// `counts` over the round's destinations).
    start: Vec<u32>,
    /// Post-drop bucket lengths.
    len: Vec<u32>,
    /// Pre-drop per-destination in-degrees; all zeros between rounds.
    counts: Vec<u32>,
    /// Per-thread histogram / scatter-cursor tables (index 0 doubles as
    /// the sequential path's cursor table).
    cursors: Vec<Vec<u32>>,
    /// Per-thread sample-phase scratch (index 0 doubles as the sequential
    /// path's scratch).
    scratch: Vec<SampleScratch>,
    /// `(destination, dropped)` for every lossy destination this round,
    /// ascending by destination.
    drops: Vec<(NodeId, u32)>,
    /// Destinations with a non-empty inbox after the last routed round,
    /// ascending — the delivery half of the engine's dirty set.
    occupied: Vec<NodeId>,
    /// Sparse-path scratch: the round's distinct destinations.
    touched: Vec<NodeId>,
    /// Radix histogram for the touched-destination sort (257 slots: one
    /// per high-byte bucket plus the classic +1 prefix offset).
    radix_counts: Vec<u32>,
    /// Radix scatter buffer, sized to the touched list being sorted.
    radix_buf: Vec<NodeId>,
}

impl RouterScratch {
    /// Grows the tables to cover `n` destinations and clears any bucket
    /// state left over from a previous owner. Growth-only: adopting a
    /// smaller-`n` router keeps the larger tables (the occupied list
    /// bounds every non-zero `len` entry, so stale tails are harmless).
    fn ensure(&mut self, n: usize) {
        if self.start.len() < n {
            self.start.resize(n, 0);
            self.len.resize(n, 0);
            self.counts.resize(n, 0);
        }
        for c in &mut self.cursors {
            if c.len() < n {
                c.resize(n, 0);
            }
        }
        if self.cursors.is_empty() {
            self.cursors.push(vec![0; n]);
        }
        if self.scratch.is_empty() {
            self.scratch.push(SampleScratch::default());
        }
        // A completed execution ends quiescent (nothing delivered in its
        // final round), but an aborted one may leave buckets filled.
        for &d in &self.occupied {
            self.len[d as usize] = 0;
        }
        self.occupied.clear();
        self.drops.clear();
    }

    /// Bytes of heap the tables currently hold — the payload-independent
    /// part of a resident engine's per-node memory footprint.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let vecs = self.start.capacity() * size_of::<u32>()
            + self.len.capacity() * size_of::<u32>()
            + self.counts.capacity() * size_of::<u32>()
            + self.drops.capacity() * size_of::<(NodeId, u32)>()
            + self.occupied.capacity() * size_of::<NodeId>()
            + self.touched.capacity() * size_of::<NodeId>()
            + self.radix_counts.capacity() * size_of::<u32>()
            + self.radix_buf.capacity() * size_of::<NodeId>();
        let cursors: usize = self
            .cursors
            .iter()
            .map(|c| c.capacity() * size_of::<u32>())
            .sum();
        let samples: usize = self
            .scratch
            .iter()
            .map(|s| {
                s.perm.capacity() * size_of::<u32>()
                    + s.keep.capacity() * size_of::<u32>()
                    + s.globals.capacity() * size_of::<u32>()
                    + s.drops.capacity() * size_of::<(NodeId, u32)>()
                    + s.edge_stamp.capacity() * size_of::<u64>()
                    + s.edge_cnt.capacity() * size_of::<u32>()
            })
            .sum();
        vecs + cursors + samples
    }
}

/// Minimum touched-list length before the radix path pays for itself;
/// below it a plain `sort_unstable` wins on constants.
const RADIX_MIN: usize = 64;

/// Sorts the round's distinct destinations ascending. For long lists this
/// is a two-pass radix bucket — histogram on the high byte of the id
/// range, scatter into `buf`, then an in-place `sort_unstable` per bucket
/// — which turns the full-list comparison sort into 256 cache-resident
/// small sorts. Output is identical to `sort_unstable` (the ids are
/// distinct, so equal-key order cannot matter).
fn sort_touched(touched: &mut [NodeId], n: usize, counts: &mut Vec<u32>, buf: &mut Vec<NodeId>) {
    if touched.len() < RADIX_MIN {
        touched.sort_unstable();
        return;
    }
    // high byte of the largest possible id: bucket b covers ids with
    // `id >> shift == b`, so buckets partition the range in order
    let bits = usize::BITS - (n - 1).leading_zeros();
    let shift = bits.saturating_sub(8);
    counts.clear();
    counts.resize(257, 0);
    for &d in touched.iter() {
        counts[(d >> shift) as usize + 1] += 1;
    }
    for b in 0..256 {
        counts[b + 1] += counts[b];
    }
    buf.clear();
    buf.resize(touched.len(), 0);
    for &d in touched.iter() {
        let b = (d >> shift) as usize;
        buf[counts[b] as usize] = d;
        counts[b] += 1;
    }
    // after the scatter `counts[b]` is bucket b's *end* offset
    let mut lo = 0usize;
    for b in 0..256 {
        let hi = counts[b] as usize;
        buf[lo..hi].sort_unstable();
        lo = hi;
    }
    touched.copy_from_slice(buf);
}

/// Reusable batched router: owns the flat inbox arena and every piece of
/// scratch the delivery phase needs. One `Router` lives for the duration of
/// an [`crate::Engine::execute`] call and is recycled every round.
pub struct Router<P> {
    n: usize,
    seed: u64,
    threads: usize,
    /// Sends-per-round crossover below which routing stays sequential.
    min_par_sends: usize,
    /// Compat mode: route every round through the dense O(n) table scans
    /// of the seed engine, never the sparse touched-destination path.
    dense_scan: bool,
    /// Flat inbox arena; bucket `d` occupies `start[d] .. start[d] + len[d]`.
    arena: Vec<Envelope<P>>,
    /// All payload-independent tables (see [`RouterScratch`]).
    sc: RouterScratch,
}

impl<P: Payload> Router<P> {
    pub fn new(n: usize, seed: u64, threads: usize) -> Self {
        Self::with_scratch(n, seed, threads, RouterScratch::default())
    }

    /// Builds a router around previously used tables, so a long-lived owner
    /// (the engine) pays no O(n) table allocation on repeat executions.
    /// The scratch is grown to `n` and its bucket state cleared; recover it
    /// with [`Router::into_scratch`] when the execution finishes.
    pub fn with_scratch(n: usize, seed: u64, threads: usize, sc: RouterScratch) -> Self {
        Self::with_recycled(n, seed, threads, sc, Vec::new())
    }

    /// [`Router::with_scratch`] plus a recycled inbox arena of the same
    /// payload type, so steady-state replays also skip the O(messages)
    /// arena allocation. The arena is cleared but keeps its capacity.
    pub fn with_recycled(
        n: usize,
        seed: u64,
        threads: usize,
        mut sc: RouterScratch,
        mut arena: Vec<Envelope<P>>,
    ) -> Self {
        sc.ensure(n);
        arena.clear();
        Router {
            n,
            seed,
            threads: threads.max(1),
            min_par_sends: PAR_MIN_SENDS,
            dense_scan: false,
            arena,
            sc,
        }
    }

    /// Releases the payload-independent tables for reuse by a later router
    /// (possibly of a different payload type).
    pub fn into_scratch(self) -> RouterScratch {
        self.sc
    }

    /// Releases both the tables and the typed inbox arena, the full
    /// recycling counterpart of [`Router::with_recycled`].
    pub fn into_recycled(self) -> (RouterScratch, Vec<Envelope<P>>) {
        (self.sc, self.arena)
    }

    /// Overrides the sequential→parallel crossover (default: 2¹⁶ sends per
    /// round). Mainly for tests and benches that need to force the parallel
    /// path on small batches; results are identical either way.
    pub fn with_min_parallel_sends(mut self, min: usize) -> Self {
        self.min_par_sends = min.max(1);
        self
    }

    /// Forces the seed engine's dense O(n) per-round table scans, disabling
    /// the sparse touched-destination path and the O(occupied) clears.
    /// Results are bit-identical either way; this exists as the honest
    /// cost baseline for the sparse-activity benchmarks and property tests.
    pub fn with_dense_scan(mut self, on: bool) -> Self {
        self.dense_scan = on;
        self
    }

    /// The messages delivered to `node` in the last routed round, in
    /// `(sender, send order)` order.
    #[inline]
    pub fn inbox(&self, node: NodeId) -> &[Envelope<P>] {
        let d = node as usize;
        let l = self.sc.len[d] as usize;
        if l == 0 {
            // `start` may be stale after an empty round; never index with it.
            return &[];
        }
        let s = self.sc.start[d] as usize;
        &self.arena[s..s + l]
    }

    /// Whether `node` received at least one message in the last routed round.
    #[inline]
    pub fn has_mail(&self, node: NodeId) -> bool {
        self.sc.len[node as usize] > 0
    }

    /// `(destination, dropped count)` pairs of the last routed round,
    /// ascending by destination.
    #[inline]
    pub fn drops(&self) -> &[(NodeId, u32)] {
        &self.sc.drops
    }

    /// Destinations that received at least one message in the last routed
    /// round, ascending. This is the delivery half of the engine's dirty
    /// set: these buckets hold *all* of the round's mail, so consumers
    /// (next-active construction, tracing, cost accounting) can skip the
    /// other `n - occupied().len()` nodes without looking at them.
    #[inline]
    pub fn occupied(&self) -> &[NodeId] {
        &self.sc.occupied
    }

    /// Routes one round's flat send buffer with NCC semantics: at most
    /// `recv` messages per destination, seeded-random drops. Equivalent to
    /// [`Router::route_model`] with [`RecvPolicy::NodeCap`] and the
    /// default [`Ncc`] model.
    pub fn route(&mut self, sends: &mut Vec<Envelope<P>>, round: u64, recv: usize) -> RouteReport {
        self.route_model(sends, round, RecvPolicy::NodeCap { recv }, &Ncc)
    }

    /// Routes one round's flat send buffer into the inbox arena under the
    /// given receive policy. Drains `sends`; envelopes are moved, never
    /// cloned. Drop choices are keyed by `(seed, round, destination)` and
    /// are independent of thread count. `model` is consulted only by the
    /// [`RecvPolicy::Hybrid`] policy, for per-message lane classification.
    pub fn route_model(
        &mut self,
        sends: &mut Vec<Envelope<P>>,
        round: u64,
        policy: RecvPolicy,
        model: &dyn NetworkModel,
    ) -> RouteReport {
        let total = sends.len();
        // Hard assert: the prefix sums feeding the unsafe scatter are u32,
        // and a wrap there would mean out-of-bounds writes. One comparison
        // per round is free next to the routing work itself.
        assert!(
            total <= u32::MAX as usize,
            "round send volume overflows u32 offsets"
        );
        // Clear the previous round's buckets. The occupied list names every
        // destination with a non-zero length, so this is O(occupied) — an
        // empty round costs O(1), not O(n). Dense-scan compat mode keeps
        // the seed engine's full-table clears as an honest cost baseline.
        if self.dense_scan {
            self.sc.len.fill(0);
            self.sc.counts.fill(0);
        } else {
            for &d in &self.sc.occupied {
                self.sc.len[d as usize] = 0;
            }
        }
        self.sc.occupied.clear();
        self.sc.drops.clear();
        if total == 0 {
            self.arena.clear();
            return RouteReport::default();
        }
        if self.threads > 1 && total >= self.min_par_sends {
            self.route_parallel(sends, round, policy, model)
        } else if !self.dense_scan && total.saturating_mul(SPARSE_FACTOR) < self.n {
            self.route_sparse(sends, round, policy, model)
        } else {
            self.route_dense(sends, round, policy, model)
        }
    }

    /// Sequential dense path: the classic counting sort with O(n) prefix
    /// and sample scans. `counts` is all zeros on entry (router invariant),
    /// so the count pass needs no preparatory fill.
    fn route_dense(
        &mut self,
        sends: &mut Vec<Envelope<P>>,
        round: u64,
        policy: RecvPolicy,
        model: &dyn NetworkModel,
    ) -> RouteReport {
        let n = self.n;
        let total = sends.len();
        let seed = self.seed;
        let Router { arena, sc, .. } = self;
        let RouterScratch {
            start,
            len,
            counts,
            cursors,
            scratch,
            drops,
            occupied,
            ..
        } = sc;

        // count
        for e in sends.iter() {
            counts[e.dst as usize] += 1;
        }

        // prefix
        let cursor = &mut cursors[0];
        let mut run = 0u32;
        for d in 0..n {
            start[d] = run;
            cursor[d] = run;
            run += counts[d];
        }

        // scatter
        scatter_sequential(arena, cursor, sends);

        // sample + compact (policy-dispatched)
        let sc0 = &mut scratch[0];
        if matches!(
            policy,
            RecvPolicy::EdgeCap { .. } | RecvPolicy::Hybrid { .. }
        ) {
            sc0.ensure_edges(n);
        }
        debug_assert_eq!(run as usize, total);
        sample_phase(
            0..n,
            arena,
            start,
            len,
            counts,
            sc0,
            drops,
            occupied,
            seed,
            round,
            policy,
            model,
        )
    }

    /// Sequential sparse path for rounds where sends ≪ n: only the round's
    /// distinct destinations are counted, prefixed, sampled, and re-zeroed,
    /// so the whole route costs O(sends · log sends) with no O(n) scan.
    /// Bucket contents, drop choices, and reports are bit-identical to the
    /// dense path — the sorted touched list visits the same non-empty
    /// destinations in the same ascending order.
    fn route_sparse(
        &mut self,
        sends: &mut Vec<Envelope<P>>,
        round: u64,
        policy: RecvPolicy,
        model: &dyn NetworkModel,
    ) -> RouteReport {
        let n = self.n;
        let seed = self.seed;
        let Router { arena, sc, .. } = self;
        let RouterScratch {
            start,
            len,
            counts,
            cursors,
            scratch,
            drops,
            occupied,
            touched,
            radix_counts,
            radix_buf,
        } = sc;

        // count, recording each destination on first touch (`counts` is all
        // zeros on entry, so first touch ⟺ count still zero)
        touched.clear();
        for e in sends.iter() {
            let d = e.dst as usize;
            if counts[d] == 0 {
                touched.push(e.dst);
            }
            counts[d] += 1;
        }
        // ascending destinations: bucket layout, drops, and the occupied
        // list come out exactly as the dense 0..n scan would produce them
        sort_touched(touched, n, radix_counts, radix_buf);

        // prefix over the touched destinations only
        let cursor = &mut cursors[0];
        let mut run = 0u32;
        for &d in touched.iter() {
            let d = d as usize;
            start[d] = run;
            cursor[d] = run;
            run += counts[d];
        }

        // scatter (every send's destination is in `touched`, so every
        // cursor it reads was initialised by the sparse prefix above)
        scatter_sequential(arena, cursor, sends);

        // sample + compact over the touched destinations only
        let sc0 = &mut scratch[0];
        if matches!(
            policy,
            RecvPolicy::EdgeCap { .. } | RecvPolicy::Hybrid { .. }
        ) {
            sc0.ensure_edges(n);
        }
        sample_phase(
            touched.iter().map(|&d| d as usize),
            arena,
            start,
            len,
            counts,
            sc0,
            drops,
            occupied,
            seed,
            round,
            policy,
            model,
        )
    }

    fn route_parallel(
        &mut self,
        sends: &mut Vec<Envelope<P>>,
        round: u64,
        policy: RecvPolicy,
        model: &dyn NetworkModel,
    ) -> RouteReport {
        let n = self.n;
        let total = sends.len();
        let chunk = total.div_ceil(self.threads);
        let t = total.div_ceil(chunk); // number of non-empty send chunks
        while self.sc.cursors.len() < t {
            self.sc.cursors.push(vec![0; n]);
        }
        while self.sc.scratch.len() < t {
            self.sc.scratch.push(SampleScratch::default());
        }

        // count: per-chunk histograms
        std::thread::scope(|scope| {
            for (hist, part) in self.sc.cursors[..t].iter_mut().zip(sends.chunks(chunk)) {
                scope.spawn(move || {
                    hist.fill(0);
                    for e in part {
                        hist[e.dst as usize] += 1;
                    }
                });
            }
        });

        // prefix: combine histograms into bucket offsets; in the same pass,
        // turn each per-thread histogram entry into that thread's absolute
        // scatter cursor for the destination (exclusive prefix across
        // threads, chunk order = global send order).
        let mut report = RouteReport::default();
        let mut run = 0u32;
        for d in 0..n {
            self.sc.start[d] = run;
            let mut c = 0u32;
            for hist in self.sc.cursors[..t].iter_mut() {
                let h = hist[d];
                hist[d] = run + c;
                c += h;
            }
            self.sc.counts[d] = c;
            report.max_in = report.max_in.max(c as u64);
            run += c;
        }

        // scatter: each thread moves its chunk into disjoint arena slots.
        self.arena.clear();
        self.arena.reserve(total);
        let base = SendPtr(self.arena.as_mut_ptr());
        std::thread::scope(|scope| {
            for (hist, part) in self.sc.cursors[..t].iter_mut().zip(sends.chunks(chunk)) {
                scope.spawn(move || {
                    for e in part {
                        let pos = hist[e.dst as usize];
                        hist[e.dst as usize] = pos + 1;
                        // SAFETY: the prefix pass gives every (thread, dst)
                        // cursor a disjoint slot range, so each arena slot is
                        // written exactly once; `ptr::read` duplicates the
                        // envelope, and ownership is relinquished by the
                        // `sends.set_len(0)` below before any drop can run.
                        unsafe { std::ptr::write(base.get().add(pos as usize), std::ptr::read(e)) };
                    }
                });
            }
        });
        // SAFETY: every element of `sends` was moved into the arena exactly
        // once; truncating without dropping hands ownership to the arena.
        unsafe {
            sends.set_len(0);
            self.arena.set_len(total);
        }

        // sample + compact: destinations are partitioned across threads;
        // buckets are disjoint arena ranges, and every survivor choice
        // depends only on (seed, round, destination) and bucket content.
        let dst_chunk = n.div_ceil(t);
        let seed = self.seed;
        let counts = &self.sc.counts;
        let start = &self.sc.start;
        let arena_base = SendPtr(self.arena.as_mut_ptr());
        let pairwise = matches!(
            policy,
            RecvPolicy::EdgeCap { .. } | RecvPolicy::Hybrid { .. }
        );
        // A round may use fewer destination chunks than `t`; pre-clear all
        // drop buffers so the merge below never picks up a previous round's
        // drops.
        for sc in &mut self.sc.scratch[..t] {
            sc.drops.clear();
            if pairwise {
                sc.ensure_edges(n);
            }
        }
        let len_chunks = self.sc.len.chunks_mut(dst_chunk);
        let partials: Vec<RouteReport> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(t);
            for (ti, (sc, len_chunk)) in self.sc.scratch[..t].iter_mut().zip(len_chunks).enumerate()
            {
                let lo = ti * dst_chunk;
                handles.push(scope.spawn(move || {
                    let mut part = RouteReport::default();
                    for (off, len_slot) in len_chunk.iter_mut().enumerate() {
                        let d = lo + off;
                        let c = counts[d] as usize;
                        match policy {
                            RecvPolicy::NodeCap { recv } => {
                                if c > recv {
                                    let s = start[d] as usize;
                                    // SAFETY: bucket ranges are disjoint
                                    // across destinations and this thread
                                    // owns dsts `lo..lo + len_chunk.len()`
                                    // exclusively.
                                    let bucket = unsafe {
                                        std::slice::from_raw_parts_mut(arena_base.get().add(s), c)
                                    };
                                    sample_survivors(
                                        &mut sc.perm,
                                        c,
                                        recv,
                                        seed,
                                        round,
                                        d as NodeId,
                                    );
                                    compact_bucket(bucket, &sc.perm[..recv]);
                                    *len_slot = recv as u32;
                                    sc.drops.push((d as NodeId, (c - recv) as u32));
                                    part.over_cap_dsts += 1;
                                    part.delivered += recv as u64;
                                    part.dropped += (c - recv) as u64;
                                } else {
                                    *len_slot = c as u32;
                                    part.delivered += c as u64;
                                }
                            }
                            RecvPolicy::Unlimited => {
                                *len_slot = c as u32;
                                part.delivered += c as u64;
                            }
                            RecvPolicy::EdgeCap { .. } | RecvPolicy::Hybrid { .. } => {
                                if c == 0 {
                                    *len_slot = 0;
                                    continue;
                                }
                                let s = start[d] as usize;
                                // SAFETY: as above — disjoint buckets,
                                // exclusive destination ownership.
                                let bucket = unsafe {
                                    std::slice::from_raw_parts_mut(arena_base.get().add(s), c)
                                };
                                let out = pair_budget_bucket(
                                    bucket,
                                    d as NodeId,
                                    policy,
                                    model,
                                    seed,
                                    round,
                                    sc,
                                );
                                *len_slot = out.kept as u32;
                                part.delivered += out.kept as u64;
                                part.max_edge_load = part.max_edge_load.max(out.max_edge);
                                if out.dropped > 0 {
                                    part.dropped += out.dropped as u64;
                                    part.over_cap_dsts += 1;
                                    sc.drops.push((d as NodeId, out.dropped as u32));
                                }
                            }
                        }
                    }
                    part
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("router worker panicked"))
                .collect()
        });
        for part in partials {
            report.delivered += part.delivered;
            report.dropped += part.dropped;
            report.over_cap_dsts += part.over_cap_dsts;
            report.max_edge_load = report.max_edge_load.max(part.max_edge_load);
        }
        for sc in &self.sc.scratch[..t] {
            self.sc.drops.extend_from_slice(&sc.drops);
        }
        // Restore the router invariants (counts all zero) and rebuild the
        // occupied list. One dense pass is fine here: the parallel path
        // only runs for rounds whose send volume dwarfs n-proportional work.
        for d in 0..n {
            self.sc.counts[d] = 0;
            if self.sc.len[d] > 0 {
                self.sc.occupied.push(d as NodeId);
            }
        }
        report
    }
}

/// Moves one round's sends into the arena at the slots named by `cursor`
/// (each destination's cursor advances as its bucket fills). The cursor
/// table must hold an exclusive prefix over the sends' destinations.
fn scatter_sequential<P: Payload>(
    arena: &mut Vec<Envelope<P>>,
    cursor: &mut [u32],
    sends: &mut Vec<Envelope<P>>,
) {
    let total = sends.len();
    arena.clear();
    arena.reserve(total);
    let base = arena.as_mut_ptr();
    for e in sends.drain(..) {
        let pos = cursor[e.dst as usize];
        cursor[e.dst as usize] = pos + 1;
        // SAFETY: `pos` < `total` ≤ reserved capacity, and the exclusive
        // prefix guarantees each slot is written exactly once;
        // `ptr::write` takes ownership of `e` without dropping the slot.
        unsafe { std::ptr::write(base.add(pos as usize), e) };
    }
    // SAFETY: all `total` slots were initialised by the scatter above.
    unsafe { arena.set_len(total) };
}

/// The policy-dispatched sample/compact pass shared by the sequential
/// dense and sparse paths. `dsts` must be ascending and cover every
/// destination with a non-zero count; visited counts are re-zeroed
/// (restoring the router's counts-all-zero invariant) and destinations
/// that keep at least one message are appended to `occupied` — so the
/// occupied list comes out ascending for either caller.
#[allow(clippy::too_many_arguments)]
fn sample_phase<P: Payload>(
    dsts: impl Iterator<Item = usize>,
    arena: &mut [Envelope<P>],
    start: &[u32],
    len: &mut [u32],
    counts: &mut [u32],
    sc: &mut SampleScratch,
    drops: &mut Vec<(NodeId, u32)>,
    occupied: &mut Vec<NodeId>,
    seed: u64,
    round: u64,
    policy: RecvPolicy,
    model: &dyn NetworkModel,
) -> RouteReport {
    let mut report = RouteReport::default();
    match policy {
        RecvPolicy::NodeCap { recv } => {
            for d in dsts {
                let c = counts[d] as usize;
                counts[d] = 0;
                if c == 0 {
                    continue;
                }
                report.max_in = report.max_in.max(c as u64);
                if c > recv {
                    let s = start[d] as usize;
                    sample_survivors(&mut sc.perm, c, recv, seed, round, d as NodeId);
                    compact_bucket(&mut arena[s..s + c], &sc.perm[..recv]);
                    len[d] = recv as u32;
                    drops.push((d as NodeId, (c - recv) as u32));
                    report.over_cap_dsts += 1;
                    report.delivered += recv as u64;
                    report.dropped += (c - recv) as u64;
                    if recv > 0 {
                        occupied.push(d as NodeId);
                    }
                } else {
                    len[d] = c as u32;
                    report.delivered += c as u64;
                    occupied.push(d as NodeId);
                }
            }
        }
        RecvPolicy::Unlimited => {
            for d in dsts {
                let c = counts[d];
                counts[d] = 0;
                if c == 0 {
                    continue;
                }
                report.max_in = report.max_in.max(c as u64);
                len[d] = c;
                report.delivered += c as u64;
                occupied.push(d as NodeId);
            }
        }
        RecvPolicy::EdgeCap { .. } | RecvPolicy::Hybrid { .. } => {
            for d in dsts {
                let c = counts[d] as usize;
                counts[d] = 0;
                if c == 0 {
                    continue;
                }
                report.max_in = report.max_in.max(c as u64);
                let s = start[d] as usize;
                let out = pair_budget_bucket(
                    &mut arena[s..s + c],
                    d as NodeId,
                    policy,
                    model,
                    seed,
                    round,
                    sc,
                );
                len[d] = out.kept as u32;
                report.delivered += out.kept as u64;
                report.max_edge_load = report.max_edge_load.max(out.max_edge);
                if out.kept > 0 {
                    occupied.push(d as NodeId);
                }
                if out.dropped > 0 {
                    report.dropped += out.dropped as u64;
                    report.over_cap_dsts += 1;
                    drops.push((d as NodeId, out.dropped as u32));
                }
            }
        }
    }
    report
}

/// Applies a pairwise receive policy ([`RecvPolicy::EdgeCap`] or
/// [`RecvPolicy::Hybrid`]) to one destination bucket, in place.
///
/// Edge-budgeted arrivals keep the **first** `edge_cap` messages per sender
/// (a deterministic choice — edge bandwidth is a FIFO pipe, not a lottery);
/// hybrid global arrivals are sampled with the same seeded partial
/// Fisher–Yates as the NCC node cap, applied to the global sub-sequence of
/// the bucket. Survivors stay in arrival order.
fn pair_budget_bucket<P>(
    bucket: &mut [Envelope<P>],
    dst: NodeId,
    policy: RecvPolicy,
    model: &dyn NetworkModel,
    seed: u64,
    round: u64,
    sc: &mut SampleScratch,
) -> BucketOutcome {
    let (edge_cap, recv, split_lanes) = match policy {
        RecvPolicy::EdgeCap { edge_cap } => (edge_cap, usize::MAX, false),
        RecvPolicy::Hybrid {
            recv,
            local_edge_cap,
        } => (local_edge_cap, recv, true),
        _ => unreachable!("pair_budget_bucket handles pairwise policies only"),
    };
    sc.keep.clear();
    sc.globals.clear();
    sc.begin_bucket();
    let mut max_edge = 0u64;
    for (i, e) in bucket.iter().enumerate() {
        let local = !split_lanes || model.lane(e.src, dst) == Lane::Local;
        if local {
            let cnt = sc.bump(e.src);
            max_edge = max_edge.max(cnt as u64);
            if (cnt as usize) <= edge_cap {
                sc.keep.push(i as u32);
            }
        } else {
            sc.globals.push(i as u32);
        }
    }
    let g = sc.globals.len();
    if g > recv {
        sample_survivors(&mut sc.perm, g, recv, seed, round, dst);
        for &gi in &sc.perm[..recv] {
            sc.keep.push(sc.globals[gi as usize]);
        }
    } else {
        sc.keep.extend_from_slice(&sc.globals);
    }
    sc.keep.sort_unstable();
    let kept = sc.keep.len();
    if kept < bucket.len() {
        compact_bucket(bucket, &sc.keep);
    }
    BucketOutcome {
        kept,
        dropped: bucket.len() - kept,
        max_edge,
    }
}

/// Selects `recv` survivors out of `c` arrivals with the partial
/// Fisher–Yates of the seed engine (same RNG keying, same call sequence,
/// hence the same survivor set), then sorts them into arrival order so the
/// in-place compaction preserves the ordering contract.
fn sample_survivors(
    perm: &mut Vec<u32>,
    c: usize,
    recv: usize,
    seed: u64,
    round: u64,
    dst: NodeId,
) {
    perm.clear();
    perm.extend(0..c as u32);
    let mut rng = network_rng(seed, round, dst);
    for i in 0..recv {
        let j = rng.gen_range(i..c);
        perm.swap(i, j);
    }
    perm[..recv].sort_unstable();
}

/// Moves the survivors (ascending arrival indices) to the front of the
/// bucket, preserving their relative order. Standard swap compaction: when
/// the `w`-th survivor sits at index `r ≥ w`, positions `< w` already hold
/// earlier survivors and no earlier swap touched index `r`.
fn compact_bucket<P>(bucket: &mut [Envelope<P>], survivors: &[u32]) {
    for (w, &r) in survivors.iter().enumerate() {
        let r = r as usize;
        if w != r {
            bucket.swap(w, r);
        }
    }
}

/// The seed engine's delivery phase, kept verbatim: per-envelope grouping
/// into fresh per-destination `Vec`s with the partial Fisher–Yates drop
/// selection keyed by `(seed, round, destination)`. This is the semantic
/// oracle the [`Router`] must match bit for bit under the default NCC
/// policy — used by the equivalence property tests and as the measured
/// baseline in `bench_router`. Not part of the public API.
#[doc(hidden)]
#[allow(clippy::needless_range_loop)]
pub fn reference_route<P: Payload>(
    sends: &[Envelope<P>],
    n: usize,
    recv: usize,
    seed: u64,
    round: u64,
) -> (Vec<Vec<Envelope<P>>>, u64) {
    let mut counts: Vec<u32> = vec![0; n];
    for e in sends {
        counts[e.dst as usize] += 1;
    }
    let mut keep_flags: Vec<Vec<bool>> = vec![Vec::new(); n];
    for dst in 0..n {
        let c = counts[dst] as usize;
        if c > recv {
            let mut flags = vec![false; c];
            let mut idx: Vec<u32> = (0..c as u32).collect();
            let mut rng = network_rng(seed, round, dst as NodeId);
            for i in 0..recv {
                let j = rng.gen_range(i..c);
                idx.swap(i, j);
            }
            for &i in idx.iter().take(recv) {
                flags[i as usize] = true;
            }
            keep_flags[dst] = flags;
        }
    }
    let mut inboxes: Vec<Vec<Envelope<P>>> = (0..n).map(|_| Vec::new()).collect();
    let mut seen: Vec<u32> = vec![0; n];
    let mut dropped = 0u64;
    for e in sends {
        let dst = e.dst as usize;
        let k = seen[dst] as usize;
        seen[dst] += 1;
        if keep_flags[dst].is_empty() || keep_flags[dst][k] {
            inboxes[dst].push(e.clone());
        } else {
            dropped += 1;
        }
    }
    (inboxes, dropped)
}

/// Raw-pointer wrapper so disjoint per-slot mutable access can cross the
/// thread-scope boundary. See the safety comments at the use sites.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so that edition-2021 closures
    /// capture the whole `SendPtr` — which is `Send` — instead of performing
    /// a disjoint capture of the raw-pointer field, which is not.
    #[inline]
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{CongestedClique, HybridLocal};

    fn env(src: NodeId, dst: NodeId, payload: u64) -> Envelope<u64> {
        Envelope::new(src, dst, payload)
    }

    #[test]
    fn routes_to_buckets_in_send_order() {
        let mut r: Router<u64> = Router::new(4, 7, 1);
        let mut sends = vec![env(0, 2, 10), env(1, 0, 11), env(2, 2, 12), env(3, 0, 13)];
        let rep = r.route(&mut sends, 0, 100);
        assert!(sends.is_empty());
        assert_eq!(rep.delivered, 4);
        assert_eq!(rep.dropped, 0);
        assert_eq!(rep.max_in, 2);
        assert_eq!(r.inbox(0), &[env(1, 0, 11), env(3, 0, 13)]);
        assert_eq!(r.inbox(1), &[]);
        assert_eq!(r.inbox(2), &[env(0, 2, 10), env(2, 2, 12)]);
        assert!(r.has_mail(0) && !r.has_mail(1));
    }

    #[test]
    fn receive_cap_drops_and_preserves_survivor_order() {
        let n = 8;
        let mut r: Router<u64> = Router::new(n, 99, 1);
        let mut sends: Vec<_> = (0..32).map(|i| env(i % n as u32, 5, i as u64)).collect();
        let rep = r.route(&mut sends, 3, 4);
        assert_eq!(rep.delivered, 4);
        assert_eq!(rep.dropped, 28);
        assert_eq!(rep.over_cap_dsts, 1);
        assert_eq!(r.drops(), &[(5, 28)]);
        let delivered: Vec<u64> = r.inbox(5).iter().map(|e| e.payload).collect();
        // survivors keep arrival order
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        assert_eq!(delivered, sorted);
        assert_eq!(delivered.len(), 4);
    }

    #[test]
    fn sequential_and_parallel_routes_agree() {
        let n = 64;
        let mk_sends = || -> Vec<Envelope<u64>> {
            // deterministic skewed pattern: hot destinations 0..4
            (0..4500u32)
                .map(|i| {
                    env(
                        i % n as u32,
                        if i % 3 == 0 { i % 4 } else { i % n as u32 },
                        i as u64,
                    )
                })
                .collect()
        };
        let run = |threads: usize| {
            let mut r: Router<u64> = Router::new(n, 42, threads).with_min_parallel_sends(1);
            let mut sends = mk_sends();
            let rep = r.route(&mut sends, 9, 16);
            let inboxes: Vec<Vec<Envelope<u64>>> =
                (0..n as u32).map(|d| r.inbox(d).to_vec()).collect();
            (rep, r.drops().to_vec(), inboxes)
        };
        let a = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(a, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn empty_round_clears_state() {
        let mut r: Router<u64> = Router::new(4, 7, 1);
        let mut sends = vec![env(0, 1, 5)];
        r.route(&mut sends, 0, 8);
        assert!(r.has_mail(1));
        let rep = r.route(&mut Vec::new(), 1, 8);
        assert_eq!(rep, RouteReport::default());
        assert!(!r.has_mail(1));
        assert_eq!(r.inbox(1), &[]);
    }

    #[test]
    fn edge_cap_keeps_first_per_sender_and_measures_load() {
        let n = 4;
        let cc = CongestedClique::new(2);
        let mut r: Router<u64> = Router::new(n, 7, 1);
        // node 0 sends 4 to dst 1; node 2 sends 1 to dst 1; node 3 sends 3 to dst 3
        let mut sends = vec![
            env(0, 1, 10),
            env(0, 1, 11),
            env(2, 1, 20),
            env(0, 1, 12),
            env(0, 1, 13),
            env(3, 3, 30),
            env(3, 3, 31),
            env(3, 3, 32),
        ];
        let rep = r.route_model(
            &mut sends,
            0,
            cc.recv_policy(&crate::Capacity::unbounded()),
            &cc,
        );
        // dst 1: first two of node 0 + node 2's single message survive
        assert_eq!(r.inbox(1), &[env(0, 1, 10), env(0, 1, 11), env(2, 1, 20)]);
        // dst 3: first two of node 3
        assert_eq!(r.inbox(3), &[env(3, 3, 30), env(3, 3, 31)]);
        assert_eq!(rep.delivered, 5);
        assert_eq!(rep.dropped, 3);
        assert_eq!(rep.over_cap_dsts, 2);
        assert_eq!(rep.max_edge_load, 4);
        assert_eq!(rep.delivered + rep.dropped, 8);
        assert_eq!(r.drops(), &[(1, 2), (3, 1)]);
    }

    #[test]
    fn hybrid_budgets_local_edges_and_samples_globals() {
        let n = 6;
        // local edges: 0-1, 1-2
        let h = HybridLocal::from_edges(n, [(0, 1), (1, 2)], 1);
        let recv = 2;
        let policy = RecvPolicy::Hybrid {
            recv,
            local_edge_cap: 1,
        };
        let mut r: Router<u64> = Router::new(n, 5, 1);
        // dst 1 gets: 2 local from 0 (one over the edge budget), 1 local
        // from 2, and 4 globals from 3/4/5/3 (two over the recv cap).
        let mut sends = vec![
            env(0, 1, 1),
            env(0, 1, 2),
            env(2, 1, 3),
            env(3, 1, 4),
            env(4, 1, 5),
            env(5, 1, 6),
            env(3, 1, 7),
        ];
        let rep = r.route_model(&mut sends, 0, policy, &h);
        // locals: first from 0, the one from 2; globals: exactly `recv`
        let inbox = r.inbox(1);
        assert_eq!(inbox.len(), 2 + recv);
        let locals: Vec<u64> = inbox
            .iter()
            .filter(|e| h.is_local(e.src, 1))
            .map(|e| e.payload)
            .collect();
        assert_eq!(locals, vec![1, 3]);
        // arrival order is preserved overall
        let payloads: Vec<u64> = inbox.iter().map(|e| e.payload).collect();
        let mut sorted = payloads.clone();
        sorted.sort_unstable();
        assert_eq!(payloads, sorted);
        assert_eq!(rep.delivered, 4);
        assert_eq!(rep.dropped, 3);
        assert_eq!(rep.max_edge_load, 2);
        assert_eq!(rep.delivered + rep.dropped, 7);
    }

    #[test]
    fn pairwise_policies_agree_across_thread_counts() {
        let n = 48;
        let h = HybridLocal::from_edges(n, (0..n as u32 - 1).map(|u| (u, u + 1)), 1);
        let mk_sends = || -> Vec<Envelope<u64>> {
            (0..4000u32)
                .map(|i| {
                    let src = i % n as u32;
                    let dst = if i % 5 == 0 {
                        (src + 1) % n as u32 // often a local edge
                    } else {
                        (i * 7) % n as u32
                    };
                    env(src, dst, i as u64)
                })
                .collect()
        };
        for policy in [
            RecvPolicy::EdgeCap { edge_cap: 3 },
            RecvPolicy::Hybrid {
                recv: 6,
                local_edge_cap: 1,
            },
            RecvPolicy::Unlimited,
        ] {
            let run = |threads: usize| {
                let mut r: Router<u64> = Router::new(n, 42, threads).with_min_parallel_sends(1);
                let mut sends = mk_sends();
                let rep = r.route_model(&mut sends, 9, policy, &h);
                let inboxes: Vec<Vec<Envelope<u64>>> =
                    (0..n as u32).map(|d| r.inbox(d).to_vec()).collect();
                (rep, r.drops().to_vec(), inboxes)
            };
            let a = run(1);
            for threads in [2, 4, 8] {
                assert_eq!(a, run(threads), "policy={policy:?} threads={threads}");
            }
        }
    }

    #[test]
    fn sparse_and_dense_paths_are_bit_identical() {
        // n ≫ sends forces the sparse path; with_dense_scan pins the dense
        // one. Everything observable must match, including occupied().
        let n = 4096;
        let mk_sends = || -> Vec<Envelope<u64>> {
            // a handful of hot destinations, some over the recv cap
            (0..96u32)
                .map(|i| env(i % 7, [5, 9, 9, 2000, 9, 4095][i as usize % 6], i as u64))
                .collect()
        };
        let run = |dense: bool| {
            let mut r: Router<u64> = Router::new(n, 42, 1).with_dense_scan(dense);
            let mut out = Vec::new();
            for round in 0..4 {
                let mut sends = mk_sends();
                let rep = r.route(&mut sends, round, 8);
                let inboxes: Vec<Vec<Envelope<u64>>> =
                    r.occupied().iter().map(|&d| r.inbox(d).to_vec()).collect();
                out.push((rep, r.drops().to_vec(), r.occupied().to_vec(), inboxes));
            }
            out
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn radix_touched_sort_matches_sort_unstable() {
        // adversarial distinct-id distributions at and around the radix
        // gate: clustered in one bucket, spread across all buckets,
        // reversed, and LCG-scrambled.
        let n = 1 << 20;
        let cases: Vec<Vec<NodeId>> = vec![
            (0..RADIX_MIN as u32).rev().collect(), // just at the gate
            (0..300u32).rev().collect(),           // single low bucket
            (0..300u32).map(|i| i * 4096 % (n as u32)).collect(), // every bucket
            (0..4000u32)
                .map(|i| (i.wrapping_mul(2654435761)) % (n as u32))
                .collect(), // scrambled
            (0..90u32).map(|i| (n as u32) - 1 - i).collect(), // top bucket only
        ];
        for mut ids in cases {
            ids.sort_unstable();
            ids.dedup();
            // un-sort deterministically so the sort has work to do
            ids.reverse();
            let mut expect = ids.clone();
            expect.sort_unstable();
            let mut counts = Vec::new();
            let mut buf = Vec::new();
            sort_touched(&mut ids, n, &mut counts, &mut buf);
            assert_eq!(ids, expect);
        }
    }

    #[test]
    fn sparse_path_with_radix_gate_crossed_matches_dense() {
        // enough distinct destinations to push the touched list over
        // RADIX_MIN, so the sparse path exercises the radix sort and must
        // still match the dense 0..n scan byte for byte.
        let n = 1 << 14;
        let mk_sends = || -> Vec<Envelope<u64>> {
            (0..700u32)
                .map(|i| env(i % 11, (i.wrapping_mul(2654435761)) % n as u32, i as u64))
                .collect()
        };
        let run = |dense: bool| {
            let mut r: Router<u64> = Router::new(n, 42, 1).with_dense_scan(dense);
            let mut out = Vec::new();
            for round in 0..3 {
                let mut sends = mk_sends();
                let rep = r.route(&mut sends, round, 4);
                let inboxes: Vec<Vec<Envelope<u64>>> =
                    r.occupied().iter().map(|&d| r.inbox(d).to_vec()).collect();
                out.push((rep, r.drops().to_vec(), r.occupied().to_vec(), inboxes));
            }
            out
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn recycled_arena_reused_across_routers() {
        let n = 256;
        let route_once = |r: &mut Router<u64>, round: u64| {
            let mut sends: Vec<_> = (0..96u32).map(|i| env(i % 5, i % 96, i as u64)).collect();
            r.route(&mut sends, round, 8);
            (r.occupied().to_vec(), r.inbox(7).to_vec())
        };
        let mut fresh: Router<u64> = Router::new(n, 11, 1);
        let expect = route_once(&mut fresh, 0);

        let mut r: Router<u64> = Router::new(n, 11, 1);
        let _ = route_once(&mut r, 0);
        let (sc, arena) = r.into_recycled();
        let cap_before = arena.capacity();
        assert!(cap_before >= 96, "arena should retain capacity");
        let mut r2: Router<u64> = Router::with_recycled(n, 11, 1, sc, arena);
        let got = route_once(&mut r2, 0);
        assert_eq!(got, expect, "recycled router must be bit-identical");
        let (_, arena) = r2.into_recycled();
        assert_eq!(
            arena.capacity(),
            cap_before,
            "no reallocation in steady state"
        );
    }

    #[test]
    fn occupied_lists_nonempty_buckets_ascending() {
        let n = 64;
        for threads in [1, 4] {
            let mut r: Router<u64> = Router::new(n, 7, threads).with_min_parallel_sends(1);
            let mut sends = vec![env(0, 50, 1), env(1, 3, 2), env(2, 50, 3), env(3, 17, 4)];
            r.route(&mut sends, 0, 8);
            assert_eq!(r.occupied(), &[3, 17, 50], "threads={threads}");
            for d in 0..n as u32 {
                assert_eq!(r.has_mail(d), r.occupied().contains(&d));
            }
            // empty round clears the occupied list
            r.route(&mut Vec::new(), 1, 8);
            assert!(r.occupied().is_empty());
            assert!(!r.has_mail(50));
        }
    }

    #[test]
    fn occupied_excludes_fully_dropped_buckets() {
        // recv = 0 drops every arrival: the bucket ends empty and must not
        // appear in occupied (has_mail is false — the node stays asleep).
        let mut r: Router<u64> = Router::new(1024, 3, 1);
        let mut sends = vec![env(0, 5, 1), env(1, 5, 2)];
        let rep = r.route(&mut sends, 0, 0);
        assert_eq!(rep.dropped, 2);
        assert!(r.occupied().is_empty());
        assert!(!r.has_mail(5));
    }

    #[test]
    fn scratch_survives_across_routers_and_payload_types() {
        let mut r: Router<u64> = Router::new(8, 1, 1);
        let mut sends = vec![env(0, 1, 5), env(2, 1, 6)];
        r.route(&mut sends, 0, 8);
        assert_eq!(r.inbox(1).len(), 2);
        let sc = r.into_scratch();
        // adopt the tables for a different payload type; previous bucket
        // state must not leak through
        let mut r2: Router<(u32, u32)> = Router::with_scratch(8, 1, 1, sc);
        assert!(!r2.has_mail(1));
        assert!(r2.occupied().is_empty());
        let mut sends2 = vec![Envelope::new(3, 2, (7u32, 9u32))];
        r2.route(&mut sends2, 1, 8);
        assert_eq!(r2.inbox(2), &[Envelope::new(3, 2, (7u32, 9u32))]);
        assert_eq!(r2.occupied(), &[2]);
        // and a smaller-n adoption still clears correctly
        let sc = r2.into_scratch();
        let r3: Router<u64> = Router::with_scratch(4, 1, 1, sc);
        assert!(!r3.has_mail(2));
        assert!(r3.occupied().is_empty());
    }

    #[test]
    fn unlimited_policy_never_drops_even_at_usize_max_counts() {
        let n = 8;
        let mut r: Router<u64> = Router::new(n, 1, 1);
        let mut sends: Vec<_> = (0..512).map(|i| env(i % 8, 0, i as u64)).collect();
        let rep = r.route_model(&mut sends, 0, RecvPolicy::Unlimited, &Ncc);
        assert_eq!(rep.delivered, 512);
        assert_eq!(rep.dropped, 0);
        assert_eq!(r.inbox(0).len(), 512);
    }
}
