//! Message payloads and envelopes.
//!
//! The model restricts messages to `O(log n)` bits. Rather than forcing every
//! protocol through a byte codec, payloads are ordinary Rust values that
//! *declare* their wire width via [`Payload::bit_size`]; the engine asserts
//! the declared width against the capacity budget. The helper functions in
//! this module compute the widths of the quantities that appear throughout
//! the paper (node identifiers: `log n` bits; edge identifiers: `2 log n`
//! bits; weights: `log W = O(log n)` bits; sketch masks: `Θ(log n)` bits).

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// A value that can travel through the network.
///
/// `bit_size` is the number of bits the value would occupy on the wire; the
/// engine checks it against [`crate::Capacity::payload_bits`]. Implementors
/// should count the *information content* (e.g. a node id costs `⌈log₂ n⌉`
/// bits) rather than Rust's in-memory size.
pub trait Payload: Clone + Send + Sync + 'static {
    fn bit_size(&self) -> u32;
}

/// Machine words report their *minimal* width: protocol values are
/// semantically `O(log n)`-bit quantities (identifiers, weights, packed
/// sketch masks) stored in `u64`s, and the minimal encoding is what would
/// travel on the wire. The engine's budget check thus verifies that values
/// actually stay `O(log n)`-sized.
impl Payload for u64 {
    fn bit_size(&self) -> u32 {
        min_bits(*self)
    }
}

/// Same minimal-width accounting as `u64` (the value is what travels, not
/// the storage width).
impl Payload for u32 {
    fn bit_size(&self) -> u32 {
        min_bits(*self as u64)
    }
}

/// A flag is one bit on the wire.
impl Payload for bool {
    fn bit_size(&self) -> u32 {
        1
    }
}

impl Payload for () {
    fn bit_size(&self) -> u32 {
        0
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn bit_size(&self) -> u32 {
        self.0.bit_size() + self.1.bit_size()
    }
}

/// An optional value costs a presence bit plus the value when present —
/// the honest encoding of protocol fields like "my proposal, if any",
/// which message enums otherwise pack into sentinel `u64`s.
impl<P: Payload> Payload for Option<P> {
    fn bit_size(&self) -> u32 {
        1 + self.as_ref().map_or(0, Payload::bit_size)
    }
}

/// Fixed-size arrays sum their element widths (no length header: the
/// length is static protocol knowledge, exactly like a tuple's arity).
impl<P: Payload, const N: usize> Payload for [P; N] {
    fn bit_size(&self) -> u32 {
        self.iter().map(Payload::bit_size).sum()
    }
}

/// A routed message: source, destination, payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<P> {
    pub src: NodeId,
    pub dst: NodeId,
    pub payload: P,
}

impl<P: Payload> Envelope<P> {
    pub fn new(src: NodeId, dst: NodeId, payload: P) -> Self {
        Envelope { src, dst, payload }
    }

    /// Wire width of the whole message: payload plus the destination header
    /// (`⌈log₂ n⌉` bits — the source is implicit on a point-to-point link
    /// but the paper's message format includes identifiers in the payload
    /// where needed, so we charge only the payload plus routing header).
    pub fn bit_size(&self, logn: u32) -> u32 {
        self.payload.bit_size() + logn
    }
}

/// Minimal binary width of a value — the honest wire size of a quantity
/// that is semantically `O(log n)` bits but stored in a machine word.
#[inline]
pub fn min_bits(x: u64) -> u32 {
    (64 - x.leading_zeros()).max(1)
}

/// Bit width of a node identifier in an `n`-node network.
#[inline]
pub fn id_bits(n: usize) -> u32 {
    crate::ilog2_ceil(n).max(1)
}

/// Bit width of a directed edge identifier `id(u) ∘ id(v)` (§2.2).
#[inline]
pub fn edge_id_bits(n: usize) -> u32 {
    2 * id_bits(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_payload_adds_sizes() {
        let p = (3u64, 4u64);
        assert_eq!(p.bit_size(), 2 + 3);
        assert_eq!(().bit_size(), 0);
    }

    #[test]
    fn u64_payload_minimal_width() {
        assert_eq!(0u64.bit_size(), 1);
        assert_eq!(1u64.bit_size(), 1);
        assert_eq!(255u64.bit_size(), 8);
        assert_eq!(u64::MAX.bit_size(), 64);
    }

    #[test]
    fn envelope_accounts_header() {
        let e = Envelope::new(0, 1, 7u64);
        assert_eq!(e.bit_size(10), 3 + 10);
    }

    #[test]
    fn u32_and_bool_widths() {
        assert_eq!(0u32.bit_size(), 1);
        assert_eq!(255u32.bit_size(), 8);
        assert_eq!(u32::MAX.bit_size(), 32);
        assert_eq!(true.bit_size(), 1);
        assert_eq!(false.bit_size(), 1);
    }

    #[test]
    fn option_charges_presence_bit() {
        assert_eq!(Option::<u64>::None.bit_size(), 1);
        assert_eq!(Some(255u64).bit_size(), 1 + 8);
        // nesting stays honest: Option<Option<u64>>
        assert_eq!(Some(Some(255u64)).bit_size(), 1 + 1 + 8);
        assert_eq!(Some(Option::<u64>::None).bit_size(), 2);
    }

    #[test]
    fn array_sums_elements_without_header() {
        assert_eq!([0u64; 0].bit_size(), 0);
        assert_eq!([1u64, 255, 3].bit_size(), 1 + 8 + 2);
        assert_eq!([true; 7].bit_size(), 7);
        // composes with tuples and options
        assert_eq!(([3u64, 4], Some(true)).bit_size(), (2 + 3) + 2);
    }

    #[test]
    fn id_bit_widths() {
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(edge_id_bits(1024), 20);
        // n = 1 still needs one bit to name a node
        assert_eq!(id_bits(1), 1);
    }
}
