//! Lane-multiplexed concurrent protocol composition.
//!
//! The paper's round bounds come from running *many* primitive instances
//! concurrently under the shared per-node `O(log n)` budget — §2's
//! Aggregation Algorithm explicitly runs "O(log n) instances in parallel",
//! and Theorems 2.3–2.6 charge one shared capacity budget for all of them.
//! A [`Mux`] makes that composition executable: it is itself a
//! [`NodeProgram`] whose payload is a [`Tagged`] envelope (lane id + inner
//! payload), and it drives any number of *lanes* — independent sub-programs
//! with their own per-node state — inside one engine execution, so the
//! lanes **share rounds** instead of queuing behind each other.
//!
//! ## Capacity-sharing invariant
//!
//! All lanes draw from one per-node send/receive budget, exactly as if they
//! were a single hand-written program: the mux concatenates the lanes'
//! sends **lane-round-robin** (first send of every lane, then the second of
//! every lane, …), so under permissive truncation no lane can starve the
//! others, and the engine's receive-cap drop sampling sees one combined
//! inbox per node — the paper's "the union of the instances still obeys the
//! node capacity" argument (§2.2), made checkable. The lane id travels in
//! the payload and is charged honestly: `⌈log₂ k⌉` bits for `k` lanes,
//! zero bits for a single lane, so a one-lane mux is **bit-identical** to
//! running the inner program directly (same sends, same bits, same drops,
//! same rounds).
//!
//! ## Per-lane quiescence
//!
//! Each lane keeps its own awake flag and only steps when it received a
//! message of its own lane or asked to stay awake — precisely the engine's
//! node-activity rule, applied per lane. A lane that quiesces early simply
//! stops being stepped (its state frozen) while other lanes keep running;
//! the execution ends when every lane of every node is quiet, which is the
//! synchronisation point the paper's phase barriers provide.
//!
//! ## Determinism
//!
//! Lanes are stepped in lane order within a node, the interleave is
//! positional, and lane randomness comes either from the node's engine
//! stream (single-lane adapters) or from a dedicated stream keyed by
//! `(lane seed, node)` ([`MuxBuilder::lane_seeded`]) — so a lane's behavior
//! is independent of what it is composed with, and executions are
//! bit-identical across 1/2/4/8 worker threads like every other program.

use std::any::Any;

use rand::rngs::SmallRng;

use crate::payload::{Envelope, Payload};
use crate::program::{Ctx, NodeProgram};
use crate::rng::node_rng;
use crate::NodeId;

// ---------------------------------------------------------------------------
// Type-erased payloads
// ---------------------------------------------------------------------------

/// Object-safe view of a [`Payload`] value, so lanes with different payload
/// types can share one wire type.
trait ErasedPayload: Send + Sync {
    fn bits(&self) -> u32;
    fn as_any(&self) -> &dyn Any;
}

impl<P: Payload> ErasedPayload for P {
    fn bits(&self) -> u32 {
        self.bit_size()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A type-erased payload: any [`Payload`] value behind a cheap-to-clone
/// handle, reporting the inner value's honest `bit_size`.
#[derive(Clone)]
pub struct DynPayload(std::sync::Arc<dyn ErasedPayload>);

impl DynPayload {
    pub fn new<P: Payload>(inner: P) -> Self {
        DynPayload(std::sync::Arc::new(inner))
    }

    /// The inner value, if it has type `P`.
    pub fn downcast_ref<P: Payload>(&self) -> Option<&P> {
        self.0.as_any().downcast_ref::<P>()
    }
}

impl std::fmt::Debug for DynPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DynPayload({} bits)", self.0.bits())
    }
}

impl Payload for DynPayload {
    fn bit_size(&self) -> u32 {
        self.0.bits()
    }
}

/// A lane-tagged payload: the wire format of a [`Mux`] execution.
///
/// `lane_bits` is the header width the active composition needs to name a
/// lane (`⌈log₂ k⌉` for `k` lanes — zero for a single lane, so one-lane
/// executions charge exactly the inner payload's bits).
#[derive(Debug, Clone)]
pub struct Tagged<P> {
    pub lane: u32,
    pub lane_bits: u8,
    pub inner: P,
}

impl<P: Payload> Payload for Tagged<P> {
    fn bit_size(&self) -> u32 {
        self.lane_bits as u32 + self.inner.bit_size()
    }
}

// ---------------------------------------------------------------------------
// Lanes
// ---------------------------------------------------------------------------

/// Identifier of a lane within one [`Mux`] (index into the lane table).
pub type LaneId = usize;

/// Per-node, per-lane slot: the lane's state plus its activity bookkeeping.
pub struct LaneSlot {
    state: Box<dyn Any + Send>,
    /// Dedicated RNG stream (`lane_seeded`), or `None` to borrow the node's
    /// engine stream (the transparent single-lane mode).
    rng: Option<SmallRng>,
    /// The lane asked to run next round even without mail.
    awake: bool,
    /// Rounds in which this lane actually stepped (init included).
    pub active_rounds: u64,
    /// Messages this lane sent.
    pub sent: u64,
}

/// Per-node state of a [`Mux`]: one [`LaneSlot`] per lane.
pub struct MuxState {
    lanes: Vec<LaneSlot>,
}

/// Summed per-lane accounting over all nodes — the "who used the shared
/// rounds" breakdown the runner echoes into `RunRecord.metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Total node-rounds in which the lane stepped.
    pub node_rounds: u64,
    /// Total messages the lane sent.
    pub sent: u64,
}

/// Object-safe driver interface for one lane's inner program.
trait ErasedLane<'a>: Sync {
    #[allow(clippy::too_many_arguments)] // internal: mirrors the Ctx fields
    fn step(
        &self,
        slot: &mut LaneSlot,
        inbox: &[Envelope<DynPayload>],
        is_init: bool,
        id: NodeId,
        n: usize,
        round: u64,
        engine_rng: &mut SmallRng,
        out: &mut Vec<(NodeId, DynPayload)>,
    );
    /// Boxes `states` back out (used by [`take_lane_states`]).
    fn type_name(&self) -> &'static str;
}

struct LaneEntry<Prog> {
    prog: Prog,
}

impl<'a, Prog> ErasedLane<'a> for LaneEntry<Prog>
where
    Prog: NodeProgram + 'a,
    Prog::State: 'static,
{
    fn step(
        &self,
        slot: &mut LaneSlot,
        inbox: &[Envelope<DynPayload>],
        is_init: bool,
        id: NodeId,
        n: usize,
        round: u64,
        engine_rng: &mut SmallRng,
        out: &mut Vec<(NodeId, DynPayload)>,
    ) {
        let state = slot
            .state
            .downcast_mut::<Prog::State>()
            .expect("lane state type mismatch");
        // Rebuild the typed inbox for the inner program.
        let typed: Vec<Envelope<Prog::Payload>> = inbox
            .iter()
            .map(|e| {
                Envelope::new(
                    e.src,
                    e.dst,
                    e.payload
                        .downcast_ref::<Prog::Payload>()
                        .expect("lane payload type mismatch")
                        .clone(),
                )
            })
            .collect();
        let mut typed_out: Vec<(NodeId, Prog::Payload)> = Vec::new();
        let mut awake = false;
        {
            let rng = match slot.rng.as_mut() {
                Some(r) => r,
                None => engine_rng,
            };
            let mut ctx = Ctx {
                id,
                n,
                round,
                rng,
                out: &mut typed_out,
                awake: &mut awake,
            };
            if is_init {
                self.prog.init(state, &mut ctx);
            } else {
                self.prog.round(state, &typed, &mut ctx);
            }
        }
        slot.awake = awake;
        slot.active_rounds += 1;
        slot.sent += typed_out.len() as u64;
        out.extend(
            typed_out
                .into_iter()
                .map(|(dst, p)| (dst, DynPayload::new(p))),
        );
    }

    fn type_name(&self) -> &'static str {
        std::any::type_name::<Prog::State>()
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Assembles a [`Mux`] and its per-node states from typed lanes.
pub struct MuxBuilder<'a> {
    n: usize,
    lanes: Vec<Box<dyn ErasedLane<'a> + 'a>>,
    /// `slots[lane][node]`, transposed to `[node][lane]` in [`Self::build`].
    slots: Vec<Vec<LaneSlot>>,
    /// Hard cap on the number of lanes (the per-node parallel-instance
    /// budget a scheduler promised to respect). `None` = unbounded.
    budget: Option<usize>,
}

impl<'a> MuxBuilder<'a> {
    pub fn new(n: usize) -> Self {
        MuxBuilder {
            n,
            lanes: Vec::new(),
            slots: Vec::new(),
            budget: None,
        }
    }

    /// Declares a hard lane budget: the per-node number of concurrent
    /// protocol instances this mux may host (the paper's `O(log n)`
    /// parallel-instances cap, §2). Adding a lane beyond the budget
    /// panics — the hook that keeps an automatic scheduler honest.
    pub fn with_lane_budget(mut self, budget: usize) -> Self {
        assert!(budget >= 1, "a mux needs room for at least one lane");
        self.budget = Some(budget);
        self
    }

    /// Number of lanes added so far.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Lanes still admissible under the declared budget
    /// (`usize::MAX` when unbounded).
    pub fn remaining_budget(&self) -> usize {
        self.budget
            .map_or(usize::MAX, |b| b.saturating_sub(self.lanes.len()))
    }

    fn push<Prog>(&mut self, prog: Prog, states: Vec<Prog::State>, seed: Option<u64>) -> LaneId
    where
        Prog: NodeProgram + 'a,
        Prog::State: 'static,
    {
        assert_eq!(states.len(), self.n, "one state per node required");
        if let Some(budget) = self.budget {
            assert!(
                self.lanes.len() < budget,
                "lane budget exceeded: {budget} lanes already installed"
            );
        }
        let id = self.lanes.len();
        self.slots.push(
            states
                .into_iter()
                .enumerate()
                .map(|(node, st)| LaneSlot {
                    state: Box::new(st),
                    rng: seed.map(|s| node_rng(s, node as NodeId)),
                    awake: false,
                    active_rounds: 0,
                    sent: 0,
                })
                .collect(),
        );
        self.lanes.push(Box::new(LaneEntry { prog }));
        id
    }

    /// Adds a lane that draws randomness from the node's own engine stream.
    ///
    /// With exactly one such lane, the mux execution is bit-identical to
    /// `engine.execute(&prog, &mut states)` — this is the mode the blocking
    /// primitive adapters use.
    pub fn lane<Prog>(&mut self, prog: Prog, states: Vec<Prog::State>) -> LaneId
    where
        Prog: NodeProgram + 'a,
        Prog::State: 'static,
    {
        self.push(prog, states, None)
    }

    /// Adds a lane with a dedicated per-node RNG stream keyed by
    /// `(lane_seed, node)` — the composition mode: the lane behaves
    /// identically whether it runs alone (on an engine seeded `lane_seed`)
    /// or multiplexed with arbitrary other lanes.
    pub fn lane_seeded<Prog>(
        &mut self,
        prog: Prog,
        states: Vec<Prog::State>,
        lane_seed: u64,
    ) -> LaneId
    where
        Prog: NodeProgram + 'a,
        Prog::State: 'static,
    {
        self.push(prog, states, Some(lane_seed))
    }

    /// Finalizes into the program + per-node states pair for
    /// `engine.execute`.
    pub fn build(self) -> (Mux<'a>, Vec<MuxState>) {
        assert!(!self.lanes.is_empty(), "a mux needs at least one lane");
        let lane_bits = crate::ilog2_ceil(self.lanes.len()) as u8;
        let mut per_node: Vec<MuxState> = (0..self.n)
            .map(|_| MuxState {
                lanes: Vec::with_capacity(self.lanes.len()),
            })
            .collect();
        for lane_slots in self.slots {
            for (node, slot) in lane_slots.into_iter().enumerate() {
                per_node[node].lanes.push(slot);
            }
        }
        (
            Mux {
                lanes: self.lanes,
                lane_bits,
            },
            per_node,
        )
    }
}

/// Extracts lane `lane`'s per-node states back out of a finished execution.
///
/// Panics if `S` is not the lane's state type.
pub fn take_lane_states<S: Send + 'static>(states: &mut [MuxState], lane: LaneId) -> Vec<S> {
    states
        .iter_mut()
        .map(|ms| {
            let slot = &mut ms.lanes[lane];
            let boxed = std::mem::replace(&mut slot.state, Box::new(()));
            *boxed.downcast::<S>().unwrap_or_else(|_| {
                panic!("lane {lane} state is not a {}", std::any::type_name::<S>())
            })
        })
        .collect()
}

/// Per-lane accounting summed over all nodes.
pub fn lane_stats(states: &[MuxState]) -> Vec<LaneStats> {
    let lanes = states.first().map_or(0, |s| s.lanes.len());
    let mut out = vec![LaneStats::default(); lanes];
    for ms in states {
        for (i, slot) in ms.lanes.iter().enumerate() {
            out[i].node_rounds += slot.active_rounds;
            out[i].sent += slot.sent;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The multiplexer program
// ---------------------------------------------------------------------------

/// The lane multiplexer: a [`NodeProgram`] over [`Tagged`] payloads that
/// interleaves any number of sub-programs in the same rounds. See the
/// module docs for the capacity-sharing and quiescence semantics.
pub struct Mux<'a> {
    lanes: Vec<Box<dyn ErasedLane<'a> + 'a>>,
    lane_bits: u8,
}

impl Mux<'_> {
    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    fn run_lanes(
        &self,
        st: &mut MuxState,
        per_lane_inbox: &[Vec<Envelope<DynPayload>>],
        is_init: bool,
        ctx: &mut Ctx<'_, Tagged<DynPayload>>,
    ) {
        debug_assert_eq!(st.lanes.len(), self.lanes.len());
        let mut outs: Vec<Vec<(NodeId, DynPayload)>> = Vec::with_capacity(self.lanes.len());
        let mut any_awake = false;
        for (i, lane) in self.lanes.iter().enumerate() {
            let slot = &mut st.lanes[i];
            let inbox = per_lane_inbox.get(i).map_or(&[][..], |v| &v[..]);
            // Engine activity rule, per lane: step on init, on mail, or when
            // the lane asked to stay awake last round.
            let active = is_init || !inbox.is_empty() || slot.awake;
            let mut out = Vec::new();
            if active {
                slot.awake = false;
                lane.step(
                    slot, inbox, is_init, ctx.id, ctx.n, ctx.round, ctx.rng, &mut out,
                );
            }
            any_awake |= slot.awake;
            outs.push(out);
        }
        // Lane-round-robin interleave: position j of every lane before
        // position j+1 of any lane, so all lanes share the send budget (and
        // permissive truncation) fairly and deterministically. Draining
        // iterators move the payloads out without placeholder allocations.
        let mut drains: Vec<_> = outs
            .into_iter()
            .enumerate()
            .map(|(i, out)| (i as u32, out.into_iter()))
            .collect();
        loop {
            let mut any = false;
            for (lane, drain) in drains.iter_mut() {
                if let Some((dst, payload)) = drain.next() {
                    any = true;
                    ctx.send(
                        dst,
                        Tagged {
                            lane: *lane,
                            lane_bits: self.lane_bits,
                            inner: payload,
                        },
                    );
                }
            }
            if !any {
                break;
            }
        }
        if any_awake {
            ctx.stay_awake();
        }
    }
}

impl<'a> NodeProgram for Mux<'a> {
    type State = MuxState;
    type Payload = Tagged<DynPayload>;

    fn init(&self, st: &mut MuxState, ctx: &mut Ctx<'_, Tagged<DynPayload>>) {
        self.run_lanes(st, &[], true, ctx);
    }

    fn round(
        &self,
        st: &mut MuxState,
        inbox: &[Envelope<Tagged<DynPayload>>],
        ctx: &mut Ctx<'_, Tagged<DynPayload>>,
    ) {
        // Partition the combined inbox by lane, preserving arrival order.
        let mut per_lane: Vec<Vec<Envelope<DynPayload>>> = Vec::new();
        per_lane.resize_with(self.lanes.len(), Vec::new);
        for env in inbox {
            let lane = env.payload.lane as usize;
            debug_assert!(lane < self.lanes.len(), "message for unknown lane");
            per_lane[lane].push(Envelope::new(env.src, env.dst, env.payload.inner.clone()));
        }
        self.run_lanes(st, &per_lane, false, ctx);
    }
}

impl std::fmt::Debug for Mux<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.lanes.iter().map(|l| l.type_name()).collect();
        write!(f, "Mux({} lanes: {names:?})", self.lanes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, NetConfig};

    /// Every node sends one message to (id+1) mod n for `hops` rounds.
    struct RingRelay {
        hops: u64,
        base: u64,
    }
    #[derive(Default, Clone, PartialEq, Debug)]
    struct RelayState {
        received: Vec<u64>,
    }
    impl NodeProgram for RingRelay {
        type State = RelayState;
        type Payload = u64;
        fn init(&self, _st: &mut RelayState, ctx: &mut Ctx<'_, u64>) {
            ctx.send((ctx.id + 1) % ctx.n as u32, self.base);
        }
        fn round(&self, st: &mut RelayState, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
            for e in inbox {
                st.received.push(e.payload);
            }
            if ctx.round < self.hops {
                ctx.send((ctx.id + 1) % ctx.n as u32, self.base + ctx.round);
            }
        }
    }

    /// Uses ctx.rng: sends a random value to a fixed neighbor each round.
    struct RngScatter {
        rounds: u64,
    }
    impl NodeProgram for RngScatter {
        type State = Vec<u64>;
        type Payload = u64;
        fn init(&self, _st: &mut Vec<u64>, ctx: &mut Ctx<'_, u64>) {
            use rand::Rng;
            let v: u64 = ctx.rng.gen();
            ctx.send((ctx.id + 1) % ctx.n as u32, v);
        }
        fn round(&self, st: &mut Vec<u64>, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
            use rand::Rng;
            for e in inbox {
                st.push(e.payload);
            }
            if ctx.round < self.rounds {
                let v: u64 = ctx.rng.gen();
                ctx.send((ctx.id + 2) % ctx.n as u32, v);
            }
        }
    }

    #[test]
    fn tagged_bit_size_charges_lane_header() {
        let t = Tagged {
            lane: 3,
            lane_bits: 2,
            inner: 255u64,
        };
        assert_eq!(t.bit_size(), 2 + 8);
        let solo = Tagged {
            lane: 0,
            lane_bits: 0,
            inner: 255u64,
        };
        assert_eq!(solo.bit_size(), 8);
        let dyn_t = Tagged {
            lane: 1,
            lane_bits: 1,
            inner: DynPayload::new((3u64, true)),
        };
        assert_eq!(dyn_t.bit_size(), 1 + 2 + 1);
    }

    #[test]
    fn dyn_payload_downcasts() {
        let p = DynPayload::new(42u64);
        assert_eq!(p.downcast_ref::<u64>(), Some(&42));
        assert!(p.downcast_ref::<bool>().is_none());
        assert_eq!(p.bit_size(), 6);
    }

    #[test]
    fn single_lane_mux_is_bit_identical_to_direct_execution() {
        let n = 32;
        // direct
        let mut eng = Engine::new(NetConfig::new(n, 77));
        let mut direct = vec![RelayState::default(); n];
        let s1 = eng
            .execute(&RingRelay { hops: 5, base: 10 }, &mut direct)
            .unwrap();
        // one-lane mux on a fresh engine with the same seed
        let mut eng = Engine::new(NetConfig::new(n, 77));
        let mut b = MuxBuilder::new(n);
        let id = b.lane(
            RingRelay { hops: 5, base: 10 },
            vec![RelayState::default(); n],
        );
        let (mux, mut states) = b.build();
        let s2 = eng.execute(&mux, &mut states).unwrap();
        let muxed: Vec<RelayState> = take_lane_states(&mut states, id);
        assert_eq!(s1, s2, "stats must match exactly (incl. bits)");
        assert_eq!(direct, muxed);
    }

    #[test]
    fn single_lane_rng_passthrough_matches_direct() {
        let n = 16;
        let run_direct = || {
            let mut eng = Engine::new(NetConfig::new(n, 5));
            let mut st = vec![Vec::new(); n];
            let s = eng.execute(&RngScatter { rounds: 4 }, &mut st).unwrap();
            (s, st)
        };
        let run_mux = || {
            let mut eng = Engine::new(NetConfig::new(n, 5));
            let mut b = MuxBuilder::new(n);
            let id = b.lane(RngScatter { rounds: 4 }, vec![Vec::new(); n]);
            let (mux, mut states) = b.build();
            let s = eng.execute(&mux, &mut states).unwrap();
            (s, take_lane_states::<Vec<u64>>(&mut states, id))
        };
        assert_eq!(run_direct(), run_mux());
    }

    #[test]
    fn lanes_share_rounds_not_queue() {
        // Two 6-round relays as lanes finish in ~6 rounds, not ~12.
        let n = 16;
        let mut eng = Engine::new(NetConfig::new(n, 9));
        let mut b = MuxBuilder::new(n);
        let a = b.lane_seeded(
            RingRelay { hops: 5, base: 100 },
            vec![RelayState::default(); n],
            1,
        );
        let c = b.lane_seeded(
            RingRelay { hops: 5, base: 200 },
            vec![RelayState::default(); n],
            2,
        );
        let (mux, mut states) = b.build();
        let stats = eng.execute(&mux, &mut states).unwrap();
        assert_eq!(stats.rounds, 6, "lanes must interleave, not queue");
        assert_eq!(stats.sent, 2 * 16 * 5);
        let sa: Vec<RelayState> = take_lane_states(&mut states, a);
        let sc: Vec<RelayState> = take_lane_states(&mut states, c);
        assert!(sa.iter().all(|s| s.received.iter().all(|&v| v < 200)));
        assert!(sc.iter().all(|s| s.received.iter().all(|&v| v >= 200)));
    }

    #[test]
    fn seeded_lane_matches_isolated_run_with_same_seed() {
        let n = 24;
        // isolated: engine seeded with the lane seed, so node streams match
        let mut eng = Engine::new(NetConfig::new(n, 4242));
        let mut isolated = vec![Vec::new(); n];
        eng.execute(&RngScatter { rounds: 6 }, &mut isolated)
            .unwrap();
        // muxed beside an unrelated lane, on a different engine seed
        let mut eng = Engine::new(NetConfig::new(n, 1));
        let mut b = MuxBuilder::new(n);
        let id = b.lane_seeded(RngScatter { rounds: 6 }, vec![Vec::new(); n], 4242);
        let _ = b.lane_seeded(
            RingRelay { hops: 3, base: 7 },
            vec![RelayState::default(); n],
            9,
        );
        let (mux, mut states) = b.build();
        eng.execute(&mux, &mut states).unwrap();
        let muxed: Vec<Vec<u64>> = take_lane_states(&mut states, id);
        assert_eq!(isolated, muxed);
    }

    #[test]
    fn mux_deterministic_across_threads() {
        let n = 600; // above the parallel threshold
        let run = |threads: usize| {
            let mut eng = Engine::new(NetConfig::new(n, 31).with_threads(threads));
            let mut b = MuxBuilder::new(n);
            let a = b.lane_seeded(RngScatter { rounds: 7 }, vec![Vec::new(); n], 11);
            let c = b.lane_seeded(
                RingRelay { hops: 6, base: 50 },
                vec![RelayState::default(); n],
                12,
            );
            let (mux, mut states) = b.build();
            let stats = eng.execute(&mux, &mut states).unwrap();
            let sa: Vec<Vec<u64>> = take_lane_states(&mut states, a);
            let sc: Vec<RelayState> = take_lane_states(&mut states, c);
            (stats, sa, sc)
        };
        let base = run(1);
        for t in [2, 4, 8] {
            assert_eq!(run(t), base, "threads={t}");
        }
    }

    #[test]
    fn lane_stats_account_activity() {
        let n = 8;
        let mut eng = Engine::new(NetConfig::new(n, 2));
        let mut b = MuxBuilder::new(n);
        let _ = b.lane_seeded(
            RingRelay { hops: 1, base: 0 },
            vec![RelayState::default(); n],
            1,
        );
        let _ = b.lane_seeded(
            RingRelay { hops: 4, base: 0 },
            vec![RelayState::default(); n],
            2,
        );
        let (mux, mut states) = b.build();
        eng.execute(&mux, &mut states).unwrap();
        let stats = lane_stats(&states);
        assert_eq!(stats[0].sent, 8);
        assert_eq!(stats[1].sent, 8 * 4);
        assert!(stats[1].node_rounds > stats[0].node_rounds);
    }

    #[test]
    fn lane_budget_admits_up_to_budget() {
        let n = 4;
        let mut b = MuxBuilder::new(n).with_lane_budget(2);
        assert_eq!(b.remaining_budget(), 2);
        let _ = b.lane_seeded(
            RingRelay { hops: 1, base: 0 },
            vec![RelayState::default(); n],
            1,
        );
        assert_eq!(b.remaining_budget(), 1);
        let _ = b.lane_seeded(
            RingRelay { hops: 1, base: 0 },
            vec![RelayState::default(); n],
            2,
        );
        assert_eq!(b.remaining_budget(), 0);
    }

    #[test]
    #[should_panic(expected = "lane budget exceeded")]
    fn lane_budget_rejects_overflow() {
        let n = 4;
        let mut b = MuxBuilder::new(n).with_lane_budget(1);
        let _ = b.lane_seeded(
            RingRelay { hops: 1, base: 0 },
            vec![RelayState::default(); n],
            1,
        );
        let _ = b.lane_seeded(
            RingRelay { hops: 1, base: 0 },
            vec![RelayState::default(); n],
            2,
        );
    }

    #[test]
    #[should_panic(expected = "state is not a")]
    fn take_lane_states_checks_type() {
        let n = 2;
        let mut b = MuxBuilder::new(n);
        let id = b.lane(
            RingRelay { hops: 1, base: 0 },
            vec![RelayState::default(); n],
        );
        let (_mux, mut states) = b.build();
        let _: Vec<u64> = take_lane_states(&mut states, id);
    }
}
