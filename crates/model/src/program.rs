//! The node-program abstraction: protocols as per-node state machines.
//!
//! A [`NodeProgram`] is the *code* every node runs (shared, immutable); each
//! node owns a `State` value (mutable, private). The engine calls
//! [`NodeProgram::init`] once at round 0 and then [`NodeProgram::round`]
//! every round in which the node is *active* — i.e. it received at least one
//! message, or it asked to stay awake via [`Ctx::stay_awake`]. Execution
//! ends when no messages are in flight and no node is awake (quiescence).
//!
//! This mirrors how the paper specifies algorithms: nodes react to incoming
//! messages, synchronous rounds, local computation free.

use rand::rngs::SmallRng;

use crate::payload::{Envelope, Payload};
use crate::NodeId;

/// Per-node, per-round interface to the network.
pub struct Ctx<'a, P: Payload> {
    /// This node's identifier.
    pub id: NodeId,
    /// Network size; identifiers of all nodes (`0..n`) are common knowledge.
    pub n: usize,
    /// Rounds elapsed since this program execution started (0 = init round).
    pub round: u64,
    /// This node's private randomness stream.
    pub rng: &'a mut SmallRng,
    pub(crate) out: &'a mut Vec<(NodeId, P)>,
    pub(crate) awake: &'a mut bool,
}

impl<P: Payload> Ctx<'_, P> {
    /// Queues a message for delivery at the beginning of the next round.
    /// Subject to the send cap; exceeding it is a model violation.
    #[inline]
    pub fn send(&mut self, dst: NodeId, payload: P) {
        self.out.push((dst, payload));
    }

    /// Requests that this node's `round` function be invoked next round even
    /// if no message arrives. Without this, a node sleeps until woken by a
    /// message.
    #[inline]
    pub fn stay_awake(&mut self) {
        *self.awake = true;
    }

    /// Number of messages queued so far this round (to respect the cap).
    #[inline]
    pub fn queued(&self) -> usize {
        self.out.len()
    }
}

/// A distributed protocol: shared immutable code plus per-node mutable state.
///
/// Programs must be written so nodes act only on locally available
/// information: their own state, their id, `n`, received messages, and
/// private randomness. The engine provides no other channel.
pub trait NodeProgram: Sync {
    type State: Send;
    type Payload: Payload;

    /// Called once for every node at the start of the execution (round 0).
    fn init(&self, state: &mut Self::State, ctx: &mut Ctx<'_, Self::Payload>);

    /// Called for every *active* node each round, with the messages
    /// delivered to it this round (possibly a capped subset, if the network
    /// dropped excess messages).
    fn round(
        &self,
        state: &mut Self::State,
        inbox: &[Envelope<Self::Payload>],
        ctx: &mut Ctx<'_, Self::Payload>,
    );
}

/// Blanket helper: drive a program where state construction is uniform.
pub fn make_states<Prog, F>(n: usize, f: F) -> Vec<Prog::State>
where
    Prog: NodeProgram,
    F: FnMut(NodeId) -> Prog::State,
{
    (0..n as NodeId).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_send_queues_messages() {
        let mut out: Vec<(NodeId, u64)> = Vec::new();
        let mut awake = false;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = Ctx {
            id: 0,
            n: 4,
            round: 0,
            rng: &mut rng,
            out: &mut out,
            awake: &mut awake,
        };
        assert_eq!(ctx.queued(), 0);
        ctx.send(1, 42);
        ctx.send(2, 43);
        assert_eq!(ctx.queued(), 2);
        assert!(!awake);
        assert_eq!(out, vec![(1, 42), (2, 43)]);
    }

    #[test]
    fn ctx_stay_awake_sets_flag() {
        let mut out: Vec<(NodeId, u64)> = Vec::new();
        let mut awake = false;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = Ctx {
            id: 3,
            n: 4,
            round: 5,
            rng: &mut rng,
            out: &mut out,
            awake: &mut awake,
        };
        ctx.stay_awake();
        assert!(awake);
    }
}
