//! # ncc-model — the Node-Capacitated Clique substrate
//!
//! This crate implements the communication model of *Distributed Computation
//! in Node-Capacitated Networks* (Augustine et al., SPAA 2019) as an
//! executable, measurable substrate:
//!
//! * `n` nodes with identifiers `0..n` form a logical clique — any node may
//!   address any other node directly.
//! * Time proceeds in **synchronous rounds**. Messages sent in round `t` are
//!   delivered at the beginning of round `t + 1`.
//! * Per round, every node may **send at most `cap_send` messages** and
//!   **receive at most `cap_recv` messages**, each of `O(log n)` bits. Both
//!   caps default to `Θ(log n)`. If more than `cap_recv` messages are
//!   addressed to a node, an *arbitrary* subset of `cap_recv` of them is
//!   delivered and the rest are **dropped by the network** (we instantiate
//!   "arbitrary" as a seeded-random subset and count every drop).
//! * Local computation is free, as in the model.
//!
//! Protocols are written against the [`NodeProgram`] trait: a per-node state
//! machine invoked once per round with the messages delivered that round.
//! The [`Engine`] drives programs either sequentially or with a deterministic
//! multi-threaded executor (results are bit-identical — see
//! [`engine::Engine::execute`]).
//!
//! ## Pluggable network models
//!
//! The communication semantics themselves — who may talk to whom, the
//! per-round budgets, the drop rules, and the cost accounting — live
//! behind the [`NetworkModel`] trait (see [`network`]): the default [`Ncc`]
//! per-node-cap clique, the per-edge-bandwidth [`CongestedClique`], the
//! k-machine cost model (crate `ncc-kmachine`), and the §1
//! [`HybridLocal`] local+global setting all drive the same engine and the
//! same batched delivery pipeline. [`ModelSpec`] is the serializable
//! description a scenario carries.
//!
//! ## Concurrent composition
//!
//! The [`mux`] module multiplexes any number of independent programs
//! (*lanes*) into one execution: [`Mux`] is itself a [`NodeProgram`] over
//! lane-[`Tagged`] payloads, with per-lane state, per-lane quiescence and
//! a deterministic lane-round-robin send interleave, so composed
//! protocols share the per-node capacity budget and drop sampling exactly
//! as one program — the paper's "run `O(log n)` instances in parallel"
//! argument (§2), made executable. A one-lane mux is bit-identical to
//! running the inner program directly.
//!
//! ## Delivery as batched routing
//!
//! The per-round delivery phase is the [`router::Router`]: one counting
//! sort of the round's flat send buffer into a reusable per-destination
//! inbox arena — count, prefix-sum, scatter, then per-bucket receive-cap
//! sampling keyed by `(seed, round, destination)`. All routing state (the
//! arena, offset tables, sampling scratch, per-thread histograms) is owned
//! by the router and recycled, so in the steady state of an execution the
//! delivery phase performs **no heap allocation** and envelopes are moved,
//! never cloned. Both the step phase and the route phase run on the
//! deterministic parallel executor; results are bit-identical for any
//! thread count.
//!
//! Every execution produces [`stats::ExecStats`]: rounds, message and bit
//! counters, maximum per-node in/out load, and drop counts. The benchmark
//! harness uses these to validate the paper's round-complexity theorems and
//! the capacity-compliance claims (Lemma 4.11).
//!
//! # Example: a two-round echo protocol
//!
//! ```
//! use ncc_model::{Ctx, Engine, Envelope, NetConfig, NodeProgram};
//!
//! /// Every node pings its successor; the successor echoes back.
//! struct PingPong;
//! impl NodeProgram for PingPong {
//!     type State = u64; // echoes received
//!     type Payload = u64;
//!     fn init(&self, _st: &mut u64, ctx: &mut Ctx<'_, u64>) {
//!         ctx.send((ctx.id + 1) % ctx.n as u32, 7);
//!     }
//!     fn round(&self, st: &mut u64, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
//!         for env in inbox {
//!             if ctx.round == 1 {
//!                 ctx.send(env.src, env.payload); // echo
//!             } else {
//!                 *st += 1; // count echoes
//!             }
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(NetConfig::new(8, 42));
//! let mut states = vec![0u64; 8];
//! let stats = engine.execute(&PingPong, &mut states).unwrap();
//! assert_eq!(stats.rounds, 3);            // send, echo, absorb
//! assert!(states.iter().all(|&s| s == 1)); // everyone got their echo
//! assert!(stats.clean());                  // no drops, caps respected
//! ```

pub mod capacity;
pub mod engine;
pub mod error;
pub mod mux;
pub mod network;
pub mod payload;
pub mod program;
pub mod rng;
pub mod router;
pub mod stats;
pub mod trace;

pub use capacity::Capacity;
pub use engine::{Engine, NetConfig};
pub use error::ModelError;
pub use mux::{
    lane_stats, take_lane_states, DynPayload, LaneId, LaneStats, Mux, MuxBuilder, MuxState, Tagged,
};
pub use network::{CongestedClique, HybridLocal, Lane, ModelSpec, Ncc, NetworkModel, RecvPolicy};
pub use payload::{Envelope, Payload};
pub use program::{Ctx, NodeProgram};
pub use router::{RouteReport, Router, RouterScratch};
pub use stats::{ExecStats, MemoryFootprint, RoundStats};
pub use trace::{TraceEvent, TraceSink};

/// Node identifier. The model fixes identifiers to `{0, 1, ..., n-1}`
/// (§1.1: identifiers are common knowledge, so w.l.o.g. they are dense).
pub type NodeId = u32;

/// Ceiling of log₂(n), with `ilog2_ceil(0) == 0` and `ilog2_ceil(1) == 0`.
#[inline]
pub fn ilog2_ceil(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Floor of log₂(n). `n` must be ≥ 1.
#[inline]
pub fn ilog2_floor(n: usize) -> u32 {
    debug_assert!(n >= 1);
    usize::BITS - 1 - n.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilog2_ceil_small_values() {
        assert_eq!(ilog2_ceil(0), 0);
        assert_eq!(ilog2_ceil(1), 0);
        assert_eq!(ilog2_ceil(2), 1);
        assert_eq!(ilog2_ceil(3), 2);
        assert_eq!(ilog2_ceil(4), 2);
        assert_eq!(ilog2_ceil(5), 3);
        assert_eq!(ilog2_ceil(1024), 10);
        assert_eq!(ilog2_ceil(1025), 11);
    }

    #[test]
    fn ilog2_floor_small_values() {
        assert_eq!(ilog2_floor(1), 0);
        assert_eq!(ilog2_floor(2), 1);
        assert_eq!(ilog2_floor(3), 1);
        assert_eq!(ilog2_floor(4), 2);
        assert_eq!(ilog2_floor(1023), 9);
        assert_eq!(ilog2_floor(1024), 10);
    }

    #[test]
    fn floor_le_ceil() {
        for n in 1..2000usize {
            assert!(ilog2_floor(n) <= ilog2_ceil(n));
            assert!(ilog2_ceil(n) - ilog2_floor(n) <= 1);
        }
    }
}
