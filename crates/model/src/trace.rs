//! Execution tracing: who talked to whom, per round.
//!
//! The k-machine conversion (paper Appendix A) charges an NCC execution by
//! replaying its message pattern across a random vertex partition. A
//! [`TraceSink`] receives the per-round delivered message pairs as the
//! engine runs, so conversions can be computed streaming without retaining
//! the whole trace.

use crate::NodeId;

/// One delivered message, as seen by a trace consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub src: NodeId,
    pub dst: NodeId,
}

/// Receives message-pattern events as the engine executes.
pub trait TraceSink {
    /// Called once per round with every message *delivered* that round
    /// (dropped messages are not part of the realized communication).
    ///
    /// Events arrive grouped by destination — ascending destination, and
    /// within a destination in `(sender, send order)` — mirroring the
    /// batched router's inbox arena layout. Consumers that bin by endpoint
    /// (the k-machine conversion, contact counting) are order-insensitive.
    fn on_round(&mut self, round: u64, delivered: &[TraceEvent]);

    /// Called after [`TraceSink::on_round`] for rounds in which the network
    /// dropped messages: one `(destination, dropped count)` pair per
    /// over-cap destination, ascending by destination. Default: ignore.
    fn on_drops(&mut self, _round: u64, _drops: &[(NodeId, u32)]) {}
}

/// A sink that stores the full trace in memory. Useful for tests and for
/// small k-machine experiments.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    pub rounds: Vec<Vec<TraceEvent>>,
    /// `(round, destination, dropped count)` for every over-cap destination.
    pub drops: Vec<(u64, NodeId, u32)>,
}

impl TraceSink for RecordingSink {
    fn on_round(&mut self, _round: u64, delivered: &[TraceEvent]) {
        self.rounds.push(delivered.to_vec());
    }

    fn on_drops(&mut self, round: u64, drops: &[(NodeId, u32)]) {
        self.drops
            .extend(drops.iter().map(|&(dst, k)| (round, dst, k)));
    }
}

impl RecordingSink {
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Total messages the network dropped across the recorded execution.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().map(|&(_, _, k)| k as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_accumulates() {
        let mut s = RecordingSink::default();
        s.on_round(0, &[TraceEvent { src: 0, dst: 1 }]);
        s.on_round(
            1,
            &[TraceEvent { src: 1, dst: 0 }, TraceEvent { src: 1, dst: 2 }],
        );
        assert_eq!(s.rounds.len(), 2);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn recording_sink_tracks_drops() {
        let mut s = RecordingSink::default();
        s.on_round(0, &[TraceEvent { src: 0, dst: 1 }]);
        s.on_drops(0, &[(1, 3), (4, 2)]);
        assert_eq!(s.drops, vec![(0, 1, 3), (0, 4, 2)]);
        assert_eq!(s.total_drops(), 5);
    }
}
