//! Integration tests for the unified scenario/runner API:
//!
//! * `ScenarioSpec` survives a JSON round-trip for arbitrary specs
//!   (property-based — families, capacities, seeds, thread counts);
//! * every registered algorithm runs on a small `G(n,p)` scenario and its
//!   correctness verdict holds;
//! * `RunRecord` JSON is byte-identical across thread counts (execution
//!   layout must never leak into results).

use ncc_model::{Capacity, Engine, ModelSpec};
use ncc_runner::{
    algorithms, find_algorithm, run_named, run_named_threads, standard_grid, FamilySpec,
    ScenarioSpec, Verdict,
};
use proptest::prelude::*;

fn family_strategy() -> impl Strategy<Value = FamilySpec> {
    prop_oneof![
        Just(FamilySpec::Path),
        Just(FamilySpec::Cycle),
        Just(FamilySpec::Star),
        Just(FamilySpec::Complete),
        Just(FamilySpec::Tree),
        Just(FamilySpec::Provided),
        (1usize..16).prop_map(|k| FamilySpec::Forests { k }),
        (0.001f64..0.999).prop_map(|p| FamilySpec::Gnp { p }),
        (1usize..2000).prop_map(|m| FamilySpec::Gnm { m }),
        (1usize..8).prop_map(|m| FamilySpec::Ba { m }),
        (0.01f64..0.9).prop_map(|radius| FamilySpec::Geometric { radius }),
        (1usize..16).prop_map(|edge_factor| FamilySpec::Rmat { edge_factor }),
        (0.55f64..1.5, 0.0f64..2.0).prop_map(|(alpha, c)| FamilySpec::Hyperbolic { alpha, c }),
        (1usize..32, 1usize..32).prop_map(|(rows, cols)| FamilySpec::Grid { rows, cols }),
        (1usize..32, 1usize..32).prop_map(|(rows, cols)| FamilySpec::TGrid { rows, cols }),
    ]
}

fn capacity_strategy() -> impl Strategy<Value = Capacity> {
    prop_oneof![
        (2usize..1024, 1usize..16, 1u32..64)
            .prop_map(|(n, kappa, beta)| Capacity::log_scaled(n, kappa, beta)),
        (1usize..64, 1usize..64).prop_map(|(s, r)| Capacity::squeezed(s, r)),
        Just(Capacity::unbounded()),
    ]
}

fn model_strategy() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        Just(ModelSpec::Ncc),
        (1usize..64).prop_map(|edge_cap| ModelSpec::CongestedClique { edge_cap }),
        (1usize..32, 1u64..8)
            .prop_map(|(k, link_capacity)| ModelSpec::KMachine { k, link_capacity }),
        (1usize..16).prop_map(|local_edge_cap| ModelSpec::HybridLocal { local_edge_cap }),
    ]
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        family_strategy(),
        1usize..512,
        any::<u64>(),
        1u64..1_000_000,
        capacity_strategy(),
        model_strategy(),
        1usize..9,
        0u32..512,
    )
        .prop_map(
            |(family, n, seed, weight_max, capacity, model, threads, source)| {
                let mut spec = ScenarioSpec::new(family, n, seed)
                    .with_weight_max(weight_max)
                    .with_capacity(capacity)
                    .with_model(model)
                    .with_threads(threads)
                    .with_source(source);
                // grids derive n from their sides, like ScenarioSpec::grid
                if let FamilySpec::Grid { rows, cols } | FamilySpec::TGrid { rows, cols } =
                    spec.family
                {
                    spec.n = rows * cols;
                }
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// The spec is pure data: JSON round-trips losslessly, for both the
    /// compact and pretty forms, and re-serialization is byte-stable.
    #[test]
    fn scenario_spec_json_round_trips(spec in spec_strategy()) {
        let compact = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&compact).unwrap();
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), compact);

        let pretty = serde_json::to_string_pretty(&spec).unwrap();
        let back2: ScenarioSpec = serde_json::from_str(&pretty).unwrap();
        prop_assert_eq!(&back2, &spec);
    }

    /// Buildable specs rebuild the *same* graph every time.
    #[test]
    fn buildable_specs_rebuild_identically(spec in spec_strategy()) {
        if let (Ok(a), Ok(b)) = (spec.build(), spec.build()) {
            prop_assert_eq!(a.graph.n(), b.graph.n());
            prop_assert_eq!(a.graph.m(), b.graph.m());
        }
    }
}

/// Runs one algorithm on a spec with the engine's activity scheduling
/// pinned to either the dirty-set default (`dense = false`) or the seed
/// engine's scan-everything baseline (`dense = true`).
fn run_with_scan_mode(
    name: &str,
    spec: &ScenarioSpec,
    threads: usize,
    dense: bool,
) -> Result<ncc_runner::RunRecord, ncc_model::ModelError> {
    let scn = spec.build().expect("buildable spec");
    let algo = find_algorithm(name).expect("registered algorithm");
    let mut eng = Engine::with_model(
        scn.spec
            .net_config()
            .with_threads(threads)
            .with_dense_activity_scan(dense),
        scn.build_model(),
    );
    algo.run(&mut eng, &scn)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// The dirty-set scheduler is a pure cost optimisation: across graph
    /// families × threads {1, 4} × capacities {tight Θ(log n), unbounded},
    /// the full RunRecord JSON is byte-identical to the seed engine's
    /// scan-everything behavior (`dense_activity_scan`).
    #[test]
    fn dirty_set_records_byte_identical_to_dense_scan(
        family in prop_oneof![
            Just(FamilySpec::Star),
            Just(FamilySpec::Tree),
            (0.02f64..0.3).prop_map(|p| FamilySpec::Gnp { p }),
            (1usize..6).prop_map(|m| FamilySpec::Ba { m }),
            (2usize..12).prop_map(|edge_factor| FamilySpec::Rmat { edge_factor }),
            (0.6f64..1.2).prop_map(|alpha| FamilySpec::Hyperbolic { alpha, c: 0.0 }),
        ],
        n in 16usize..160,
        seed in 0u64..1000,
        unbounded in any::<bool>(),
        name in prop_oneof![Just("bfs"), Just("gossip"), Just("broadcast")],
    ) {
        let mut spec = ScenarioSpec::new(family, n, seed);
        if unbounded {
            spec = spec.with_capacity(Capacity::unbounded());
        }
        for threads in [1usize, 4] {
            let dirty = run_with_scan_mode(name, &spec, threads, false);
            let dense = run_with_scan_mode(name, &spec, threads, true);
            match (dirty, dense) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    a.to_json(),
                    b.to_json(),
                    "{} on {} threads={} diverged",
                    name,
                    spec.label(),
                    threads
                ),
                (a, b) => prop_assert_eq!(
                    a.err(),
                    b.err(),
                    "error divergence on {} threads={}",
                    spec.label(),
                    threads
                ),
            }
        }
    }
}

/// Every registered algorithm completes on a small `G(n,p)` scenario and
/// no correctness checker rejects its output.
#[test]
fn registry_smoke_every_algorithm_runs_verified() {
    let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.3 }, 32, 5);
    for algo in algorithms() {
        let rec =
            run_named(algo.name(), &spec).unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
        assert_eq!(rec.algorithm, algo.name());
        assert_eq!(rec.scenario, spec, "{} must echo the spec", algo.name());
        assert!(rec.rounds > 0, "{} reported zero rounds", algo.name());
        assert!(
            rec.verdict.ok(),
            "{} verdict failed: {}",
            algo.name(),
            rec.summary
        );
        // the six §3–§5 algorithms have real checkers — require Verified
        if !matches!(algo.name(), "gossip" | "broadcast") {
            assert_eq!(
                rec.verdict,
                Verdict::Verified,
                "{} should be checkable",
                algo.name()
            );
        }
    }
}

/// Execution layout must never leak into results: the full RunRecord JSON
/// (scenario echo, stages, counters) is byte-identical whether the engine
/// steps sequentially or with 4 worker threads. `n` is chosen above the
/// engine's parallel threshold (128 active nodes) so threads really engage.
#[test]
fn run_record_json_identical_across_thread_counts() {
    let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.08 }, 160, 11);
    for name in ["bfs", "butterfly-aggregation"] {
        let seq = run_named_threads(name, &spec, 1).unwrap();
        let par = run_named_threads(name, &spec, 4).unwrap();
        assert_eq!(
            seq.to_json(),
            par.to_json(),
            "{name}: records diverged across thread counts"
        );
        assert_eq!(seq.to_json_pretty(), par.to_json_pretty());
    }
}

/// The registry lookup and the trait objects agree on names.
#[test]
fn find_algorithm_round_trips_names() {
    for algo in algorithms() {
        let found = find_algorithm(algo.name()).expect("registered name resolves");
        assert_eq!(found.name(), algo.name());
    }
}

/// Byte-identity oracle for the model refactor: on every Ncc cell of the
/// standard suite grid, the model-dispatched runner path produces exactly
/// the record an engine built the pre-refactor way (`Engine::new` on the
/// spec's `NetConfig`, no explicit model) produces. The Ncc model is the
/// default, so any divergence here means the pluggable-model layer leaked
/// into NCC semantics.
#[test]
fn ncc_suite_grid_identical_to_legacy_engine_construction() {
    for spec in standard_grid()
        .into_iter()
        .filter(|s| s.model == ModelSpec::Ncc)
    {
        let scn = spec.build().expect("buildable spec");
        for name in ["bfs", "gossip", "butterfly-aggregation"] {
            let algo = find_algorithm(name).unwrap();
            let via_runner = run_named(name, &spec).unwrap();
            let mut legacy_engine = Engine::new(spec.net_config());
            let via_legacy = algo.run(&mut legacy_engine, &scn).unwrap();
            assert_eq!(
                via_runner.to_json(),
                via_legacy.to_json(),
                "{name} on {} diverged from the pre-refactor engine path",
                spec.label()
            );
        }
    }
}

/// Model scenarios stay deterministic across thread counts too: the full
/// RunRecord JSON (km_rounds, edge loads, drops) is byte-identical for 1
/// and 4 workers under every execution model.
#[test]
fn model_records_identical_across_thread_counts() {
    let base = ScenarioSpec::new(FamilySpec::Gnp { p: 0.08 }, 160, 11);
    for model in [
        ModelSpec::CongestedClique { edge_cap: 4 },
        ModelSpec::KMachine {
            k: 8,
            link_capacity: 1,
        },
        ModelSpec::HybridLocal { local_edge_cap: 2 },
    ] {
        let spec = base.clone().with_model(model);
        for name in ["bfs", "gossip"] {
            let seq = run_named_threads(name, &spec, 1).unwrap();
            let par = run_named_threads(name, &spec, 4).unwrap();
            assert_eq!(
                seq.to_json(),
                par.to_json(),
                "{name} under {} diverged across thread counts",
                model.name()
            );
        }
    }
}

/// The scenario echo carries the model, and model-specific counters land
/// in the record: km_rounds under KMachine, max_edge_load under the
/// pairwise-budget models.
#[test]
fn model_counters_surface_in_records() {
    let base = ScenarioSpec::new(FamilySpec::Gnp { p: 0.1 }, 64, 3);
    let km = run_named(
        "bfs",
        &base.clone().with_model(ModelSpec::KMachine {
            k: 4,
            link_capacity: 1,
        }),
    )
    .unwrap();
    assert!(
        km.km_rounds >= km.rounds,
        "every round charges ≥ 1 km round"
    );
    assert_eq!(km.scenario.model.name(), "kmachine");

    let cc = run_named(
        "gossip",
        &base
            .clone()
            .with_model(ModelSpec::CongestedClique { edge_cap: 8 }),
    )
    .unwrap();
    assert_eq!(cc.km_rounds, 0);
    assert!(cc.report.total.max_edge_load >= 1);
    assert_eq!(cc.scenario.capacity, Capacity::unbounded());

    let ncc = run_named("gossip", &base).unwrap();
    assert_eq!(ncc.report.total.max_edge_load, 0, "ncc measures no edges");
}
