//! Integration tests for the unified scenario/runner API:
//!
//! * `ScenarioSpec` survives a JSON round-trip for arbitrary specs
//!   (property-based — families, capacities, seeds, thread counts);
//! * every registered algorithm runs on a small `G(n,p)` scenario and its
//!   correctness verdict holds;
//! * `RunRecord` JSON is byte-identical across thread counts (execution
//!   layout must never leak into results).

use ncc_model::Capacity;
use ncc_runner::{
    algorithms, find_algorithm, run_named, run_named_threads, FamilySpec, ScenarioSpec, Verdict,
};
use proptest::prelude::*;

fn family_strategy() -> impl Strategy<Value = FamilySpec> {
    prop_oneof![
        Just(FamilySpec::Path),
        Just(FamilySpec::Cycle),
        Just(FamilySpec::Star),
        Just(FamilySpec::Complete),
        Just(FamilySpec::Tree),
        Just(FamilySpec::Provided),
        (1usize..16).prop_map(|k| FamilySpec::Forests { k }),
        (0.001f64..0.999).prop_map(|p| FamilySpec::Gnp { p }),
        (1usize..2000).prop_map(|m| FamilySpec::Gnm { m }),
        (1usize..8).prop_map(|m| FamilySpec::Ba { m }),
        (0.01f64..0.9).prop_map(|radius| FamilySpec::Geometric { radius }),
        (1usize..32, 1usize..32).prop_map(|(rows, cols)| FamilySpec::Grid { rows, cols }),
        (1usize..32, 1usize..32).prop_map(|(rows, cols)| FamilySpec::TGrid { rows, cols }),
    ]
}

fn capacity_strategy() -> impl Strategy<Value = Capacity> {
    prop_oneof![
        (2usize..1024, 1usize..16, 1u32..64)
            .prop_map(|(n, kappa, beta)| Capacity::log_scaled(n, kappa, beta)),
        (1usize..64, 1usize..64).prop_map(|(s, r)| Capacity::squeezed(s, r)),
        Just(Capacity::unbounded()),
    ]
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        family_strategy(),
        1usize..512,
        any::<u64>(),
        1u64..1_000_000,
        capacity_strategy(),
        1usize..9,
        0u32..512,
    )
        .prop_map(|(family, n, seed, weight_max, capacity, threads, source)| {
            let mut spec = ScenarioSpec::new(family, n, seed)
                .with_weight_max(weight_max)
                .with_capacity(capacity)
                .with_threads(threads)
                .with_source(source);
            // grids derive n from their sides, like ScenarioSpec::grid
            if let FamilySpec::Grid { rows, cols } | FamilySpec::TGrid { rows, cols } = spec.family
            {
                spec.n = rows * cols;
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// The spec is pure data: JSON round-trips losslessly, for both the
    /// compact and pretty forms, and re-serialization is byte-stable.
    #[test]
    fn scenario_spec_json_round_trips(spec in spec_strategy()) {
        let compact = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&compact).unwrap();
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), compact);

        let pretty = serde_json::to_string_pretty(&spec).unwrap();
        let back2: ScenarioSpec = serde_json::from_str(&pretty).unwrap();
        prop_assert_eq!(&back2, &spec);
    }

    /// Buildable specs rebuild the *same* graph every time.
    #[test]
    fn buildable_specs_rebuild_identically(spec in spec_strategy()) {
        if let (Ok(a), Ok(b)) = (spec.build(), spec.build()) {
            prop_assert_eq!(a.graph.n(), b.graph.n());
            prop_assert_eq!(a.graph.m(), b.graph.m());
        }
    }
}

/// Every registered algorithm completes on a small `G(n,p)` scenario and
/// no correctness checker rejects its output.
#[test]
fn registry_smoke_every_algorithm_runs_verified() {
    let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.3 }, 32, 5);
    for algo in algorithms() {
        let rec =
            run_named(algo.name(), &spec).unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
        assert_eq!(rec.algorithm, algo.name());
        assert_eq!(rec.scenario, spec, "{} must echo the spec", algo.name());
        assert!(rec.rounds > 0, "{} reported zero rounds", algo.name());
        assert!(
            rec.verdict.ok(),
            "{} verdict failed: {}",
            algo.name(),
            rec.summary
        );
        // the six §3–§5 algorithms have real checkers — require Verified
        if !matches!(algo.name(), "gossip" | "broadcast") {
            assert_eq!(
                rec.verdict,
                Verdict::Verified,
                "{} should be checkable",
                algo.name()
            );
        }
    }
}

/// Execution layout must never leak into results: the full RunRecord JSON
/// (scenario echo, stages, counters) is byte-identical whether the engine
/// steps sequentially or with 4 worker threads. `n` is chosen above the
/// engine's parallel threshold (128 active nodes) so threads really engage.
#[test]
fn run_record_json_identical_across_thread_counts() {
    let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.08 }, 160, 11);
    for name in ["bfs", "butterfly-aggregation"] {
        let seq = run_named_threads(name, &spec, 1).unwrap();
        let par = run_named_threads(name, &spec, 4).unwrap();
        assert_eq!(
            seq.to_json(),
            par.to_json(),
            "{name}: records diverged across thread counts"
        );
        assert_eq!(seq.to_json_pretty(), par.to_json_pretty());
    }
}

/// The registry lookup and the trait objects agree on names.
#[test]
fn find_algorithm_round_trips_names() {
    for algo in algorithms() {
        let found = find_algorithm(algo.name()).expect("registered name resolves");
        assert_eq!(found.name(), algo.name());
    }
}
