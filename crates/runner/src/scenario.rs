//! Scenario specifications: the data that names one cell of the paper's
//! result matrix.
//!
//! Every result in the paper is a point in
//! `{algorithm} × {graph family} × {n} × {capacity} × {seed}`; a
//! [`ScenarioSpec`] is exactly that point, minus the algorithm, as a plain
//! serializable value. The spec alone deterministically reconstructs the
//! input graph, its edge weights, and a configured [`Engine`] — so a JSON
//! file (or a literal in an experiment binary) fully describes a run, and
//! adding a scenario is a data change, not a new hand-rolled entrypoint.

use std::sync::OnceLock;

use ncc_graph::{gen, Graph, WeightedGraph};
use ncc_kmachine::KMachineModel;
use ncc_model::{
    Capacity, CongestedClique, Engine, HybridLocal, ModelSpec, Ncc, NetConfig, NetworkModel, NodeId,
};
use serde::{Deserialize, Serialize};

use crate::RunnerError;

/// A named graph family plus its parameters (§1.1's "input graph").
///
/// The `seed` and `n` of the owning [`ScenarioSpec`] are shared by all
/// randomized families, so the family value carries only family-specific
/// parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FamilySpec {
    Path,
    Cycle,
    Star,
    Complete,
    /// `rows × cols` grid; the spec's `n` must equal `rows * cols`.
    Grid {
        rows: usize,
        cols: usize,
    },
    /// Triangulated `rows × cols` grid (planar, arboricity ≤ 3).
    TGrid {
        rows: usize,
        cols: usize,
    },
    /// Uniform random spanning tree.
    Tree,
    /// Union of `k` random forests (arboricity ≤ `k`) — the Table-1
    /// bounded-arboricity workload.
    Forests {
        k: usize,
    },
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        p: f64,
    },
    /// Erdős–Rényi `G(n, m)`.
    Gnm {
        m: usize,
    },
    /// Barabási–Albert preferential attachment, `m` edges per arrival.
    Ba {
        m: usize,
    },
    /// Random geometric graph on the unit square.
    Geometric {
        radius: f64,
    },
    /// R-MAT recursive-matrix graph (Graph500 quadrant probabilities):
    /// `edge_factor * n` edge samples. The huge-n power-law family.
    Rmat {
        edge_factor: usize,
    },
    /// Random hyperbolic graph (Krioukov disk, `R = 2 ln n + c`):
    /// power-law exponent `2·alpha + 1`; larger `c` is sparser.
    Hyperbolic {
        alpha: f64,
        c: f64,
    },
    /// The graph is supplied out of band (e.g. `ncc-cli run --graph file`);
    /// such a spec cannot rebuild its graph and exists only as an echo.
    Provided,
}

impl FamilySpec {
    /// Short lowercase family name, matching the `ncc-cli` vocabulary.
    pub fn name(&self) -> &'static str {
        match self {
            FamilySpec::Path => "path",
            FamilySpec::Cycle => "cycle",
            FamilySpec::Star => "star",
            FamilySpec::Complete => "complete",
            FamilySpec::Grid { .. } => "grid",
            FamilySpec::TGrid { .. } => "tgrid",
            FamilySpec::Tree => "tree",
            FamilySpec::Forests { .. } => "forests",
            FamilySpec::Gnp { .. } => "gnp",
            FamilySpec::Gnm { .. } => "gnm",
            FamilySpec::Ba { .. } => "ba",
            FamilySpec::Geometric { .. } => "geometric",
            FamilySpec::Rmat { .. } => "rmat",
            FamilySpec::Hyperbolic { .. } => "hyperbolic",
            FamilySpec::Provided => "provided",
        }
    }
}

/// Serializable description of one scenario: graph family + parameters,
/// node count, weight range, capacity, seed, and execution layout.
///
/// `threads` is *execution layout*, not scenario identity: the engine is
/// deterministic for any thread count, so two specs differing only in
/// `threads` produce bit-identical results (property-tested in
/// `tests/runner_api.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    pub family: FamilySpec,
    /// Number of nodes (and network size — the model puts the input graph
    /// and the clique on the same node set).
    pub n: usize,
    /// Master seed: graph generation, edge weights, and the engine's
    /// randomness are all derived from it.
    pub seed: u64,
    /// Edge weights for weighted algorithms are uniform in `1..=weight_max`.
    pub weight_max: u64,
    /// Per-node, per-round communication budget.
    pub capacity: Capacity,
    /// The network model the scenario executes under (NCC, Congested
    /// Clique, k-machine, hybrid local+global). Part of scenario identity:
    /// two specs differing only in `model` are different experiments.
    pub model: ModelSpec,
    /// Worker threads for the engine (results are identical for any value).
    pub threads: usize,
    /// Source node for rooted algorithms (BFS).
    pub source: NodeId,
}

impl ScenarioSpec {
    /// A spec with the repository defaults: `Θ(log n)` capacity, weights up
    /// to `n²`, sequential execution, source 0.
    pub fn new(family: FamilySpec, n: usize, seed: u64) -> Self {
        ScenarioSpec {
            family,
            n,
            seed,
            weight_max: (n.saturating_mul(n)).max(1) as u64,
            capacity: Capacity::default_for(n),
            model: ModelSpec::Ncc,
            threads: 1,
            source: 0,
        }
    }

    /// Convenience constructor for grids (`n` is derived from the sides).
    pub fn grid(rows: usize, cols: usize, seed: u64) -> Self {
        Self::new(FamilySpec::Grid { rows, cols }, rows * cols, seed)
    }

    pub fn with_capacity(mut self, c: Capacity) -> Self {
        self.capacity = c;
        self
    }

    pub fn with_weight_max(mut self, w: u64) -> Self {
        self.weight_max = w.max(1);
        self
    }

    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_source(mut self, src: NodeId) -> Self {
        self.source = src;
        self
    }

    /// Selects the execution model. For
    /// [`ModelSpec::CongestedClique`] the node capacity is switched to
    /// [`Capacity::unbounded`] in the same stroke — the Congested Clique
    /// has no node caps, and capacity-adaptive protocols must see that.
    pub fn with_model(mut self, model: ModelSpec) -> Self {
        if matches!(model, ModelSpec::CongestedClique { .. }) {
            self.capacity = Capacity::unbounded();
        }
        self.model = model;
        self
    }

    /// One-line label for tables: `gnp n=256 seed=7` (non-default models
    /// append `model=...`).
    pub fn label(&self) -> String {
        let mut l = format!("{} n={} seed={}", self.family.name(), self.n, self.seed);
        if self.model != ModelSpec::Ncc {
            l.push_str(&format!(" model={}", self.model.name()));
        }
        l
    }

    /// Deterministically regenerates the input graph from the spec.
    pub fn build_graph(&self) -> Result<Graph, RunnerError> {
        let n = self.n;
        let seed = self.seed;
        let g = match &self.family {
            FamilySpec::Path => gen::path(n),
            FamilySpec::Cycle => gen::cycle(n),
            FamilySpec::Star => gen::star(n),
            FamilySpec::Complete => gen::complete(n),
            FamilySpec::Grid { rows, cols } | FamilySpec::TGrid { rows, cols } => {
                if rows * cols != n {
                    return Err(RunnerError::Scenario(format!(
                        "grid {rows}x{cols} has {} nodes but spec says n={n}",
                        rows * cols
                    )));
                }
                match &self.family {
                    FamilySpec::Grid { .. } => gen::grid(*rows, *cols),
                    _ => gen::triangulated_grid(*rows, *cols),
                }
            }
            FamilySpec::Tree => gen::random_tree(n, seed),
            FamilySpec::Forests { k } => gen::forest_union(n, (*k).max(1), seed),
            FamilySpec::Gnp { p } => gen::gnp(n, *p, seed),
            FamilySpec::Gnm { m } => gen::gnm(n, *m, seed),
            FamilySpec::Ba { m } => gen::barabasi_albert(n, (*m).max(1), seed),
            FamilySpec::Geometric { radius } => gen::random_geometric(n, *radius, seed),
            // The huge-n families generate on the spec's thread layout.
            // `threads` stays execution layout, not identity: the parallel
            // generators are byte-identical for any thread count
            // (property-tested in `crates/graph/tests/gen_parallel.rs`).
            FamilySpec::Rmat { edge_factor } => gen::rmat_threads(
                n,
                n.saturating_mul((*edge_factor).max(1)),
                seed,
                self.threads.max(1),
            ),
            FamilySpec::Hyperbolic { alpha, c } => {
                gen::hyperbolic_threads(n, *alpha, *c, seed, self.threads.max(1))
            }
            FamilySpec::Provided => {
                return Err(RunnerError::Scenario(
                    "family `provided` carries no generator; use Scenario::from_graph".into(),
                ))
            }
        };
        Ok(g)
    }

    /// Instantiates the full scenario (graph + weights).
    pub fn build(&self) -> Result<Scenario, RunnerError> {
        let graph = self.build_graph()?;
        Ok(Scenario::from_graph(self.clone(), graph))
    }

    /// The engine configuration this spec describes.
    pub fn net_config(&self) -> NetConfig {
        NetConfig::new(self.n, self.seed)
            .with_capacity(self.capacity)
            .with_threads(self.threads.max(1))
    }
}

/// A materialised scenario: the spec plus the graph and weighted graph it
/// deterministically generates. Algorithms read their input from here.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub spec: ScenarioSpec,
    pub graph: Graph,
    /// Lazily weighted copy of the graph — see [`Scenario::weighted`].
    /// Unweighted algorithms (the majority) never pay the second O(n + m)
    /// graph, which matters at n = 10⁷.
    weighted: OnceLock<WeightedGraph>,
}

impl Scenario {
    /// Wraps an externally supplied graph (graph files, custom topologies).
    /// The spec's `n` is forced to the graph's node count so the engine and
    /// the input stay on the same node set.
    pub fn from_graph(mut spec: ScenarioSpec, graph: Graph) -> Self {
        spec.n = graph.n();
        Scenario {
            spec,
            graph,
            weighted: OnceLock::new(),
        }
    }

    /// The graph with seeded random weights in `1..=weight_max` (used by
    /// weighted algorithms; derived from `seed ^ 1` like the CLI always
    /// did). Built on first use and cached; the weight stream depends only
    /// on the spec, so laziness cannot change any result.
    pub fn weighted(&self) -> &WeightedGraph {
        self.weighted.get_or_init(|| {
            gen::with_random_weights(&self.graph, self.spec.weight_max.max(1), self.spec.seed ^ 1)
        })
    }

    /// Instantiates the spec's [`ModelSpec`] into a live network model.
    /// Deterministic: the k-machine partition is keyed by the spec seed and
    /// the hybrid adjacency is the scenario's own input graph.
    pub fn build_model(&self) -> Box<dyn NetworkModel> {
        match self.spec.model {
            ModelSpec::Ncc => Box::new(Ncc),
            ModelSpec::CongestedClique { edge_cap } => Box::new(CongestedClique::new(edge_cap)),
            ModelSpec::KMachine { k, link_capacity } => Box::new(KMachineModel::new(
                self.spec.n,
                k.max(1),
                self.spec.seed,
                link_capacity.max(1),
            )),
            ModelSpec::HybridLocal { local_edge_cap } => Box::new(HybridLocal::from_edges(
                self.spec.n,
                self.graph.edges(),
                local_edge_cap,
            )),
        }
    }

    /// A fresh engine configured per the spec (capacity, seed, threads,
    /// network model). Each call returns an identical engine, so repeated
    /// runs reproduce exactly.
    pub fn engine(&self) -> Engine {
        Engine::with_model(self.spec.net_config(), self.build_model())
    }

    /// Like [`Self::engine`] but with the thread count overridden — an
    /// execution-layout knob that by construction cannot change results
    /// (and is therefore *not* echoed into [`crate::RunRecord`]s).
    pub fn engine_with_threads(&self, threads: usize) -> Engine {
        Engine::with_model(
            self.spec.net_config().with_threads(threads.max(1)),
            self.build_model(),
        )
    }

    /// Clamped BFS source (a spec written for a larger `n` stays usable).
    pub fn source(&self) -> NodeId {
        self.spec
            .source
            .min(self.graph.n().saturating_sub(1) as NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builds_deterministic_graph() {
        let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.2 }, 64, 7);
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.graph.n(), 64);
        assert_eq!(a.graph.m(), b.graph.m());
        assert_eq!(a.weighted().m(), a.graph.m());
        // lazy weights are deterministic too
        assert_eq!(a.weighted(), b.weighted());
    }

    #[test]
    fn huge_family_specs_build_and_round_trip() {
        for family in [
            FamilySpec::Rmat { edge_factor: 8 },
            FamilySpec::Hyperbolic {
                alpha: 0.75,
                c: 0.0,
            },
        ] {
            let spec = ScenarioSpec::new(family, 256, 13);
            let scn = spec.build().unwrap();
            assert_eq!(scn.graph.n(), 256);
            assert!(scn.graph.m() > 0, "{} generated no edges", spec.label());
            let json = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
            // deterministic rebuild
            assert_eq!(scn.graph, spec.build().unwrap().graph);
        }
    }

    #[test]
    fn grid_spec_validates_node_count() {
        let mut spec = ScenarioSpec::grid(4, 8, 1);
        assert_eq!(spec.n, 32);
        assert!(spec.build().is_ok());
        spec.n = 33;
        assert!(matches!(spec.build(), Err(RunnerError::Scenario(_))));
    }

    #[test]
    fn provided_family_cannot_regenerate() {
        let spec = ScenarioSpec::new(FamilySpec::Provided, 8, 1);
        assert!(spec.build_graph().is_err());
        let scn = Scenario::from_graph(spec, gen::path(8));
        assert_eq!(scn.graph.n(), 8);
        assert_eq!(scn.spec.n, 8);
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = ScenarioSpec::new(FamilySpec::Forests { k: 3 }, 128, 42)
            .with_weight_max(1000)
            .with_threads(4)
            .with_source(5);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn engines_from_same_spec_are_identical() {
        let spec = ScenarioSpec::new(FamilySpec::Star, 32, 9);
        let scn = spec.build().unwrap();
        assert_eq!(scn.engine().config().seed, 9);
        assert_eq!(scn.engine_with_threads(8).config().threads, 8);
        assert_eq!(scn.engine_with_threads(8).config().seed, 9);
    }

    #[test]
    fn model_field_instantiates_every_model() {
        let base = ScenarioSpec::new(FamilySpec::Gnp { p: 0.1 }, 32, 4);
        for (model, name) in [
            (ModelSpec::Ncc, "ncc"),
            (
                ModelSpec::CongestedClique { edge_cap: 4 },
                "congested-clique",
            ),
            (
                ModelSpec::KMachine {
                    k: 4,
                    link_capacity: 1,
                },
                "kmachine",
            ),
            (ModelSpec::HybridLocal { local_edge_cap: 2 }, "hybrid"),
        ] {
            let spec = base.clone().with_model(model);
            let scn = spec.build().unwrap();
            assert_eq!(scn.build_model().name(), name);
            assert_eq!(scn.engine().model().name(), name);
        }
    }

    #[test]
    fn congested_clique_model_unbinds_capacity() {
        let spec = ScenarioSpec::new(FamilySpec::Path, 16, 1)
            .with_model(ModelSpec::CongestedClique { edge_cap: 8 });
        assert_eq!(spec.capacity, Capacity::unbounded());
        assert!(spec.label().contains("model=congested-clique"));
        // Ncc specs keep the default capacity and an unsuffixed label
        let ncc = ScenarioSpec::new(FamilySpec::Path, 16, 1);
        assert_eq!(ncc.capacity, Capacity::default_for(16));
        assert!(!ncc.label().contains("model="));
    }

    #[test]
    fn hybrid_model_uses_scenario_adjacency() {
        let spec = ScenarioSpec::new(FamilySpec::Path, 8, 2)
            .with_model(ModelSpec::HybridLocal { local_edge_cap: 1 });
        let scn = spec.build().unwrap();
        let model = scn.build_model();
        let hybrid = model
            .as_any()
            .downcast_ref::<HybridLocal>()
            .expect("hybrid model");
        assert_eq!(hybrid.local_edges(), scn.graph.m());
        assert!(hybrid.is_local(0, 1));
        assert!(!hybrid.is_local(0, 7));
    }

    #[test]
    fn spec_with_model_json_round_trips() {
        let spec = ScenarioSpec::new(FamilySpec::Tree, 64, 7).with_model(ModelSpec::KMachine {
            k: 8,
            link_capacity: 2,
        });
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
