//! The algorithm registry: one object-safe trait, one implementation per
//! paper algorithm, one static table to dispatch by name.
//!
//! Callers (the CLI, experiment sweeps, the suite) never match on
//! algorithm names to pick an entrypoint signature; they look the name up
//! with [`find_algorithm`] and call [`Algorithm::run`], which owns the full
//! in-model pipeline for that algorithm — seed agreement, any §5 setup
//! (orientation + broadcast trees), the algorithm itself, and the
//! centralised correctness check — and returns a typed [`RunRecord`].

use ncc_baselines::{broadcast_all, gossip_all};
use ncc_butterfly::{aggregate_and_broadcast, broadcast_seed, MinU64, SchedReport};
use ncc_core::{AlgoReport, BroadcastTrees};
use ncc_graph::{analysis, check};
use ncc_hashing::SharedRandomness;
use ncc_model::{ilog2_ceil, Engine, ModelError};

use crate::{RunRecord, Scenario, Verdict};

/// An algorithm runnable on any [`Scenario`] through the registry.
///
/// Implementations are unit structs, so the trait is object-safe and the
/// registry is a static table of `&'static dyn Algorithm`.
pub trait Algorithm: Sync {
    /// Registry name (`ncc-cli run <name>` vocabulary).
    fn name(&self) -> &'static str;

    /// One-line description, shown in `ncc-cli help` and the README.
    fn description(&self) -> &'static str;

    /// Runs the full pipeline on `eng` and reports what happened.
    ///
    /// The engine is expected to be freshly built from the scenario (see
    /// [`crate::run_record`]); all randomness beyond the engine's own is
    /// agreed *in model* from `scn.spec.seed`, so the record is a pure
    /// function of `(algorithm, spec)`.
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError>;

    /// The scheduler's packing plan for this algorithm on `scn` — how the
    /// declared protocol DAG was packed into mux lanes. `None` for
    /// algorithms that are not DAG-declared (the baselines).
    fn plan(&self, _eng: &mut Engine, _scn: &Scenario) -> Result<Option<SchedReport>, ModelError> {
        Ok(None)
    }
}

/// Echoes the scheduler's packing plan into a record's metrics, so sweeps
/// can see budget usage without re-running the algorithm.
fn with_plan_metrics(rec: RunRecord, plan: &SchedReport) -> RunRecord {
    rec.with_metric("dag_stages", plan.stages.len() as u64)
        .with_metric("dag_lane_stages", plan.lane_stages() as u64)
        .with_metric("dag_max_lanes", plan.max_lanes() as u64)
        .with_metric("dag_budget", plan.budget as u64)
        .with_metric("dag_splits", plan.splits() as u64)
}

/// Renders a packing plan for human eyes (`ncc-cli explain`): one line per
/// packed stage — lanes vs budget, barrier, rounds, lane labels — plus a
/// totals line. `None` when the algorithm is not DAG-declared.
pub fn explain_text(
    algo: &dyn Algorithm,
    eng: &mut Engine,
    scn: &Scenario,
) -> Result<Option<String>, ModelError> {
    use std::fmt::Write;
    let Some(plan) = algo.plan(eng, scn)? else {
        return Ok(None);
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "packing plan for `{}` on {} (lane budget {}):",
        algo.name(),
        scn.spec.label(),
        plan.budget
    );
    for (i, st) in plan.stages.iter().enumerate() {
        let labels: Vec<&str> = st.lanes.iter().map(|l| l.label.as_str()).collect();
        let _ = writeln!(
            out,
            "  stage {:>4}  {:>2}/{} lanes  {}  {:>5} rounds  {}{}",
            i + 1,
            st.lanes.len(),
            plan.budget,
            if st.barrier { "barrier" } else { "       " },
            st.rounds(),
            labels.join(" "),
            if st.deferred.is_empty() {
                String::new()
            } else {
                format!("  (deferred: {})", st.deferred.join(" "))
            }
        );
    }
    let _ = writeln!(
        out,
        "total: {} stages, {} lane-stages, max {}/{} lanes, {} barriers, {} budget splits",
        plan.stages.len(),
        plan.lane_stages(),
        plan.max_lanes(),
        plan.budget,
        plan.barriers(),
        plan.splits()
    );
    Ok(Some(out))
}

/// Agrees on shared randomness in model (charged rounds) and records the
/// cost. Mirrors the §2.2 seed-broadcast budget used across the harness.
fn agree(
    eng: &mut Engine,
    report: &mut AlgoReport,
    seed: u64,
) -> Result<SharedRandomness, ModelError> {
    let n = eng.n();
    let k = SharedRandomness::k_for(n);
    let bits = SharedRandomness::bits_required(n, 2 * ilog2_ceil(n).max(1) as usize, k);
    let (shared, stats) = broadcast_seed(eng, seed ^ 0x5eed, bits)?;
    report.push("seed-agreement", stats);
    Ok(shared)
}

/// Rounds spent before the algorithm proper (seed agreement + §5 prep) —
/// echoed into `RunRecord.metrics` so sweeps can split prep from main.
fn prep_rounds(report: &AlgoReport) -> u64 {
    report.stage_total("seed-agreement").rounds + report.stage_total("orientation+trees").rounds
}

/// The shared §5 preparation pipeline: seed agreement + orientation +
/// broadcast trees, all charged into the report.
fn prepare(
    eng: &mut Engine,
    scn: &Scenario,
    report: &mut AlgoReport,
) -> Result<(SharedRandomness, BroadcastTrees), ModelError> {
    let shared = agree(eng, report, scn.spec.seed)?;
    let (bt, rep) = ncc_core::build_broadcast_trees(eng, &shared, &scn.graph)?;
    report.push("orientation+trees", rep.total);
    Ok((shared, bt))
}

// ---------------------------------------------------------------------------
// §3 — MST

struct Mst;

impl Algorithm for Mst {
    fn name(&self) -> &'static str {
        "mst"
    }
    fn description(&self) -> &'static str {
        "minimum spanning forest, Boruvka + sketch FindMin (§3, O(log⁴ n))"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        let shared = agree(eng, &mut report, scn.spec.seed)?;
        let r = ncc_core::mst(eng, &shared, scn.weighted())?;
        // per-phase accounting: where the lane-composed rounds went
        let rounds_findmin: u64 = r
            .report
            .stages
            .iter()
            .filter(|(l, _)| l.contains(":find"))
            .map(|(_, s)| s.rounds)
            .sum();
        report.push("mst", r.report.total);
        let verdict = Verdict::from_check(check::check_mst(scn.weighted(), &r.edges));
        let weight = scn.weighted().total_weight(&r.edges);
        let summary = format!(
            "{} edges, weight {weight}, {} Boruvka phases",
            r.edges.len(),
            r.phases
        );
        let rec = RunRecord::new(
            self.name(),
            &scn.spec,
            report,
            verdict,
            Some(r.phases),
            summary,
        )
        .with_metric("edges", r.edges.len() as u64)
        .with_metric("weight", weight)
        .with_metric("findmin_steps", r.findmin_steps as u64)
        .with_metric("rounds_findmin", rounds_findmin)
        .with_metric("lane_stages", r.lane_stages as u64);
        Ok(with_plan_metrics(rec, &r.plan))
    }
    fn plan(&self, eng: &mut Engine, scn: &Scenario) -> Result<Option<SchedReport>, ModelError> {
        let mut report = AlgoReport::default();
        let shared = agree(eng, &mut report, scn.spec.seed)?;
        Ok(Some(ncc_core::mst(eng, &shared, scn.weighted())?.plan))
    }
}

// ---------------------------------------------------------------------------
// §4 — O(a)-Orientation

struct Orientation;

impl Algorithm for Orientation {
    fn name(&self) -> &'static str {
        "orientation"
    }
    fn description(&self) -> &'static str {
        "O(a)-orientation by iterated peeling (§4, O((a+log n)·log n))"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        let shared = agree(eng, &mut report, scn.spec.seed)?;
        let r = ncc_core::orient(eng, &shared, &scn.graph)?;
        report.push("orientation", r.report.total);
        let (_, ahi) = analysis::arboricity_bounds(&scn.graph);
        let verdict = Verdict::from_check(check::check_orientation(
            &scn.graph,
            &r.directed_edges(),
            4 * ahi.max(1),
        ));
        let summary = format!(
            "max outdegree {} (d* = {}), {} phases",
            r.max_outdegree(),
            r.d_star,
            r.phases
        );
        let rec = RunRecord::new(
            self.name(),
            &scn.spec,
            report,
            verdict,
            Some(r.phases),
            summary,
        )
        .with_metric("max_outdegree", r.max_outdegree() as u64)
        .with_metric("d_star", r.d_star as u64)
        .with_metric("delta", r.max_degree as u64)
        .with_metric("lane_stages", r.lane_stages as u64);
        Ok(with_plan_metrics(rec, &r.plan))
    }
    fn plan(&self, eng: &mut Engine, scn: &Scenario) -> Result<Option<SchedReport>, ModelError> {
        let mut report = AlgoReport::default();
        let shared = agree(eng, &mut report, scn.spec.seed)?;
        Ok(Some(ncc_core::orient(eng, &shared, &scn.graph)?.plan))
    }
}

// ---------------------------------------------------------------------------
// §5 — BFS / MIS / Matching / Coloring (share the preparation pipeline)

struct Bfs;

impl Algorithm for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }
    fn description(&self) -> &'static str {
        "BFS tree by layered multicast (§5.1, O((a+D+log n)·log n))"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        let src = scn.source();
        let r = ncc_core::bfs(eng, &shared, &bt, &scn.graph, src)?;
        report.push("bfs", r.report.total);
        let prep = prep_rounds(&report);
        let main = report.stage_total("bfs").rounds;
        let verdict = Verdict::from_check(check::check_bfs(&scn.graph, src, &r.dist, &r.parent));
        let reached = r.dist.iter().filter(|&&d| d != u32::MAX).count();
        let summary = format!(
            "source {src}: {reached}/{} reached, {} frontier phases",
            scn.graph.n(),
            r.phases
        );
        let rec = RunRecord::new(
            self.name(),
            &scn.spec,
            report,
            verdict,
            Some(r.phases),
            summary,
        )
        .with_metric("reached", reached as u64)
        .with_metric("rounds_prep", prep)
        .with_metric("rounds_main", main);
        Ok(with_plan_metrics(rec, &r.plan))
    }
    fn plan(&self, eng: &mut Engine, scn: &Scenario) -> Result<Option<SchedReport>, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        Ok(Some(
            ncc_core::bfs(eng, &shared, &bt, &scn.graph, scn.source())?.plan,
        ))
    }
}

struct Mis;

impl Algorithm for Mis {
    fn name(&self) -> &'static str {
        "mis"
    }
    fn description(&self) -> &'static str {
        "maximal independent set, Luby over broadcast trees (§5.2)"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        let r = ncc_core::mis(eng, &shared, &bt, &scn.graph)?;
        report.push("mis", r.report.total);
        let prep = prep_rounds(&report);
        let main = report.stage_total("mis").rounds;
        let verdict = Verdict::from_check(check::check_mis(&scn.graph, &r.in_mis));
        let size = r.in_mis.iter().filter(|&&b| b).count();
        let summary = format!("{size} nodes in the set, {} phases", r.phases);
        let rec = RunRecord::new(
            self.name(),
            &scn.spec,
            report,
            verdict,
            Some(r.phases),
            summary,
        )
        .with_metric("mis_size", size as u64)
        .with_metric("rounds_prep", prep)
        .with_metric("rounds_main", main);
        Ok(with_plan_metrics(rec, &r.plan))
    }
    fn plan(&self, eng: &mut Engine, scn: &Scenario) -> Result<Option<SchedReport>, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        Ok(Some(ncc_core::mis(eng, &shared, &bt, &scn.graph)?.plan))
    }
}

struct Matching;

impl Algorithm for Matching {
    fn name(&self) -> &'static str {
        "matching"
    }
    fn description(&self) -> &'static str {
        "maximal matching by random proposals (§5.3)"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        let r = ncc_core::maximal_matching(eng, &shared, &bt, &scn.graph)?;
        report.push("matching", r.report.total);
        let prep = prep_rounds(&report);
        let main = report.stage_total("matching").rounds;
        let verdict = Verdict::from_check(check::check_matching(&scn.graph, &r.mate));
        let pairs = r.mate.iter().filter(|m| m.is_some()).count() / 2;
        let summary = format!("{pairs} pairs, {} phases", r.phases);
        let rec = RunRecord::new(
            self.name(),
            &scn.spec,
            report,
            verdict,
            Some(r.phases),
            summary,
        )
        .with_metric("pairs", pairs as u64)
        .with_metric("rounds_prep", prep)
        .with_metric("rounds_main", main);
        Ok(with_plan_metrics(rec, &r.plan))
    }
    fn plan(&self, eng: &mut Engine, scn: &Scenario) -> Result<Option<SchedReport>, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        Ok(Some(
            ncc_core::maximal_matching(eng, &shared, &bt, &scn.graph)?.plan,
        ))
    }
}

struct Coloring;

impl Algorithm for Coloring {
    fn name(&self) -> &'static str {
        "coloring"
    }
    fn description(&self) -> &'static str {
        "O(a)-coloring via orientation classes (§5.4)"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        let r = ncc_core::coloring(eng, &shared, &bt.orientation, &scn.graph)?;
        report.push("coloring", r.report.total);
        let prep = prep_rounds(&report);
        let main = report.stage_total("coloring").rounds;
        let verdict = Verdict::from_check(check::check_coloring(&scn.graph, &r.colors, r.palette));
        let used = r.colors.iter().max().map_or(0, |c| c + 1);
        let summary = format!("{used} colors used (palette {})", r.palette);
        let rec = RunRecord::new(self.name(), &scn.spec, report, verdict, None, summary)
            .with_metric("colors_used", used as u64)
            .with_metric("palette", r.palette as u64)
            .with_metric("rounds_prep", prep)
            .with_metric("rounds_main", main);
        Ok(with_plan_metrics(rec, &r.plan))
    }
    fn plan(&self, eng: &mut Engine, scn: &Scenario) -> Result<Option<SchedReport>, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        Ok(Some(
            ncc_core::coloring(eng, &shared, &bt.orientation, &scn.graph)?.plan,
        ))
    }
}

struct Apsp;

impl Algorithm for Apsp {
    fn name(&self) -> &'static str {
        "apsp"
    }
    fn description(&self) -> &'static str {
        "landmark distance sketches: Θ(log n) parallel BFS instances (§5.1 × §2)"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        let r = ncc_core::landmark_apsp(eng, &shared, &bt, &scn.graph, None)?;
        report.push("apsp", r.report.total);
        let prep = prep_rounds(&report);
        let main = report.stage_total("apsp").rounds;
        // every sketch must equal the centralised BFS oracle exactly
        let exact = r
            .landmarks
            .iter()
            .enumerate()
            .all(|(l, &lm)| analysis::bfs_distances(&scn.graph, lm) == r.dist[l]);
        let verdict = if exact {
            Verdict::Verified
        } else {
            Verdict::Failed
        };
        let summary = format!(
            "{} landmark sketches, {} frontier phases",
            r.landmarks.len(),
            r.phases
        );
        let rec = RunRecord::new(
            self.name(),
            &scn.spec,
            report,
            verdict,
            Some(r.phases),
            summary,
        )
        .with_metric("landmarks", r.landmarks.len() as u64)
        .with_metric("rounds_prep", prep)
        .with_metric("rounds_main", main);
        Ok(with_plan_metrics(rec, &r.plan))
    }
    fn plan(&self, eng: &mut Engine, scn: &Scenario) -> Result<Option<SchedReport>, ModelError> {
        let mut report = AlgoReport::default();
        let (shared, bt) = prepare(eng, scn, &mut report)?;
        Ok(Some(
            ncc_core::landmark_apsp(eng, &shared, &bt, &scn.graph, None)?.plan,
        ))
    }
}

// ---------------------------------------------------------------------------
// §1 baselines — gossip and broadcast (capacity-bound demonstrations)

struct Gossip;

impl Algorithm for Gossip {
    fn name(&self) -> &'static str {
        "gossip"
    }
    fn description(&self) -> &'static str {
        "all-to-all token gossip baseline (§1, Θ(n/log n) rounds)"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        let stats = gossip_all(eng)?;
        report.push("gossip", stats);
        let summary = format!("{} rounds, {} messages", stats.rounds, stats.sent);
        Ok(RunRecord::new(
            self.name(),
            &scn.spec,
            report,
            Verdict::Unchecked,
            None,
            summary,
        ))
    }
}

struct Broadcast;

impl Algorithm for Broadcast {
    fn name(&self) -> &'static str {
        "broadcast"
    }
    fn description(&self) -> &'static str {
        "single-source flooding broadcast baseline (§1, Θ(log n/log log n))"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        let stats = broadcast_all(eng, scn.spec.seed ^ 42)?;
        report.push("broadcast", stats);
        let summary = format!("{} rounds, {} messages", stats.rounds, stats.sent);
        Ok(RunRecord::new(
            self.name(),
            &scn.spec,
            report,
            Verdict::Unchecked,
            None,
            summary,
        ))
    }
}

// ---------------------------------------------------------------------------
// §2.2 — butterfly Aggregate-and-Broadcast

struct ButterflyAggregation;

impl Algorithm for ButterflyAggregation {
    fn name(&self) -> &'static str {
        "butterfly-aggregation"
    }
    fn description(&self) -> &'static str {
        "global min via butterfly aggregate-and-broadcast (Thm 2.2, O(log n))"
    }
    fn run(&self, eng: &mut Engine, scn: &Scenario) -> Result<RunRecord, ModelError> {
        let mut report = AlgoReport::default();
        // One seeded value per node; the oracle minimum is computable
        // locally, which gives this primitive a real correctness check.
        let inputs: Vec<Option<u64>> = (0..scn.spec.n as u64)
            .map(|i| Some((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ scn.spec.seed) >> 16))
            .collect();
        let oracle = inputs.iter().flatten().copied().min();
        let (results, stats) = aggregate_and_broadcast(eng, inputs, &MinU64)?;
        report.push("aggregate-and-broadcast", stats);
        let verdict = if results.iter().all(|r| *r == oracle) {
            Verdict::Verified
        } else {
            Verdict::Failed
        };
        let summary = format!("global min {:?} agreed by all {} nodes", oracle, scn.spec.n);
        Ok(RunRecord::new(
            self.name(),
            &scn.spec,
            report,
            verdict,
            None,
            summary,
        ))
    }
}

// ---------------------------------------------------------------------------
// registry

static MST: Mst = Mst;
static ORIENTATION: Orientation = Orientation;
static BFS: Bfs = Bfs;
static MIS: Mis = Mis;
static MATCHING: Matching = Matching;
static COLORING: Coloring = Coloring;
static APSP: Apsp = Apsp;
static GOSSIP: Gossip = Gossip;
static BROADCAST: Broadcast = Broadcast;
static BUTTERFLY_AGG: ButterflyAggregation = ButterflyAggregation;

static REGISTRY: [&dyn Algorithm; 10] = [
    &MST,
    &ORIENTATION,
    &BFS,
    &MIS,
    &MATCHING,
    &COLORING,
    &APSP,
    &GOSSIP,
    &BROADCAST,
    &BUTTERFLY_AGG,
];

/// Every registered algorithm, in canonical (paper) order.
pub fn algorithms() -> &'static [&'static dyn Algorithm] {
    &REGISTRY
}

/// Looks an algorithm up by its registry name. Matching is
/// case-insensitive (the same label-match convention `suite --filter`
/// uses); registry names are all lowercase, so exact names still hit.
pub fn find_algorithm(name: &str) -> Option<&'static dyn Algorithm> {
    let name = name.to_lowercase();
    REGISTRY.iter().copied().find(|a| a.name() == name)
}

/// The closest registry name to a failed lookup — the "did you mean"
/// suggestion for CLI error paths. Prefers a substring match in either
/// direction (`agg` → `butterfly-aggregation`, `mst-v2` → `mst`), then
/// falls back to the smallest edit distance when it is small enough to be
/// a plausible typo. `None` when nothing is close.
pub fn suggest_algorithm(name: &str) -> Option<&'static str> {
    let q = name.to_lowercase();
    if q.is_empty() {
        return None;
    }
    if let Some(a) = REGISTRY
        .iter()
        .find(|a| a.name().contains(&q) || q.contains(a.name()))
    {
        return Some(a.name());
    }
    REGISTRY
        .iter()
        .map(|a| (edit_distance(&q, a.name()), a.name()))
        .min_by_key(|(d, n)| (*d, std::cmp::Reverse(common_prefix(&q, n))))
        .filter(|(d, _)| *d <= 3)
        .map(|(_, n)| n)
}

/// Length of the shared prefix — the tie-break between equally distant
/// candidates (`bsf` is as far from `mst` as from `bfs`; the leading `b`
/// decides).
fn common_prefix(a: &str, b: &str) -> usize {
    a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
}

/// Levenshtein distance over bytes (registry names are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The registry vocabulary as one space-separated line (for usage text).
pub fn algorithm_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|a| a.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_complete() {
        let names = algorithm_names();
        assert!(names.len() >= 8, "paper matrix needs ≥ 8 algorithms");
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry names");
        for expected in [
            "mst",
            "orientation",
            "bfs",
            "mis",
            "matching",
            "coloring",
            "apsp",
            "gossip",
            "broadcast",
            "butterfly-aggregation",
        ] {
            assert!(
                find_algorithm(expected).is_some(),
                "{expected} missing from registry"
            );
        }
        assert!(find_algorithm("no-such-algo").is_none());
    }

    #[test]
    fn find_algorithm_is_case_insensitive() {
        assert_eq!(find_algorithm("MST").unwrap().name(), "mst");
        assert_eq!(find_algorithm("Apsp").unwrap().name(), "apsp");
        assert_eq!(
            find_algorithm("Butterfly-Aggregation").unwrap().name(),
            "butterfly-aggregation"
        );
    }

    #[test]
    fn suggestions_cover_typos_and_fragments() {
        // substring in either direction
        assert_eq!(suggest_algorithm("agg"), Some("butterfly-aggregation"));
        assert_eq!(suggest_algorithm("mst-v2"), Some("mst"));
        assert_eq!(suggest_algorithm("ORIENT"), Some("orientation"));
        // small edit distance (mts is 1 edit from mis, 2 from mst)
        assert_eq!(suggest_algorithm("mts"), Some("mis"));
        assert_eq!(suggest_algorithm("colouring"), Some("coloring"));
        assert_eq!(suggest_algorithm("bsf"), Some("bfs"));
        // hopeless inputs get no suggestion
        assert_eq!(suggest_algorithm("quicksort"), None);
        assert_eq!(suggest_algorithm(""), None);
    }

    #[test]
    fn plans_exist_exactly_for_dag_algorithms() {
        use crate::scenario::{FamilySpec, ScenarioSpec};
        let scn = ScenarioSpec::new(FamilySpec::Gnp { p: 0.2 }, 32, 3)
            .build()
            .unwrap();
        for name in [
            "mst",
            "orientation",
            "bfs",
            "mis",
            "matching",
            "coloring",
            "apsp",
        ] {
            let algo = find_algorithm(name).unwrap();
            let mut eng = scn.engine();
            let plan = algo.plan(&mut eng, &scn).unwrap();
            let plan = plan.unwrap_or_else(|| panic!("{name} should expose a packing plan"));
            assert!(!plan.stages.is_empty(), "{name} plan has no stages");
            assert!(
                plan.max_lanes() <= plan.budget,
                "{name} exceeds lane budget"
            );
            let mut eng = scn.engine();
            let text = explain_text(algo, &mut eng, &scn).unwrap().unwrap();
            assert!(text.contains("packing plan"), "{name} render misses header");
            assert!(text.contains("total:"), "{name} render misses totals");
        }
        for name in ["gossip", "broadcast", "butterfly-aggregation"] {
            let algo = find_algorithm(name).unwrap();
            let mut eng = scn.engine();
            assert!(
                algo.plan(&mut eng, &scn).unwrap().is_none(),
                "{name} is not DAG-declared"
            );
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        for a in algorithms() {
            assert!(
                !a.description().is_empty(),
                "{} lacks a description",
                a.name()
            );
        }
    }
}
