//! Typed run results: what one `(algorithm, scenario)` cell produced.
//!
//! A [`RunRecord`] carries only *deterministic* quantities — round and
//! message counters, the correctness verdict, the per-stage breakdown —
//! never wall-clock. That makes the JSON form byte-stable across reruns,
//! thread counts, and machines, which is what lets `bench_compare` gate CI
//! on whole suite snapshots instead of a single hand-instrumented binary.

use ncc_core::AlgoReport;
use serde::{Deserialize, Serialize};

use crate::ScenarioSpec;

/// Outcome of the centralised correctness check for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Output validated against the centralised reference checker.
    Verified,
    /// The algorithm has no reference checker (e.g. pure dissemination
    /// baselines); the run completed and the model invariants held.
    Unchecked,
    /// The checker rejected the output — always a bug.
    Failed,
}

impl Verdict {
    /// `true` unless the checker rejected the output.
    pub fn ok(&self) -> bool {
        !matches!(self, Verdict::Failed)
    }

    /// From a checker result: `Ok → Verified`, `Err → Failed`.
    pub fn from_check(res: Result<(), String>) -> Self {
        match res {
            Ok(()) => Verdict::Verified,
            Err(_) => Verdict::Failed,
        }
    }
}

/// The typed result of running one algorithm on one scenario.
///
/// Top-level counter fields duplicate `report.total` so JSON consumers
/// (plots, the CI gate) can read the headline numbers without digging
/// through stages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Registry name of the algorithm (`mst`, `bfs`, ...).
    pub algorithm: String,
    /// Echo of the scenario that produced this record. `threads` echoes the
    /// spec as written — never an execution-time override — so records are
    /// byte-identical for any actual thread count.
    pub scenario: ScenarioSpec,
    /// Total communication rounds, including in-model setup (seed
    /// agreement, orientation, broadcast trees) where the algorithm uses it.
    pub rounds: u64,
    pub sent: u64,
    pub dropped: u64,
    pub truncated: u64,
    /// Peak per-node per-round load (the Lemma 4.11 quantity).
    pub max_load: u64,
    /// Model rounds charged by the scenario's network model (k-machine
    /// rounds under `ModelSpec::KMachine`; 0 for models that charge
    /// nothing beyond the engine rounds themselves).
    pub km_rounds: u64,
    /// Algorithm phases (Boruvka / peeling / frontier), where meaningful.
    pub phases: Option<u32>,
    pub verdict: Verdict,
    /// One-line human description of the output (edge counts, colors, ...).
    pub summary: String,
    /// Algorithm-specific named outputs (`mis_size`, `palette`, ...), so
    /// sweeps can tabulate results without parsing summaries.
    pub metrics: Vec<(String, u64)>,
    /// Per-stage statistics in execution order.
    pub report: AlgoReport,
}

impl RunRecord {
    /// Assembles a record from the pieces every algorithm driver has.
    pub fn new(
        algorithm: &str,
        spec: &ScenarioSpec,
        report: AlgoReport,
        verdict: Verdict,
        phases: Option<u32>,
        summary: String,
    ) -> Self {
        let t = report.total;
        RunRecord {
            algorithm: algorithm.to_string(),
            scenario: spec.clone(),
            rounds: t.rounds,
            sent: t.sent,
            dropped: t.dropped,
            truncated: t.truncated,
            max_load: t.peak_load(),
            km_rounds: t.km_rounds,
            phases,
            verdict,
            summary,
            // Activity-sparsity metrics are universal: every record shows
            // how wide its widest round was and how many node-rounds of
            // step work the run actually cost (the O(active) quantity —
            // compare against rounds × n to see the sparsity win).
            metrics: vec![
                ("peak_active".to_string(), t.peak_active),
                ("sum_active".to_string(), t.node_rounds),
            ],
            report,
        }
    }

    /// Attaches a named algorithm-specific output.
    pub fn with_metric(mut self, name: &str, value: u64) -> Self {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// Looks a named output up.
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Compact JSON form (`serde_json::to_string`).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("RunRecord serializes")
    }

    /// Pretty JSON form, for files meant to be read by humans and diffed.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunRecord serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FamilySpec;
    use ncc_model::ExecStats;

    fn sample() -> RunRecord {
        let mut report = AlgoReport::default();
        report.push(
            "setup",
            ExecStats {
                rounds: 5,
                sent: 40,
                delivered: 40,
                max_out: 3,
                ..ExecStats::default()
            },
        );
        report.push(
            "main",
            ExecStats {
                rounds: 7,
                sent: 10,
                delivered: 9,
                dropped: 1,
                max_in: 6,
                ..ExecStats::default()
            },
        );
        let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.25 }, 32, 3);
        RunRecord::new(
            "demo",
            &spec,
            report,
            Verdict::Verified,
            Some(2),
            "demo output".into(),
        )
        .with_metric("size", 17)
    }

    #[test]
    fn headline_fields_mirror_report_total() {
        let r = sample();
        assert_eq!(r.rounds, 12);
        assert_eq!(r.sent, 50);
        assert_eq!(r.dropped, 1);
        assert_eq!(r.max_load, 6);
        assert!(r.verdict.ok());
    }

    #[test]
    fn record_json_round_trips() {
        let r = sample();
        let back: RunRecord = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back.algorithm, "demo");
        assert_eq!(back.scenario, r.scenario);
        assert_eq!(back.rounds, r.rounds);
        assert_eq!(back.report.stages.len(), 2);
        assert_eq!(back.report.total, r.report.total);
        assert_eq!(back.verdict, Verdict::Verified);
        assert_eq!(back.metric("size"), Some(17));
        assert_eq!(back.metric("missing"), None);
        // and the JSON itself is stable
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn activity_metrics_are_always_present() {
        let r = sample();
        assert_eq!(r.metric("peak_active"), Some(r.report.total.peak_active));
        assert_eq!(r.metric("sum_active"), Some(r.report.total.node_rounds));
    }

    #[test]
    fn verdict_from_check() {
        assert_eq!(Verdict::from_check(Ok(())), Verdict::Verified);
        assert_eq!(Verdict::from_check(Err("bad".into())), Verdict::Failed);
        assert!(!Verdict::Failed.ok());
        assert!(Verdict::Unchecked.ok());
    }
}
