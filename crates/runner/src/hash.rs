//! Content addressing for scenario specs: a stable hash of the canonical
//! serde JSON form of a [`ScenarioSpec`].
//!
//! The serve layer (`ncc-serve`) keys its build cache by this hash: two
//! requests whose specs name the same *scenario identity* must share one
//! built [`crate::Scenario`] artifact. Identity is everything the build
//! depends on — family + parameters, `n`, seed, weight range, capacity,
//! model, source — but **not** `threads`, which is execution layout: the
//! engine is deterministic for any thread count (property-tested since
//! PR 3), so caching across thread counts is exactly as safe as the
//! existing cross-thread byte-identity gates. The hash canonicalises
//! `threads` to 1 before serializing.
//!
//! The hash is FNV-1a over the canonical JSON bytes. serde's derive
//! serializes struct fields in declaration order and the vendored
//! `serde_json` emits no whitespace in compact mode, so the byte stream —
//! and therefore the hash — is stable across processes and runs. It is a
//! *cache key*, not a cryptographic digest: collisions are astronomically
//! unlikely at cache sizes (tens to thousands of entries) and at worst
//! cost a rebuild correctness check in debug builds, never silent reuse
//! (the cache stores the spec alongside the artifact and verifies identity
//! on hit).

use std::fmt;

use crate::ScenarioSpec;

/// A 64-bit content hash of a scenario spec's canonical JSON form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecHash(pub u64);

impl fmt::Display for SpecHash {
    /// Fixed-width lowercase hex — the form used in logs and cache stats.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a, 64-bit. Dependency-free and byte-order independent.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical JSON form the hash is computed over: the spec with
/// `threads` (execution layout, not identity) pinned to 1.
pub fn canonical_spec_json(spec: &ScenarioSpec) -> String {
    let mut canon = spec.clone();
    canon.threads = 1;
    serde_json::to_string(&canon).expect("ScenarioSpec serializes")
}

/// Content hash of a spec — the serve cache key. Equal for specs that
/// differ only in `threads`; different whenever any identity field moves.
pub fn spec_hash(spec: &ScenarioSpec) -> SpecHash {
    SpecHash(fnv1a64(canonical_spec_json(spec).as_bytes()))
}

impl ScenarioSpec {
    /// [`spec_hash`] as a method, for call-site ergonomics.
    pub fn content_hash(&self) -> SpecHash {
        spec_hash(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FamilySpec, ScenarioSpec};
    use ncc_model::ModelSpec;

    #[test]
    fn hash_is_stable_across_clones_and_calls() {
        let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.25 }, 64, 7);
        assert_eq!(spec_hash(&spec), spec_hash(&spec.clone()));
        assert_eq!(spec.content_hash(), spec_hash(&spec));
    }

    #[test]
    fn threads_are_not_identity() {
        let spec = ScenarioSpec::new(FamilySpec::Forests { k: 3 }, 128, 42);
        let t4 = spec.clone().with_threads(4);
        assert_ne!(spec.threads, t4.threads);
        assert_eq!(spec_hash(&spec), spec_hash(&t4));
        assert_eq!(canonical_spec_json(&spec), canonical_spec_json(&t4));
    }

    #[test]
    fn identity_fields_all_move_the_hash() {
        let base = ScenarioSpec::new(FamilySpec::Gnp { p: 0.25 }, 64, 7);
        let variants = [
            base.clone().with_seed(8),
            base.clone().with_weight_max(17),
            base.clone().with_source(3),
            base.clone().with_model(ModelSpec::KMachine {
                k: 8,
                link_capacity: 1,
            }),
            ScenarioSpec::new(FamilySpec::Gnp { p: 0.26 }, 64, 7),
            ScenarioSpec::new(FamilySpec::Gnp { p: 0.25 }, 65, 7),
            ScenarioSpec::new(FamilySpec::Tree, 64, 7),
        ];
        let h0 = spec_hash(&base);
        for v in &variants {
            assert_ne!(spec_hash(v), h0, "variant {} must rehash", v.label());
        }
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let h = SpecHash(0xabc);
        assert_eq!(h.to_string(), "0000000000000abc");
        assert_eq!(h.to_string().len(), 16);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // canonical FNV-1a test vectors
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
