//! Whole-registry sweeps and their JSON snapshot format.
//!
//! `ncc-cli suite` (and any experiment binary that wants a JSON trail)
//! funnels through [`run_suite`]: every registered algorithm over a grid of
//! [`ScenarioSpec`]s, each run on a fresh engine, collected into a
//! [`SuiteOutput`] whose JSON form is fully deterministic — `bench_compare`
//! diffs committed snapshots against fresh runs in CI.

use serde::{Deserialize, Serialize};

use crate::{algorithms, Algorithm, RunRecord, RunnerError, ScenarioSpec};

/// The standard experiment seed (shared with `ncc-bench::SEED`).
pub const SUITE_SEED: u64 = 20190622;

/// A JSON-serializable batch of run records — the schema of
/// `BENCH_suite.json` and of every migrated experiment's `--json` output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteOutput {
    /// Which sweep produced this (e.g. `suite`, `exp10_mis`).
    pub experiment: String,
    /// Base seed of the sweep (individual specs may derive offsets).
    pub seed: u64,
    pub records: Vec<RunRecord>,
}

impl SuiteOutput {
    pub fn new(experiment: &str, seed: u64, records: Vec<RunRecord>) -> Self {
        SuiteOutput {
            experiment: experiment.to_string(),
            seed,
            records,
        }
    }

    /// Pretty JSON, trailing newline included (file-diff friendly).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("SuiteOutput serializes") + "\n"
    }

    /// Writes the pretty JSON form to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_pretty())
    }
}

/// The non-NCC execution models of the standard grid, at network size `n`:
/// Congested Clique (per-edge bandwidth, honest per-edge counters),
/// k-machine (Appendix A cost conversion), and the §1 hybrid local+global
/// setting.
pub fn standard_models(n: usize) -> Vec<ncc_model::ModelSpec> {
    vec![
        ncc_model::ModelSpec::CongestedClique {
            edge_cap: ncc_model::Capacity::default_for(n).send,
        },
        ncc_model::ModelSpec::KMachine {
            k: 8,
            link_capacity: 1,
        },
        ncc_model::ModelSpec::HybridLocal { local_edge_cap: 8 },
    ]
}

/// The default scenario grid for `ncc-cli suite`: the Table-1
/// bounded-arboricity workload plus a sparse `G(n,p)`, at two sizes — small
/// enough to gate CI, broad enough that every algorithm sees both a
/// hub-free and a random topology — followed by a **model dimension**: the
/// `n = 64` `G(n,p)` scenario re-run under every non-NCC model of
/// [`standard_models`], so the snapshot pins all four execution models —
/// and finally two small cells of the huge-graph families (R-MAT and
/// hyperbolic), so the scale-sweep topologies are gated at CI size too.
pub fn standard_grid() -> Vec<ScenarioSpec> {
    let mut grid = Vec::new();
    for &n in &[64usize, 128] {
        grid.push(ScenarioSpec::new(
            crate::FamilySpec::Gnp { p: 24.0 / n as f64 },
            n,
            SUITE_SEED,
        ));
        grid.push(ScenarioSpec::new(
            crate::FamilySpec::Forests { k: 3 },
            n,
            SUITE_SEED + 1,
        ));
    }
    let model_base = grid[0].clone();
    for model in standard_models(model_base.n) {
        grid.push(model_base.clone().with_model(model));
    }
    // huge-graph family dimension (appended so earlier snapshot records
    // keep their identity): small cells of the scale-sweep generators,
    // so every algorithm exercises the power-law topologies in CI
    grid.push(ScenarioSpec::new(
        crate::FamilySpec::Rmat { edge_factor: 8 },
        96,
        SUITE_SEED + 2,
    ));
    grid.push(ScenarioSpec::new(
        crate::FamilySpec::Hyperbolic {
            alpha: 0.75,
            c: 0.0,
        },
        96,
        SUITE_SEED + 3,
    ));
    grid
}

/// The standard grid restricted to one model: NCC keeps the Ncc rows,
/// any other model re-runs the full family × n sweep under it.
pub fn standard_grid_for_model(model: ncc_model::ModelSpec) -> Vec<ScenarioSpec> {
    standard_grid()
        .into_iter()
        .filter(|s| s.model == ncc_model::ModelSpec::Ncc)
        .map(|s| match model {
            ncc_model::ModelSpec::Ncc => s,
            m => s.with_model(m),
        })
        .collect()
}

/// Runs one algorithm on one spec with a fresh engine. The `threads`
/// override changes execution layout only; the record is identical for any
/// value (the engine is deterministic and the spec echo is never mutated).
pub fn run_record_threads(
    algo: &dyn Algorithm,
    spec: &ScenarioSpec,
    threads: usize,
) -> Result<RunRecord, RunnerError> {
    let scn = spec.build()?;
    let mut eng = scn.engine_with_threads(threads);
    algo.run(&mut eng, &scn).map_err(RunnerError::Model)
}

/// Runs one algorithm on one spec with the spec's own thread count.
pub fn run_record(algo: &dyn Algorithm, spec: &ScenarioSpec) -> Result<RunRecord, RunnerError> {
    run_record_threads(algo, spec, spec.threads)
}

/// Registry dispatch by name.
pub fn run_named(name: &str, spec: &ScenarioSpec) -> Result<RunRecord, RunnerError> {
    run_named_threads(name, spec, spec.threads)
}

/// Registry dispatch by name with a thread-count override.
pub fn run_named_threads(
    name: &str,
    spec: &ScenarioSpec,
    threads: usize,
) -> Result<RunRecord, RunnerError> {
    let algo = crate::find_algorithm(name)
        .ok_or_else(|| RunnerError::UnknownAlgorithm(name.to_string()))?;
    run_record_threads(algo, spec, threads)
}

/// Every registered algorithm over every spec in `grid`, each on a fresh
/// engine. Record order is `grid-major, registry-minor`, so the output is
/// stable under registry growth per scenario block.
pub fn run_suite(grid: &[ScenarioSpec], threads: usize) -> Result<SuiteOutput, RunnerError> {
    run_suite_filtered(grid, threads, None)
}

/// [`run_suite`] restricted to algorithms whose registry name contains
/// `algo_filter` (case-insensitive) — `ncc-cli suite --filter`, the
/// fast-iteration path when tuning one algorithm against the grid.
/// Returns [`RunnerError::UnknownAlgorithm`] if nothing matches.
pub fn run_suite_filtered(
    grid: &[ScenarioSpec],
    threads: usize,
    algo_filter: Option<&str>,
) -> Result<SuiteOutput, RunnerError> {
    let selected: Vec<&'static dyn Algorithm> = match algo_filter {
        None => algorithms().to_vec(),
        Some(pat) => {
            let pat = pat.to_lowercase();
            let hits: Vec<_> = algorithms()
                .iter()
                .copied()
                .filter(|a| a.name().contains(&pat))
                .collect();
            if hits.is_empty() {
                return Err(RunnerError::UnknownAlgorithm(pat));
            }
            hits
        }
    };
    let mut records = Vec::with_capacity(grid.len() * selected.len());
    for spec in grid {
        for algo in &selected {
            records.push(run_record_threads(*algo, spec, threads)?);
        }
    }
    Ok(SuiteOutput::new("suite", SUITE_SEED, records))
}

/// Restricts a grid to scenarios whose [`ScenarioSpec::label`] contains
/// `family_filter` (case-insensitive) — `ncc-cli suite --family`. Matches
/// the family name, `n=…`, and `model=…` fragments alike.
pub fn filter_grid(grid: Vec<ScenarioSpec>, family_filter: Option<&str>) -> Vec<ScenarioSpec> {
    match family_filter {
        None => grid,
        Some(pat) => {
            let pat = pat.to_lowercase();
            grid.into_iter()
                .filter(|s| s.label().to_lowercase().contains(&pat))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_grid_is_well_formed() {
        let grid = standard_grid();
        // 4 Ncc cells + one cell per non-NCC model + 2 huge-family cells
        assert_eq!(grid.len(), 4 + standard_models(64).len() + 2);
        for spec in &grid {
            assert!(spec.build().is_ok(), "unbuildable spec {}", spec.label());
        }
        // the model dimension covers all four execution models
        let mut models: Vec<&str> = grid.iter().map(|s| s.model.name()).collect();
        models.sort_unstable();
        models.dedup();
        assert_eq!(
            models,
            vec!["congested-clique", "hybrid", "kmachine", "ncc"]
        );
        // the Ncc prefix of the grid is unchanged by the model dimension
        assert!(grid[..4]
            .iter()
            .all(|s| s.model == ncc_model::ModelSpec::Ncc));
    }

    #[test]
    fn grid_for_model_rebinds_every_cell() {
        let km = ncc_model::ModelSpec::KMachine {
            k: 4,
            link_capacity: 1,
        };
        let grid = standard_grid_for_model(km);
        assert_eq!(grid.len(), 6); // 4 classic Ncc cells + 2 huge-family cells
        assert!(grid.iter().all(|s| s.model == km));
        let ncc = standard_grid_for_model(ncc_model::ModelSpec::Ncc);
        assert!(ncc.iter().all(|s| s.model == ncc_model::ModelSpec::Ncc));
    }

    #[test]
    fn suite_filter_selects_matching_algorithms() {
        let grid = vec![ScenarioSpec::new(crate::FamilySpec::Path, 16, 2)];
        let out = run_suite_filtered(&grid, 1, Some("cast")).unwrap();
        // "broadcast" and "butterfly-aggregation"? only names *containing*
        // "cast": broadcast. (gossip doesn't match, multicast isn't an algo)
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].algorithm, "broadcast");
        let out = run_suite_filtered(&grid, 1, Some("M")).unwrap();
        // case-insensitive: mst, mis, matching
        let names: Vec<&str> = out.records.iter().map(|r| r.algorithm.as_str()).collect();
        assert!(names.contains(&"mst") && names.contains(&"matching"));
        match run_suite_filtered(&grid, 1, Some("nope")) {
            Err(RunnerError::UnknownAlgorithm(_)) => {}
            other => panic!("expected UnknownAlgorithm, got {other:?}"),
        }
    }

    #[test]
    fn family_filter_restricts_the_grid() {
        let grid = standard_grid();
        let forests = filter_grid(grid.clone(), Some("forests"));
        assert!(!forests.is_empty() && forests.len() < grid.len());
        assert!(forests.iter().all(|s| s.label().contains("forests")));
        let n128 = filter_grid(grid.clone(), Some("n=128"));
        assert!(n128.iter().all(|s| s.n == 128));
        let km = filter_grid(grid.clone(), Some("kmachine"));
        assert_eq!(km.len(), 1);
        assert!(filter_grid(grid.clone(), Some("zzz")).is_empty());
        assert_eq!(filter_grid(grid.clone(), None).len(), grid.len());
    }

    #[test]
    fn unknown_algorithm_is_an_error() {
        let spec = ScenarioSpec::new(crate::FamilySpec::Path, 8, 1);
        match run_named("nope", &spec) {
            Err(RunnerError::UnknownAlgorithm(name)) => assert_eq!(name, "nope"),
            other => panic!("expected UnknownAlgorithm, got {other:?}"),
        }
    }

    #[test]
    fn suite_output_json_round_trips() {
        let spec = ScenarioSpec::new(crate::FamilySpec::Star, 16, 2);
        let rec = run_named("broadcast", &spec).unwrap();
        let out = SuiteOutput::new("mini", 2, vec![rec]);
        let text = out.to_json_pretty();
        let back: SuiteOutput = serde_json::from_str(&text).unwrap();
        assert_eq!(back.experiment, "mini");
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.to_json_pretty(), text);
    }
}
