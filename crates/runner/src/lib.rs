//! # ncc-runner — the unified scenario/runner API
//!
//! The paper's results form a matrix `{algorithm} × {graph family} × {n} ×
//! {capacity} × {seed}`. This crate is the one typed entrypoint into that
//! matrix for every caller — the CLI, the `exp*` experiment binaries, the
//! suite snapshot, and the examples:
//!
//! * [`ScenarioSpec`] — a serde-serializable value (graph family + params,
//!   `n`, weight range, [`Capacity`](ncc_model::Capacity), seed, threads,
//!   and the execution [`ModelSpec`] — NCC, Congested Clique, k-machine,
//!   or hybrid local+global) that deterministically rebuilds its input
//!   [`Scenario`] (graph + weights) and a configured engine under that
//!   model;
//! * [`Algorithm`] — an object-safe trait implemented by every paper
//!   algorithm (mst, orientation, bfs, mis, matching, coloring, gossip,
//!   broadcast, butterfly-aggregation), each owning its full in-model
//!   pipeline including the centralised correctness check;
//! * [`algorithms()`] / [`find_algorithm`] — the static registry, so callers
//!   dispatch by name instead of matching on per-algorithm signatures;
//! * [`RunRecord`] — the typed, JSON-serializable result: scenario echo,
//!   per-stage [`AlgoReport`](ncc_core::AlgoReport), drop/load counters and
//!   the correctness [`Verdict`]. Deterministic by construction (no
//!   wall-clock), so snapshots diff byte-for-byte in CI;
//! * [`run_suite`] / [`standard_grid`] — the whole registry over a scenario
//!   grid, producing `BENCH_suite.json`.
//!
//! # Example: one scenario, two call styles
//!
//! ```
//! use ncc_runner::{run_named, FamilySpec, ScenarioSpec, Verdict};
//!
//! // A scenario is data. Serialize it, store it, sweep over it.
//! let spec = ScenarioSpec::new(FamilySpec::Gnp { p: 0.25 }, 32, 7);
//!
//! // Registry dispatch by name — same call shape for every algorithm.
//! let record = run_named("mst", &spec).unwrap();
//! assert_eq!(record.verdict, Verdict::Verified);
//! assert!(record.rounds > 0);
//!
//! // The record echoes the spec, so results are self-describing.
//! assert_eq!(record.scenario, spec);
//! ```

pub mod algorithms;
pub mod hash;
pub mod record;
pub mod scenario;
pub mod suite;

pub use algorithms::{
    algorithm_names, algorithms, explain_text, find_algorithm, suggest_algorithm, Algorithm,
};
pub use hash::{canonical_spec_json, spec_hash, SpecHash};
pub use ncc_model::ModelSpec;
pub use record::{RunRecord, Verdict};
pub use scenario::{FamilySpec, Scenario, ScenarioSpec};
pub use suite::{
    filter_grid, run_named, run_named_threads, run_record, run_record_threads, run_suite,
    run_suite_filtered, standard_grid, standard_grid_for_model, standard_models, SuiteOutput,
    SUITE_SEED,
};

use std::fmt;

/// Errors from scenario construction or registry dispatch.
#[derive(Debug)]
pub enum RunnerError {
    /// The name is not in the registry.
    UnknownAlgorithm(String),
    /// The spec cannot build a scenario (bad params, `Provided` family).
    Scenario(String),
    /// The engine rejected the execution (cap violation, round limit, ...).
    Model(ncc_model::ModelError),
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::UnknownAlgorithm(name) => {
                write!(
                    f,
                    "unknown algorithm `{name}` (see ncc_runner::algorithms())"
                )
            }
            RunnerError::Scenario(msg) => write!(f, "invalid scenario: {msg}"),
            RunnerError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<ncc_model::ModelError> for RunnerError {
    fn from(e: ncc_model::ModelError) -> Self {
        RunnerError::Model(e)
    }
}
