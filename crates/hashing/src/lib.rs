//! # ncc-hashing — limited-independence hashing for NCC algorithms
//!
//! The paper's primitives assume (pseudo-)random hash functions agreed upon
//! by all nodes through shared randomness, and note (§2.2) that
//! `Θ(log n)`-wise independent families suffice for every concentration
//! argument via Lemma 2.1 (Chernoff bounds under limited independence).
//!
//! This crate provides:
//!
//! * [`field`] — arithmetic in GF(p) for the Mersenne prime `p = 2⁶¹ − 1`;
//! * [`poly`] — the classic degree-(k−1) polynomial family, which is k-wise
//!   independent by construction;
//! * [`shared`] — [`shared::SharedRandomness`], the deterministic expansion
//!   of a broadcast seed into labelled hash functions (the in-model seed
//!   *broadcast* is implemented and charged rounds in `ncc-butterfly`);
//! * [`sketch`] — the XOR set-equality sketches used by the MST FindMin
//!   procedure (§3) and the Identification Algorithm (§4.1);
//! * [`fast`] — a tiny Fx-style hasher for *internal simulator data
//!   structures only* (never part of the simulated protocols), written here
//!   to stay within the approved dependency set.

pub mod fast;
pub mod field;
pub mod poly;
pub mod shared;
pub mod sketch;

pub use fast::{FxHashMap, FxHashSet, FxHasher};
pub use field::M61;
pub use poly::PolyHash;
pub use shared::SharedRandomness;
pub use sketch::XorSketch;
