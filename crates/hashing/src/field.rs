//! Arithmetic modulo the Mersenne prime `p = 2⁶¹ − 1`.
//!
//! The Mersenne structure allows reduction with shifts and adds instead of
//! division, which matters because polynomial hashing sits on the hot path
//! of every sketch evaluation in the simulator.

/// The Mersenne prime `2⁶¹ − 1`.
pub const M61: u64 = (1 << 61) - 1;

/// Reduces a value `< 2·p` into `[0, p)`.
#[inline]
pub fn reduce_once(x: u64) -> u64 {
    debug_assert!(x < 2 * M61);
    if x >= M61 {
        x - M61
    } else {
        x
    }
}

/// Full reduction of an arbitrary `u64` into `[0, p)`.
#[inline]
pub fn reduce64(x: u64) -> u64 {
    // x = hi·2⁶¹ + lo ≡ hi + lo (mod p)
    let r = (x >> 61) + (x & M61);
    reduce_once(r)
}

/// Addition in GF(p).
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    reduce_once(a + b)
}

/// Subtraction in GF(p).
#[inline]
pub fn sub(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    reduce_once(a + M61 - b)
}

/// Multiplication in GF(p) via a 128-bit intermediate.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    let t = (a as u128) * (b as u128);
    // t = hi·2⁶¹ + lo, with hi < 2⁶¹ because a,b < 2⁶¹
    let lo = (t as u64) & M61;
    let hi = (t >> 61) as u64;
    reduce_once(reduce64(hi + lo))
}

/// Exponentiation by squaring in GF(p).
pub fn pow(mut base: u64, mut exp: u64) -> u64 {
    base %= M61;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse via Fermat's little theorem. `a` must be non-zero.
pub fn inv(a: u64) -> u64 {
    assert!(!a.is_multiple_of(M61), "zero has no inverse");
    pow(a, M61 - 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_identities() {
        assert_eq!(add(M61 - 1, 1), 0);
        assert_eq!(sub(0, 1), M61 - 1);
        assert_eq!(mul(2, 3), 6);
        assert_eq!(pow(5, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn two_pow_61_is_one() {
        // 2⁶¹ ≡ 1 (mod 2⁶¹−1)
        assert_eq!(pow(2, 61), 1);
    }

    #[test]
    fn fermat_inverse() {
        for a in [1u64, 2, 3, 12345, M61 - 1] {
            assert_eq!(mul(a, inv(a)), 1, "inverse failed for {a}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn zero_inverse_panics() {
        inv(0);
    }

    proptest! {
        #[test]
        fn mul_matches_u128_reference(a in 0u64..M61, b in 0u64..M61) {
            let expect = ((a as u128 * b as u128) % (M61 as u128)) as u64;
            prop_assert_eq!(mul(a, b), expect);
        }

        #[test]
        fn add_matches_reference(a in 0u64..M61, b in 0u64..M61) {
            let expect = ((a as u128 + b as u128) % (M61 as u128)) as u64;
            prop_assert_eq!(add(a, b), expect);
        }

        #[test]
        fn sub_then_add_roundtrips(a in 0u64..M61, b in 0u64..M61) {
            prop_assert_eq!(add(sub(a, b), b), a);
        }

        #[test]
        fn reduce64_in_range(x in any::<u64>()) {
            prop_assert!(reduce64(x) < M61);
            prop_assert_eq!(reduce64(x) as u128, (x as u128) % (M61 as u128));
        }

        #[test]
        fn pow_is_repeated_mul(a in 0u64..M61, e in 0u64..32) {
            let mut acc = 1u64;
            for _ in 0..e { acc = mul(acc, a); }
            prop_assert_eq!(pow(a, e), acc);
        }
    }
}
