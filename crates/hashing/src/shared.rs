//! Shared randomness: labelled, deterministic hash-function derivation.
//!
//! §2.2 of the paper: *"To agree on such hash functions, all nodes have to
//! learn Θ(log² n) random bits. This can be done by letting the node with
//! identifier 0 broadcast Θ(log n) messages … using the butterfly."*
//!
//! [`SharedRandomness`] is the post-agreement state: a master seed that
//! every node expands **identically and locally** into any number of
//! labelled hash functions. The act of *agreeing* on the seed is a
//! protocol, implemented in `ncc-butterfly::seed_broadcast`, which charges
//! the `O(log n)` rounds the paper charges; algorithms hold a
//! `SharedRandomness` only after running it (or after assuming it as given,
//! which tests may do).
//!
//! Labels keep the uses independent: the function for "FindMin sketches,
//! Boruvka phase 3" and the function for "aggregation-group targets" are
//! derived from disjoint label streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::poly::PolyHash;

/// Splits a master seed into labelled deterministic streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedRandomness {
    master: u64,
}

/// Stream labels used across the repository. Centralised so independent
/// subsystems never collide on a label.
pub mod labels {
    /// Aggregation: group → intermediate target `h(i)` on the bottom level.
    pub const AGG_TARGET: u64 = 0x01;
    /// Aggregation: group → rank `ρ(i)` for random-rank routing.
    pub const AGG_RANK: u64 = 0x02;
    /// FindMin XOR sketches (§3).
    pub const MST_SKETCH: u64 = 0x03;
    /// Identification Algorithm trial maps `h₁…h_s : E → [q]` (§4.1).
    pub const IDENT_TRIALS: u64 = 0x04;
    /// Stage 3 rendezvous: edge → node (§4.2).
    pub const STAGE3_NODE: u64 = 0x05;
    /// Stage 3 rendezvous: edge → round (§4.2).
    pub const STAGE3_ROUND: u64 = 0x06;
    /// Multicast leaf placement.
    pub const MC_LEAF: u64 = 0x07;
    /// k-machine random vertex partition (Appendix A).
    pub const KMACHINE_PARTITION: u64 = 0x08;
}

impl SharedRandomness {
    /// Wraps an agreed-upon master seed.
    pub fn new(master: u64) -> Self {
        SharedRandomness { master }
    }

    /// The number of bits the paper's agreement protocol must broadcast to
    /// establish `count` functions of independence `k` on an `n`-node
    /// network: `count · k` coefficients of `Θ(log n)` bits each.
    pub fn bits_required(n: usize, count: usize, k: usize) -> usize {
        let logn = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1) as usize;
        count * k * logn
    }

    /// Deterministic RNG for `(label, index)`.
    fn stream(&self, label: u64, index: u64) -> SmallRng {
        // SplitMix-style mixing of (master, label, index).
        let mut z = self.master ^ label.rotate_left(17) ^ index.rotate_left(43);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SmallRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Derives the `index`-th k-wise independent function under `label`.
    pub fn poly(&self, label: u64, index: u64, k: usize) -> PolyHash {
        PolyHash::random(k, &mut self.stream(label, index))
    }

    /// Derives a family of `count` functions under `label`.
    pub fn family(&self, label: u64, count: usize, k: usize) -> Vec<PolyHash> {
        (0..count as u64).map(|i| self.poly(label, i, k)).collect()
    }

    /// The independence degree used throughout: `Θ(log n)`, per §2.2.
    pub fn k_for(n: usize) -> usize {
        let logn = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1) as usize;
        (2 * logn).max(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_function() {
        let a = SharedRandomness::new(42);
        let b = SharedRandomness::new(42);
        assert_eq!(
            a.poly(labels::AGG_RANK, 0, 8),
            b.poly(labels::AGG_RANK, 0, 8)
        );
    }

    #[test]
    fn different_labels_differ() {
        let s = SharedRandomness::new(42);
        let h1 = s.poly(labels::AGG_RANK, 0, 8);
        let h2 = s.poly(labels::AGG_TARGET, 0, 8);
        assert_ne!(h1, h2);
    }

    #[test]
    fn different_indices_differ() {
        let s = SharedRandomness::new(42);
        assert_ne!(s.poly(1, 0, 8), s.poly(1, 1, 8));
    }

    #[test]
    fn family_is_indexed_polys() {
        let s = SharedRandomness::new(7);
        let fam = s.family(labels::MST_SKETCH, 5, 6);
        assert_eq!(fam.len(), 5);
        for (i, f) in fam.iter().enumerate() {
            assert_eq!(*f, s.poly(labels::MST_SKETCH, i as u64, 6));
        }
    }

    #[test]
    fn bits_required_scales_like_log_squared() {
        // one function of independence Θ(log n): Θ(log² n) bits
        let n = 1024;
        let k = SharedRandomness::k_for(n);
        let bits = SharedRandomness::bits_required(n, 1, k);
        assert_eq!(bits, k * 10);
        assert!((100..=800).contains(&bits));
    }

    #[test]
    fn k_for_grows_with_n() {
        assert!(SharedRandomness::k_for(16) < SharedRandomness::k_for(1 << 20));
        assert!(SharedRandomness::k_for(2) >= 4);
    }
}
