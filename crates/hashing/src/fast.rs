//! Fast non-cryptographic hasher for the **simulator's internal** maps.
//!
//! The engine and primitive implementations keep bookkeeping maps keyed by
//! small integers (node ids, group ids, butterfly coordinates). SipHash is
//! needlessly slow for that (see the Rust Performance Book, "Hashing"); the
//! usual fix is `rustc-hash`, which is outside this project's approved
//! dependency set, so we reimplement the same multiply-rotate scheme here.
//!
//! These maps are *not* part of the simulated protocols — protocol-visible
//! hashing always goes through the k-wise independent [`crate::PolyHash`]
//! family, as the paper requires.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style word-at-a-time hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn hasher_deterministic() {
        let h = |x: u64| {
            let mut hh = FxHasher::default();
            hh.write_u64(x);
            hh.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_and_word_paths_cover_remainders() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]); // remainder path
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0, 0, 0, 0]); // exact word path, zero-padded
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distribution_smoke() {
        // sequential keys should not collide in the low bits catastrophically
        let mut buckets = [0u32; 16];
        for x in 0..16_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(x);
            buckets[(h.finish() & 15) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }
}
