//! The degree-(k−1) polynomial hash family over GF(2⁶¹−1).
//!
//! A function `h(x) = c₀ + c₁x + … + c_{k−1}x^{k−1} mod p` with uniformly
//! random coefficients is **k-wise independent**: any k distinct inputs map
//! to independently uniform outputs. The paper (§2.2) requires exactly this
//! with `k = Θ(log n)` for its Chernoff arguments (Lemma 2.1), and charges
//! `Θ(log² n)` broadcast bits to agree on one function — each of the
//! `Θ(log n)` coefficients is a `Θ(log n)`-bit word. [`PolyHash::bits`]
//! reports that cost so protocols can account for it.

use rand::Rng;

use crate::field::{add, mul, reduce64, M61};

/// One member of the k-wise independent polynomial family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyHash {
    /// Coefficients `c₀ … c_{k−1}`, each in `[0, p)`.
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Draws a fresh function with `k` coefficients (k-wise independence).
    pub fn random(k: usize, rng: &mut impl Rng) -> Self {
        assert!(k >= 1, "need at least one coefficient");
        let coeffs = (0..k).map(|_| rng.gen_range(0..M61)).collect();
        PolyHash { coeffs }
    }

    /// Builds the function from explicit coefficients (reduced mod p).
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        assert!(!coeffs.is_empty());
        PolyHash {
            coeffs: coeffs.into_iter().map(reduce64).collect(),
        }
    }

    /// Independence degree of this function.
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// Number of shared-random bits needed to agree on this function —
    /// the quantity the paper broadcasts (`Θ(log² n)` for `k = Θ(log n)`).
    pub fn bits(&self) -> usize {
        self.coeffs.len() * 61
    }

    /// Evaluates the polynomial at `x` (reduced into the field first).
    /// Output is uniform on `[0, p)` over the choice of function.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let x = reduce64(x);
        // Horner's rule, highest coefficient first.
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add(mul(acc, x), c);
        }
        acc
    }

    /// Hash into the range `[0, q)`.
    ///
    /// Uses widening multiplication rather than `%` to avoid modulo bias
    /// beyond the inherent `q/p` floor bias (negligible for `q ≪ 2⁶¹`).
    #[inline]
    pub fn to_range(&self, x: u64, q: u64) -> u64 {
        debug_assert!(q > 0);
        let v = self.eval(x);
        ((v as u128 * q as u128) >> 61) as u64
    }

    /// Hash to a single bit.
    #[inline]
    pub fn to_bit(&self, x: u64) -> u64 {
        self.eval(x) & 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn f(seed: u64, k: usize) -> PolyHash {
        PolyHash::random(k, &mut SmallRng::seed_from_u64(seed))
    }

    #[test]
    fn deterministic_for_fixed_coeffs() {
        let h = PolyHash::from_coeffs(vec![3, 5, 7]);
        // h(x) = 3 + 5x + 7x² mod p
        assert_eq!(h.eval(0), 3);
        assert_eq!(h.eval(1), 15);
        assert_eq!(h.eval(2), 3 + 10 + 28);
        assert_eq!(h.k(), 3);
        assert_eq!(h.bits(), 183);
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let (a, b) = (f(1, 4), f(2, 4));
        let same = (0..64u64).filter(|&x| a.eval(x) == b.eval(x)).count();
        assert!(
            same <= 1,
            "two random degree-3 polys agree on ≤3 points w.h.p."
        );
    }

    #[test]
    fn range_hash_in_bounds() {
        let h = f(7, 8);
        for q in [1u64, 2, 3, 10, 1000, 1 << 40] {
            for x in 0..200u64 {
                assert!(h.to_range(x, q) < q);
            }
        }
    }

    #[test]
    fn range_hash_roughly_uniform() {
        let h = f(11, 8);
        let q = 16u64;
        let mut counts = vec![0usize; q as usize];
        let samples = 16_000u64;
        for x in 0..samples {
            counts[h.to_range(x, q) as usize] += 1;
        }
        let expect = (samples / q) as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.15, "bucket {bucket} off by {dev:.3}");
        }
    }

    #[test]
    fn bit_hash_balanced() {
        let h = f(13, 8);
        let ones: u64 = (0..10_000u64).map(|x| h.to_bit(x)).sum();
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn pairwise_independence_smoke() {
        // For a 2-wise family, the joint distribution of (h(a), h(b) ) over
        // random h should be near-uniform on pairs of bits.
        let mut joint = [[0u32; 2]; 2];
        for seed in 0..4000u64 {
            let h = f(seed, 2);
            joint[h.to_bit(17) as usize][h.to_bit(99) as usize] += 1;
        }
        for row in joint {
            for c in row {
                assert!((800..1200).contains(&c), "joint cell {c}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_coefficients_rejected() {
        let _ = PolyHash::from_coeffs(vec![]);
    }
}
