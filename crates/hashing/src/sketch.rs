//! XOR set-equality sketches (the FindMin tool of §3).
//!
//! The MST algorithm needs to decide, per component `C` and weight range,
//! whether two multisets of edge identifiers are equal — they are equal iff
//! `C` has no outgoing edge in the range. The paper hashes every identifier
//! to one bit and compares mod-2 sums, repeated over `O(log n)` independent
//! functions so that unequal sets collide with probability `2^{−Θ(log n)}`.
//!
//! [`XorSketch`] evaluates `t ≤ 64` independent trials at once and packs
//! them into a single `u64` **mask**; the sketch of a set is the XOR of its
//! element masks, which is exactly what a distributive XOR aggregation
//! computes. One mask is `t = Θ(log n)` bits — within the model's message
//! budget — so an entire equality test costs a single aggregation instead of
//! `Θ(log n)` sequential ones. This preserves both the failure probability
//! (`2^{−t}` per test) and Lemma 3.1's iteration bound; see DESIGN.md
//! ("substitutions") for the accounting argument.

use crate::poly::PolyHash;
use crate::shared::SharedRandomness;

/// A bank of `t ≤ 64` independent one-bit hash functions, evaluated
/// together into a packed trial mask.
#[derive(Debug, Clone)]
pub struct XorSketch {
    fns: Vec<PolyHash>,
}

impl XorSketch {
    /// Derives `t` trial functions (each k-wise independent) from shared
    /// randomness under `label`.
    pub fn derive(shared: &SharedRandomness, label: u64, t: usize, k: usize) -> Self {
        assert!((1..=64).contains(&t), "1..=64 packed trials supported");
        XorSketch {
            fns: shared.family(label, t, k),
        }
    }

    /// Number of trials (mask width in bits).
    pub fn trials(&self) -> usize {
        self.fns.len()
    }

    /// The packed mask of one element: bit `i` is `h_i(x) mod 2`.
    #[inline]
    pub fn element_mask(&self, x: u64) -> u64 {
        let mut m = 0u64;
        for (i, f) in self.fns.iter().enumerate() {
            m |= f.to_bit(x) << i;
        }
        m
    }

    /// Sketch of a whole set: XOR of element masks.
    pub fn set_mask<I: IntoIterator<Item = u64>>(&self, xs: I) -> u64 {
        xs.into_iter().fold(0, |acc, x| acc ^ self.element_mask(x))
    }

    /// Probability that two *unequal* sets produce equal masks: `2^{−t}`.
    pub fn collision_probability(&self) -> f64 {
        2f64.powi(-(self.fns.len() as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sketch(t: usize) -> XorSketch {
        XorSketch::derive(&SharedRandomness::new(1234), 99, t, 8)
    }

    #[test]
    fn equal_sets_equal_masks_any_order() {
        let s = sketch(32);
        let a = s.set_mask([5u64, 9, 200, 7]);
        let b = s.set_mask([7u64, 200, 9, 5]);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_pairs_cancel() {
        // XOR semantics: an element appearing twice vanishes — exactly the
        // property FindMin uses (internal edges appear in both directions).
        let s = sketch(32);
        assert_eq!(s.set_mask([3u64, 3]), 0);
        assert_eq!(s.set_mask([3u64, 4, 3]), s.element_mask(4));
    }

    #[test]
    fn unequal_sets_differ_whp() {
        let s = sketch(64);
        let base: Vec<u64> = (0..50).collect();
        for extra in 1000..1100u64 {
            let mut other = base.clone();
            other.push(extra);
            assert_ne!(
                s.set_mask(base.iter().copied()),
                s.set_mask(other),
                "collision at {extra}"
            );
        }
    }

    #[test]
    fn single_trial_differs_about_half_the_time() {
        // per-trial distinguishing probability should be ≈ 1/2
        let shared = SharedRandomness::new(777);
        let mut distinguished = 0;
        let total = 400;
        for i in 0..total {
            let s = XorSketch::derive(&shared, 1000 + i, 1, 8);
            if s.element_mask(11) != s.element_mask(12) {
                distinguished += 1;
            }
        }
        assert!(
            (120..=280).contains(&distinguished),
            "got {distinguished}/{total}"
        );
    }

    #[test]
    #[should_panic]
    fn too_many_trials_rejected() {
        let _ = sketch(65);
    }

    proptest! {
        #[test]
        fn mask_is_linear(xs in proptest::collection::vec(any::<u64>(), 0..20),
                          ys in proptest::collection::vec(any::<u64>(), 0..20)) {
            let s = sketch(16);
            let lhs = s.set_mask(xs.iter().copied()) ^ s.set_mask(ys.iter().copied());
            let both = s.set_mask(xs.iter().chain(ys.iter()).copied());
            prop_assert_eq!(lhs, both);
        }

        #[test]
        fn symmetric_difference_decides_equality(shift in 1u64..1000) {
            // sets {x} and {x + shift} must differ in at least one of 64 trials
            let s = sketch(64);
            prop_assert_ne!(s.element_mask(42), s.element_mask(42 + shift));
        }
    }
}
