//! Property tests for the DAG scheduler: declaring an antichain of
//! primitives as a [`Dag`] and letting the scheduler pack it must be
//! equivalent to hand-fusing the same lanes through [`run_composed`] —
//! across thread counts and capacity regimes — and a lane budget narrower
//! than the antichain must split it into sequential stages without
//! changing any output.

use ncc_butterfly::{
    ab_sub, aggregation_sub, run_composed, AggregationSpec, Dag, GroupId, LaneSub, MaxU64, SumU64,
};
use ncc_hashing::SharedRandomness;
use ncc_model::{Capacity, Engine, NetConfig};
use proptest::prelude::*;

fn engine(n: usize, seed: u64, threads: usize, unbounded: bool) -> Engine {
    let mut cfg = NetConfig::new(n, seed).with_threads(threads);
    if unbounded {
        cfg = cfg.with_capacity(Capacity::unbounded());
    }
    Engine::new(cfg)
}

fn sorted<V: Ord>(mut v: Vec<V>) -> Vec<V> {
    v.sort();
    v
}

/// Group `(t + sub) mod n` collects `u` from node `u` — a different
/// membership pattern per lane, seeded entirely by `(n, sub)`.
fn make_spec(n: usize, sub: u32) -> AggregationSpec<u64> {
    AggregationSpec {
        memberships: (0..n)
            .map(|u| vec![(GroupId::new((u as u32 + sub) % n as u32, sub), u as u64)])
            .collect(),
        ell2_hat: 1,
    }
}

fn ab_inputs(n: usize, seed: u64) -> Vec<Option<u64>> {
    (0..n as u64)
        .map(|u| Some(u.wrapping_mul(0x9E37_79B9) ^ seed))
        .collect()
}

/// Hand-fused baseline: all lanes installed into one [`run_composed`]
/// group. Returns (per-lane sorted deliveries, A&B results, rounds).
type Deliveries = Vec<Vec<Vec<(GroupId, u64)>>>;

fn run_fused(
    n: usize,
    seed: u64,
    threads: usize,
    unbounded: bool,
    k: usize,
) -> (Deliveries, Vec<Option<u64>>, u64) {
    let shared = SharedRandomness::new(seed ^ 0xF00D);
    let mut eng = engine(n, seed, threads, unbounded);
    let mut lanes: Vec<_> = (0..k as u32)
        .map(|sub| aggregation_sub(n, &shared, make_spec(n, sub), &SumU64, 40 + sub as u64))
        .collect();
    let mut ab = ab_sub(n, ab_inputs(n, seed), &MaxU64);
    let stats = {
        let mut refs: Vec<&mut dyn LaneSub> =
            lanes.iter_mut().map(|l| l as &mut dyn LaneSub).collect();
        refs.push(&mut ab);
        let (stats, _) = run_composed(&mut eng, &mut refs).unwrap();
        stats
    };
    let deliveries = lanes
        .into_iter()
        .map(|l| l.into_deliveries().into_iter().map(sorted).collect())
        .collect();
    (deliveries, ab.into_results(), stats.rounds)
}

/// The same lanes declared as a dependency-free [`Dag`] antichain, packed
/// by the scheduler under `budget` (`None` = the default budget).
fn run_dag(
    n: usize,
    seed: u64,
    threads: usize,
    unbounded: bool,
    k: usize,
    budget: Option<usize>,
) -> (
    Deliveries,
    Vec<Option<u64>>,
    u64,
    ncc_butterfly::SchedReport,
) {
    let shared = SharedRandomness::new(seed ^ 0xF00D);
    let mut eng = engine(n, seed, threads, unbounded);
    let mut dag = Dag::new();
    let aggs: Vec<_> = (0..k as u32)
        .map(|sub| {
            let shared = &shared;
            dag.proto(
                format!("agg{sub}"),
                &[],
                move |_| aggregation_sub(n, shared, make_spec(n, sub), &SumU64, 40 + sub as u64),
                |s| s.into_deliveries(),
            )
        })
        .collect();
    let inputs = ab_inputs(n, seed);
    let ab = dag.proto(
        "ab",
        &[],
        move |_| ab_sub(n, inputs, &MaxU64),
        |s| s.into_results(),
    );
    let mut run = match budget {
        Some(b) => dag.run_budgeted(&mut eng, b).unwrap(),
        None => dag.run(&mut eng).unwrap(),
    };
    let deliveries = aggs
        .into_iter()
        .map(|h| run.outputs.take(h).into_iter().map(sorted).collect())
        .collect();
    (
        deliveries,
        run.outputs.take(ab),
        run.stats.rounds,
        run.report,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Scheduler-packed == hand-fused, bit-exactly: same deliveries, same
    /// A&B results, same round count — under every (threads, caps) cell.
    /// Tight caps make this a strong claim: drop decisions are keyed on
    /// the engine's global round, so equality requires the scheduler to
    /// reproduce the fused path's exact execution sequence.
    #[test]
    fn dag_antichain_matches_hand_fused(
        n in 16usize..48,
        k in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let mut reference = None;
        for threads in [1usize, 4] {
            for unbounded in [false, true] {
                let fused = run_fused(n, seed, threads, unbounded, k);
                let (deliveries, ab, rounds, report) =
                    run_dag(n, seed, threads, unbounded, k, None);
                prop_assert_eq!(&deliveries, &fused.0, "deliveries diverge");
                prop_assert_eq!(&ab, &fused.1, "A&B results diverge");
                prop_assert_eq!(rounds, fused.2, "round counts diverge");
                prop_assert_eq!(report.splits(), 0, "antichain fits the default budget");
                // threads are an execution-layout knob: results must be
                // identical across thread counts (per capacity regime)
                match &reference {
                    None => reference = Some((deliveries, ab)),
                    Some((d, a)) if !unbounded => {
                        prop_assert_eq!(&deliveries, d, "thread count changed results");
                        prop_assert_eq!(&ab, a, "thread count changed A&B results");
                    }
                    Some(_) => {}
                }
            }
        }
    }

    /// An antichain wider than the lane budget must be split into
    /// sequential stages — and still produce the fused outputs. Unbounded
    /// caps keep outputs packing-independent (no drops), which is what
    /// makes the comparison well-defined across different stage counts.
    #[test]
    fn over_budget_antichain_splits_without_changing_outputs(
        n in 16usize..48,
        k in 3usize..6,
        seed in 0u64..1_000,
        budget in 1usize..3,
    ) {
        let fused = run_fused(n, seed, 1, true, k);
        let (deliveries, ab, _, report) = run_dag(n, seed, 1, true, k, Some(budget));
        prop_assert_eq!(&deliveries, &fused.0, "split packing changed deliveries");
        prop_assert_eq!(&ab, &fused.1, "split packing changed A&B results");
        // k aggregations + 1 A&B vs a budget of 1–2 lanes: the scheduler
        // must defer the overflow into later stages
        prop_assert!(report.splits() > 0, "no split despite {} lanes under budget {}", k + 1, budget);
        prop_assert!(report.max_lanes() <= budget, "budget exceeded");
        prop_assert!(
            report.stages.len() >= (k + 1).div_ceil(budget),
            "too few stages for {} lanes at budget {}",
            k + 1,
            budget
        );
    }
}
