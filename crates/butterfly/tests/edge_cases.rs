//! Edge-case integration tests for the butterfly primitives: non-power-of-
//! two network sizes (proxy columns), non-emulating sources and targets,
//! heavy loads, and multi-threaded engine equivalence.

use ncc_butterfly::aggregation::aggregate;
use ncc_butterfly::{
    aggregate_and_broadcast, multi_aggregate, multicast, multicast_setup, self_joins,
    AggregationSpec, GroupId, MinU64, SumU64,
};
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, NetConfig};

/// n values straddling powers of two: 2^d, 2^d ± 1, and mid-range.
const SIZES: &[usize] = &[16, 17, 31, 33, 48, 63, 64, 65, 100];

#[test]
fn aggregation_to_non_emulating_targets() {
    // target nodes above 2^d are reached through the postprocessing sends
    for &n in SIZES {
        let bf_cols = 1usize << ncc_model::ilog2_floor(n);
        if bf_cols == n {
            continue; // no non-emulating nodes
        }
        let target = (n - 1) as u32; // guaranteed ≥ 2^d
        let g = GroupId::new(target, 0);
        let memberships: Vec<Vec<(GroupId, u64)>> = (0..n).map(|u| vec![(g, u as u64)]).collect();
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let shared = SharedRandomness::new(5);
        let (out, stats) = aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: 1,
            },
            &SumU64,
        )
        .unwrap();
        let expect: u64 = (0..n as u64).sum();
        assert_eq!(out[target as usize], vec![(g, expect)], "n={n}");
        assert!(stats.clean(), "n={n}");
    }
}

#[test]
fn multicast_with_non_emulating_source_and_members() {
    for &n in &[20usize, 40, 70] {
        let src = (n - 1) as u32;
        let member = (n - 2) as u32;
        let g = GroupId::new(src, 0);
        let mut joins = vec![Vec::new(); n];
        joins[member as usize].push(g);
        joins[3].push(g);
        let mut eng = Engine::new(NetConfig::new(n, 7));
        let shared = SharedRandomness::new(9);
        let (trees, _) = multicast_setup(&mut eng, &shared, self_joins(joins)).unwrap();
        let mut messages = vec![None; n];
        messages[src as usize] = Some((g, 777u64));
        let (out, stats) = multicast(&mut eng, &shared, &trees, messages, 1).unwrap();
        assert_eq!(out[member as usize], vec![(g, 777)], "n={n}");
        assert_eq!(out[3], vec![(g, 777)], "n={n}");
        assert!(stats.clean());
    }
}

#[test]
fn agg_bcast_all_sizes() {
    for &n in SIZES {
        let mut eng = Engine::new(NetConfig::new(n, 11));
        let inputs: Vec<Option<u64>> = (0..n as u64).map(|v| Some(v + 1)).collect();
        let (res, stats) = aggregate_and_broadcast(&mut eng, inputs, &MinU64).unwrap();
        assert!(res.iter().all(|r| *r == Some(1)), "n={n}");
        assert!(stats.clean(), "n={n}");
    }
}

#[test]
fn heavy_aggregation_load_stays_clean() {
    // L = 64·n packets through a 256-node butterfly
    let n = 256;
    let shared = SharedRandomness::new(13);
    let memberships: Vec<Vec<(GroupId, u64)>> = (0..n)
        .map(|u| {
            (0..64u32)
                .map(|j| (GroupId::new((u as u32 * 13 + j * 29) % n as u32, j), 1u64))
                .collect()
        })
        .collect();
    let mut eng = Engine::new(NetConfig::new(n, 15));
    let (out, stats) = aggregate(
        &mut eng,
        &shared,
        AggregationSpec {
            memberships,
            ell2_hat: 160,
        },
        &SumU64,
    )
    .unwrap();
    let total: u64 = out.iter().flatten().map(|(_, v)| v).sum();
    assert_eq!(total, (n * 64) as u64, "no packet lost under heavy load");
    assert!(stats.clean());
    // Theorem 2.3: O(L/n + ℓ/log n + log n) = O(64 + 160/8 + 8)
    assert!(stats.rounds < 40 * (64 + 20 + 8), "rounds {}", stats.rounds);
}

#[test]
fn parallel_engine_matches_sequential_for_primitives() {
    let n = 700; // above the parallel step threshold
    let shared = SharedRandomness::new(17);
    let build = || -> Vec<Vec<(GroupId, u64)>> {
        (0..n)
            .map(|u| {
                (0..4u32)
                    .map(|j| {
                        (
                            GroupId::new((u as u32 * 7 + j * 311) % n as u32, j),
                            u as u64,
                        )
                    })
                    .collect()
            })
            .collect()
    };
    let run = |threads: usize| {
        let mut eng = Engine::new(NetConfig::new(n, 19).with_threads(threads));
        aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships: build(),
                ell2_hat: 32,
            },
            &SumU64,
        )
        .unwrap()
    };
    let (out1, stats1) = run(1);
    let (out4, stats4) = run(4);
    assert_eq!(out1, out4, "parallel engine must be bit-identical");
    assert_eq!(stats1, stats4);
}

#[test]
fn multi_aggregate_empty_and_single_member() {
    let n = 24;
    let shared = SharedRandomness::new(21);
    let mut eng = Engine::new(NetConfig::new(n, 23));
    // one group, one member, source non-emulating
    let src = (n - 1) as u32;
    let g = GroupId::new(src, 0);
    let mut joins = vec![Vec::new(); n];
    joins[2].push(g);
    let (trees, _) = multicast_setup(&mut eng, &shared, self_joins(joins)).unwrap();
    let mut messages = vec![None; n];
    messages[src as usize] = Some((g, 5u64));
    let (out, _) = multi_aggregate(
        &mut eng,
        &shared,
        &trees,
        messages,
        |_, _, _, v| *v,
        &MinU64,
    )
    .unwrap();
    assert_eq!(out[2], Some(5));
    assert!(out.iter().enumerate().all(|(i, o)| i == 2 || o.is_none()));
}

#[test]
fn repeated_executions_on_one_engine_are_independent() {
    // the engine's global round advances, but each primitive run must be
    // self-contained
    let n = 32;
    let shared = SharedRandomness::new(25);
    let mut eng = Engine::new(NetConfig::new(n, 27));
    let g = GroupId::new(5, 0);
    for round in 0..5u64 {
        let memberships: Vec<Vec<(GroupId, u64)>> =
            (0..n).map(|u| vec![(g, u as u64 + round)]).collect();
        let (out, _) = aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: 1,
            },
            &SumU64,
        )
        .unwrap();
        let expect: u64 = (0..n as u64).map(|u| u + round).sum();
        assert_eq!(out[5], vec![(g, expect)], "iteration {round}");
    }
    assert!(eng.total.clean());
}
