//! Composed (fused, lane-multiplexed) primitives against their blocking
//! classic counterparts: same outputs, fewer rounds.

use ncc_butterfly::aggregation::aggregate;
use ncc_butterfly::{
    ab_sub, aggregation_sub, multi_aggregate, multi_aggregate_sub, multicast, multicast_setup,
    multicast_setup_sub, multicast_sub, run_composed, AggregationSpec, GroupId, LaneSub, MaxU64,
    MinU64, SumU64,
};
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, NetConfig};

fn engine(n: usize, seed: u64) -> Engine {
    Engine::new(NetConfig::new(n, seed))
}

fn sorted<V: Ord + Clone>(mut v: Vec<V>) -> Vec<V> {
    v.sort();
    v
}

#[test]
fn fused_aggregation_matches_blocking_outputs() {
    let n = 64;
    let shared = SharedRandomness::new(7);
    // group t collects from members {t, t+1, t+2 mod n}
    let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
    for t in 0..n as u32 {
        for off in 0..3u32 {
            let member = ((t + off) % n as u32) as usize;
            memberships[member].push((GroupId::new(t, 1), 10 + off as u64));
        }
    }
    let spec = AggregationSpec {
        memberships,
        ell2_hat: 1,
    };

    let mut eng = engine(n, 3);
    let (blocking, blocking_stats) = aggregate(&mut eng, &shared, spec.clone(), &SumU64).unwrap();

    let mut eng = engine(n, 3);
    let mut sub = aggregation_sub(n, &shared, spec, &SumU64, 99);
    let (stats, rep) = run_composed(&mut eng, &mut [&mut sub]).unwrap();
    let fused = sub.into_deliveries();

    assert_eq!(rep.stages, 2, "fused aggregation is two stages");
    for t in 0..n {
        assert_eq!(
            sorted(fused[t].clone()),
            sorted(blocking[t].clone()),
            "node {t}"
        );
    }
    assert!(stats.clean());
    assert!(
        stats.rounds < blocking_stats.rounds,
        "fused {} !< blocking {}",
        stats.rounds,
        blocking_stats.rounds
    );
}

#[test]
fn fused_setup_and_multicast_match_blocking_deliveries() {
    let n = 48;
    let shared = SharedRandomness::new(21);
    // every node sources a group; node u joins groups of u−1, u+1 (ring)
    let mut joins = vec![Vec::new(); n];
    let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
    for u in 0..n {
        joins[u].push(GroupId::new(((u + n - 1) % n) as u32, 4));
        joins[u].push(GroupId::new(((u + 1) % n) as u32, 4));
        messages[u] = Some((GroupId::new(u as u32, 4), 1000 + u as u64));
    }

    let mut eng = engine(n, 11);
    let (trees, _) =
        multicast_setup(&mut eng, &shared, ncc_butterfly::self_joins(joins.clone())).unwrap();
    let (blocking, _) = multicast(&mut eng, &shared, &trees, messages.clone(), 2).unwrap();

    let mut eng = engine(n, 11);
    let mut setup = multicast_setup_sub(n, &shared, ncc_butterfly::self_joins(joins), 5);
    let (setup_stats, _) = run_composed(&mut eng, &mut [&mut setup]).unwrap();
    let fused_trees = setup.into_trees();
    let mut mc = multicast_sub(n, &shared, &fused_trees, messages, 2, 6);
    let (mc_stats, rep) = run_composed(&mut eng, &mut [&mut mc]).unwrap();
    let fused = mc.into_deliveries();

    assert_eq!(rep.stages, 1, "fused multicast is one stage");
    for u in 0..n {
        assert_eq!(
            sorted(fused[u].clone()),
            sorted(blocking[u].clone()),
            "node {u}"
        );
    }
    assert!(setup_stats.clean() && mc_stats.clean());
}

#[test]
fn fused_multi_aggregation_matches_blocking_semantics() {
    // neighborhood min on a cycle, identity leaf map: fused and blocking
    // must deliver identical per-node aggregates (deterministic inputs).
    let n = 32;
    let shared = SharedRandomness::new(61);
    let mut joins = vec![Vec::new(); n];
    for u in 0..n as u32 {
        let l = (u + n as u32 - 1) % n as u32;
        let r = (u + 1) % n as u32;
        joins[l as usize].push(GroupId::new(u, 0));
        joins[r as usize].push(GroupId::new(u, 0));
    }
    let messages: Vec<Option<(GroupId, u64)>> = (0..n as u32)
        .map(|u| Some((GroupId::new(u, 0), 100 + ((u as u64 * 37) % 50))))
        .collect();

    let mut eng = engine(n, 5);
    let (trees, _) = multicast_setup(&mut eng, &shared, ncc_butterfly::self_joins(joins)).unwrap();
    let (blocking, blocking_stats) = multi_aggregate(
        &mut eng,
        &shared,
        &trees,
        messages.clone(),
        |_, _, _, v| *v,
        &MinU64,
    )
    .unwrap();

    let mut eng2 = engine(n, 5);
    let (trees2, _) = {
        let mut joins2 = vec![Vec::new(); n];
        for u in 0..n as u32 {
            let l = (u + n as u32 - 1) % n as u32;
            let r = (u + 1) % n as u32;
            joins2[l as usize].push(GroupId::new(u, 0));
            joins2[r as usize].push(GroupId::new(u, 0));
        }
        multicast_setup(&mut eng2, &shared, ncc_butterfly::self_joins(joins2)).unwrap()
    };
    let mut sub = multi_aggregate_sub(n, &shared, &trees2, messages, |_, _, _, v| *v, &MinU64, 8);
    let (stats, rep) = run_composed(&mut eng2, &mut [&mut sub]).unwrap();
    let fused = sub.into_results();

    assert_eq!(rep.stages, 2, "fused multi-aggregation is two stages");
    assert_eq!(fused, blocking);
    assert!(stats.clean());
    assert!(
        stats.rounds < blocking_stats.rounds,
        "fused {} !< blocking {}",
        stats.rounds,
        blocking_stats.rounds
    );
}

#[test]
fn heterogeneous_lanes_share_rounds() {
    // 4 aggregation lanes + one A&B lane in a single composition: every
    // lane's output is what it would produce alone, and the whole bundle
    // costs far less than running the five primitives back-to-back.
    let n = 64;
    let shared = SharedRandomness::new(13);
    let make_spec = |sub: u32| -> AggregationSpec<u64> {
        AggregationSpec {
            memberships: (0..n)
                .map(|u| vec![(GroupId::new((u as u32 + sub) % n as u32, sub), u as u64)])
                .collect(),
            ell2_hat: 1,
        }
    };

    // sequential baseline
    let mut eng = engine(n, 17);
    let mut seq_rounds = 0;
    let mut seq_out = Vec::new();
    for sub in 0..4u32 {
        let (out, s) = aggregate(&mut eng, &shared, make_spec(sub), &SumU64).unwrap();
        seq_rounds += s.rounds;
        seq_out.push(out);
    }
    let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
    let (ab_seq, s) =
        ncc_butterfly::aggregate_and_broadcast(&mut eng, inputs.clone(), &MaxU64).unwrap();
    seq_rounds += s.rounds;

    // composed
    let mut eng = engine(n, 17);
    let mut lanes: Vec<_> = (0..4u32)
        .map(|sub| aggregation_sub(n, &shared, make_spec(sub), &SumU64, 40 + sub as u64))
        .collect();
    let mut ab = ab_sub(n, inputs, &MaxU64);
    {
        let mut refs: Vec<&mut dyn LaneSub> =
            lanes.iter_mut().map(|l| l as &mut dyn LaneSub).collect();
        refs.push(&mut ab);
        let (stats, rep) = run_composed(&mut eng, &mut refs).unwrap();
        assert_eq!(rep.max_lanes, 5);
        assert_eq!(rep.stages, 2);
        assert!(
            stats.rounds * 2 < seq_rounds,
            "composed {} rounds vs sequential {seq_rounds}",
            stats.rounds
        );
    }
    assert_eq!(ab.into_results(), ab_seq);
    for (sub, lane) in lanes.into_iter().enumerate() {
        let got = lane.into_deliveries();
        // per-group sums must match the sequential run's (delivery order
        // within a node may differ)
        for u in 0..n {
            assert_eq!(
                sorted(got[u].clone()),
                sorted(seq_out[sub][u].clone()),
                "lane {sub} node {u}"
            );
        }
    }
}
