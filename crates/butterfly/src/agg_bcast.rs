//! Historic module path for Aggregate-and-Broadcast (Theorem 2.2).
//!
//! The implementation moved to [`crate::aggregation`] — one unified module
//! for every aggregation-style entry point — alongside `aggregate`,
//! `aggregate_opt` and `multi_aggregate` over the combiner trait in
//! [`crate::combine`]. This module re-exports the old names so existing
//! imports keep compiling; the module itself is deprecated (see
//! `lib.rs`), so clippy's `-D warnings` gate keeps new uses from landing.

pub use crate::aggregation::{
    ab_sub, aggregate_and_broadcast, sync_barrier, AbMsg, AbState, AbSub,
};
