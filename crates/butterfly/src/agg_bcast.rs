//! Aggregate-and-Broadcast (Theorem 2.2, Appendix B.1).
//!
//! Given a distributive aggregate `f` and a set `A ⊆ V` of nodes holding one
//! input each, every node learns `f(inputs of A)` in `O(log n)` rounds:
//!
//! 1. non-emulating nodes inject their inputs into their proxy level-0
//!    butterfly nodes;
//! 2. *aggregation sweep* (rounds `1..=d`): at round `r`, bit `r−1` of the
//!    column index is fixed to 0 — every live column with that bit set
//!    forwards its partial aggregate across the corresponding cross edge,
//!    so after round `d` the root column 0 holds the full aggregate at
//!    level `d`;
//! 3. *broadcast sweep* (rounds `d+1..=2d`): the reverse binomial tree
//!    pushes the result back to every column;
//! 4. a final round informs the attached non-emulating nodes.
//!
//! Every node sends and receives `O(1)` messages per round here. The same
//! execution doubles as the paper's synchronisation barrier ([`sync_barrier`])
//! — the token-passing variant of App. B.1 condensed to its round cost.

use ncc_model::{Ctx, Engine, Envelope, ExecStats, ModelError, NodeProgram, Payload};

use crate::combine::{Aggregate, MinU64};
use crate::topology::Butterfly;

/// Wire format. Discriminant + payload; levels are implied by the round.
#[derive(Debug, Clone)]
pub enum AbMsg<V> {
    /// Non-emulating node → proxy column (round 0).
    Inject(V),
    /// Aggregation sweep, cross edge toward the root.
    Down(V),
    /// Broadcast sweep, cross edge away from the root.
    Up(V),
    /// Level-0 column → attached non-emulating node.
    Result(V),
}

impl<V: Payload> Payload for AbMsg<V> {
    fn bit_size(&self) -> u32 {
        let inner = match self {
            AbMsg::Inject(v) | AbMsg::Down(v) | AbMsg::Up(v) | AbMsg::Result(v) => v.bit_size(),
        };
        2 + inner
    }
}

/// Per-node protocol state.
#[derive(Debug, Clone)]
pub struct AbState<V> {
    input: Option<V>,
    acc: Option<V>,
    /// The broadcast result once known; the driver reads this field.
    pub result: Option<V>,
}

struct AbProgram<'a, V, A> {
    bf: Butterfly,
    agg: &'a A,
    _pd: std::marker::PhantomData<V>,
}

impl<V: Payload, A: Aggregate<V>> AbProgram<'_, V, A> {
    fn absorb(&self, st: &mut AbState<V>, inbox: &[Envelope<AbMsg<V>>]) {
        for env in inbox {
            let v = match &env.payload {
                AbMsg::Inject(v) | AbMsg::Down(v) => v,
                AbMsg::Up(v) | AbMsg::Result(v) => {
                    st.result = Some(v.clone());
                    continue;
                }
            };
            st.acc = Some(match st.acc.take() {
                None => v.clone(),
                Some(a) => self.agg.combine(&a, v),
            });
        }
    }
}

impl<V: Payload, A: Aggregate<V>> NodeProgram for AbProgram<'_, V, A> {
    type State = AbState<V>;
    type Payload = AbMsg<V>;

    fn init(&self, st: &mut AbState<V>, ctx: &mut Ctx<'_, AbMsg<V>>) {
        if self.bf.emulates(ctx.id) {
            st.acc = st.input.clone();
            ctx.stay_awake();
        } else if let Some(v) = st.input.clone() {
            let proxy = self.bf.emulator(self.bf.proxy_column(ctx.id));
            ctx.send(proxy, AbMsg::Inject(v));
        }
    }

    fn round(
        &self,
        st: &mut AbState<V>,
        inbox: &[Envelope<AbMsg<V>>],
        ctx: &mut Ctx<'_, AbMsg<V>>,
    ) {
        let d = self.bf.d();
        let r = ctx.round;
        if !self.bf.emulates(ctx.id) {
            // non-emulating nodes only ever receive the final Result
            self.absorb(st, inbox);
            return;
        }
        let alpha = self.bf.column_of(ctx.id);
        self.absorb(st, inbox);

        if r <= d as u64 {
            // aggregation sweep: fix bit r−1
            let bit = 1u32 << (r - 1);
            let low_mask = bit - 1;
            if alpha & low_mask == 0 && alpha & bit != 0 {
                if let Some(v) = st.acc.take() {
                    ctx.send(self.bf.emulator(alpha & !bit), AbMsg::Down(v));
                }
            }
            ctx.stay_awake();
        } else if r <= 2 * d as u64 {
            // broadcast sweep: step j = r − d sends across bit d − j
            let j = (r - d as u64) as u32;
            if j == 1 && alpha == 0 {
                st.result = st.acc.clone();
            }
            let bit = 1u32 << (d - j);
            let low_mask = (bit << 1) - 1;
            if alpha & low_mask == 0 {
                if let Some(v) = st.result.clone() {
                    ctx.send(self.bf.emulator(alpha | bit), AbMsg::Up(v));
                }
            }
            ctx.stay_awake();
        } else if r == 2 * d as u64 + 1 {
            // inform the attached non-emulating node, if any
            if let Some(v) = st.result.clone() {
                if let Some(node) = self.bf.attached_node(alpha) {
                    ctx.send(node, AbMsg::Result(v));
                }
            }
        }
    }
}

/// Runs Aggregate-and-Broadcast: each node optionally holds one input;
/// afterwards every node knows the aggregate (or `None` if no node held an
/// input). Takes `O(log n)` rounds (Theorem 2.2).
pub fn aggregate_and_broadcast<V: Payload, A: Aggregate<V>>(
    engine: &mut Engine,
    inputs: Vec<Option<V>>,
    agg: &A,
) -> Result<(Vec<Option<V>>, ExecStats), ModelError> {
    let n = engine.n();
    assert_eq!(inputs.len(), n);
    if n == 1 {
        // degenerate network: the aggregate is the node's own input
        return Ok((inputs, ExecStats::default()));
    }
    let bf = Butterfly::for_n(n);
    let prog = AbProgram {
        bf,
        agg,
        _pd: std::marker::PhantomData,
    };
    let states: Vec<AbState<V>> = inputs
        .into_iter()
        .map(|input| AbState {
            input,
            acc: None,
            result: None,
        })
        .collect();
    let (states, stats) = crate::compose::run_single(engine, prog, states)?;
    // degenerate d = 0 (n = 2..3 has d = 1, so this only matters if the
    // butterfly had a single column; d ≥ 1 always holds for n ≥ 2)
    let results = states.into_iter().map(|s| s.result).collect();
    Ok((results, stats))
}

/// Aggregate-and-Broadcast as a composable lane: a single stage that rides
/// alongside heavier lanes (the paper's ubiquitous "agree on a global
/// value" step, at zero extra stage cost when composed). Build with
/// [`ab_sub`], run under [`crate::compose::run_composed`], read with
/// [`AbSub::into_results`].
pub struct AbSub<'a, V: Payload, A: Aggregate<V>> {
    stage: crate::compose::Stage<AbProgram<'a, V, A>, AbState<V>>,
    out: Option<Vec<Option<V>>>,
}

/// Builds the Aggregate-and-Broadcast sub-protocol. Arguments mirror
/// [`aggregate_and_broadcast`] (which stays the blocking adapter).
pub fn ab_sub<'a, V: Payload, A: Aggregate<V>>(
    n: usize,
    inputs: Vec<Option<V>>,
    agg: &'a A,
) -> AbSub<'a, V, A> {
    assert_eq!(inputs.len(), n);
    assert!(n >= 2, "composable A&B needs n ≥ 2");
    let bf = Butterfly::for_n(n);
    let states: Vec<AbState<V>> = inputs
        .into_iter()
        .map(|input| AbState {
            input,
            acc: None,
            result: None,
        })
        .collect();
    AbSub {
        stage: Some((
            AbProgram {
                bf,
                agg,
                _pd: std::marker::PhantomData,
            },
            states,
        )),
        out: None,
    }
}

impl<V: Payload, A: Aggregate<V>> AbSub<'_, V, A> {
    /// Per node: the broadcast aggregate (`None` iff no node held an
    /// input). Panics before the composition finished.
    pub fn into_results(self) -> Vec<Option<V>> {
        self.out.expect("A&B sub-protocol not finished")
    }
}

impl<'a, V: Payload, A: Aggregate<V>> crate::compose::LaneSub<'a> for AbSub<'a, V, A> {
    fn install(&mut self, b: &mut ncc_model::MuxBuilder<'a>) -> Option<ncc_model::LaneId> {
        let (prog, states) = self.stage.take()?;
        Some(b.lane(prog, states))
    }

    fn collect(&mut self, lane: ncc_model::LaneId, states: &mut [ncc_model::MuxState]) {
        let st: Vec<AbState<V>> = ncc_model::take_lane_states(states, lane);
        self.out = Some(st.into_iter().map(|s| s.result).collect());
    }
}

/// The synchronisation barrier used between phases of larger primitives:
/// an Aggregate-and-Broadcast of a constant. Costs the `O(log n)` rounds
/// the paper charges for its token-based synchronisation (App. B.1).
pub fn sync_barrier(engine: &mut Engine) -> Result<ExecStats, ModelError> {
    let n = engine.n();
    let inputs: Vec<Option<u64>> = vec![Some(1); n];
    let (results, stats) = aggregate_and_broadcast(engine, inputs, &MinU64)?;
    debug_assert!(results.iter().all(|r| *r == Some(1)));
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{MaxU64, SumU64};
    use ncc_model::NetConfig;

    fn engine(n: usize) -> Engine {
        Engine::new(NetConfig::new(n, 42))
    }

    #[test]
    fn sum_over_all_nodes() {
        for n in [2usize, 3, 4, 7, 8, 16, 33, 100, 128] {
            let mut eng = engine(n);
            let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
            let (res, stats) = aggregate_and_broadcast(&mut eng, inputs, &SumU64).unwrap();
            let expect = (n as u64 * (n as u64 - 1)) / 2;
            for (v, r) in res.iter().enumerate() {
                assert_eq!(*r, Some(expect), "node {v} at n={n}");
            }
            assert!(stats.clean(), "drops at n={n}");
        }
    }

    #[test]
    fn partial_input_set() {
        let n = 20;
        let mut eng = engine(n);
        // only nodes 3, 17 (non-emulating for d=4), 9 hold inputs
        let mut inputs: Vec<Option<u64>> = vec![None; n];
        inputs[3] = Some(30);
        inputs[17] = Some(5);
        inputs[9] = Some(12);
        let (res, _) = aggregate_and_broadcast(&mut eng, inputs, &MaxU64).unwrap();
        assert!(res.iter().all(|r| *r == Some(30)));
    }

    #[test]
    fn empty_input_set_gives_none() {
        let n = 16;
        let mut eng = engine(n);
        let inputs: Vec<Option<u64>> = vec![None; n];
        let (res, _) = aggregate_and_broadcast(&mut eng, inputs, &MinU64).unwrap();
        assert!(res.iter().all(|r| r.is_none()));
    }

    #[test]
    fn rounds_logarithmic() {
        // Theorem 2.2: O(log n) rounds. Measure the constant: 2d + O(1).
        for k in [3u32, 5, 8, 10] {
            let n = 1usize << k;
            let mut eng = engine(n);
            let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
            let (_, stats) = aggregate_and_broadcast(&mut eng, inputs, &SumU64).unwrap();
            assert!(
                stats.rounds <= 2 * k as u64 + 3,
                "n=2^{k}: {} rounds > 2d+3",
                stats.rounds
            );
        }
    }

    #[test]
    fn per_round_load_constant() {
        let n = 256;
        let mut eng = engine(n);
        let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
        let (_, stats) = aggregate_and_broadcast(&mut eng, inputs, &SumU64).unwrap();
        assert!(stats.max_in <= 2, "max in-degree {}", stats.max_in);
        assert!(stats.max_out <= 2, "max out-degree {}", stats.max_out);
    }

    #[test]
    fn non_power_of_two_includes_attached_nodes() {
        let n = 21; // d = 4, columns 0..16, attached 16..21
        let mut eng = engine(n);
        let inputs: Vec<Option<u64>> = (0..n as u64).map(|v| Some(v + 100)).collect();
        let (res, _) = aggregate_and_broadcast(&mut eng, inputs, &MaxU64).unwrap();
        // max input is node 20's (120); node 20 is non-emulating
        assert!(res.iter().all(|r| *r == Some(120)));
    }

    #[test]
    fn sync_barrier_costs_log_rounds() {
        let n = 64;
        let mut eng = engine(n);
        let stats = sync_barrier(&mut eng).unwrap();
        assert!(
            stats.rounds >= 6 && stats.rounds <= 16,
            "rounds {}",
            stats.rounds
        );
    }

    #[test]
    fn single_node_trivial() {
        let mut eng = engine(1);
        let (res, stats) = aggregate_and_broadcast(&mut eng, vec![Some(9u64)], &SumU64).unwrap();
        assert_eq!(res, vec![Some(9)]);
        assert_eq!(stats.rounds, 0);
    }
}
