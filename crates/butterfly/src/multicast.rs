//! The Multicast Algorithm (Theorem 2.5, Appendix B.4).
//!
//! With multicast trees already set up (Theorem 2.4), every source `s_i`
//! delivers its packet `p_i` to all members of its group `A_i` in
//! `O(C + ℓ̂/log n + log n)` rounds, where `C` is the tree congestion and
//! `ℓ̂` a known bound on group memberships per node:
//!
//! 1. each source sends `p_i` directly to the root `h(i)` (one NCC message);
//! 2. **spreading** — packets travel down the recorded tree edges from
//!    level `d` to level 0, one packet per butterfly edge per round,
//!    smallest rank first (the reverse of the combining-phase routing);
//!    a packet is *copied* onto every recorded child edge;
//! 3. leaves `l(i, u)` deliver `p_i` to their members `u` in rounds chosen
//!    uniformly from `{1..⌈ℓ̂/log n⌉}`.

use std::collections::BTreeMap;

use ncc_hashing::SharedRandomness;
use ncc_model::{Ctx, Engine, Envelope, ExecStats, ModelError, NodeId, NodeProgram, Payload};
use rand::Rng;

use crate::aggregation::sync_barrier;
use crate::aggregation::{LevelMsg, RouteHashes};
use crate::compose::run_single;
use crate::mctree::MulticastTrees;
use crate::topology::{Butterfly, GroupId};

// ---------------------------------------------------------------------------
// Spreading phase (shared with multi-aggregation)
// ---------------------------------------------------------------------------

/// Per-node state for the downward spreading phase. The tree slices
/// (`in_edges`, `leaves`) are this column's share of the recorded forest.
pub(crate) struct SpreadState<V> {
    /// `queues[i][dir]` (index `i` = level of the holding node − 1, i.e.
    /// levels `1..=d`): packets waiting to traverse the down-edge to the
    /// straight (`dir` 0) or cross (`dir` 1) child.
    pub queues: Vec<[BTreeMap<(u64, u64), V>; 2]>,
    /// This column's recorded in-edges (index `level − 1`, group → edges).
    pub in_edges: Vec<ncc_hashing::FxHashMap<u64, (bool, bool)>>,
    /// This column's leaf registrations (group → members).
    pub leaves: ncc_hashing::FxHashMap<u64, Vec<NodeId>>,
    /// `(group, member, value)` reaching level-0 leaves here.
    pub at_leaves: Vec<(u64, NodeId, V)>,
    /// If this node is a source: packet to fire at the root in round 0.
    pub source_packet: Option<(u64, V)>,
}

impl<V> SpreadState<V> {
    pub(crate) fn busy(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q[0].is_empty() || !q[1].is_empty())
    }
}

/// A packet arrives at `(level, α)`: copy it onto every recorded child
/// edge, or register leaf arrivals at level 0 (pushed to `at_leaves`).
pub(crate) fn spread_arrive<V: Payload>(
    hashes: &RouteHashes,
    st: &mut SpreadState<V>,
    level: u32,
    group: u64,
    value: V,
) {
    if level == 0 {
        if let Some(members) = st.leaves.get(&group) {
            for &m in members {
                st.at_leaves.push((group, m, value.clone()));
            }
        }
        return;
    }
    let Some(&(straight, cross)) = st.in_edges[level as usize - 1].get(&group) else {
        return; // no members below this tree node
    };
    let key = (hashes.rank(group), group);
    if straight {
        st.queues[level as usize - 1][0].insert(key, value.clone());
    }
    if cross {
        st.queues[level as usize - 1][1].insert(key, value);
    }
}

/// One spreading step at column `alpha`: forward one packet per down-edge
/// (ascending level order, so a locally advanced packet is not advanced
/// twice in one round); cross-edge traffic goes through `emit`. Each
/// emitted message debits `budget`; once it hits zero the remaining
/// queues wait for the next round (pass `usize::MAX` for the unpaced
/// solo-instance behaviour).
pub(crate) fn spread_step<V: Payload>(
    bf: &Butterfly,
    hashes: &RouteHashes,
    st: &mut SpreadState<V>,
    alpha: u32,
    budget: &mut usize,
    emit: &mut impl FnMut(NodeId, LevelMsg<V>),
) {
    let d = bf.d();
    for level in 1..=d {
        for dir in 0..2usize {
            if *budget == 0 {
                return;
            }
            if let Some(((_r, group), value)) = st.queues[level as usize - 1][dir].pop_first() {
                let child = if dir == 0 {
                    alpha
                } else {
                    alpha ^ (1 << (level - 1))
                };
                if child == alpha {
                    spread_arrive(hashes, st, level - 1, group, value);
                } else {
                    *budget -= 1;
                    emit(
                        bf.emulator(child),
                        LevelMsg {
                            level: (level - 1) as u8,
                            group,
                            value,
                        },
                    );
                }
            }
        }
    }
}

pub(crate) struct SpreadProgram<V> {
    pub bf: Butterfly,
    pub hashes: RouteHashes,
    pub _pd: std::marker::PhantomData<V>,
}

impl<V: Payload> NodeProgram for SpreadProgram<V> {
    type State = SpreadState<V>;
    type Payload = LevelMsg<V>;

    fn init(&self, st: &mut SpreadState<V>, ctx: &mut Ctx<'_, LevelMsg<V>>) {
        if let Some((group, value)) = st.source_packet.take() {
            let root = self.hashes.target_column(group);
            ctx.send(
                self.bf.emulator(root),
                LevelMsg {
                    level: self.bf.d() as u8,
                    group,
                    value,
                },
            );
        }
    }

    fn round(
        &self,
        st: &mut SpreadState<V>,
        inbox: &[Envelope<LevelMsg<V>>],
        ctx: &mut Ctx<'_, LevelMsg<V>>,
    ) {
        let alpha = self.bf.column_of(ctx.id);
        for env in inbox {
            spread_arrive(
                &self.hashes,
                st,
                env.payload.level as u32,
                env.payload.group,
                env.payload.value.clone(),
            );
        }
        let mut unpaced = usize::MAX;
        spread_step(
            &self.bf,
            &self.hashes,
            st,
            alpha,
            &mut unpaced,
            &mut |dst, msg| ctx.send(dst, msg),
        );
        if st.busy() {
            ctx.stay_awake();
        }
    }
}

/// Builds per-node spreading states from the recorded forest and the
/// sources' packets.
pub(crate) fn spread_states<V: Payload>(
    trees: &MulticastTrees,
    messages: Vec<Option<(GroupId, V)>>,
    d: u32,
) -> Vec<SpreadState<V>> {
    let n = trees.n;
    let mut states: Vec<SpreadState<V>> = (0..n)
        .map(|col| SpreadState {
            queues: (0..d).map(|_| [BTreeMap::new(), BTreeMap::new()]).collect(),
            in_edges: trees
                .in_edges
                .get(col)
                .cloned()
                .unwrap_or_else(|| (0..d).map(|_| ncc_hashing::FxHashMap::default()).collect()),
            leaves: trees.leaves.get(col).cloned().unwrap_or_default(),
            at_leaves: Vec::new(),
            source_packet: None,
        })
        .collect();
    for (u, msg) in messages.into_iter().enumerate() {
        if let Some((g, v)) = msg {
            states[u].source_packet = Some((g.raw(), v));
        }
    }
    states
}

// ---------------------------------------------------------------------------
// Leaf delivery phase
// ---------------------------------------------------------------------------

pub(crate) struct McDeliverState<V> {
    /// `(round, member, group, value)`, sorted by round after init.
    pub scheduled: Vec<(u64, NodeId, u64, V)>,
    pub received: Vec<(GroupId, V)>,
}

pub(crate) struct McDeliverProgram<V> {
    pub spread: u64,
    pub _pd: std::marker::PhantomData<V>,
}

impl<V: Payload> McDeliverProgram<V> {
    fn flush(
        &self,
        st: &mut McDeliverState<V>,
        ctx: &mut Ctx<'_, crate::aggregation::PacketMsg<V>>,
    ) {
        let now = ctx.round + 1;
        let due = st.scheduled.partition_point(|(r, _, _, _)| *r <= now);
        for (_, member, group, value) in st.scheduled.drain(..due) {
            ctx.send(member, crate::aggregation::PacketMsg { group, value });
        }
        if !st.scheduled.is_empty() {
            ctx.stay_awake();
        }
    }
}

impl<V: Payload> NodeProgram for McDeliverProgram<V> {
    type State = McDeliverState<V>;
    type Payload = crate::aggregation::PacketMsg<V>;

    fn init(
        &self,
        st: &mut McDeliverState<V>,
        ctx: &mut Ctx<'_, crate::aggregation::PacketMsg<V>>,
    ) {
        let mut scheduled = std::mem::take(&mut st.scheduled);
        for slot in scheduled.iter_mut() {
            slot.0 = ctx.rng.gen_range(1..=self.spread);
        }
        scheduled.sort_by_key(|(r, m, g, _)| (*r, *m, *g));
        st.scheduled = scheduled;
        self.flush(st, ctx);
    }

    fn round(
        &self,
        st: &mut McDeliverState<V>,
        inbox: &[Envelope<crate::aggregation::PacketMsg<V>>],
        ctx: &mut Ctx<'_, crate::aggregation::PacketMsg<V>>,
    ) {
        for env in inbox {
            st.received
                .push((GroupId(env.payload.group), env.payload.value.clone()));
        }
        self.flush(st, ctx);
    }
}

// ---------------------------------------------------------------------------
// Fused pipeline + lane-composable sub-protocol
// ---------------------------------------------------------------------------

/// Wire format of the fused multicast pipeline: tree routing + leaf
/// delivery in one program.
#[derive(Debug, Clone)]
pub(crate) enum McMsg<V> {
    Route(LevelMsg<V>),
    Deliver(crate::aggregation::PacketMsg<V>),
}

impl<V: Payload> Payload for McMsg<V> {
    fn bit_size(&self) -> u32 {
        1 + match self {
            McMsg::Route(m) => m.bit_size(),
            McMsg::Deliver(m) => m.bit_size(),
        }
    }
}

pub(crate) struct SpreadDeliverState<V> {
    pub spread: SpreadState<V>,
    /// `(due round, member, group, value)` — leaf deliveries in flight.
    pub scheduled: Vec<(u64, NodeId, u64, V)>,
    pub received: Vec<(GroupId, V)>,
}

/// The fused Multicast pipeline (Theorem 2.5, streamed): packets spread
/// down the recorded trees and every leaf arrival is *immediately*
/// scheduled for delivery in a uniformly random round of the next
/// `window = ⌈ℓ̂/log n⌉` rounds — the same load-smoothing rule as the
/// phase-separated variant, without the intermediate barrier. Used by the
/// composed (lane) path; the blocking [`multicast`] keeps the classic
/// phase structure.
pub(crate) struct SpreadDeliverProgram<V> {
    pub bf: Butterfly,
    pub hashes: RouteHashes,
    pub window: u64,
    pub _pd: std::marker::PhantomData<V>,
}

impl<V: Payload> NodeProgram for SpreadDeliverProgram<V> {
    type State = SpreadDeliverState<V>;
    type Payload = McMsg<V>;

    fn init(&self, st: &mut SpreadDeliverState<V>, ctx: &mut Ctx<'_, McMsg<V>>) {
        if let Some((group, value)) = st.spread.source_packet.take() {
            let root = self.hashes.target_column(group);
            ctx.send(
                self.bf.emulator(root),
                McMsg::Route(LevelMsg {
                    level: self.bf.d() as u8,
                    group,
                    value,
                }),
            );
        }
    }

    fn round(
        &self,
        st: &mut SpreadDeliverState<V>,
        inbox: &[Envelope<McMsg<V>>],
        ctx: &mut Ctx<'_, McMsg<V>>,
    ) {
        for env in inbox {
            match &env.payload {
                McMsg::Deliver(p) => st.received.push((GroupId(p.group), p.value.clone())),
                McMsg::Route(m) => {
                    debug_assert!(self.bf.emulates(ctx.id), "routing reaches emulators only");
                    spread_arrive(
                        &self.hashes,
                        &mut st.spread,
                        m.level as u32,
                        m.group,
                        m.value.clone(),
                    );
                }
            }
        }
        if !self.bf.emulates(ctx.id) {
            return; // members only ever receive Deliver messages
        }
        let alpha = self.bf.column_of(ctx.id);
        let mut unpaced = usize::MAX;
        spread_step(
            &self.bf,
            &self.hashes,
            &mut st.spread,
            alpha,
            &mut unpaced,
            &mut |dst, msg| ctx.send(dst, McMsg::Route(msg)),
        );
        // schedule fresh leaf arrivals: deliver in a uniform round of the
        // next `window` rounds (delay 1 = this round's send)
        for (group, member, value) in st.spread.at_leaves.drain(..) {
            let due = ctx.round + ctx.rng.gen_range(1..=self.window) - 1;
            st.scheduled.push((due, member, group, value));
        }
        // flush due deliveries in scheduling order (deterministic), one
        // O(k) pass — sends move out, survivors are re-collected in order
        let now = ctx.round;
        let pending = std::mem::take(&mut st.scheduled);
        st.scheduled = pending
            .into_iter()
            .filter_map(|(due, member, group, value)| {
                if due <= now {
                    ctx.send(
                        member,
                        McMsg::Deliver(crate::aggregation::PacketMsg { group, value }),
                    );
                    None
                } else {
                    Some((due, member, group, value))
                }
            })
            .collect();
        if st.spread.busy() || !st.scheduled.is_empty() {
            ctx.stay_awake();
        }
    }
}

/// Multicast as a composable lane: one fused stage (spread + smoothed leaf
/// delivery). Build with [`multicast_sub`], run under
/// [`crate::compose::run_composed`], read with
/// [`MulticastSub::into_deliveries`].
pub struct MulticastSub<V: Payload> {
    stage: Option<(SpreadDeliverProgram<V>, Vec<SpreadDeliverState<V>>)>,
    lane_seed: u64,
    out: Option<crate::aggregation::GroupedDeliveries<V>>,
}

/// Builds the multicast sub-protocol over previously set-up trees.
/// Arguments mirror [`multicast`]; `lane_seed` keys the lane's private
/// randomness stream (delivery-round draws).
pub fn multicast_sub<V: Payload>(
    n: usize,
    shared: &SharedRandomness,
    trees: &MulticastTrees,
    messages: Vec<Option<(GroupId, V)>>,
    ell_hat: usize,
    lane_seed: u64,
) -> MulticastSub<V> {
    assert_eq!(messages.len(), n);
    let bf = Butterfly::for_n(n);
    let hashes = RouteHashes::new(shared, &bf, n);
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let window = (ell_hat.div_ceil(logn)).max(1) as u64;
    let states: Vec<SpreadDeliverState<V>> = spread_states(trees, messages, bf.d())
        .into_iter()
        .map(|spread| SpreadDeliverState {
            spread,
            scheduled: Vec::new(),
            received: Vec::new(),
        })
        .collect();
    MulticastSub {
        stage: Some((
            SpreadDeliverProgram {
                bf,
                hashes,
                window,
                _pd: std::marker::PhantomData,
            },
            states,
        )),
        lane_seed,
        out: None,
    }
}

impl<V: Payload> MulticastSub<V> {
    /// The per-node `(group, payload)` deliveries. Panics before the
    /// composition ran to completion.
    pub fn into_deliveries(self) -> crate::aggregation::GroupedDeliveries<V> {
        self.out.expect("multicast sub-protocol not finished")
    }
}

impl<'a, V: Payload> crate::compose::LaneSub<'a> for MulticastSub<V> {
    fn install(&mut self, b: &mut ncc_model::MuxBuilder<'a>) -> Option<ncc_model::LaneId> {
        let (prog, states) = self.stage.take()?;
        Some(b.lane_seeded(prog, states, self.lane_seed))
    }

    fn collect(&mut self, lane: ncc_model::LaneId, states: &mut [ncc_model::MuxState]) {
        let st: Vec<SpreadDeliverState<V>> = ncc_model::take_lane_states(states, lane);
        self.out = Some(st.into_iter().map(|s| s.received).collect());
    }

    fn is_done(&self) -> bool {
        self.out.is_some()
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs the Multicast Algorithm over previously set-up trees.
///
/// `messages[u]` is `Some((group, payload))` iff node `u` is the source of
/// `group`. `ell_hat` is the known bound on group memberships per node.
/// Returns, per node, the multicast packets it received as a member.
pub fn multicast<V: Payload>(
    engine: &mut Engine,
    shared: &SharedRandomness,
    trees: &MulticastTrees,
    messages: Vec<Option<(GroupId, V)>>,
    ell_hat: usize,
) -> Result<(crate::aggregation::GroupedDeliveries<V>, ExecStats), ModelError> {
    let n = engine.n();
    assert_eq!(messages.len(), n);
    let bf = Butterfly::for_n(n);
    let hashes = RouteHashes::new(shared, &bf, n);
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let mut total = ExecStats::default();

    // phases 1–2: inject at roots, spread down the trees
    let spread_prog = SpreadProgram::<V> {
        bf,
        hashes,
        _pd: std::marker::PhantomData,
    };
    let sstates = spread_states(trees, messages, bf.d());
    let (sstates, s) = run_single(engine, spread_prog, sstates)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    // phase 3: leaf delivery
    let spread = (ell_hat.div_ceil(logn)).max(1) as u64;
    let deliver = McDeliverProgram::<V> {
        spread,
        _pd: std::marker::PhantomData,
    };
    let dstates: Vec<McDeliverState<V>> = sstates
        .into_iter()
        .map(|s| McDeliverState {
            scheduled: s
                .at_leaves
                .into_iter()
                .map(|(g, m, v)| (0, m, g, v))
                .collect(),
            received: Vec::new(),
        })
        .collect();
    let (dstates, s) = run_single(engine, deliver, dstates)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    Ok((dstates.into_iter().map(|s| s.received).collect(), total))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index several parallel per-node arrays
mod tests {
    use super::*;
    use crate::mctree::{multicast_setup, self_joins};
    use ncc_model::NetConfig;

    fn run(
        n: usize,
        joins: Vec<Vec<GroupId>>,
        messages: Vec<Option<(GroupId, u64)>>,
        ell_hat: usize,
    ) -> (Vec<Vec<(GroupId, u64)>>, ExecStats) {
        let mut eng = Engine::new(NetConfig::new(n, 17));
        let shared = SharedRandomness::new(23);
        let (trees, _) = multicast_setup(&mut eng, &shared, self_joins(joins)).unwrap();
        multicast(&mut eng, &shared, &trees, messages, ell_hat).unwrap()
    }

    #[test]
    fn one_source_many_members() {
        let n = 64;
        let g = GroupId::new(7, 0);
        let members = [2usize, 9, 31, 40, 63];
        let mut joins = vec![Vec::new(); n];
        for &m in &members {
            joins[m].push(g);
        }
        let mut messages = vec![None; n];
        messages[7] = Some((g, 0xCAFE));
        let (out, stats) = run(n, joins, messages, 1);
        for v in 0..n {
            if members.contains(&v) {
                assert_eq!(out[v], vec![(g, 0xCAFE)], "node {v}");
            } else {
                assert!(out[v].is_empty(), "node {v} got {:?}", out[v]);
            }
        }
        assert!(stats.clean());
    }

    #[test]
    fn many_concurrent_multicasts() {
        // every node sources a group; node u joins groups of u−1, u+1 (ring)
        let n = 32;
        let mut joins = vec![Vec::new(); n];
        let mut messages = vec![None; n];
        for u in 0..n {
            let left = GroupId::new(((u + n - 1) % n) as u32, 4);
            let right = GroupId::new(((u + 1) % n) as u32, 4);
            joins[u].push(left);
            joins[u].push(right);
            messages[u] = Some((GroupId::new(u as u32, 4), 1000 + u as u64));
        }
        let (out, stats) = run(n, joins, messages, 2);
        for u in 0..n {
            let mut got = out[u].clone();
            got.sort_by_key(|(g, _)| g.raw());
            let l = ((u + n - 1) % n) as u32;
            let r = ((u + 1) % n) as u32;
            let mut expect = vec![
                (GroupId::new(l, 4), 1000 + l as u64),
                (GroupId::new(r, 4), 1000 + r as u64),
            ];
            expect.sort_by_key(|(g, _)| g.raw());
            assert_eq!(got, expect, "node {u}");
        }
        assert!(stats.clean());
    }

    #[test]
    fn source_without_members_delivers_nothing() {
        let n = 16;
        let g = GroupId::new(0, 1);
        let joins = vec![Vec::new(); n];
        let mut messages = vec![None; n];
        messages[0] = Some((g, 5));
        let (out, _) = run(n, joins, messages, 1);
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    fn rounds_scale_with_congestion_plus_log() {
        // broadcast-tree-like load: n/8 groups of 8 members each
        let n = 128;
        let mut joins = vec![Vec::new(); n];
        let mut messages = vec![None; n];
        for u in 0..n {
            joins[u].push(GroupId::new((u % (n / 8)) as u32, 0));
        }
        for s in 0..(n / 8) as u32 {
            messages[s as usize] = Some((GroupId::new(s, 0), s as u64));
        }
        let (out, stats) = run(n, joins, messages, 1);
        let delivered: usize = out.iter().map(Vec::len).sum();
        assert_eq!(delivered, n);
        // C = O(log n) here, so total O(log n); allow a generous constant
        assert!(stats.rounds < 30 * 7, "rounds {}", stats.rounds);
        assert!(stats.clean());
    }
}
