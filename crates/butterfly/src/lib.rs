//! # ncc-butterfly — butterfly emulation and communication primitives
//!
//! §2.2 and Appendix B of the paper build a toolbox of primitives on an
//! emulated butterfly network, which everything else (MST, orientation,
//! BFS, MIS, matching, coloring) is written against:
//!
//! | primitive | paper | bound |
//! |---|---|---|
//! | [`aggregate_and_broadcast`] | Thm 2.2 | `O(log n)` |
//! | [`aggregate`] | Thm 2.3 | `O(L/n + (ℓ₁+ℓ̂₂)/log n + log n)` |
//! | [`multicast_setup`] | Thm 2.4 | `O(L/n + ℓ/log n + log n)`, congestion `O(L/n + log n)` |
//! | [`multicast`](multicast::multicast) | Thm 2.5 | `O(C + ℓ̂/log n + log n)` |
//! | [`multi_aggregate`] | Thm 2.6 | `O(C + log n)` |
//!
//! Every node with identifier `< 2^d` (`d = ⌊log₂ n⌋`) emulates one complete
//! *column* of the `d`-dimensional butterfly; nodes with identifier `≥ 2^d`
//! attach to a proxy column. A butterfly communication round maps to one NCC
//! round because a column touches `O(log n)` butterfly edges and each node
//! may send/receive `O(log n)` messages (§2.2).
//!
//! ## Phase synchronisation
//!
//! The paper interleaves a token-passing variant of Aggregate-and-Broadcast
//! to synchronise phase boundaries (App. B.1). Here each primitive is a
//! sequence of phase programs; the engine's quiescence detection plays the
//! token protocol's role, and an **explicit in-model A&B run is charged at
//! every phase boundary** so round totals include the synchronisation cost,
//! exactly as the paper's bounds do.
//!
//! ## Concurrent composition
//!
//! Every primitive also exists as a *composable sub-protocol*
//! ([`ab_sub`], [`aggregation_sub`], [`multicast_setup_sub`],
//! [`multicast_sub`], [`multi_aggregate_sub`]): fused pipeline stages that
//! run as lanes of one [`ncc_model::Mux`] under [`run_composed`], so
//! concurrent primitive instances **share rounds, capacity and one
//! barrier per stage** instead of queuing — the §2 "run many instances in
//! parallel" argument, executable (see [`compose`]). The blocking
//! functions above stay byte-stable: they are one-lane adapters with the
//! classic phase structure.
//!
//! # Example: global minimum in `O(log n)` rounds
//!
//! ```
//! use ncc_butterfly::{aggregate_and_broadcast, MinU64};
//! use ncc_model::{Engine, NetConfig};
//!
//! let n = 100;
//! let mut engine = Engine::new(NetConfig::new(n, 7));
//! let inputs: Vec<Option<u64>> = (0..n as u64).map(|v| Some(1000 - v)).collect();
//! let (results, stats) = aggregate_and_broadcast(&mut engine, inputs, &MinU64).unwrap();
//! assert!(results.iter().all(|r| *r == Some(1000 - 99))); // everyone learns the min
//! assert!(stats.rounds <= 2 * 7 + 3);                      // 2·⌈log₂ n⌉ + O(1)
//! ```

pub mod aggregation;
pub mod combine;
pub mod compose;
pub mod mctree;
pub mod multicast;
pub mod schedule;
pub mod seed;
pub mod topology;

pub use aggregation::{
    ab_sub, aggregate, aggregate_and_broadcast, aggregate_opt, aggregation_sub, multi_aggregate,
    multi_aggregate_sub, sync_barrier, AbSub, AggregationSpec, AggregationSub, GroupedDeliveries,
    MultiAggSub,
};
pub use combine::{Aggregate, MaxU64, MinByKey, MinU64, SumPair, SumU64, XorPair, XorSum, XorU64};
pub use compose::{
    lane_seed, run_composed, run_single, ComposeReport, Dag, DagOutputs, Dep, Deps, LaneSub,
    ProtoNode,
};
pub use mctree::{multicast_setup, multicast_setup_sub, self_joins, McSetupSub, MulticastTrees};
pub use multicast::{multicast, multicast_sub, MulticastSub};
pub use schedule::{default_lane_budget, DagRun, LaneRecord, PackedStage, SchedReport};
pub use seed::broadcast_seed;
pub use topology::{Butterfly, GroupId};
