//! Butterfly index arithmetic and column emulation.
//!
//! The `d`-dimensional butterfly (§2.2) has nodes `(i, α)` for levels
//! `i ∈ [d+1]` and columns `α ∈ [2^d]`, with *straight* edges
//! `(i,α)–(i+1,α)` and *cross* edges `(i,α)–(i+1,β)` where `α, β` differ
//! exactly at bit `i`. From level 0 there is a unique length-`d` path to any
//! level-`d` node: at level `i`, fix bit `i` of the column to the target's
//! bit `i` (bit-fixing routing).
//!
//! Emulation: NCC node `v < 2^d` emulates the whole column `v`; node
//! `v ≥ 2^d` attaches to *proxy* column `v − 2^d` (the paper's "identifier
//! differs only at the most significant bit"). Straight-edge traffic is
//! internal to one NCC node (free); cross-edge traffic is one NCC message.

use ncc_model::NodeId;

/// Butterfly geometry for an `n`-node network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Butterfly {
    n: usize,
    d: u32,
}

impl Butterfly {
    /// Builds the butterfly for `n ≥ 2` nodes: `d = ⌊log₂ n⌋`.
    pub fn for_n(n: usize) -> Self {
        assert!(n >= 2, "butterfly emulation needs at least two nodes");
        Butterfly {
            n,
            d: ncc_model::ilog2_floor(n),
        }
    }

    /// Dimension `d`.
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Number of columns, `2^d`.
    pub fn columns(&self) -> usize {
        1 << self.d
    }

    /// Network size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Does NCC node `v` emulate a column?
    #[inline]
    pub fn emulates(&self, v: NodeId) -> bool {
        (v as usize) < self.columns()
    }

    /// The column emulated by node `v` (caller must check [`Self::emulates`]).
    #[inline]
    pub fn column_of(&self, v: NodeId) -> u32 {
        debug_assert!(self.emulates(v));
        v
    }

    /// The NCC node that emulates column `α`.
    #[inline]
    pub fn emulator(&self, alpha: u32) -> NodeId {
        debug_assert!((alpha as usize) < self.columns());
        alpha
    }

    /// Proxy column for a non-emulating node `v ≥ 2^d`.
    #[inline]
    pub fn proxy_column(&self, v: NodeId) -> u32 {
        debug_assert!(!self.emulates(v));
        v - self.columns() as u32
    }

    /// The non-emulating node attached to column `α`, if any.
    #[inline]
    pub fn attached_node(&self, alpha: u32) -> Option<NodeId> {
        let v = alpha as usize + self.columns();
        if v < self.n {
            Some(v as NodeId)
        } else {
            None
        }
    }

    /// Next column on the unique path toward level-`d` column `target`,
    /// taken from level `i` (so bit `i` is fixed).
    #[inline]
    pub fn route_step(&self, alpha: u32, i: u32, target: u32) -> u32 {
        debug_assert!(i < self.d);
        let bit = 1u32 << i;
        (alpha & !bit) | (target & bit)
    }

    /// Whether the routing step at level `i` toward `target` crosses
    /// columns (i.e. costs an NCC message) from column `alpha`.
    #[inline]
    pub fn route_is_cross(&self, alpha: u32, i: u32, target: u32) -> bool {
        ((alpha ^ target) >> i) & 1 == 1
    }

    /// The two columns adjacent to `(i, α)` at level `i+1` (straight, cross).
    #[inline]
    pub fn down_neighbors(&self, alpha: u32, i: u32) -> (u32, u32) {
        debug_assert!(i < self.d);
        (alpha, alpha ^ (1 << i))
    }

    /// Length of the unique level-0 → level-d path (always `d`).
    pub fn path_len(&self) -> u32 {
        self.d
    }

    /// Walks the unique path from `(0, src)` to `(d, target)`, returning the
    /// sequence of columns visited (length `d + 1`).
    pub fn path_columns(&self, src: u32, target: u32) -> Vec<u32> {
        let mut cols = Vec::with_capacity(self.d as usize + 1);
        let mut cur = src;
        cols.push(cur);
        for i in 0..self.d {
            cur = self.route_step(cur, i, target);
            cols.push(cur);
        }
        cols
    }
}

/// Group identifiers used by the aggregation/multicast primitives.
///
/// The paper names groups by content — `A_{id(w)}`, `A_{id(w)∘i}` — so a
/// group identifier both *names* the group and *encodes its target*. We pack
/// `target` into the high 32 bits and a caller-chosen sub-identifier into
/// the low 32: the semantic width is `O(log n)` bits and the minimal-width
/// payload accounting in `ncc-model` sees exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u64);

impl GroupId {
    /// Group named `target ∘ sub` (paper notation `A_{id(t)∘sub}`).
    #[inline]
    pub fn new(target: NodeId, sub: u32) -> Self {
        GroupId(((target as u64) << 32) | sub as u64)
    }

    /// The node this group's aggregate is destined for.
    #[inline]
    pub fn target(&self) -> NodeId {
        (self.0 >> 32) as NodeId
    }

    #[inline]
    pub fn sub(&self) -> u32 {
        self.0 as u32
    }

    #[inline]
    pub fn raw(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let b = Butterfly::for_n(16);
        assert_eq!(b.d(), 4);
        assert_eq!(b.columns(), 16);
        let b = Butterfly::for_n(17);
        assert_eq!(b.d(), 4);
        assert_eq!(b.columns(), 16);
        let b = Butterfly::for_n(1024);
        assert_eq!(b.d(), 10);
    }

    #[test]
    fn emulation_mapping() {
        let b = Butterfly::for_n(20); // d = 4, 16 columns, 4 attached nodes
        assert!(b.emulates(0));
        assert!(b.emulates(15));
        assert!(!b.emulates(16));
        assert_eq!(b.proxy_column(16), 0);
        assert_eq!(b.proxy_column(19), 3);
        assert_eq!(b.attached_node(0), Some(16));
        assert_eq!(b.attached_node(3), Some(19));
        assert_eq!(b.attached_node(4), None);
    }

    #[test]
    fn bit_fixing_path_reaches_target() {
        let b = Butterfly::for_n(64); // d = 6
        for (src, dst) in [(0u32, 63u32), (5, 40), (63, 0), (21, 21)] {
            let p = b.path_columns(src, dst);
            assert_eq!(p.len(), 7);
            assert_eq!(p[0], src);
            assert_eq!(*p.last().unwrap(), dst);
            // each step changes at most bit i
            for (i, w) in p.windows(2).enumerate() {
                let diff = w[0] ^ w[1];
                assert!(diff == 0 || diff == 1 << i, "step {i} changed {diff:b}");
            }
        }
    }

    #[test]
    fn route_step_cross_detection() {
        let b = Butterfly::for_n(16);
        // from column 0b0101 at level 1 toward target 0b0111: bit 1 differs
        assert!(b.route_is_cross(0b0101, 1, 0b0111));
        assert_eq!(b.route_step(0b0101, 1, 0b0111), 0b0111);
        // same bit: straight
        assert!(!b.route_is_cross(0b0101, 2, 0b0111));
        assert_eq!(b.route_step(0b0101, 2, 0b0111), 0b0101);
    }

    #[test]
    fn down_neighbors_differ_at_level_bit() {
        let b = Butterfly::for_n(32);
        let (s, c) = b.down_neighbors(0b01010, 3);
        assert_eq!(s, 0b01010);
        assert_eq!(c, 0b00010);
    }

    #[test]
    fn paths_unique_per_source_target() {
        // distinct sources reach the same target via distinct columns at
        // intermediate levels until bits merge — spot-check determinism
        let b = Butterfly::for_n(16);
        assert_eq!(b.path_columns(3, 9), b.path_columns(3, 9));
    }

    #[test]
    fn group_id_packing() {
        let g = GroupId::new(77, 5);
        assert_eq!(g.target(), 77);
        assert_eq!(g.sub(), 5);
        assert_eq!(GroupId(g.raw()), g);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_network_rejected() {
        let _ = Butterfly::for_n(1);
    }
}
