//! Shared-randomness agreement (§2.2).
//!
//! *"To agree on such hash functions, all nodes have to learn Θ(log² n)
//! random bits. This can be done by letting the node with identifier 0
//! broadcast Θ(log n) messages, each consisting of log n bits, to all other
//! nodes using the butterfly."*
//!
//! [`broadcast_seed`] implements exactly that: node 0 chops the required bit
//! volume into machine-word chunks and pushes them down the binomial
//! broadcast tree of the butterfly, **pipelined** — a column relays each
//! chunk to all of its tree children in the round after receiving it, so the
//! total time is `O(#chunks + log n)` and per-round load stays `O(log n)`.
//!
//! Semantically the nodes only need to agree on a 64-bit master seed (the
//! expansion to hash functions is deterministic, see
//! `ncc_hashing::SharedRandomness`); the remaining chunks carry real —
//! deterministically derived — bits so the protocol pays the full
//! communication cost the paper charges.

use ncc_hashing::SharedRandomness;
use ncc_model::{Ctx, Engine, Envelope, ExecStats, ModelError, NodeProgram, Payload};

use crate::topology::Butterfly;

/// One chunk of seed material.
#[derive(Debug, Clone)]
pub struct SeedChunk {
    pub index: u32,
    pub word: u64,
}

impl Payload for SeedChunk {
    fn bit_size(&self) -> u32 {
        // chunk index (small) + one word of seed material
        ncc_model::payload::min_bits(self.index as u64) + 64
    }
}

#[derive(Debug, Clone, Default)]
pub struct SeedState {
    /// Chunks received so far (only chunk 0 carries the master seed).
    pub words: Vec<(u32, u64)>,
}

struct SeedProgram {
    bf: Butterfly,
    master: u64,
    chunks: u32,
}

impl SeedProgram {
    /// Children of column α in the binomial broadcast tree: α | 2^b for
    /// every bit position b below α's lowest set bit (all of 0..d for the
    /// root), plus the attached non-emulating node.
    fn relay<F: FnMut(u32)>(&self, alpha: u32, mut f: F) {
        let d = self.bf.d();
        let limit = if alpha == 0 {
            d
        } else {
            alpha.trailing_zeros()
        };
        for b in 0..limit {
            f(alpha | (1 << b));
        }
    }

    fn word_for(&self, index: u32) -> u64 {
        if index == 0 {
            self.master
        } else {
            // deterministic filler: real bits on the wire, derived content
            ncc_model::rng::splitmix64(self.master ^ (0x5eed_c0de ^ index as u64))
        }
    }
}

impl NodeProgram for SeedProgram {
    type State = SeedState;
    type Payload = SeedChunk;

    fn init(&self, st: &mut SeedState, ctx: &mut Ctx<'_, SeedChunk>) {
        if ctx.id == 0 {
            st.words = (0..self.chunks).map(|i| (i, self.word_for(i))).collect();
            ctx.stay_awake();
        }
    }

    fn round(
        &self,
        st: &mut SeedState,
        inbox: &[Envelope<SeedChunk>],
        ctx: &mut Ctx<'_, SeedChunk>,
    ) {
        if !self.bf.emulates(ctx.id) {
            for env in inbox {
                st.words.push((env.payload.index, env.payload.word));
            }
            return;
        }
        let alpha = self.bf.column_of(ctx.id);
        // relay newly received chunks to all tree children + attached node
        let mut to_relay: Vec<SeedChunk> = Vec::new();
        if ctx.id == 0 {
            // the root injects one chunk per round, pipelined
            let idx = (ctx.round - 1) as u32;
            if idx < self.chunks {
                to_relay.push(SeedChunk {
                    index: idx,
                    word: self.word_for(idx),
                });
                if (idx + 1) < self.chunks {
                    ctx.stay_awake();
                }
            }
        }
        for env in inbox {
            st.words.push((env.payload.index, env.payload.word));
            to_relay.push(env.payload.clone());
        }
        for chunk in to_relay {
            self.relay(alpha, |child| {
                ctx.send(self.bf.emulator(child), chunk.clone());
            });
            if let Some(attached) = self.bf.attached_node(alpha) {
                ctx.send(attached, chunk.clone());
            }
        }
    }
}

/// Broadcasts `total_bits` of shared randomness from node 0 and returns the
/// agreed-upon [`SharedRandomness`]. Rounds: `O(total_bits/64 + log n)`.
///
/// Use [`SharedRandomness::bits_required`] to size `total_bits` for the hash
/// functions a protocol needs (`Θ(log² n)` per function of `Θ(log n)`-wise
/// independence).
pub fn broadcast_seed(
    engine: &mut Engine,
    master: u64,
    total_bits: usize,
) -> Result<(SharedRandomness, ExecStats), ModelError> {
    let n = engine.n();
    if n == 1 {
        return Ok((SharedRandomness::new(master), ExecStats::default()));
    }
    let bf = Butterfly::for_n(n);
    let chunks = (total_bits.div_ceil(64)).max(1) as u32;
    let prog = SeedProgram { bf, master, chunks };
    let mut states = vec![SeedState::default(); n];
    let stats = engine.execute(&prog, &mut states)?;
    // verify agreement: every node's chunk-0 word is the master seed
    for (v, st) in states.iter().enumerate() {
        let got = st.words.iter().find(|(i, _)| *i == 0).map(|(_, w)| *w);
        debug_assert_eq!(got, Some(master), "node {v} missed the seed");
        let received: std::collections::BTreeSet<u32> = st.words.iter().map(|(i, _)| *i).collect();
        debug_assert_eq!(received.len() as u32, chunks, "node {v} missed chunks");
    }
    Ok((SharedRandomness::new(master), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_model::NetConfig;

    #[test]
    fn all_nodes_learn_all_chunks() {
        for n in [2usize, 5, 16, 37, 64] {
            let mut eng = Engine::new(NetConfig::new(n, 1));
            let (shared, stats) = broadcast_seed(&mut eng, 0xABCD, 700).unwrap();
            assert_eq!(shared, SharedRandomness::new(0xABCD));
            assert!(stats.clean(), "drops at n={n}");
        }
    }

    #[test]
    fn rounds_scale_with_chunks_plus_depth() {
        let n = 256; // d = 8
        let bits = 64 * 40; // 40 chunks
        let mut eng = Engine::new(NetConfig::new(n, 1));
        let (_, stats) = broadcast_seed(&mut eng, 7, bits).unwrap();
        // pipelined: ≈ chunks + d, certainly below chunks·d
        assert!(stats.rounds >= 40, "rounds {}", stats.rounds);
        assert!(stats.rounds <= 40 + 8 + 4, "rounds {}", stats.rounds);
    }

    #[test]
    fn load_stays_logarithmic() {
        let n = 512;
        let mut eng = Engine::new(NetConfig::new(n, 1));
        let (_, stats) = broadcast_seed(&mut eng, 7, 64 * 30).unwrap();
        let cap = eng.config().capacity.send as u64;
        assert!(
            stats.max_out <= cap,
            "max_out {} > cap {cap}",
            stats.max_out
        );
        assert!(stats.clean());
    }

    #[test]
    fn typical_bits_volume_for_log_squared() {
        let n = 1024;
        let k = SharedRandomness::k_for(n);
        let bits = SharedRandomness::bits_required(n, 2 * 10, k);
        let mut eng = Engine::new(NetConfig::new(n, 1));
        let (_, stats) = broadcast_seed(&mut eng, 3, bits).unwrap();
        // Θ(log² n)-ish bits at n=1024 → order 10² rounds, not order n
        assert!(stats.rounds < 200, "rounds {}", stats.rounds);
    }
}
