//! Multicast Tree Setup (Theorem 2.4, Appendix B.3).
//!
//! For multicast groups `A_1..A_N` (each node source of at most one group),
//! builds a multicast tree `T_i` per group inside the butterfly: the root is
//! the uniform level-`d` column `h(i)`, and each member `u ∈ A_i` owns a
//! random level-0 leaf `l(i, u)`. The trees are the union of the paths the
//! members' join-packets take during an aggregation run — every butterfly
//! node records, per group, along which in-edges packets arrived.
//!
//! Setup time `O(L/n + ℓ/log n + log n)`; the resulting trees have
//! congestion `O(L/n + log n)` w.h.p. (number of trees sharing a butterfly
//! node), which is measured by [`MulticastTrees::congestion`] and validated
//! in experiment E4.

use std::collections::BTreeMap;

use ncc_hashing::{FxHashMap, SharedRandomness};
use ncc_model::{Ctx, Engine, Envelope, ExecStats, ModelError, NodeId, NodeProgram};
use rand::Rng;

use crate::aggregation::sync_barrier;
use crate::aggregation::{InjectProgram, InjectState, LevelMsg, RouteHashes};
use crate::compose::run_single;
use crate::topology::{Butterfly, GroupId};

/// The recorded forest of multicast trees, indexed by column.
///
/// Each NCC node holds (and during multicast, uses) only its own column's
/// slice; the aggregate structure exists driver-side for analysis and for
/// constructing per-node multicast states.
#[derive(Debug, Clone)]
pub struct MulticastTrees {
    pub d: u32,
    pub n: usize,
    /// `leaves[α]`: groups whose leaf for some members is column α's level-0
    /// node, with those members.
    pub leaves: Vec<FxHashMap<u64, Vec<NodeId>>>,
    /// `in_edges[α][i]` for `i ∈ 1..=d` (index `i−1`): per group, whether a
    /// packet arrived at `(i, α)` via the straight edge and/or the cross
    /// edge from level `i−1`.
    pub in_edges: Vec<Vec<FxHashMap<u64, (bool, bool)>>>,
    /// Groups rooted at each column (level `d`).
    pub roots: Vec<Vec<u64>>,
}

impl MulticastTrees {
    /// Maximum number of distinct trees sharing one butterfly node — the
    /// congestion `C` of Theorems 2.4–2.6.
    pub fn congestion(&self) -> usize {
        let mut best = 0;
        for alpha in 0..self.leaves.len() {
            // level 0: leaf sets
            best = best.max(self.leaves[alpha].len());
            for lvl in &self.in_edges[alpha] {
                best = best.max(lvl.len());
            }
            best = best.max(self.roots[alpha].len());
        }
        best
    }

    /// Total number of tree nodes across all trees (size of the forest).
    pub fn total_tree_nodes(&self) -> usize {
        self.leaves.iter().map(FxHashMap::len).sum::<usize>()
            + self
                .in_edges
                .iter()
                .flat_map(|lvls| lvls.iter().map(FxHashMap::len))
                .sum::<usize>()
    }
}

/// Per-node recording state for the tree-building routing run.
pub(crate) struct RecordState {
    /// Routing queues as in the combining phase, value = unit (join packets
    /// carry no data; combining just merges paths).
    queues: Vec<[BTreeMap<(u64, u64), ()>; 2]>,
    leaves: FxHashMap<u64, Vec<NodeId>>,
    in_edges: Vec<FxHashMap<u64, (bool, bool)>>,
}

impl RecordState {
    fn new(d: u32) -> Self {
        RecordState {
            queues: (0..d).map(|_| [BTreeMap::new(), BTreeMap::new()]).collect(),
            leaves: FxHashMap::default(),
            in_edges: (0..d).map(|_| FxHashMap::default()).collect(),
        }
    }

    fn busy(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q[0].is_empty() || !q[1].is_empty())
    }
}

pub(crate) struct RecordProgram {
    bf: Butterfly,
    hashes: RouteHashes,
}

impl RecordProgram {
    /// Inserts a join packet at `(level, α)`, recording the in-edge
    /// (`via_cross`) it used; `level == d` records the root.
    fn insert(&self, st: &mut RecordState, alpha: u32, level: u32, group: u64, via_cross: bool) {
        let d = self.bf.d();
        if level > 0 {
            let e = st.in_edges[level as usize - 1]
                .entry(group)
                .or_insert((false, false));
            if via_cross {
                e.1 = true;
            } else {
                e.0 = true;
            }
            if level == d {
                // packets stop at level d — the root absorbs them
                return;
            }
        }
        let target = self.hashes.target_column(group);
        let dir = self.bf.route_is_cross(alpha, level, target) as usize;
        let key = (self.hashes.rank(group), group);
        st.queues[level as usize][dir].insert(key, ());
    }
}

impl RecordProgram {
    /// One recording-routing step at column `alpha`; cross-edge traffic
    /// goes through `emit` as `(next level, group)`.
    fn step(&self, st: &mut RecordState, alpha: u32, emit: &mut impl FnMut(NodeId, u8, u64)) {
        let d = self.bf.d();
        for level in (0..d).rev() {
            for dir in 0..2usize {
                if let Some(((_rank, group), ())) = st.queues[level as usize][dir].pop_first() {
                    let next_col = if dir == 0 {
                        alpha
                    } else {
                        alpha ^ (1 << level)
                    };
                    if next_col == alpha {
                        self.insert(st, alpha, level + 1, group, false);
                    } else {
                        emit(self.bf.emulator(next_col), (level + 1) as u8, group);
                    }
                }
            }
        }
    }
}

impl NodeProgram for RecordProgram {
    type State = RecordState;
    type Payload = LevelMsg<u64>;

    fn init(&self, st: &mut RecordState, ctx: &mut Ctx<'_, LevelMsg<u64>>) {
        if self.bf.emulates(ctx.id) && st.busy() {
            ctx.stay_awake();
        }
    }

    fn round(
        &self,
        st: &mut RecordState,
        inbox: &[Envelope<LevelMsg<u64>>],
        ctx: &mut Ctx<'_, LevelMsg<u64>>,
    ) {
        let alpha = self.bf.column_of(ctx.id);
        for env in inbox {
            self.insert(st, alpha, env.payload.level as u32, env.payload.group, true);
        }
        self.step(st, alpha, &mut |dst, level, group| {
            ctx.send(
                dst,
                LevelMsg {
                    level,
                    group,
                    value: 0,
                },
            )
        });
        if st.busy() {
            ctx.stay_awake();
        }
    }
}

/// Sets up multicast trees from explicit *registrations*: node `u`'s list
/// `joins[u]` contains `(group, member)` pairs — usually `member == u`
/// ("u joins group g", see [`self_joins`]), but a node may also register
/// *another* node into a group, which is how the broadcast-tree
/// construction of §5 lets each node inject packets for its out-neighbors
/// (Lemma 5.1) instead of forcing high-degree nodes to inject `Θ(Δ)`
/// packets themselves.
pub fn multicast_setup(
    engine: &mut Engine,
    shared: &SharedRandomness,
    joins: Vec<Vec<(GroupId, NodeId)>>,
) -> Result<(MulticastTrees, ExecStats), ModelError> {
    let n = engine.n();
    assert_eq!(joins.len(), n);
    assert!(n >= 2, "multicast trees need n ≥ 2");
    let bf = Butterfly::for_n(n);
    let hashes = RouteHashes::new(shared, &bf, n);
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let mut total = ExecStats::default();

    // phase 1: registrations are injected as join packets (value = member
    // id) at random level-0 columns — the landing columns become the
    // leaves l(i, u).
    let inject = InjectProgram::<u64> {
        batch: logn,
        columns: bf.columns() as u32,
        _pd: std::marker::PhantomData,
    };
    let inj_states: Vec<InjectState<u64>> = joins
        .into_iter()
        .map(|gs| InjectState {
            to_send: gs.into_iter().map(|(g, m)| (g.raw(), m as u64)).collect(),
            landed: Vec::new(),
        })
        .collect();
    let (inj_states, s) = run_single(engine, inject, inj_states)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    // phase 2: route join packets to the roots, recording tree edges.
    let record = RecordProgram { bf, hashes };
    let mut rec_states: Vec<RecordState> = (0..n).map(|_| RecordState::new(bf.d())).collect();
    for (col, inj) in inj_states.into_iter().enumerate() {
        for (group, member) in inj.landed {
            rec_states[col]
                .leaves
                .entry(group)
                .or_default()
                .push(member as NodeId);
            record.insert(&mut rec_states[col], col as u32, 0, group, false);
        }
    }
    let (rec_states, s) = run_single(engine, record, rec_states)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    Ok((trees_from_states(n, bf.d(), rec_states), total))
}

/// Assembles the recorded forest from the per-column recording states.
fn trees_from_states(n: usize, d: u32, rec_states: Vec<RecordState>) -> MulticastTrees {
    let mut trees = MulticastTrees {
        d,
        n,
        leaves: Vec::with_capacity(n),
        in_edges: Vec::with_capacity(n),
        roots: Vec::with_capacity(n),
    };
    for st in rec_states {
        // the groups rooted at this column are exactly those with a
        // recorded in-edge at level d
        let mut roots: Vec<u64> = st
            .in_edges
            .last()
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        roots.sort_unstable();
        trees.leaves.push(st.leaves);
        trees.in_edges.push(st.in_edges);
        trees.roots.push(roots);
    }
    trees
}

// ---------------------------------------------------------------------------
// Fused setup pipeline + lane-composable sub-protocol
// ---------------------------------------------------------------------------

/// Wire format of the fused tree setup: join-packet scattering and
/// recording routing share the rounds.
#[derive(Debug, Clone)]
pub(crate) enum SetupMsg {
    /// A registration landing on a random level-0 column.
    Join { group: u64, member: u64 },
    /// A join packet climbing the butterfly (recorded as a tree edge).
    Route { level: u8, group: u64 },
}

impl ncc_model::Payload for SetupMsg {
    fn bit_size(&self) -> u32 {
        1 + match self {
            SetupMsg::Join { group, member } => {
                ncc_model::payload::min_bits(*group) + ncc_model::payload::min_bits(*member)
            }
            SetupMsg::Route { group, .. } => 6 + ncc_model::payload::min_bits(*group),
        }
    }
}

pub(crate) struct RecordScatterState {
    pub to_send: Vec<(u64, u64)>,
    pub rec: RecordState,
}

/// The fused Multicast Tree Setup (Theorem 2.4, streamed): registrations
/// scatter to random level-0 columns in batches of `⌈log n⌉` while earlier
/// join packets already route toward their roots, recording in-edges.
/// Used by the composed (lane) path; the blocking [`multicast_setup`]
/// keeps the classic phase structure.
pub(crate) struct RecordScatterProgram {
    pub record: RecordProgram,
    pub batch: usize,
    pub columns: u32,
}

impl RecordScatterProgram {
    fn scatter(&self, st: &mut RecordScatterState, ctx: &mut Ctx<'_, SetupMsg>) {
        let take = st.to_send.len().min(self.batch);
        for (group, member) in st.to_send.drain(..take) {
            let col = ctx.rng.gen_range(0..self.columns);
            ctx.send(col, SetupMsg::Join { group, member });
        }
        if !st.to_send.is_empty() {
            ctx.stay_awake();
        }
    }
}

impl NodeProgram for RecordScatterProgram {
    type State = RecordScatterState;
    type Payload = SetupMsg;

    fn init(&self, st: &mut RecordScatterState, ctx: &mut Ctx<'_, SetupMsg>) {
        self.scatter(st, ctx);
    }

    fn round(
        &self,
        st: &mut RecordScatterState,
        inbox: &[Envelope<SetupMsg>],
        ctx: &mut Ctx<'_, SetupMsg>,
    ) {
        if self.record.bf.emulates(ctx.id) {
            let alpha = self.record.bf.column_of(ctx.id);
            for env in inbox {
                match env.payload {
                    SetupMsg::Join { group, member } => {
                        st.rec
                            .leaves
                            .entry(group)
                            .or_default()
                            .push(member as NodeId);
                        self.record.insert(&mut st.rec, alpha, 0, group, false);
                    }
                    SetupMsg::Route { level, group } => {
                        self.record
                            .insert(&mut st.rec, alpha, level as u32, group, true);
                    }
                }
            }
            self.scatter(st, ctx);
            self.record
                .step(&mut st.rec, alpha, &mut |dst, level, group| {
                    ctx.send(dst, SetupMsg::Route { level, group })
                });
            if st.rec.busy() {
                ctx.stay_awake();
            }
        } else {
            // non-emulating nodes only scatter registrations
            self.scatter(st, ctx);
        }
    }
}

/// Multicast Tree Setup as a composable lane: one fused stage
/// (scatter + recording routing). Build with [`multicast_setup_sub`], run
/// under [`crate::compose::run_composed`], read with
/// [`McSetupSub::into_trees`].
pub struct McSetupSub {
    stage: Option<(RecordScatterProgram, Vec<RecordScatterState>)>,
    lane_seed: u64,
    n: usize,
    d: u32,
    out: Option<MulticastTrees>,
}

/// Builds the tree-setup sub-protocol. Arguments mirror
/// [`multicast_setup`]; `lane_seed` keys the lane's private randomness
/// (leaf columns).
pub fn multicast_setup_sub(
    n: usize,
    shared: &SharedRandomness,
    joins: Vec<Vec<(GroupId, NodeId)>>,
    lane_seed: u64,
) -> McSetupSub {
    assert_eq!(joins.len(), n);
    assert!(n >= 2, "multicast trees need n ≥ 2");
    let bf = Butterfly::for_n(n);
    let hashes = RouteHashes::new(shared, &bf, n);
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let states: Vec<RecordScatterState> = joins
        .into_iter()
        .map(|gs| RecordScatterState {
            to_send: gs.into_iter().map(|(g, m)| (g.raw(), m as u64)).collect(),
            rec: RecordState::new(bf.d()),
        })
        .collect();
    McSetupSub {
        stage: Some((
            RecordScatterProgram {
                record: RecordProgram { bf, hashes },
                batch: logn,
                columns: bf.columns() as u32,
            },
            states,
        )),
        lane_seed,
        n,
        d: bf.d(),
        out: None,
    }
}

impl McSetupSub {
    /// The recorded forest. Panics before the composition finished.
    pub fn into_trees(self) -> MulticastTrees {
        self.out.expect("tree-setup sub-protocol not finished")
    }
}

impl<'a> crate::compose::LaneSub<'a> for McSetupSub {
    fn install(&mut self, b: &mut ncc_model::MuxBuilder<'a>) -> Option<ncc_model::LaneId> {
        let (prog, states) = self.stage.take()?;
        Some(b.lane_seeded(prog, states, self.lane_seed))
    }

    fn collect(&mut self, lane: ncc_model::LaneId, states: &mut [ncc_model::MuxState]) {
        let rec: Vec<RecordScatterState> = ncc_model::take_lane_states(states, lane);
        self.out = Some(trees_from_states(
            self.n,
            self.d,
            rec.into_iter().map(|s| s.rec).collect(),
        ));
    }

    fn is_done(&self) -> bool {
        self.out.is_some()
    }
}

/// Convenience: turns per-node group lists into self-registrations
/// (`joins[u] = [g…]` ⇒ node `u` joins each `g` itself).
pub fn self_joins(joins: Vec<Vec<GroupId>>) -> Vec<Vec<(GroupId, NodeId)>> {
    joins
        .into_iter()
        .enumerate()
        .map(|(u, gs)| gs.into_iter().map(|g| (g, u as NodeId)).collect())
        .collect()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index several parallel per-node arrays
mod tests {
    use super::*;
    use ncc_model::NetConfig;

    fn setup(n: usize, joins: Vec<Vec<GroupId>>) -> (MulticastTrees, ExecStats, RouteHashes) {
        let mut eng = Engine::new(NetConfig::new(n, 11));
        let shared = SharedRandomness::new(31);
        let (trees, stats) = multicast_setup(&mut eng, &shared, self_joins(joins)).unwrap();
        let bf = Butterfly::for_n(n);
        let hashes = RouteHashes::new(&shared, &bf, n);
        (trees, stats, hashes)
    }

    /// Walk down from the root of `group` and collect the members reachable
    /// through recorded edges — must equal the joining set.
    fn reachable_members(trees: &MulticastTrees, hashes: &RouteHashes, group: u64) -> Vec<NodeId> {
        let root = hashes.target_column(group);
        let d = trees.d;
        let mut stack = vec![(d, root)];
        let mut members = Vec::new();
        while let Some((level, alpha)) = stack.pop() {
            if level == 0 {
                if let Some(ms) = trees.leaves[alpha as usize].get(&group) {
                    members.extend_from_slice(ms);
                }
                continue;
            }
            if let Some(&(straight, cross)) =
                trees.in_edges[alpha as usize][level as usize - 1].get(&group)
            {
                if straight {
                    stack.push((level - 1, alpha));
                }
                if cross {
                    stack.push((level - 1, alpha ^ (1 << (level - 1))));
                }
            }
        }
        members.sort_unstable();
        members
    }

    #[test]
    fn tree_spans_all_members() {
        let n = 64;
        let g = GroupId::new(3, 0);
        let members: Vec<usize> = vec![1, 5, 17, 33, 60, 63];
        let mut joins = vec![Vec::new(); n];
        for &m in &members {
            joins[m].push(g);
        }
        let (trees, stats, hashes) = setup(n, joins);
        let got = reachable_members(&trees, &hashes, g.raw());
        assert_eq!(
            got,
            members.iter().map(|&m| m as NodeId).collect::<Vec<_>>()
        );
        assert!(stats.clean());
    }

    #[test]
    fn every_node_in_some_group() {
        // n groups, node u joins group (u mod 8): trees for 8 groups
        let n = 32;
        let mut joins = vec![Vec::new(); n];
        for u in 0..n {
            joins[u].push(GroupId::new((u % 8) as u32, 2));
        }
        let (trees, _, hashes) = setup(n, joins);
        for t in 0..8u32 {
            let g = GroupId::new(t, 2);
            let expect: Vec<NodeId> = (0..n as u32).filter(|u| u % 8 == t).collect();
            assert_eq!(reachable_members(&trees, &hashes, g.raw()), expect);
        }
    }

    #[test]
    fn congestion_near_load_over_n_plus_log() {
        // L = n memberships over N = n/4 groups: congestion O(L/n + log n) = O(log n)
        let n = 256;
        let mut joins = vec![Vec::new(); n];
        for u in 0..n {
            joins[u].push(GroupId::new((u % (n / 4)) as u32, 0));
        }
        let (trees, stats, _) = setup(n, joins);
        let c = trees.congestion();
        let logn = 8;
        assert!(c <= 6 * logn, "congestion {c} too high");
        assert!(c >= 1);
        assert!(stats.clean());
    }

    #[test]
    fn member_of_multiple_groups() {
        let n = 16;
        let mut joins = vec![Vec::new(); n];
        // node 2 joins three groups
        for s in 0..3u32 {
            joins[2].push(GroupId::new(s, 9));
            joins[(s as usize) + 5].push(GroupId::new(s, 9));
        }
        let (trees, _, hashes) = setup(n, joins);
        for s in 0..3u32 {
            let g = GroupId::new(s, 9);
            let got = reachable_members(&trees, &hashes, g.raw());
            let mut expect = vec![2 as NodeId, s + 5];
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn empty_joins_no_trees() {
        let n = 16;
        let (trees, _, _) = setup(n, vec![Vec::new(); n]);
        assert_eq!(trees.congestion(), 0);
        assert_eq!(trees.total_tree_nodes(), 0);
    }
}
