//! Composing primitives as concurrent mux lanes.
//!
//! The paper's complexity arguments run *many* primitive instances in the
//! same rounds (§2: "run O(log n) instances of the Aggregation Algorithm in
//! parallel"), sharing the per-node `O(log n)` budget. This module is the
//! driver for that style of composition over [`ncc_model::Mux`]:
//!
//! * a primitive decomposed for composition is a [`LaneSub`]: a sequence of
//!   *stages*, each an ordinary `NodeProgram` plus a node-local transition
//!   that carries its per-node states into the next stage;
//! * [`run_composed`] aligns the current stages of all sub-protocols as
//!   lanes of one mux execution, so concurrent primitives share rounds,
//!   capacity and drop sampling exactly as one program — then charges **one**
//!   [`sync_barrier`] for the whole stage (instead of one per primitive, the
//!   cost model of App. B.1's phase synchronisation);
//! * sub-protocols with fewer stages simply contribute nothing to the later
//!   executions; outputs are collected from the final states.
//!
//! The blocking single-primitive entry points (`aggregate`, `multicast`, …)
//! are one-lane adapters over the same machinery ([`run_single`]); a
//! one-lane mux is bit-identical to direct execution, so the classic paths
//! keep their exact round/bit/drop numbers.

use ncc_model::{Engine, ExecStats, LaneId, ModelError, MuxBuilder, MuxState, NodeProgram};

use crate::agg_bcast::sync_barrier;

/// A primitive decomposed into mux-lane stages.
///
/// The driver repeatedly calls [`LaneSub::install`] (returning `None` once
/// the protocol is finished) and, after the shared execution quiesces,
/// [`LaneSub::collect`] with the same lane id so the protocol can pull its
/// states back out and perform its node-local stage transition.
pub trait LaneSub<'a> {
    /// Installs the current stage's program and per-node states as a mux
    /// lane, or `None` if all stages are done.
    fn install(&mut self, b: &mut MuxBuilder<'a>) -> Option<LaneId>;

    /// Collects the states of the stage installed under `lane` and advances
    /// to the next stage (node-local work only — no communication).
    fn collect(&mut self, lane: LaneId, states: &mut [MuxState]);
}

/// A pending stage of a sub-protocol: its program plus per-node states,
/// consumed by [`LaneSub::install`].
pub(crate) type Stage<Prog, St> = Option<(Prog, Vec<St>)>;

/// Round/lane accounting of one [`run_composed`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComposeReport {
    /// Shared stage executions performed.
    pub stages: u32,
    /// Max lanes that ran concurrently in any stage.
    pub max_lanes: u32,
    /// Sum over stages of the lanes installed (lane-stages of work).
    pub lane_stages: u32,
}

/// Runs a set of sub-protocols to completion, stage by stage: the current
/// stage of every unfinished protocol becomes one lane of a shared mux
/// execution, followed by a single [`sync_barrier`]. Returns the total
/// statistics (executions + barriers) and the lane accounting.
pub fn run_composed<'a>(
    engine: &mut Engine,
    subs: &mut [&mut (dyn LaneSub<'a> + 'a)],
) -> Result<(ExecStats, ComposeReport), ModelError> {
    let n = engine.n();
    let mut total = ExecStats::default();
    let mut report = ComposeReport::default();
    loop {
        let mut b = MuxBuilder::new(n);
        let mut installed: Vec<(usize, LaneId)> = Vec::new();
        for (i, sub) in subs.iter_mut().enumerate() {
            if let Some(id) = sub.install(&mut b) {
                installed.push((i, id));
            }
        }
        if installed.is_empty() {
            break;
        }
        report.stages += 1;
        report.max_lanes = report.max_lanes.max(installed.len() as u32);
        report.lane_stages += installed.len() as u32;
        let (mux, mut states) = b.build();
        total.merge(&engine.execute(&mux, &mut states)?);
        for (i, id) in installed {
            subs[i].collect(id, &mut states);
        }
        total.merge(&sync_barrier(engine)?);
    }
    Ok((total, report))
}

/// Executes one program as a one-lane mux (no barrier): the transparent
/// adapter the blocking primitives use. Bit-identical to
/// `engine.execute(&prog, &mut states)` — the lane header is zero bits and
/// the lane draws from the node's own RNG stream.
pub fn run_single<Prog>(
    engine: &mut Engine,
    prog: Prog,
    states: Vec<Prog::State>,
) -> Result<(Vec<Prog::State>, ExecStats), ModelError>
where
    Prog: NodeProgram,
    Prog::State: 'static,
{
    let mut b = MuxBuilder::new(engine.n());
    let id = b.lane(prog, states);
    let (mux, mut mstates) = b.build();
    let stats = engine.execute(&mux, &mut mstates)?;
    Ok((ncc_model::take_lane_states(&mut mstates, id), stats))
}

/// Derives a deterministic lane seed from the engine seed and a composition
/// label — so composed lanes have reproducible, composition-independent
/// randomness streams keyed by `(engine seed, label, index)`.
pub fn lane_seed(engine: &Engine, label: u64, index: u64) -> u64 {
    ncc_model::rng::derive_seed(&[
        engine.config().seed,
        0x6c61_6e65, /* "lane" */
        label,
        index,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_model::{Ctx, Envelope, NetConfig};

    /// Minimal 2-stage sub-protocol for driver tests: stage 1 relays a token
    /// around the ring `hops` times, stage 2 broadcasts a completion flag to
    /// node 0.
    struct TwoStage {
        n: usize,
        hops: u64,
        stage: usize,
        seen: u64,
        done_count: Option<u64>,
    }

    struct Relay {
        hops: u64,
    }
    impl NodeProgram for Relay {
        type State = u64;
        type Payload = u64;
        fn init(&self, _st: &mut u64, ctx: &mut Ctx<'_, u64>) {
            ctx.send((ctx.id + 1) % ctx.n as u32, 1);
        }
        fn round(&self, st: &mut u64, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
            *st += inbox.len() as u64;
            if ctx.round < self.hops {
                ctx.send((ctx.id + 1) % ctx.n as u32, 1);
            }
        }
    }

    struct Report;
    impl NodeProgram for Report {
        type State = u64;
        type Payload = u64;
        fn init(&self, st: &mut u64, ctx: &mut Ctx<'_, u64>) {
            ctx.send(0, *st);
        }
        fn round(&self, st: &mut u64, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
            if ctx.id == 0 {
                *st += inbox.iter().map(|e| e.payload).sum::<u64>();
            }
        }
    }

    impl<'a> LaneSub<'a> for TwoStage {
        fn install(&mut self, b: &mut MuxBuilder<'a>) -> Option<LaneId> {
            match self.stage {
                0 => Some(b.lane_seeded(Relay { hops: self.hops }, vec![0u64; self.n], 1)),
                1 => Some(b.lane_seeded(Report, vec![self.seen; self.n], 2)),
                _ => None,
            }
        }
        fn collect(&mut self, lane: LaneId, states: &mut [MuxState]) {
            let st: Vec<u64> = ncc_model::take_lane_states(states, lane);
            match self.stage {
                0 => self.seen = st[0],
                _ => self.done_count = Some(st[0]),
            }
            self.stage += 1;
        }
    }

    #[test]
    fn composed_stages_share_barriers() {
        let n = 16;
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let mut a = TwoStage {
            n,
            hops: 4,
            stage: 0,
            seen: 0,
            done_count: None,
        };
        let mut c = TwoStage {
            n,
            hops: 9,
            stage: 0,
            seen: 0,
            done_count: None,
        };
        let (stats, rep) = run_composed(&mut eng, &mut [&mut a, &mut c]).unwrap();
        assert_eq!(rep.stages, 2, "stages align across lanes");
        assert_eq!(rep.max_lanes, 2);
        assert_eq!(rep.lane_stages, 4);
        assert_eq!(a.seen, 4);
        assert_eq!(c.seen, 9);
        // node 0's counter starts at its own count and absorbs every
        // node's report (its own included)
        assert_eq!(a.done_count, Some(4 + 4 * n as u64));
        assert_eq!(c.done_count, Some(9 + 9 * n as u64));
        // stage 1 is bounded by the slowest lane, not the sum
        assert!(stats.rounds < (10 + 2) + 2 * 20, "rounds {}", stats.rounds);
    }

    #[test]
    fn run_single_matches_direct_execution() {
        let n = 12;
        let mut eng = Engine::new(NetConfig::new(n, 8));
        let mut direct = vec![0u64; n];
        let s1 = eng.execute(&Relay { hops: 3 }, &mut direct).unwrap();
        let mut eng = Engine::new(NetConfig::new(n, 8));
        let (muxed, s2) = run_single(&mut eng, Relay { hops: 3 }, vec![0u64; n]).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(direct, muxed);
    }

    #[test]
    fn lane_seed_is_engine_and_label_keyed() {
        let eng_a = Engine::new(NetConfig::new(4, 1));
        let eng_b = Engine::new(NetConfig::new(4, 2));
        assert_ne!(lane_seed(&eng_a, 7, 0), lane_seed(&eng_b, 7, 0));
        assert_ne!(lane_seed(&eng_a, 7, 0), lane_seed(&eng_a, 7, 1));
        assert_ne!(lane_seed(&eng_a, 7, 0), lane_seed(&eng_a, 8, 0));
        assert_eq!(lane_seed(&eng_a, 7, 0), lane_seed(&eng_a, 7, 0));
    }
}
