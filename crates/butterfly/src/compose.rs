//! Composing primitives as concurrent mux lanes.
//!
//! The paper's complexity arguments run *many* primitive instances in the
//! same rounds (§2: "run O(log n) instances of the Aggregation Algorithm in
//! parallel"), sharing the per-node `O(log n)` budget. This module is the
//! driver for that style of composition over [`ncc_model::Mux`]:
//!
//! * a primitive decomposed for composition is a [`LaneSub`]: a sequence of
//!   *stages*, each an ordinary `NodeProgram` plus a node-local transition
//!   that carries its per-node states into the next stage;
//! * [`run_composed`] aligns the current stages of all sub-protocols as
//!   lanes of one mux execution, so concurrent primitives share rounds,
//!   capacity and drop sampling exactly as one program — then charges **one**
//!   [`sync_barrier`] for the whole stage (instead of one per primitive, the
//!   cost model of App. B.1's phase synchronisation);
//! * sub-protocols with fewer stages simply contribute nothing to the later
//!   executions; outputs are collected from the final states.
//!
//! The blocking single-primitive entry points (`aggregate`, `multicast`, …)
//! are one-lane adapters over the same machinery ([`run_single`]); a
//! one-lane mux is bit-identical to direct execution, so the classic paths
//! keep their exact round/bit/drop numbers.

use ncc_model::{Engine, ExecStats, LaneId, ModelError, MuxBuilder, MuxState, NodeProgram};

use crate::aggregation::sync_barrier;

/// A primitive decomposed into mux-lane stages.
///
/// The driver repeatedly calls [`LaneSub::install`] (returning `None` once
/// the protocol is finished) and, after the shared execution quiesces,
/// [`LaneSub::collect`] with the same lane id so the protocol can pull its
/// states back out and perform its node-local stage transition.
pub trait LaneSub<'a> {
    /// Installs the current stage's program and per-node states as a mux
    /// lane, or `None` if all stages are done.
    fn install(&mut self, b: &mut MuxBuilder<'a>) -> Option<LaneId>;

    /// Collects the states of the stage installed under `lane` and advances
    /// to the next stage (node-local work only — no communication).
    fn collect(&mut self, lane: LaneId, states: &mut [MuxState]);

    /// `true` once every stage has been installed and collected.
    ///
    /// This is a side-effect-free probe (unlike [`LaneSub::install`], which
    /// moves the pending stage into the builder): schedulers use it to
    /// decide whether a protocol still needs lanes *before* committing
    /// builder space. Invariant: `!is_done()` implies the next `install`
    /// returns `Some`.
    fn is_done(&self) -> bool;

    /// `true` if one execution of this protocol already leaves every node
    /// knowing that the stage finished — i.e. the protocol is its own phase
    /// barrier. A scheduler may skip the trailing [`sync_barrier`] for a
    /// stage whose lanes are all self-synchronizing, matching the cost of
    /// the blocking adapters (an Aggregate-and-Broadcast *is* the barrier
    /// primitive of App. B.1).
    fn self_synchronizing(&self) -> bool {
        false
    }

    /// Asks the lane to keep its per-node sends within `send_budget`
    /// messages per round — its *share* of the node capacity when a
    /// scheduler packs it next to other lanes (§2's parallel-instances
    /// argument: `k` concurrent instances each slow down by the factor
    /// `k`, they do not overdraw the budget). Default: no-op, for lanes
    /// whose per-round load is already `O(1)`-bounded by construction.
    fn pace(&mut self, _send_budget: usize) {}
}

/// A pending stage of a sub-protocol: its program plus per-node states,
/// consumed by [`LaneSub::install`].
pub(crate) type Stage<Prog, St> = Option<(Prog, Vec<St>)>;

/// Round/lane accounting of one [`run_composed`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComposeReport {
    /// Shared stage executions performed.
    pub stages: u32,
    /// Max lanes that ran concurrently in any stage.
    pub max_lanes: u32,
    /// Sum over stages of the lanes installed (lane-stages of work).
    pub lane_stages: u32,
}

/// Runs a set of sub-protocols to completion, stage by stage: the current
/// stage of every unfinished protocol becomes one lane of a shared mux
/// execution, followed by a single [`sync_barrier`]. Returns the total
/// statistics (executions + barriers) and the lane accounting.
pub fn run_composed<'a>(
    engine: &mut Engine,
    subs: &mut [&mut (dyn LaneSub<'a> + 'a)],
) -> Result<(ExecStats, ComposeReport), ModelError> {
    let n = engine.n();
    let mut total = ExecStats::default();
    let mut report = ComposeReport::default();
    loop {
        let mut b = MuxBuilder::new(n);
        let mut installed: Vec<(usize, LaneId)> = Vec::new();
        for (i, sub) in subs.iter_mut().enumerate() {
            if let Some(id) = sub.install(&mut b) {
                installed.push((i, id));
            }
        }
        if installed.is_empty() {
            break;
        }
        report.stages += 1;
        report.max_lanes = report.max_lanes.max(installed.len() as u32);
        report.lane_stages += installed.len() as u32;
        let (mux, mut states) = b.build();
        total.merge(&engine.execute(&mux, &mut states)?);
        for (i, id) in installed {
            subs[i].collect(id, &mut states);
        }
        total.merge(&sync_barrier(engine)?);
    }
    Ok((total, report))
}

/// Executes one program as a one-lane mux (no barrier): the transparent
/// adapter the blocking primitives use. Bit-identical to
/// `engine.execute(&prog, &mut states)` — the lane header is zero bits and
/// the lane draws from the node's own RNG stream.
pub fn run_single<Prog>(
    engine: &mut Engine,
    prog: Prog,
    states: Vec<Prog::State>,
) -> Result<(Vec<Prog::State>, ExecStats), ModelError>
where
    Prog: NodeProgram,
    Prog::State: 'static,
{
    let mut b = MuxBuilder::new(engine.n());
    let id = b.lane(prog, states);
    let (mux, mut mstates) = b.build();
    let stats = engine.execute(&mux, &mut mstates)?;
    Ok((ncc_model::take_lane_states(&mut mstates, id), stats))
}

/// Derives a deterministic lane seed from the engine seed and a composition
/// label — so composed lanes have reproducible, composition-independent
/// randomness streams keyed by `(engine seed, label, index)`.
pub fn lane_seed(engine: &Engine, label: u64, index: u64) -> u64 {
    ncc_model::rng::derive_seed(&[
        engine.config().seed,
        0x6c61_6e65, /* "lane" */
        label,
        index,
    ])
}

// ---------------------------------------------------------------------------
// Declarative protocol DAGs
// ---------------------------------------------------------------------------

use std::any::Any;
use std::marker::PhantomData;

/// Typed handle to a declared DAG node: names the node in dependency lists
/// and retrieves its output (of type `T`) from [`Deps`] / [`DagOutputs`].
pub struct ProtoNode<T> {
    pub(crate) idx: usize,
    _pd: PhantomData<fn() -> T>,
}

impl<T> Clone for ProtoNode<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ProtoNode<T> {}

impl<T> std::fmt::Debug for ProtoNode<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProtoNode(#{})", self.idx)
    }
}

/// Untyped dependency edge: any [`ProtoNode`] converts into one, so a
/// node's `deps` list can mix handles of different output types.
#[derive(Debug, Clone, Copy)]
pub struct Dep(pub(crate) usize);

impl<T> From<ProtoNode<T>> for Dep {
    fn from(h: ProtoNode<T>) -> Dep {
        Dep(h.idx)
    }
}

/// Read-only view of upstream outputs, handed to a node's build/run
/// closure once all of its dependencies completed.
pub struct Deps<'v> {
    pub(crate) outputs: &'v [Option<Box<dyn Any>>],
}

impl Deps<'_> {
    /// The output of an upstream node. Panics if `h` was not declared as a
    /// dependency of the requesting node (its output may not exist yet).
    pub fn get<T: 'static>(&self, h: ProtoNode<T>) -> &T {
        self.outputs[h.idx]
            .as_ref()
            .expect("dependency not finished — was it declared in `deps`?")
            .downcast_ref::<T>()
            .expect("dependency output type mismatch")
    }
}

/// Outputs of a completed [`Dag::run`], keyed by node handle.
pub struct DagOutputs {
    pub(crate) outputs: Vec<Option<Box<dyn Any>>>,
}

impl DagOutputs {
    /// Takes ownership of a node's output. Panics on a second take.
    pub fn take<T: 'static>(&mut self, h: ProtoNode<T>) -> T {
        *self.outputs[h.idx]
            .take()
            .expect("node output already taken (or node never ran)")
            .downcast::<T>()
            .expect("node output type mismatch")
    }
}

/// Object-safe driver view of one protocol node's lane: a [`LaneSub`] plus
/// its typed finisher, erased so the scheduler can hold heterogeneous
/// nodes in one table.
pub(crate) trait DynLane<'a> {
    fn pace(&mut self, send_budget: usize);
    fn install(&mut self, b: &mut MuxBuilder<'a>) -> Option<LaneId>;
    fn collect(&mut self, lane: LaneId, states: &mut [MuxState]);
    fn is_done(&self) -> bool;
    fn self_synchronizing(&self) -> bool;
    /// Consumes the finished sub-protocol into its boxed output.
    fn finish(&mut self) -> Box<dyn Any>;
}

struct ProtoRun<'a, S: LaneSub<'a> + 'a, T, F: FnOnce(S) -> T> {
    sub: Option<S>,
    fin: Option<F>,
    _pd: PhantomData<&'a ()>,
}

impl<'a, S: LaneSub<'a> + 'a, T: 'static, F: FnOnce(S) -> T> DynLane<'a> for ProtoRun<'a, S, T, F> {
    fn pace(&mut self, send_budget: usize) {
        if let Some(s) = self.sub.as_mut() {
            s.pace(send_budget);
        }
    }
    fn install(&mut self, b: &mut MuxBuilder<'a>) -> Option<LaneId> {
        self.sub.as_mut().expect("lane already finished").install(b)
    }
    fn collect(&mut self, lane: LaneId, states: &mut [MuxState]) {
        self.sub
            .as_mut()
            .expect("lane already finished")
            .collect(lane, states);
    }
    fn is_done(&self) -> bool {
        self.sub.as_ref().is_none_or(|s| s.is_done())
    }
    fn self_synchronizing(&self) -> bool {
        self.sub.as_ref().is_some_and(|s| s.self_synchronizing())
    }
    fn finish(&mut self) -> Box<dyn Any> {
        let sub = self.sub.take().expect("lane finished twice");
        let fin = self.fin.take().expect("finisher consumed twice");
        Box::new(fin(sub))
    }
}

/// Deferred construction of a protocol node's lane from its dependencies.
pub(crate) type BuildFn<'a> = Box<dyn FnOnce(&Deps<'_>) -> Box<dyn DynLane<'a> + 'a> + 'a>;
/// Deferred node-local computation from its dependencies.
pub(crate) type ComputeFn<'a> = Box<dyn FnOnce(&Deps<'_>) -> Box<dyn Any> + 'a>;

pub(crate) enum NodeState<'a> {
    /// Waiting on dependencies; `build` turns their outputs into a live
    /// sub-protocol.
    Pending(BuildFn<'a>),
    /// Node-local computation (no communication): runs as soon as its
    /// dependencies are done, producing its output immediately.
    PendingCompute(ComputeFn<'a>),
    /// Built; its current stage is installed as a mux lane each scheduler
    /// stage until [`DynLane::is_done`].
    Running(Box<dyn DynLane<'a> + 'a>),
    /// Finished; output stored in the outputs table.
    Done,
}

pub(crate) struct DagNode<'a> {
    pub(crate) label: String,
    pub(crate) deps: Vec<usize>,
    pub(crate) state: NodeState<'a>,
}

/// A declared dependency DAG of sub-protocol invocations.
///
/// Algorithms *declare* what runs and what depends on what; the scheduler
/// ([`Dag::run`], implemented in [`crate::schedule`]) decides what runs
/// *together* — it packs every antichain of ready protocols into shared
/// [`ncc_model::Mux`] executions under the per-node `O(log n)` instance
/// budget, charging one shared [`sync_barrier`] per packed stage. See the
/// [`crate::schedule`] module docs for the scheduling rules and the paper
/// mapping.
///
/// Two node kinds:
/// * [`Dag::proto`] — a communicating sub-protocol ([`LaneSub`]), built
///   from its dependencies' outputs by a closure, finished into a typed
///   output by another;
/// * [`Dag::compute`] — free node-local computation (the model's "local
///   computation is free"), used to transform upstream outputs without
///   burning a stage.
#[derive(Default)]
pub struct Dag<'a> {
    pub(crate) nodes: Vec<DagNode<'a>>,
}

impl<'a> Dag<'a> {
    pub fn new() -> Self {
        Dag { nodes: Vec::new() }
    }

    /// Number of declared nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes were declared.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn add<T>(&mut self, label: String, deps: &[Dep], state: NodeState<'a>) -> ProtoNode<T> {
        let idx = self.nodes.len();
        for d in deps {
            assert!(d.0 < idx, "dependency on a node declared later");
        }
        self.nodes.push(DagNode {
            label,
            deps: deps.iter().map(|d| d.0).collect(),
            state,
        });
        ProtoNode {
            idx,
            _pd: PhantomData,
        }
    }

    /// Declares a sub-protocol node. `build` receives the outputs of
    /// `deps` and constructs the [`LaneSub`]; once every stage of the sub
    /// has run, `finish` converts it into the node's typed output.
    ///
    /// Declaration order is the scheduler's tie-breaker: independent nodes
    /// that become ready together are packed into one stage in declaration
    /// order (first-declared gets a lane first if the budget binds).
    pub fn proto<S, T, B, F>(
        &mut self,
        label: impl Into<String>,
        deps: &[Dep],
        build: B,
        finish: F,
    ) -> ProtoNode<T>
    where
        S: LaneSub<'a> + 'a,
        T: 'static,
        B: FnOnce(&Deps<'_>) -> S + 'a,
        F: FnOnce(S) -> T + 'a,
    {
        self.add(
            label.into(),
            deps,
            NodeState::Pending(Box::new(move |deps| {
                Box::new(ProtoRun {
                    sub: Some(build(deps)),
                    fin: Some(finish),
                    _pd: PhantomData,
                })
            })),
        )
    }

    /// Declares a node-local computation node: `run` maps upstream outputs
    /// to this node's output without any communication (free in the
    /// model). It never occupies a lane or a stage.
    pub fn compute<T, R>(&mut self, label: impl Into<String>, deps: &[Dep], run: R) -> ProtoNode<T>
    where
        T: 'static,
        R: FnOnce(&Deps<'_>) -> T + 'a,
    {
        self.add(
            label.into(),
            deps,
            NodeState::PendingCompute(Box::new(move |deps| Box::new(run(deps)))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_model::{Ctx, Envelope, NetConfig};

    /// Minimal 2-stage sub-protocol for driver tests: stage 1 relays a token
    /// around the ring `hops` times, stage 2 broadcasts a completion flag to
    /// node 0.
    struct TwoStage {
        n: usize,
        hops: u64,
        stage: usize,
        seen: u64,
        done_count: Option<u64>,
    }

    struct Relay {
        hops: u64,
    }
    impl NodeProgram for Relay {
        type State = u64;
        type Payload = u64;
        fn init(&self, _st: &mut u64, ctx: &mut Ctx<'_, u64>) {
            ctx.send((ctx.id + 1) % ctx.n as u32, 1);
        }
        fn round(&self, st: &mut u64, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
            *st += inbox.len() as u64;
            if ctx.round < self.hops {
                ctx.send((ctx.id + 1) % ctx.n as u32, 1);
            }
        }
    }

    struct Report;
    impl NodeProgram for Report {
        type State = u64;
        type Payload = u64;
        fn init(&self, st: &mut u64, ctx: &mut Ctx<'_, u64>) {
            ctx.send(0, *st);
        }
        fn round(&self, st: &mut u64, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
            if ctx.id == 0 {
                *st += inbox.iter().map(|e| e.payload).sum::<u64>();
            }
        }
    }

    impl<'a> LaneSub<'a> for TwoStage {
        fn install(&mut self, b: &mut MuxBuilder<'a>) -> Option<LaneId> {
            match self.stage {
                0 => Some(b.lane_seeded(Relay { hops: self.hops }, vec![0u64; self.n], 1)),
                1 => Some(b.lane_seeded(Report, vec![self.seen; self.n], 2)),
                _ => None,
            }
        }
        fn collect(&mut self, lane: LaneId, states: &mut [MuxState]) {
            let st: Vec<u64> = ncc_model::take_lane_states(states, lane);
            match self.stage {
                0 => self.seen = st[0],
                _ => self.done_count = Some(st[0]),
            }
            self.stage += 1;
        }

        fn is_done(&self) -> bool {
            self.stage > 1
        }
    }

    #[test]
    fn composed_stages_share_barriers() {
        let n = 16;
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let mut a = TwoStage {
            n,
            hops: 4,
            stage: 0,
            seen: 0,
            done_count: None,
        };
        let mut c = TwoStage {
            n,
            hops: 9,
            stage: 0,
            seen: 0,
            done_count: None,
        };
        let (stats, rep) = run_composed(&mut eng, &mut [&mut a, &mut c]).unwrap();
        assert_eq!(rep.stages, 2, "stages align across lanes");
        assert_eq!(rep.max_lanes, 2);
        assert_eq!(rep.lane_stages, 4);
        assert_eq!(a.seen, 4);
        assert_eq!(c.seen, 9);
        // node 0's counter starts at its own count and absorbs every
        // node's report (its own included)
        assert_eq!(a.done_count, Some(4 + 4 * n as u64));
        assert_eq!(c.done_count, Some(9 + 9 * n as u64));
        // stage 1 is bounded by the slowest lane, not the sum
        assert!(stats.rounds < (10 + 2) + 2 * 20, "rounds {}", stats.rounds);
    }

    #[test]
    fn run_single_matches_direct_execution() {
        let n = 12;
        let mut eng = Engine::new(NetConfig::new(n, 8));
        let mut direct = vec![0u64; n];
        let s1 = eng.execute(&Relay { hops: 3 }, &mut direct).unwrap();
        let mut eng = Engine::new(NetConfig::new(n, 8));
        let (muxed, s2) = run_single(&mut eng, Relay { hops: 3 }, vec![0u64; n]).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(direct, muxed);
    }

    #[test]
    fn lane_seed_is_engine_and_label_keyed() {
        let eng_a = Engine::new(NetConfig::new(4, 1));
        let eng_b = Engine::new(NetConfig::new(4, 2));
        assert_ne!(lane_seed(&eng_a, 7, 0), lane_seed(&eng_b, 7, 0));
        assert_ne!(lane_seed(&eng_a, 7, 0), lane_seed(&eng_a, 7, 1));
        assert_ne!(lane_seed(&eng_a, 7, 0), lane_seed(&eng_a, 8, 0));
        assert_eq!(lane_seed(&eng_a, 7, 0), lane_seed(&eng_a, 7, 0));
    }
}
