//! The antichain-packing scheduler for declared protocol [`Dag`]s.
//!
//! # Paper mapping: §2's parallel-instances argument, executable
//!
//! The round bounds of §2 rest on one observation: because every primitive
//! touches each node with `O(log n)` messages per round, **`O(log n)`
//! independent instances can run in the same rounds** under the shared
//! per-node capacity budget ("we run O(log n) instances of the Aggregation
//! Algorithm in parallel", §2; the union-of-instances capacity argument of
//! §2.2). PR 5 exploited this by hand: algorithms fused specific primitive
//! sets into [`ncc_model::Mux`] lanes. This module turns the argument into
//! a *scheduler* so algorithms only declare data dependencies:
//!
//! * the nodes of a [`Dag`] whose dependencies are satisfied form the
//!   current **antichain** — no order constraints among them, exactly the
//!   "independent instances" of §2;
//! * each scheduler stage packs that antichain (in declaration order) into
//!   one mux execution, up to the **instance budget** `O(log n)`
//!   ([`default_lane_budget`]) — the cap under which §2.2's capacity union
//!   argument holds. A wider antichain is *split*: the overflow runs in the
//!   next stage (sequential composition, the same fallback the paper uses
//!   when more than `O(log n)` instances are needed);
//! * one shared [`sync_barrier`] is
//!   charged per packed stage (App. B.1's phase synchronisation, paid once
//!   for the whole stage rather than once per primitive) — except for
//!   stages whose lanes are all
//!   [self-synchronizing](crate::compose::LaneSub::self_synchronizing)
//!   (Aggregate-and-Broadcast *is* the barrier primitive, so a stage of
//!   A&B lanes ends synchronised for free, matching the blocking
//!   adapters' cost);
//! * multi-stage primitives (Aggregation's combine→deliver, …) keep
//!   contributing lanes stage after stage until done, so their internal
//!   phases also share barriers with whatever else is in flight.
//!
//! The result: a hand-fused composition and the equivalent DAG declaration
//! execute the *same* lane/stage/barrier sequence — bit-identical rounds,
//! drops and outputs — while the DAG form deletes the bespoke lane
//! plumbing (see `crates/butterfly/tests/schedule_props.rs` for the
//! property-level equivalence proof).
//!
//! # Packing plan introspection
//!
//! Every run returns a [`SchedReport`]: the budget, and per stage the
//! packed lanes (with per-lane [`LaneStats`]), any deferred (budget-split)
//! nodes, the rounds spent and whether a barrier was charged. The runner
//! echoes its headline numbers into `RunRecord.metrics`, and
//! `ncc-cli explain <algo>` prints it as a table.

use ncc_model::{lane_stats, Engine, ExecStats, LaneStats, ModelError, MuxBuilder};

use crate::aggregation::sync_barrier;
use crate::compose::{Dag, DagOutputs, Deps, NodeState};

/// The default per-node parallel-instance budget: `2·⌈log₂ n⌉`, floored at
/// 6 so degenerate tiny networks can still pack the widest primitive sets
/// the in-repo algorithms declare (MST's 4-ary FindMin plus its coin lane).
/// `O(log n)`, as §2 requires.
pub fn default_lane_budget(n: usize) -> usize {
    (2 * ncc_model::ilog2_ceil(n) as usize).max(6)
}

/// One lane of a packed stage: which node ran, and its share of the
/// stage's traffic ([`LaneStats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneRecord {
    /// The DAG node's label.
    pub label: String,
    /// Node-rounds / messages this lane used within the shared execution.
    pub stats: LaneStats,
}

/// One packed stage of a schedule: the maximal (budget-capped) antichain
/// that shared one mux execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedStage {
    /// Lanes that ran, in install (= declaration) order.
    pub lanes: Vec<LaneRecord>,
    /// Ready nodes deferred to a later stage because the budget was full —
    /// non-empty exactly when the scheduler split an antichain.
    pub deferred: Vec<String>,
    /// Statistics of the shared execution (barrier excluded).
    pub stats: ExecStats,
    /// Whether a trailing `sync_barrier` was charged (false when every
    /// lane was self-synchronizing).
    pub barrier: bool,
}

impl PackedStage {
    /// Rounds of the shared execution (barrier excluded).
    pub fn rounds(&self) -> u64 {
        self.stats.rounds
    }
}

/// The packing plan of one or more [`Dag::run`] calls: what ran together,
/// what was split, and what each stage cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedReport {
    /// The lane budget the schedule respected.
    pub budget: usize,
    /// Stages in execution order.
    pub stages: Vec<PackedStage>,
}

impl SchedReport {
    /// Folds another report's stages into this one (multi-DAG algorithms
    /// accumulate one plan across phases).
    pub fn merge(&mut self, other: SchedReport) {
        self.budget = self.budget.max(other.budget);
        self.stages.extend(other.stages);
    }

    /// Widest stage (lanes that actually ran concurrently).
    pub fn max_lanes(&self) -> usize {
        self.stages.iter().map(|s| s.lanes.len()).max().unwrap_or(0)
    }

    /// Total lane-stages of work across all stages.
    pub fn lane_stages(&self) -> usize {
        self.stages.iter().map(|s| s.lanes.len()).sum()
    }

    /// Stages that had to defer ready work because the budget was full.
    pub fn splits(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| !s.deferred.is_empty())
            .count()
    }

    /// Stages that charged a trailing barrier.
    pub fn barriers(&self) -> usize {
        self.stages.iter().filter(|s| s.barrier).count()
    }

    /// Rounds (barriers excluded) of every stage that installed at least
    /// one lane whose label satisfies `pred` — the per-subsystem round
    /// breakdown (e.g. "how much of MST is FindMin").
    pub fn rounds_where(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.lanes.iter().any(|l| pred(&l.label)))
            .map(|s| s.stats.rounds)
            .sum()
    }
}

/// Result of one [`Dag::run`]: typed outputs, total engine statistics
/// (executions + barriers), and the packing plan.
pub struct DagRun {
    /// Outputs of every node, retrieved by handle.
    pub outputs: DagOutputs,
    /// Total cost: every stage execution plus every charged barrier.
    pub stats: ExecStats,
    /// The packing plan the scheduler chose.
    pub report: SchedReport,
}

impl<'a> Dag<'a> {
    /// Runs the DAG under the [`default_lane_budget`].
    pub fn run(self, engine: &mut Engine) -> Result<DagRun, ModelError> {
        let budget = default_lane_budget(engine.n());
        self.run_budgeted(engine, budget)
    }

    /// Runs the DAG with an explicit lane budget (tests use tiny budgets
    /// to exercise antichain splitting).
    pub fn run_budgeted(self, engine: &mut Engine, budget: usize) -> Result<DagRun, ModelError> {
        assert!(budget >= 1, "scheduler needs room for at least one lane");
        let n = engine.n();
        let mut nodes = self.nodes;
        let mut outputs: Vec<Option<Box<dyn std::any::Any>>> =
            (0..nodes.len()).map(|_| None).collect();
        let mut total = ExecStats::default();
        let mut report = SchedReport {
            budget,
            stages: Vec::new(),
        };

        loop {
            // Settle to a fixpoint: finish quiesced lanes, run ready
            // compute nodes, build ready protocols. Each transition can
            // unlock more (a compute feeding a proto feeding a compute…),
            // all without touching the network — local computation is free.
            loop {
                let mut changed = false;
                for i in 0..nodes.len() {
                    let ready = nodes[i].deps.iter().all(|&d| outputs[d].is_some());
                    match &nodes[i].state {
                        NodeState::Pending(_) | NodeState::PendingCompute(_) if ready => {
                            let state = std::mem::replace(&mut nodes[i].state, NodeState::Done);
                            let deps = Deps { outputs: &outputs };
                            match state {
                                NodeState::Pending(build) => {
                                    nodes[i].state = NodeState::Running(build(&deps));
                                }
                                NodeState::PendingCompute(run) => {
                                    outputs[i] = Some(run(&deps));
                                    // state stays Done
                                }
                                _ => unreachable!(),
                            }
                            changed = true;
                        }
                        NodeState::Running(lane) if lane.is_done() => {
                            let NodeState::Running(mut lane) =
                                std::mem::replace(&mut nodes[i].state, NodeState::Done)
                            else {
                                unreachable!()
                            };
                            outputs[i] = Some(lane.finish());
                            changed = true;
                        }
                        _ => {}
                    }
                }
                if !changed {
                    break;
                }
            }

            // Pack the ready antichain: every Running node contributes its
            // current stage as a lane, declaration order, budget-capped.
            // Each packed lane gets an even share of the per-node send
            // capacity (§2's parallel-instances argument: k instances run
            // together iff each throttles to cap/k messages per round).
            let width = nodes
                .iter()
                .filter(|nd| matches!(nd.state, NodeState::Running(_)))
                .count()
                .min(budget)
                .max(1);
            let share = match engine.config().capacity.send {
                usize::MAX => usize::MAX,
                cap => (cap / width).max(1),
            };
            let mut b = MuxBuilder::new(n).with_lane_budget(budget);
            let mut installed: Vec<(usize, ncc_model::LaneId)> = Vec::new();
            let mut deferred: Vec<String> = Vec::new();
            for i in 0..nodes.len() {
                if let NodeState::Running(lane) = &mut nodes[i].state {
                    if installed.len() >= budget {
                        deferred.push(nodes[i].label.clone());
                        continue;
                    }
                    lane.pace(share);
                    let id = lane
                        .install(&mut b)
                        .expect("LaneSub invariant: !is_done() but install returned None");
                    installed.push((i, id));
                }
            }

            if installed.is_empty() {
                let stuck: Vec<&str> = nodes
                    .iter()
                    .filter(|nd| !matches!(nd.state, NodeState::Done))
                    .map(|nd| nd.label.as_str())
                    .collect();
                assert!(
                    stuck.is_empty(),
                    "DAG deadlock: nodes {stuck:?} can never become ready"
                );
                break;
            }

            // One shared execution for the whole antichain...
            let (mux, mut states) = b.build();
            let stats = engine.execute(&mux, &mut states)?;
            total.merge(&stats);
            let per_lane = lane_stats(&states);
            let mut all_sync = true;
            let mut lanes = Vec::with_capacity(installed.len());
            for (k, (i, id)) in installed.iter().enumerate() {
                let NodeState::Running(lane) = &mut nodes[*i].state else {
                    unreachable!()
                };
                all_sync &= lane.self_synchronizing();
                lane.collect(*id, &mut states);
                lanes.push(LaneRecord {
                    label: nodes[*i].label.clone(),
                    stats: per_lane[k],
                });
            }
            // ...and one shared barrier, unless the lanes synchronised
            // themselves (all-A&B stages, matching the blocking adapters).
            if !all_sync {
                total.merge(&sync_barrier(engine)?);
            }
            report.stages.push(PackedStage {
                lanes,
                deferred,
                stats,
                barrier: !all_sync,
            });
        }

        Ok(DagRun {
            outputs: DagOutputs { outputs },
            stats: total,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::{ab_sub, aggregate_and_broadcast};
    use crate::combine::{MaxU64, MinU64, SumU64};
    use crate::compose::Dep;
    use ncc_model::NetConfig;

    fn engine(n: usize) -> Engine {
        Engine::new(NetConfig::new(n, 77))
    }

    #[test]
    fn solo_ab_node_matches_blocking_adapter() {
        let n = 48;
        // blocking path
        let mut eng = engine(n);
        let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
        let (want, blocking_stats) =
            aggregate_and_broadcast(&mut eng, inputs.clone(), &MaxU64).unwrap();
        let blocking_round = eng.total.rounds;
        // DAG path: one A&B node, nothing else
        let mut eng = engine(n);
        let mut dag = Dag::new();
        let node = dag.proto(
            "max",
            &[],
            move |_| ab_sub(n, inputs, &MaxU64),
            |s| s.into_results(),
        );
        let mut run = dag.run(&mut eng).unwrap();
        assert_eq!(run.outputs.take(node), want);
        // self-synchronizing ⇒ no barrier charged: identical cost to the
        // blocking adapter, down to the engine's global round counter.
        assert_eq!(run.stats, blocking_stats);
        assert_eq!(eng.total.rounds, blocking_round);
        assert_eq!(run.report.stages.len(), 1);
        assert!(!run.report.stages[0].barrier);
    }

    #[test]
    fn outputs_thread_through_dependencies() {
        let n = 32;
        let mut eng = engine(n);
        let mut dag = Dag::new();
        // sum of 0..n, then a dependent A&B that broadcasts sum+1, plus a
        // compute node in between — typed outputs flow through closures.
        let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
        let sum = dag.proto(
            "sum",
            &[],
            move |_| ab_sub(n, inputs, &SumU64),
            |s| s.into_results(),
        );
        let bumped = dag.compute("bump", &[sum.into()], move |d| d.get(sum)[0].map(|v| v + 1));
        let rebroadcast = dag.proto(
            "rebroadcast",
            &[bumped.into()],
            move |d| {
                let v = *d.get(bumped);
                ab_sub(n, vec![v; n], &MinU64)
            },
            |s| s.into_results(),
        );
        let mut run = dag.run(&mut eng).unwrap();
        let expect = (n as u64 * (n as u64 - 1)) / 2 + 1;
        assert_eq!(run.outputs.take(bumped), Some(expect));
        assert!(run
            .outputs
            .take(rebroadcast)
            .iter()
            .all(|r| *r == Some(expect)));
        // two protocol stages (sum, then rebroadcast), sequential because
        // of the dependency chain.
        assert_eq!(run.report.stages.len(), 2);
        assert_eq!(run.report.max_lanes(), 1);
    }

    #[test]
    fn independent_nodes_pack_into_one_stage() {
        let n = 32;
        let mut eng = engine(n);
        let mut dag = Dag::new();
        for j in 0..4u64 {
            let inputs: Vec<Option<u64>> = (0..n as u64).map(|v| Some(v + 100 * j)).collect();
            dag.proto(
                format!("max{j}"),
                &[],
                move |_| ab_sub(n, inputs, &MaxU64),
                |s| s.into_results(),
            );
        }
        let run = dag.run(&mut eng).unwrap();
        assert_eq!(run.report.stages.len(), 1, "antichain packs together");
        assert_eq!(run.report.stages[0].lanes.len(), 4);
        assert_eq!(run.report.splits(), 0);
        // per-lane stats are recorded for every packed lane
        assert!(run.report.stages[0].lanes.iter().all(|l| l.stats.sent > 0));
    }

    #[test]
    fn budget_overflow_splits_antichain() {
        let n = 32;
        let mut eng = engine(n);
        let mut dag = Dag::new();
        let mut handles = Vec::new();
        for j in 0..5u64 {
            let inputs: Vec<Option<u64>> = (0..n as u64).map(|v| Some(v * (j + 1))).collect();
            handles.push((
                j,
                dag.proto(
                    format!("sum{j}"),
                    &[],
                    move |_| ab_sub(n, inputs, &SumU64),
                    |s| s.into_results(),
                ),
            ));
        }
        let mut run = dag.run_budgeted(&mut eng, 2).unwrap();
        // 5 ready nodes, budget 2 → stages of 2/2/1, deferrals recorded
        assert_eq!(run.report.stages.len(), 3);
        assert_eq!(run.report.max_lanes(), 2);
        assert_eq!(run.report.splits(), 2);
        assert_eq!(run.report.stages[0].deferred.len(), 3);
        let base: u64 = (0..n as u64).sum();
        for (j, h) in handles {
            assert!(run
                .outputs
                .take(h)
                .iter()
                .all(|r| *r == Some(base * (j + 1))));
        }
    }

    #[test]
    #[should_panic(expected = "dependency on a node declared later")]
    fn forward_dependency_rejected_at_declaration() {
        // Cycles (and thus deadlocks) are unrepresentable: a dep list may
        // only name already-declared nodes, checked when the node is added.
        let mut dag = Dag::new();
        let b = dag.compute("b", &[], |_| 2u64);
        let _ = dag.compute("c", &[Dep(b.idx + 1)], |_| 3u64);
    }

    #[test]
    fn compute_only_dag_runs_without_network() {
        let mut eng = engine(8);
        let round0 = eng.total.rounds;
        let mut dag = Dag::new();
        let a = dag.compute("a", &[], |_| 21u64);
        let b = dag.compute("b", &[a.into()], move |d| d.get(a) * 2);
        let mut run = dag.run(&mut eng).unwrap();
        assert_eq!(run.outputs.take(b), 42);
        assert_eq!(run.stats, ExecStats::default());
        assert_eq!(eng.total.rounds, round0, "local computation is free");
        assert!(run.report.stages.is_empty());
    }
}
