//! Distributive aggregate functions (§2.1) — the one combiner surface every
//! aggregation-style primitive shares.
//!
//! An aggregate `f` is *distributive* when a function `g` combines partial
//! aggregates of any partition into the full aggregate — the property that
//! lets butterfly nodes merge colliding packets of the same group. In this
//! implementation `combine` *is* `g` and inputs are already singleton
//! aggregates, matching the paper's usage (MAX, MIN, SUM, XOR, …).
//!
//! [`Aggregate`] is consumed by Aggregate-and-Broadcast (Thm 2.2), the
//! Aggregation Algorithm (Thm 2.3) and Multi-Aggregation (Thm 2.6) alike;
//! there is exactly one combiner trait and one set of standard combiners.
//! (The historic `crate::aggregate` module path re-exports this module.)

use ncc_model::Payload;

/// A distributive aggregate over values of type `V`.
///
/// Laws the primitives rely on (checked by property tests):
/// associativity and commutativity — packets combine in arbitrary
/// collision order along the butterfly.
pub trait Aggregate<V: Payload>: Sync {
    fn combine(&self, a: &V, b: &V) -> V;
}

/// Minimum of `u64` values (used for BFS parents and MIS random values).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinU64;
impl Aggregate<u64> for MinU64 {
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        *a.min(b)
    }
}

/// Maximum of `u64` values (used for `d*` computations in §4).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxU64;
impl Aggregate<u64> for MaxU64 {
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        *a.max(b)
    }
}

/// Sum of `u64` values (degree counting in §4 Stage 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct SumU64;
impl Aggregate<u64> for SumU64 {
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        a.wrapping_add(*b)
    }
}

/// Bitwise XOR (the sketch aggregations of §3 and §4.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct XorU64;
impl Aggregate<u64> for XorU64 {
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        a ^ b
    }
}

/// Pairwise XOR over `(u64, u64)` — used for the FindMin `(h↑, h↓)` sketch
/// pair (§3).
#[derive(Debug, Clone, Copy, Default)]
pub struct XorPair;
impl Aggregate<(u64, u64)> for XorPair {
    fn combine(&self, a: &(u64, u64), b: &(u64, u64)) -> (u64, u64) {
        (a.0 ^ b.0, a.1 ^ b.1)
    }
}

/// `(XOR, SUM)` over `(u64, u64)` — the Identification Algorithm's combined
/// `(X'(i), x'(i))` aggregation (§4.1): first coordinate XORs edge ids,
/// second counts participants.
#[derive(Debug, Clone, Copy, Default)]
pub struct XorSum;
impl Aggregate<(u64, u64)> for XorSum {
    fn combine(&self, a: &(u64, u64), b: &(u64, u64)) -> (u64, u64) {
        (a.0 ^ b.0, a.1.wrapping_add(b.1))
    }
}

/// Coordinate-wise sum over `(u64, u64)` — used for `(Σ dᵢ(u), count)`
/// averages in §4 Stage 1 and for paired flag counting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumPair;
impl Aggregate<(u64, u64)> for SumPair {
    fn combine(&self, a: &(u64, u64), b: &(u64, u64)) -> (u64, u64) {
        (a.0.wrapping_add(b.0), a.1.wrapping_add(b.1))
    }
}

/// Minimum by the first coordinate of a `(key, data)` pair, keeping the
/// winner's data — the annotated-minimum used by the matching algorithm's
/// random-neighbor selection (§5.3) and by leader election.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinByKey;
impl Aggregate<(u64, u64)> for MinByKey {
    fn combine(&self, a: &(u64, u64), b: &(u64, u64)) -> (u64, u64) {
        if a <= b {
            *a
        } else {
            *b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_semantics() {
        assert_eq!(MinU64.combine(&3, &5), 3);
        assert_eq!(MaxU64.combine(&3, &5), 5);
        assert_eq!(SumU64.combine(&3, &5), 8);
        assert_eq!(XorU64.combine(&0b101, &0b011), 0b110);
        assert_eq!(XorPair.combine(&(1, 2), &(3, 4)), (2, 6));
        assert_eq!(XorSum.combine(&(1, 2), &(3, 4)), (2, 6));
        assert_eq!(MinByKey.combine(&(2, 99), &(3, 1)), (2, 99));
        assert_eq!(MinByKey.combine(&(3, 1), &(2, 99)), (2, 99));
    }

    fn assoc_comm<V: Payload + PartialEq + std::fmt::Debug>(
        agg: &impl Aggregate<V>,
        a: V,
        b: V,
        c: V,
    ) {
        assert_eq!(
            agg.combine(&agg.combine(&a, &b), &c),
            agg.combine(&a, &agg.combine(&b, &c)),
            "associativity"
        );
        assert_eq!(agg.combine(&a, &b), agg.combine(&b, &a), "commutativity");
    }

    proptest! {
        #[test]
        fn u64_aggregates_are_assoc_comm(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            assoc_comm(&MinU64, a, b, c);
            assoc_comm(&MaxU64, a, b, c);
            assoc_comm(&SumU64, a, b, c);
            assoc_comm(&XorU64, a, b, c);
        }

        #[test]
        fn pair_aggregates_are_assoc_comm(
            a in any::<(u64, u64)>(), b in any::<(u64, u64)>(), c in any::<(u64, u64)>()
        ) {
            assoc_comm(&XorPair, a, b, c);
            assoc_comm(&XorSum, a, b, c);
            assoc_comm(&MinByKey, a, b, c);
            assoc_comm(&SumPair, a, b, c);
        }
    }
}
