//! The Multi-Aggregation Algorithm (Theorem 2.6, Appendix B.5).
//!
//! Combines multicast and aggregation: every source `s_i` multicasts `p_i`
//! to its group; every node `u` then receives `f({p_i | u ∈ A_i})` — the
//! aggregate over all packets multicast *to* it. Runs in `O(C + log n)`
//! rounds over trees of congestion `C`.
//!
//! Pipeline: spread packets down the multicast trees to the leaves
//! `l(i, u)`; each leaf re-keys its packet to `(id(u), p_i)` — optionally
//! transforming it with leaf-local randomness, which is how the matching
//! algorithm of §5.3 annotates packets with uniform ranks — then the
//! re-keyed packets are scattered to random level-0 columns and aggregated
//! toward `h(id(u))` exactly as in the Aggregation Algorithm, and finally
//! delivered to `u`.
//!
//! Corollary 1: with the precomputed *broadcast trees* (groups
//! `A_{id(u)} = N(u)`), any subset `S` of sources can message their entire
//! neighborhoods in `O(Σ_{u∈S} d(u)/n + log n)` rounds.

use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, ExecStats, ModelError, NodeId, Payload};
use rand::rngs::SmallRng;

use crate::agg_bcast::sync_barrier;
use crate::aggregate::Aggregate;
use crate::aggregation::{
    CombineProgram, CombineState, DeliverProgram, DeliverState, InjectProgram, InjectState,
    RouteHashes,
};
use crate::mctree::MulticastTrees;
use crate::multicast::{spread_states, SpreadProgram};
use crate::topology::{Butterfly, GroupId};

/// Sub-identifier namespace for the re-keyed member groups.
const MA_SUB: u32 = 0x4D41;

/// Runs Multi-Aggregation. `messages[u] = Some((group, payload))` iff `u`
/// sources `group`; `leaf_map` is applied at each leaf `l(i, u)` with that
/// leaf's private randomness (identity for plain multi-aggregation);
/// `agg` combines the mapped packets per destination.
///
/// Returns per node `u` the aggregate `f({map(p_i) | u ∈ A_i})`, or `None`
/// if no group reaches `u`.
pub fn multi_aggregate<V, W, A, F>(
    engine: &mut Engine,
    shared: &SharedRandomness,
    trees: &MulticastTrees,
    messages: Vec<Option<(GroupId, V)>>,
    leaf_map: F,
    agg: &A,
) -> Result<(Vec<Option<W>>, ExecStats), ModelError>
where
    V: Payload,
    W: Payload,
    A: Aggregate<W>,
    F: Fn(&mut SmallRng, GroupId, NodeId, &V) -> W + Sync,
{
    let n = engine.n();
    assert_eq!(messages.len(), n);
    let bf = Butterfly::for_n(n);
    let hashes = RouteHashes::new(shared, &bf, n);
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let mut total = ExecStats::default();

    // --- spread down the multicast trees to the leaves ---------------------
    let spread_prog = SpreadProgram::<V> {
        bf,
        hashes: hashes.clone(),
        _pd: std::marker::PhantomData,
    };
    let mut sstates = spread_states(trees, messages, bf.d());
    total.merge(&engine.execute(&spread_prog, &mut sstates)?);
    total.merge(&sync_barrier(engine)?);

    // --- leaf re-keying + random scatter ------------------------------------
    // Each leaf l(i, u) maps p_i to (id(u), map(p_i)). The mapping uses the
    // leaf column's private RNG stream, mirroring the paper's leaf-chosen
    // annotations (§5.3). The scatter is the standard batched injection.
    let inject = InjectProgram::<W> {
        batch: logn,
        columns: bf.columns() as u32,
        _pd: std::marker::PhantomData,
    };
    let mut inj_states: Vec<InjectState<W>> = sstates
        .iter_mut()
        .enumerate()
        .map(|(col, s)| {
            let mut rng = ncc_model::rng::node_rng(
                engine.config().seed ^ 0x6d61_7070, // "mapp": leaf-map stream
                col as u32,
            );
            InjectState {
                to_send: s
                    .at_leaves
                    .drain(..)
                    .map(|(g, member, v)| {
                        let mapped = leaf_map(&mut rng, GroupId(g), member, &v);
                        (GroupId::new(member, MA_SUB).raw(), mapped)
                    })
                    .collect(),
                landed: Vec::new(),
            }
        })
        .collect();
    total.merge(&engine.execute(&inject, &mut inj_states)?);
    total.merge(&sync_barrier(engine)?);

    // --- aggregate toward h(id(u)) ------------------------------------------
    let combine = CombineProgram {
        bf,
        hashes: hashes.clone(),
        agg,
        _pd: std::marker::PhantomData,
    };
    let mut comb_states: Vec<CombineState<W>> = (0..n).map(|_| CombineState::new(bf.d())).collect();
    for (col, inj) in inj_states.into_iter().enumerate() {
        for (group, value) in inj.landed {
            combine.insert(&mut comb_states[col], col as u32, 0, group, value);
        }
    }
    total.merge(&engine.execute(&combine, &mut comb_states)?);
    total.merge(&sync_barrier(engine)?);

    // --- deliver to the member nodes ----------------------------------------
    let deliver = DeliverProgram::<W> {
        spread: 1, // each node is target of at most one re-keyed group
        _pd: std::marker::PhantomData,
    };
    let mut del_states: Vec<DeliverState<W>> = comb_states
        .into_iter()
        .map(|cs| DeliverState {
            scheduled: cs.arrived.into_iter().map(|(g, v)| (0, g, v)).collect(),
            received: Vec::new(),
        })
        .collect();
    total.merge(&engine.execute(&deliver, &mut del_states)?);
    total.merge(&sync_barrier(engine)?);

    let out = del_states
        .into_iter()
        .map(|s| s.received.into_iter().next().map(|(_, v)| v))
        .collect();
    Ok((out, total))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index several parallel per-node arrays
mod tests {
    use super::*;
    use crate::aggregate::{MinByKey, MinU64, SumU64};
    use crate::mctree::{multicast_setup, self_joins};
    use ncc_model::NetConfig;

    /// Builds broadcast-tree-style groups over an explicit neighborhood map.
    fn setup_neighborhoods(
        n: usize,
        neighbors: &[Vec<u32>],
    ) -> (Engine, SharedRandomness, MulticastTrees) {
        let mut eng = Engine::new(NetConfig::new(n, 5));
        let shared = SharedRandomness::new(61);
        // group A_{id(u)} = N(u): v joins group of every neighbor u
        let mut joins = vec![Vec::new(); n];
        for (u, ns) in neighbors.iter().enumerate() {
            for &v in ns {
                joins[v as usize].push(GroupId::new(u as u32, 0));
            }
        }
        let (trees, _) = multicast_setup(&mut eng, &shared, self_joins(joins)).unwrap();
        (eng, shared, trees)
    }

    #[test]
    fn neighborhood_min_on_a_cycle() {
        // cycle: N(u) = {u−1, u+1}; each u multicasts a value; every node
        // should receive min over its two neighbors' values
        let n = 32;
        let neighbors: Vec<Vec<u32>> = (0..n as u32)
            .map(|u| vec![(u + n as u32 - 1) % n as u32, (u + 1) % n as u32])
            .collect();
        let (mut eng, shared, trees) = setup_neighborhoods(n, &neighbors);
        let messages: Vec<Option<(GroupId, u64)>> = (0..n as u32)
            .map(|u| Some((GroupId::new(u, 0), 100 + ((u as u64 * 37) % 50))))
            .collect();
        let (out, stats) = multi_aggregate(
            &mut eng,
            &shared,
            &trees,
            messages,
            |_, _, _, v| *v,
            &MinU64,
        )
        .unwrap();
        for u in 0..n as u32 {
            let l = (u + n as u32 - 1) % n as u32;
            let r = (u + 1) % n as u32;
            let expect = (100 + (l as u64 * 37) % 50).min(100 + (r as u64 * 37) % 50);
            assert_eq!(out[u as usize], Some(expect), "node {u}");
        }
        assert!(stats.clean());
    }

    #[test]
    fn star_center_receives_sum_of_leaves() {
        // star: center 0 adjacent to all; leaves adjacent to 0 only.
        let n = 64;
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
        neighbors[0] = (1..n as u32).collect();
        for v in 1..n as u32 {
            neighbors[v as usize] = vec![0];
        }
        let (mut eng, shared, trees) = setup_neighborhoods(n, &neighbors);
        let messages: Vec<Option<(GroupId, u64)>> = (0..n as u32)
            .map(|u| Some((GroupId::new(u, 0), u as u64)))
            .collect();
        let (out, stats) = multi_aggregate(
            &mut eng,
            &shared,
            &trees,
            messages,
            |_, _, _, v| *v,
            &SumU64,
        )
        .unwrap();
        // center receives sum over leaves 1..n; leaves receive center's 0
        assert_eq!(out[0], Some((1..n as u64).sum()));
        for v in 1..n {
            assert_eq!(out[v], Some(0), "leaf {v}");
        }
        // the star is the capacity adversary; this must still be clean
        assert!(stats.clean());
        // O(C + log n) with C = O(a + log n) = O(log n) here
        assert!(stats.rounds < 40 * 6, "rounds {}", stats.rounds);
    }

    #[test]
    fn leaf_map_annotates_with_randomness() {
        // the §5.3 use: leaves annotate with random ranks, MinByKey keeps a
        // uniformly random neighbor — here we just verify exactly one of
        // the two candidate sources survives per node.
        let n = 16;
        let neighbors: Vec<Vec<u32>> = (0..n as u32)
            .map(|u| vec![(u + 1) % n as u32, (u + 2) % n as u32])
            .collect();
        let (mut eng, shared, trees) = setup_neighborhoods(n, &neighbors);
        let messages: Vec<Option<(GroupId, u64)>> = (0..n as u32)
            .map(|u| Some((GroupId::new(u, 0), u as u64)))
            .collect();
        let (out, _) = multi_aggregate(
            &mut eng,
            &shared,
            &trees,
            messages,
            |rng, _g, _member, v| {
                use rand::Rng;
                (rng.gen::<u64>() >> 8, *v)
            },
            &MinByKey,
        )
        .unwrap();
        for u in 0..n as u32 {
            let (_, winner) = out[u as usize].expect("every node has in-groups");
            let a = (u + n as u32 - 1) % n as u32; // u ∈ N(a)?  u = a+1 ✓
            let b = (u + n as u32 - 2) % n as u32; // u = b+2 ✓
            assert!(
                winner == a as u64 || winner == b as u64,
                "node {u}: winner {winner} not in {{{a},{b}}}"
            );
        }
    }

    #[test]
    fn nodes_outside_all_groups_get_none() {
        let n = 16;
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
        neighbors[0] = vec![1];
        neighbors[1] = vec![0];
        let (mut eng, shared, trees) = setup_neighborhoods(n, &neighbors);
        let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
        messages[0] = Some((GroupId::new(0, 0), 9));
        messages[1] = Some((GroupId::new(1, 0), 8));
        let (out, _) = multi_aggregate(
            &mut eng,
            &shared,
            &trees,
            messages,
            |_, _, _, v| *v,
            &MinU64,
        )
        .unwrap();
        assert_eq!(out[0], Some(8));
        assert_eq!(out[1], Some(9));
        for v in 2..n {
            assert_eq!(out[v], None);
        }
    }
}
