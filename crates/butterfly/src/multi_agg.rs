//! Historic module path for Multi-Aggregation (Theorem 2.6).
//!
//! The driver lives in [`crate::aggregation`] now — one unified module for
//! every aggregation-style entry point (`aggregate`, `aggregate_opt`,
//! `multi_aggregate`) over the one combiner trait in [`crate::combine`].
//! This module re-exports the old name so existing imports keep compiling.

pub use crate::aggregation::multi_aggregate;
