//! Historic module path for the combiner surface.
//!
//! The `Aggregate` trait and the standard combiners used to live here,
//! next to two sibling modules with near-identical plumbing. They are now
//! unified in [`crate::combine`] (trait + combiners) and
//! [`crate::aggregation`] (every aggregation-style entry point); this
//! module re-exports the old names so existing imports keep compiling.

pub use crate::combine::{
    Aggregate, MaxU64, MinByKey, MinU64, SumPair, SumU64, XorPair, XorSum, XorU64,
};
