//! The Aggregation Algorithm (Theorem 2.3, Appendix B.2).
//!
//! Aggregates the inputs of arbitrary *aggregation groups* to their targets
//! in `O(L/n + (ℓ₁ + ℓ̂₂)/log n + log n)` rounds w.h.p., where `L` is the
//! global load (total memberships), `ℓ₁` the maximum memberships per node
//! and `ℓ̂₂` a known bound on targets per node.
//!
//! Three phases, separated by [`sync_barrier`] (App. B.1 synchronisation):
//!
//! 1. **Preprocessing** — every node sends its packets `(group, value)` in
//!    batches of `⌈log n⌉` per round to uniformly random level-0 columns.
//! 2. **Combining** — the random-rank routing protocol of Aleliunas/Upfal
//!    \[1, 57\] moves packets level by level toward `h(group)` on the bottom
//!    level (bit-fixing paths). Packets of the same group that collide on a
//!    butterfly node **combine** via the distributive aggregate; when
//!    packets of different groups contend for one butterfly edge, the
//!    smallest rank `ρ(group)` wins and the rest wait (Theorem B.2 bounds
//!    the total delay). One packet crosses each butterfly edge per round.
//! 3. **Postprocessing** — each level-`d` node delivers every finished
//!    group aggregate to its target in a round chosen uniformly from
//!    `{1..⌈ℓ̂₂/log n⌉}`, smoothing the receive load.
//!
//! Group targets are encoded in the group identifier ([`GroupId`]), mirroring
//! the paper's content-addressed group names (`A_{id(w)∘i}`).
//!
//! This module also hosts **Aggregate-and-Broadcast** (Theorem 2.2) — the
//! `O(log n)` whole-network aggregate whose execution doubles as the
//! [`sync_barrier`] between phases — so every aggregation-style entry
//! point lives behind one path (the historic `agg_bcast`, `aggregate`
//! and `multi_agg` module paths went through one release of
//! `#[deprecated]` re-export shims and are gone).

use std::collections::BTreeMap;

use ncc_hashing::shared::labels;
use ncc_hashing::{PolyHash, SharedRandomness};
use ncc_model::{Ctx, Engine, Envelope, ExecStats, ModelError, NodeProgram, Payload};
use rand::Rng;

use crate::combine::Aggregate;
use crate::compose::run_single;
use crate::topology::{Butterfly, GroupId};

/// Per-node delivery lists: for each node, the `(group, value)` pairs it
/// received as a target/member.
pub type GroupedDeliveries<V> = Vec<Vec<(GroupId, V)>>;

/// Inputs to one aggregation run.
#[derive(Debug, Clone)]
pub struct AggregationSpec<V> {
    /// Per node: `(group, input)` for every group the node is a member of.
    pub memberships: Vec<Vec<(GroupId, V)>>,
    /// Known upper bound `ℓ̂₂` on the number of groups any node is target of.
    pub ell2_hat: usize,
}

/// Hash plumbing shared by the routing programs (derived from the agreed
/// shared randomness, so every node computes identical values locally).
#[derive(Debug, Clone)]
pub(crate) struct RouteHashes {
    target_fn: PolyHash,
    rank_fn: PolyHash,
    pub(crate) columns: u64,
    /// Random-rank contention (the paper's protocol). `false` degrades to a
    /// static priority (rank ≡ 0, ties by group id) — the E17 ablation.
    pub(crate) random_ranks: bool,
}

impl RouteHashes {
    pub(crate) fn new(shared: &SharedRandomness, bf: &Butterfly, n: usize) -> Self {
        let k = SharedRandomness::k_for(n);
        RouteHashes {
            target_fn: shared.poly(labels::AGG_TARGET, 0, k),
            rank_fn: shared.poly(labels::AGG_RANK, 0, k),
            columns: bf.columns() as u64,
            random_ranks: true,
        }
    }

    pub(crate) fn with_fifo(mut self) -> Self {
        self.random_ranks = false;
        self
    }

    /// Intermediate target `h(group)`: a uniform level-`d` column.
    #[inline]
    pub(crate) fn target_column(&self, g: u64) -> u32 {
        self.target_fn.to_range(g, self.columns) as u32
    }

    /// Routing rank `ρ(group)` (ties broken by group id, as in App. B.2).
    #[inline]
    pub(crate) fn rank(&self, g: u64) -> u64 {
        if self.random_ranks {
            self.rank_fn.to_range(g, 1 << 32)
        } else {
            0
        }
    }
}

// ---------------------------------------------------------------------------
// Phase 1: preprocessing (random injection in batches of ⌈log n⌉)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct PacketMsg<V> {
    pub group: u64,
    pub value: V,
}

impl<V: Payload> Payload for PacketMsg<V> {
    fn bit_size(&self) -> u32 {
        2 + ncc_model::payload::min_bits(self.group) + self.value.bit_size()
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct InjectState<V> {
    /// Outgoing packets (members' inputs), consumed in batches.
    pub to_send: Vec<(u64, V)>,
    /// Packets that landed on this column's level-0 butterfly node.
    pub landed: Vec<(u64, V)>,
}

pub(crate) struct InjectProgram<V> {
    pub batch: usize,
    pub columns: u32,
    pub _pd: std::marker::PhantomData<V>,
}

impl<V: Payload> InjectProgram<V> {
    fn send_batch(&self, st: &mut InjectState<V>, ctx: &mut Ctx<'_, PacketMsg<V>>) {
        let take = st.to_send.len().min(self.batch);
        for (group, value) in st.to_send.drain(..take) {
            let col = ctx.rng.gen_range(0..self.columns);
            ctx.send(col, PacketMsg { group, value });
        }
        if !st.to_send.is_empty() {
            ctx.stay_awake();
        }
    }
}

impl<V: Payload> NodeProgram for InjectProgram<V> {
    type State = InjectState<V>;
    type Payload = PacketMsg<V>;

    fn init(&self, st: &mut InjectState<V>, ctx: &mut Ctx<'_, PacketMsg<V>>) {
        self.send_batch(st, ctx);
    }

    fn round(
        &self,
        st: &mut InjectState<V>,
        inbox: &[Envelope<PacketMsg<V>>],
        ctx: &mut Ctx<'_, PacketMsg<V>>,
    ) {
        for env in inbox {
            st.landed
                .push((env.payload.group, env.payload.value.clone()));
        }
        self.send_batch(st, ctx);
    }
}

// ---------------------------------------------------------------------------
// Phase 2: combining (random-rank routing with in-network combining)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct LevelMsg<V> {
    /// Level of the butterfly node this packet is arriving at.
    pub level: u8,
    pub group: u64,
    pub value: V,
}

impl<V: Payload> Payload for LevelMsg<V> {
    fn bit_size(&self) -> u32 {
        6 + ncc_model::payload::min_bits(self.group) + self.value.bit_size()
    }
}

pub(crate) struct CombineState<V> {
    /// `queues[i][dir]`: packets waiting at `(i, α)` to traverse the edge to
    /// level `i+1` — `dir` 0 = straight, 1 = cross. Keyed by `(rank, group)`
    /// so `pop_first` is the contention rule and same-group inserts combine.
    pub queues: Vec<[BTreeMap<(u64, u64), V>; 2]>,
    /// Finished aggregates at level `d` (this column is `h(group)`).
    pub arrived: BTreeMap<u64, V>,
}

impl<V> CombineState<V> {
    pub fn new(d: u32) -> Self {
        CombineState {
            queues: (0..d).map(|_| [BTreeMap::new(), BTreeMap::new()]).collect(),
            arrived: BTreeMap::new(),
        }
    }

    fn busy(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q[0].is_empty() || !q[1].is_empty())
    }
}

pub(crate) struct CombineProgram<'a, V, A> {
    pub bf: Butterfly,
    pub hashes: RouteHashes,
    pub agg: &'a A,
    pub _pd: std::marker::PhantomData<V>,
}

/// Inserts a packet at `(level, α)`, combining with a same-group packet
/// already queued there.
#[allow(clippy::too_many_arguments)] // mirrors the packet coordinates
pub(crate) fn combine_insert<V: Payload, A: Aggregate<V>>(
    bf: &Butterfly,
    hashes: &RouteHashes,
    agg: &A,
    st: &mut CombineState<V>,
    alpha: u32,
    level: u32,
    group: u64,
    value: V,
) {
    let d = bf.d();
    if level == d {
        match st.arrived.entry(group) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = agg.combine(e.get(), &value);
                e.insert(merged);
            }
        }
        return;
    }
    let target = hashes.target_column(group);
    let dir = bf.route_is_cross(alpha, level, target) as usize;
    let key = (hashes.rank(group), group);
    match st.queues[level as usize][dir].entry(key) {
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(value);
        }
        std::collections::btree_map::Entry::Occupied(mut e) => {
            let merged = agg.combine(e.get(), &value);
            e.insert(merged);
        }
    }
}

/// One routing step at column `alpha`: every queue forwards its
/// minimum-rank packet. Levels are processed top-down so a locally
/// forwarded packet cannot advance twice in one round; cross-edge traffic
/// goes through `emit`.
pub(crate) fn combine_step<V: Payload, A: Aggregate<V>>(
    bf: &Butterfly,
    hashes: &RouteHashes,
    agg: &A,
    st: &mut CombineState<V>,
    alpha: u32,
    budget: &mut usize,
    emit: &mut impl FnMut(ncc_model::NodeId, LevelMsg<V>),
) {
    let d = bf.d();
    for level in (0..d).rev() {
        for dir in 0..2usize {
            if *budget == 0 {
                return;
            }
            let popped = st.queues[level as usize][dir].pop_first();
            if let Some(((_rank, group), value)) = popped {
                let next_col = if dir == 0 {
                    alpha
                } else {
                    alpha ^ (1 << level)
                };
                if next_col == alpha {
                    // straight edge: stays on this node
                    combine_insert(bf, hashes, agg, st, alpha, level + 1, group, value);
                } else {
                    *budget -= 1;
                    emit(
                        bf.emulator(next_col),
                        LevelMsg {
                            level: (level + 1) as u8,
                            group,
                            value,
                        },
                    );
                }
            }
        }
    }
}

impl<V: Payload, A: Aggregate<V>> CombineProgram<'_, V, A> {
    /// Inserts a packet at `(level, α)` (see [`combine_insert`]).
    pub(crate) fn insert(
        &self,
        st: &mut CombineState<V>,
        alpha: u32,
        level: u32,
        group: u64,
        value: V,
    ) {
        combine_insert(
            &self.bf,
            &self.hashes,
            self.agg,
            st,
            alpha,
            level,
            group,
            value,
        );
    }

    /// One routing step (see [`combine_step`]); stays awake while busy.
    fn step(&self, st: &mut CombineState<V>, alpha: u32, ctx: &mut Ctx<'_, LevelMsg<V>>) {
        let mut unpaced = usize::MAX;
        combine_step(
            &self.bf,
            &self.hashes,
            self.agg,
            st,
            alpha,
            &mut unpaced,
            &mut |dst, msg| ctx.send(dst, msg),
        );
        if st.busy() {
            ctx.stay_awake();
        }
    }
}

impl<V: Payload, A: Aggregate<V>> NodeProgram for CombineProgram<'_, V, A> {
    type State = CombineState<V>;
    type Payload = LevelMsg<V>;

    fn init(&self, st: &mut CombineState<V>, ctx: &mut Ctx<'_, LevelMsg<V>>) {
        if self.bf.emulates(ctx.id) && st.busy() {
            ctx.stay_awake();
        }
    }

    fn round(
        &self,
        st: &mut CombineState<V>,
        inbox: &[Envelope<LevelMsg<V>>],
        ctx: &mut Ctx<'_, LevelMsg<V>>,
    ) {
        let alpha = self.bf.column_of(ctx.id);
        for env in inbox {
            self.insert(
                st,
                alpha,
                env.payload.level as u32,
                env.payload.group,
                env.payload.value.clone(),
            );
        }
        self.step(st, alpha, ctx);
    }
}

// ---------------------------------------------------------------------------
// Phase 3: postprocessing (randomized delivery rounds)
// ---------------------------------------------------------------------------

pub(crate) struct DeliverState<V> {
    /// `(round, group, value)` deliveries this column owes, sorted by round.
    pub scheduled: Vec<(u64, u64, V)>,
    /// Aggregates received by this node as a *target*.
    pub received: Vec<(GroupId, V)>,
}

pub(crate) struct DeliverProgram<V> {
    pub spread: u64,
    pub _pd: std::marker::PhantomData<V>,
}

impl<V: Payload> DeliverProgram<V> {
    fn flush(&self, st: &mut DeliverState<V>, ctx: &mut Ctx<'_, PacketMsg<V>>) {
        // scheduled is sorted by round; send everything due now
        let now = ctx.round + 1; // rounds are drawn from 1..=spread
        let due = st.scheduled.partition_point(|(r, _, _)| *r <= now);
        for (_, group, value) in st.scheduled.drain(..due) {
            ctx.send(GroupId(group).target(), PacketMsg { group, value });
        }
        if !st.scheduled.is_empty() {
            ctx.stay_awake();
        }
    }
}

impl<V: Payload> NodeProgram for DeliverProgram<V> {
    type State = DeliverState<V>;
    type Payload = PacketMsg<V>;

    fn init(&self, st: &mut DeliverState<V>, ctx: &mut Ctx<'_, PacketMsg<V>>) {
        // draw delivery rounds and sort
        let mut scheduled = std::mem::take(&mut st.scheduled);
        for slot in scheduled.iter_mut() {
            slot.0 = ctx.rng.gen_range(1..=self.spread);
        }
        scheduled.sort_by_key(|(r, g, _)| (*r, *g));
        st.scheduled = scheduled;
        self.flush(st, ctx);
    }

    fn round(
        &self,
        st: &mut DeliverState<V>,
        inbox: &[Envelope<PacketMsg<V>>],
        ctx: &mut Ctx<'_, PacketMsg<V>>,
    ) {
        for env in inbox {
            st.received
                .push((GroupId(env.payload.group), env.payload.value.clone()));
        }
        self.flush(st, ctx);
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs the full Aggregation Algorithm. Every group's inputs are combined
/// with `agg` and delivered to the group's target; the per-node output lists
/// the `(group, aggregate)` pairs that node received as a target.
///
/// Round complexity (Theorem 2.3): `O(L/n + (ℓ₁ + ℓ̂₂)/log n + log n)` w.h.p.
pub fn aggregate<V: Payload, A: Aggregate<V>>(
    engine: &mut Engine,
    shared: &SharedRandomness,
    spec: AggregationSpec<V>,
    agg: &A,
) -> Result<(GroupedDeliveries<V>, ExecStats), ModelError> {
    aggregate_opt(engine, shared, spec, agg, true)
}

/// [`aggregate`] with the contention rule exposed: `random_ranks = false`
/// replaces the random-rank routing with a static priority (ablation E17 —
/// Theorem B.2's guarantee only holds for random ranks).
pub fn aggregate_opt<V: Payload, A: Aggregate<V>>(
    engine: &mut Engine,
    shared: &SharedRandomness,
    spec: AggregationSpec<V>,
    agg: &A,
    random_ranks: bool,
) -> Result<(GroupedDeliveries<V>, ExecStats), ModelError> {
    let n = engine.n();
    assert_eq!(spec.memberships.len(), n);
    let mut total = ExecStats::default();

    if n == 1 {
        // trivial network: combine locally
        let mut by_group: BTreeMap<u64, V> = BTreeMap::new();
        for (g, v) in spec.memberships.into_iter().flatten() {
            match by_group.entry(g.raw()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let m = agg.combine(e.get(), &v);
                    e.insert(m);
                }
            }
        }
        let out = vec![by_group.into_iter().map(|(g, v)| (GroupId(g), v)).collect()];
        return Ok((out, total));
    }

    let bf = Butterfly::for_n(n);
    let hashes = if random_ranks {
        RouteHashes::new(shared, &bf, n)
    } else {
        RouteHashes::new(shared, &bf, n).with_fifo()
    };
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;

    // --- phase 1: inject ---------------------------------------------------
    let inject = InjectProgram {
        batch: logn,
        columns: bf.columns() as u32,
        _pd: std::marker::PhantomData,
    };
    let inj_states: Vec<InjectState<V>> = spec
        .memberships
        .into_iter()
        .map(|ms| InjectState {
            to_send: ms.into_iter().map(|(g, v)| (g.raw(), v)).collect(),
            landed: Vec::new(),
        })
        .collect();
    let (inj_states, s) = run_single(engine, inject, inj_states)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    // --- phase 2: combine --------------------------------------------------
    let combine = CombineProgram {
        bf,
        hashes: hashes.clone(),
        agg,
        _pd: std::marker::PhantomData,
    };
    let mut comb_states: Vec<CombineState<V>> = (0..n).map(|_| CombineState::new(bf.d())).collect();
    for (col, inj) in inj_states.into_iter().enumerate() {
        for (group, value) in inj.landed {
            combine.insert(&mut comb_states[col], col as u32, 0, group, value);
        }
    }
    let (comb_states, s) = run_single(engine, combine, comb_states)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    // --- phase 3: deliver --------------------------------------------------
    let spread = (spec.ell2_hat.div_ceil(logn)).max(1) as u64;
    let deliver = DeliverProgram {
        spread,
        _pd: std::marker::PhantomData,
    };
    let del_states: Vec<DeliverState<V>> = comb_states
        .into_iter()
        .map(|cs| DeliverState {
            scheduled: cs.arrived.into_iter().map(|(g, v)| (0, g, v)).collect(),
            received: Vec::new(),
        })
        .collect();
    let (del_states, s) = run_single(engine, deliver, del_states)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    let out = del_states.into_iter().map(|s| s.received).collect();
    Ok((out, total))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index several parallel per-node arrays
mod tests {
    use super::*;
    use crate::combine::{MinU64, SumU64, XorU64};
    use ncc_model::NetConfig;

    fn run_sum(
        n: usize,
        memberships: Vec<Vec<(GroupId, u64)>>,
        ell2: usize,
    ) -> (Vec<Vec<(GroupId, u64)>>, ExecStats) {
        let mut eng = Engine::new(NetConfig::new(n, 7));
        let shared = SharedRandomness::new(99);
        aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: ell2,
            },
            &SumU64,
        )
        .unwrap()
    }

    #[test]
    fn single_group_sums_all_inputs() {
        let n = 32;
        let g = GroupId::new(5, 0);
        let memberships: Vec<Vec<(GroupId, u64)>> = (0..n).map(|v| vec![(g, v as u64)]).collect();
        let (out, stats) = run_sum(n, memberships, 1);
        for (v, res) in out.iter().enumerate() {
            if v == 5 {
                assert_eq!(res.as_slice(), &[(g, (0..32u64).sum())]);
            } else {
                assert!(res.is_empty(), "node {v} got {res:?}");
            }
        }
        assert!(stats.clean());
    }

    #[test]
    fn many_groups_to_distinct_targets() {
        // group t collects from members {t, t+1, t+2 mod n}, for every t
        let n = 64;
        let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
        for t in 0..n as u32 {
            for off in 0..3u32 {
                let member = ((t + off) % n as u32) as usize;
                memberships[member].push((GroupId::new(t, 1), 10 + off as u64));
            }
        }
        let (out, stats) = run_sum(n, memberships, 1);
        for t in 0..n {
            assert_eq!(out[t].len(), 1, "node {t}: {:?}", out[t]);
            let (g, v) = out[t][0];
            assert_eq!(g, GroupId::new(t as u32, 1));
            assert_eq!(v, 33);
        }
        assert!(stats.clean());
    }

    #[test]
    fn min_aggregate_and_multiple_groups_per_target() {
        let n = 40;
        let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
        // two groups target node 3, members everywhere
        for v in 0..n {
            memberships[v].push((GroupId::new(3, 0), (v as u64) + 100));
            memberships[v].push((GroupId::new(3, 1), 1000 - v as u64));
        }
        let mut eng = Engine::new(NetConfig::new(n, 7));
        let shared = SharedRandomness::new(99);
        let (out, _) = aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: 2,
            },
            &MinU64,
        )
        .unwrap();
        let mut got = out[3].clone();
        got.sort_by_key(|(g, _)| *g);
        assert_eq!(
            got,
            vec![(GroupId::new(3, 0), 100), (GroupId::new(3, 1), 1000 - 39)]
        );
    }

    #[test]
    fn xor_cancellation_across_members() {
        let n = 16;
        let g = GroupId::new(0, 7);
        let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
        memberships[2].push((g, 0xAA));
        memberships[9].push((g, 0xAA));
        memberships[12].push((g, 0x55));
        let mut eng = Engine::new(NetConfig::new(n, 1));
        let shared = SharedRandomness::new(5);
        let (out, _) = aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: 1,
            },
            &XorU64,
        )
        .unwrap();
        assert_eq!(out[0], vec![(g, 0x55)]);
    }

    #[test]
    fn empty_spec_is_cheap() {
        let n = 16;
        let (out, stats) = run_sum(n, vec![Vec::new(); n], 1);
        assert!(out.iter().all(Vec::is_empty));
        // three sync barriers still run: O(log n) each
        assert!(stats.rounds < 40, "rounds {}", stats.rounds);
    }

    #[test]
    fn rounds_follow_theorem_bound() {
        // Theorem 2.3: O(L/n + (ℓ₁+ℓ̂₂)/log n + log n). With L = n·ℓ₁ and
        // small ℓ₁, rounds should stay O(log n)-ish, far below L.
        let n = 128;
        let ell1 = 8;
        let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
        for v in 0..n as u32 {
            for j in 0..ell1 {
                let target = (v.wrapping_mul(31).wrapping_add(j)) % n as u32;
                memberships[v as usize].push((GroupId::new(target, j), 1));
            }
        }
        let (out, stats) = run_sum(n, memberships, 2 * ell1 as usize + 8);
        let total: u64 = out.iter().flatten().map(|(_, v)| v).sum();
        assert_eq!(total, (n * ell1 as usize) as u64, "no packet lost");
        let logn = 7;
        let bound = 40 * logn; // generous constant on O(L/n + ℓ/logn + logn) = O(logn) here
        assert!(
            (stats.rounds as usize) < bound,
            "rounds {} exceed c·log n = {bound}",
            stats.rounds
        );
        assert!(stats.clean());
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 32;
        let g = GroupId::new(1, 0);
        let mems: Vec<Vec<(GroupId, u64)>> = (0..n).map(|v| vec![(g, v as u64)]).collect();
        let a = run_sum(n, mems.clone(), 1);
        let b = run_sum(n, mems, 1);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}

// ---------------------------------------------------------------------------
// Multi-Aggregation (Theorem 2.6, Appendix B.5)
// ---------------------------------------------------------------------------

/// Sub-identifier namespace for the re-keyed member groups.
const MA_SUB: u32 = 0x4D41;

/// Runs Multi-Aggregation (Theorem 2.6): every source `s_i` multicasts
/// `p_i` down its tree; each leaf `l(i, u)` re-keys its packet to
/// `(id(u), map(p_i))` — optionally transforming it with leaf-local
/// randomness, which is how the matching algorithm of §5.3 annotates
/// packets with uniform ranks — then the re-keyed packets are scattered,
/// aggregated toward `h(id(u))` exactly as in the Aggregation Algorithm,
/// and delivered to `u`. Runs in `O(C + log n)` rounds over trees of
/// congestion `C`.
///
/// `messages[u] = Some((group, payload))` iff `u` sources `group`; `agg`
/// combines the mapped packets per destination. Returns per node `u` the
/// aggregate `f({map(p_i) | u ∈ A_i})`, or `None` if no group reaches `u`.
pub fn multi_aggregate<V, W, A, F>(
    engine: &mut Engine,
    shared: &SharedRandomness,
    trees: &crate::mctree::MulticastTrees,
    messages: Vec<Option<(GroupId, V)>>,
    leaf_map: F,
    agg: &A,
) -> Result<(Vec<Option<W>>, ExecStats), ModelError>
where
    V: Payload,
    W: Payload,
    A: Aggregate<W>,
    F: Fn(&mut rand::rngs::SmallRng, GroupId, ncc_model::NodeId, &V) -> W + Sync,
{
    use crate::multicast::{spread_states, SpreadProgram};

    let n = engine.n();
    assert_eq!(messages.len(), n);
    let bf = Butterfly::for_n(n);
    let hashes = RouteHashes::new(shared, &bf, n);
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let mut total = ExecStats::default();

    // --- spread down the multicast trees to the leaves ---------------------
    let spread_prog = SpreadProgram::<V> {
        bf,
        hashes: hashes.clone(),
        _pd: std::marker::PhantomData,
    };
    let sstates = spread_states(trees, messages, bf.d());
    let (mut sstates, s) = run_single(engine, spread_prog, sstates)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    // --- leaf re-keying + random scatter ------------------------------------
    // Each leaf l(i, u) maps p_i to (id(u), map(p_i)). The mapping uses the
    // leaf column's private RNG stream, mirroring the paper's leaf-chosen
    // annotations (§5.3). The scatter is the standard batched injection.
    let inject = InjectProgram::<W> {
        batch: logn,
        columns: bf.columns() as u32,
        _pd: std::marker::PhantomData,
    };
    let inj_states: Vec<InjectState<W>> = sstates
        .iter_mut()
        .enumerate()
        .map(|(col, s)| {
            let mut rng = ncc_model::rng::node_rng(
                engine.config().seed ^ 0x6d61_7070, // "mapp": leaf-map stream
                col as u32,
            );
            InjectState {
                to_send: s
                    .at_leaves
                    .drain(..)
                    .map(|(g, member, v)| {
                        let mapped = leaf_map(&mut rng, GroupId(g), member, &v);
                        (GroupId::new(member, MA_SUB).raw(), mapped)
                    })
                    .collect(),
                landed: Vec::new(),
            }
        })
        .collect();
    let (inj_states, s) = run_single(engine, inject, inj_states)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    // --- aggregate toward h(id(u)) ------------------------------------------
    let combine = CombineProgram {
        bf,
        hashes: hashes.clone(),
        agg,
        _pd: std::marker::PhantomData,
    };
    let mut comb_states: Vec<CombineState<W>> = (0..n).map(|_| CombineState::new(bf.d())).collect();
    for (col, inj) in inj_states.into_iter().enumerate() {
        for (group, value) in inj.landed {
            combine.insert(&mut comb_states[col], col as u32, 0, group, value);
        }
    }
    let (comb_states, s) = run_single(engine, combine, comb_states)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    // --- deliver to the member nodes ----------------------------------------
    let deliver = DeliverProgram::<W> {
        spread: 1, // each node is target of at most one re-keyed group
        _pd: std::marker::PhantomData,
    };
    let del_states: Vec<DeliverState<W>> = comb_states
        .into_iter()
        .map(|cs| DeliverState {
            scheduled: cs.arrived.into_iter().map(|(g, v)| (0, g, v)).collect(),
            received: Vec::new(),
        })
        .collect();
    let (del_states, s) = run_single(engine, deliver, del_states)?;
    total.merge(&s);
    total.merge(&sync_barrier(engine)?);

    let out = del_states
        .into_iter()
        .map(|s| s.received.into_iter().next().map(|(_, v)| v))
        .collect();
    Ok((out, total))
}

// ---------------------------------------------------------------------------
// Fused pipelines + lane-composable sub-protocols
// ---------------------------------------------------------------------------

/// The fused Aggregation pipeline, stage 1: injection and combining in the
/// same rounds. Nodes scatter their packets in batches of `⌈log n⌉` as
/// level-0 arrivals while the random-rank routing already moves earlier
/// packets toward `h(group)` — the streamed form of Thm 2.3's first two
/// phases (the routing analysis \[1, 57\] covers continuous injection).
/// Used by the composed (lane) path; the blocking [`aggregate`] keeps the
/// classic phase structure.
pub(crate) struct ScatterCombineProgram<'a, V, A> {
    pub bf: Butterfly,
    pub hashes: RouteHashes,
    pub agg: &'a A,
    pub batch: usize,
    pub columns: u32,
    pub _pd: std::marker::PhantomData<V>,
}

pub(crate) struct ScatterCombineState<V> {
    pub to_send: Vec<(u64, V)>,
    pub comb: CombineState<V>,
}

impl<V: Payload, A: Aggregate<V>> ScatterCombineProgram<'_, V, A> {
    fn scatter(&self, st: &mut ScatterCombineState<V>, ctx: &mut Ctx<'_, LevelMsg<V>>) {
        let take = st.to_send.len().min(self.batch);
        for (group, value) in st.to_send.drain(..take) {
            let col = ctx.rng.gen_range(0..self.columns);
            ctx.send(
                self.bf.emulator(col),
                LevelMsg {
                    level: 0,
                    group,
                    value,
                },
            );
        }
        if !st.to_send.is_empty() {
            ctx.stay_awake();
        }
    }
}

impl<V: Payload, A: Aggregate<V>> NodeProgram for ScatterCombineProgram<'_, V, A> {
    type State = ScatterCombineState<V>;
    type Payload = LevelMsg<V>;

    fn init(&self, st: &mut ScatterCombineState<V>, ctx: &mut Ctx<'_, LevelMsg<V>>) {
        self.scatter(st, ctx);
    }

    fn round(
        &self,
        st: &mut ScatterCombineState<V>,
        inbox: &[Envelope<LevelMsg<V>>],
        ctx: &mut Ctx<'_, LevelMsg<V>>,
    ) {
        if self.bf.emulates(ctx.id) {
            let alpha = self.bf.column_of(ctx.id);
            for env in inbox {
                combine_insert(
                    &self.bf,
                    &self.hashes,
                    self.agg,
                    &mut st.comb,
                    alpha,
                    env.payload.level as u32,
                    env.payload.group,
                    env.payload.value.clone(),
                );
            }
            self.scatter(st, ctx);
            let mut unpaced = usize::MAX;
            combine_step(
                &self.bf,
                &self.hashes,
                self.agg,
                &mut st.comb,
                alpha,
                &mut unpaced,
                &mut |dst, msg| ctx.send(dst, msg),
            );
            if st.comb.busy() {
                ctx.stay_awake();
            }
        } else {
            // non-emulating nodes only scatter; routing stays on columns
            self.scatter(st, ctx);
        }
    }
}

/// The Aggregation Algorithm as a composable lane: stage 1 is the fused
/// scatter+combine pipeline, stage 2 the randomized delivery. Build with
/// [`aggregation_sub`], run under [`crate::compose::run_composed`], read
/// with [`AggregationSub::into_deliveries`].
pub struct AggregationSub<'a, V: Payload, A: Aggregate<V>> {
    stage: usize,
    lane_seed: u64,
    logn: usize,
    ell2_hat: usize,
    sc: crate::compose::Stage<ScatterCombineProgram<'a, V, A>, ScatterCombineState<V>>,
    del: crate::compose::Stage<DeliverProgram<V>, DeliverState<V>>,
    out: Option<GroupedDeliveries<V>>,
}

/// Builds the aggregation sub-protocol. Arguments mirror [`aggregate`];
/// `lane_seed` keys the lane's private randomness (scatter columns,
/// delivery rounds).
pub fn aggregation_sub<'a, V: Payload, A: Aggregate<V>>(
    n: usize,
    shared: &SharedRandomness,
    spec: AggregationSpec<V>,
    agg: &'a A,
    lane_seed: u64,
) -> AggregationSub<'a, V, A> {
    assert_eq!(spec.memberships.len(), n);
    let bf = Butterfly::for_n(n);
    let hashes = RouteHashes::new(shared, &bf, n);
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let states: Vec<ScatterCombineState<V>> = spec
        .memberships
        .into_iter()
        .map(|ms| ScatterCombineState {
            to_send: ms.into_iter().map(|(g, v)| (g.raw(), v)).collect(),
            comb: CombineState::new(bf.d()),
        })
        .collect();
    AggregationSub {
        stage: 0,
        lane_seed,
        logn,
        ell2_hat: spec.ell2_hat,
        sc: Some((
            ScatterCombineProgram {
                bf,
                hashes,
                agg,
                batch: logn,
                columns: bf.columns() as u32,
                _pd: std::marker::PhantomData,
            },
            states,
        )),
        del: None,
        out: None,
    }
}

impl<V: Payload, A: Aggregate<V>> AggregationSub<'_, V, A> {
    /// The per-node `(group, aggregate)` deliveries. Panics before the
    /// composition ran to completion.
    pub fn into_deliveries(self) -> GroupedDeliveries<V> {
        self.out.expect("aggregation sub-protocol not finished")
    }
}

impl<'a, V: Payload, A: Aggregate<V>> crate::compose::LaneSub<'a> for AggregationSub<'a, V, A> {
    fn install(&mut self, b: &mut ncc_model::MuxBuilder<'a>) -> Option<ncc_model::LaneId> {
        match self.stage {
            0 => {
                let (prog, states) = self.sc.take()?;
                Some(b.lane_seeded(
                    prog,
                    states,
                    ncc_model::rng::derive_seed(&[self.lane_seed, 0]),
                ))
            }
            1 => {
                let (prog, states) = self.del.take()?;
                Some(b.lane_seeded(
                    prog,
                    states,
                    ncc_model::rng::derive_seed(&[self.lane_seed, 1]),
                ))
            }
            _ => None,
        }
    }

    fn collect(&mut self, lane: ncc_model::LaneId, states: &mut [ncc_model::MuxState]) {
        match self.stage {
            0 => {
                let sc: Vec<ScatterCombineState<V>> = ncc_model::take_lane_states(states, lane);
                let spread = (self.ell2_hat.div_ceil(self.logn)).max(1) as u64;
                let del_states: Vec<DeliverState<V>> = sc
                    .into_iter()
                    .map(|s| DeliverState {
                        scheduled: s.comb.arrived.into_iter().map(|(g, v)| (0, g, v)).collect(),
                        received: Vec::new(),
                    })
                    .collect();
                self.del = Some((
                    DeliverProgram {
                        spread,
                        _pd: std::marker::PhantomData,
                    },
                    del_states,
                ));
            }
            _ => {
                let del: Vec<DeliverState<V>> = ncc_model::take_lane_states(states, lane);
                self.out = Some(del.into_iter().map(|s| s.received).collect());
            }
        }
        self.stage += 1;
    }

    fn is_done(&self) -> bool {
        self.out.is_some()
    }
}

// ---------------------------------------------------------------------------
// Fused Multi-Aggregation pipeline
// ---------------------------------------------------------------------------

/// Wire format of the fused Multi-Aggregation pipeline: tree spreading
/// (payload `V`) and re-keyed aggregation routing (payload `W`) share the
/// rounds.
#[derive(Debug, Clone)]
pub(crate) enum MaMsg<V, W> {
    Spread(LevelMsg<V>),
    Agg(LevelMsg<W>),
}

impl<V: Payload, W: Payload> Payload for MaMsg<V, W> {
    fn bit_size(&self) -> u32 {
        1 + match self {
            MaMsg::Spread(m) => m.bit_size(),
            MaMsg::Agg(m) => m.bit_size(),
        }
    }
}

pub(crate) struct MaPipelineState<V, W> {
    pub spread: crate::multicast::SpreadState<V>,
    pub to_send: Vec<(u64, W)>,
    pub comb: CombineState<W>,
}

/// The fused Multi-Aggregation pipeline (Theorem 2.6, streamed): packets
/// spread down the trees, each leaf arrival is re-keyed through `leaf_map`
/// (with the lane's private randomness — the §5.3 annotation hook) and
/// immediately scattered as a level-0 arrival of the combining network,
/// which routes toward `h(id(u))` in the same rounds. Stage 2 delivers.
pub(crate) struct MaPipelineProgram<'a, V, W, A, F> {
    pub bf: Butterfly,
    pub hashes: RouteHashes,
    pub agg: &'a A,
    pub leaf_map: F,
    pub batch: usize,
    pub columns: u32,
    /// Per-node, per-round send ceiling across the whole fused pipeline
    /// (spread + scatter + combine) — the lane's share of the node
    /// capacity when a scheduler packs it next to siblings
    /// ([`crate::compose::LaneSub::pace`]). `usize::MAX` = unpaced.
    pub send_budget: usize,
    pub _pd: std::marker::PhantomData<(V, W)>,
}

impl<V, W, A, F> MaPipelineProgram<'_, V, W, A, F>
where
    V: Payload,
    W: Payload,
    A: Aggregate<W>,
    F: Fn(&mut rand::rngs::SmallRng, GroupId, ncc_model::NodeId, &V) -> W + Sync,
{
    fn scatter(
        &self,
        st: &mut MaPipelineState<V, W>,
        budget: &mut usize,
        ctx: &mut Ctx<'_, MaMsg<V, W>>,
    ) {
        let take = st.to_send.len().min(self.batch).min(*budget);
        *budget -= take;
        for (group, value) in st.to_send.drain(..take) {
            let col = ctx.rng.gen_range(0..self.columns);
            ctx.send(
                self.bf.emulator(col),
                MaMsg::Agg(LevelMsg {
                    level: 0,
                    group,
                    value,
                }),
            );
        }
    }
}

impl<V, W, A, F> NodeProgram for MaPipelineProgram<'_, V, W, A, F>
where
    V: Payload,
    W: Payload,
    A: Aggregate<W>,
    F: Fn(&mut rand::rngs::SmallRng, GroupId, ncc_model::NodeId, &V) -> W + Sync,
{
    type State = MaPipelineState<V, W>;
    type Payload = MaMsg<V, W>;

    fn init(&self, st: &mut MaPipelineState<V, W>, ctx: &mut Ctx<'_, MaMsg<V, W>>) {
        if let Some((group, value)) = st.spread.source_packet.take() {
            let root = self.hashes.target_column(group);
            ctx.send(
                self.bf.emulator(root),
                MaMsg::Spread(LevelMsg {
                    level: self.bf.d() as u8,
                    group,
                    value,
                }),
            );
        }
    }

    fn round(
        &self,
        st: &mut MaPipelineState<V, W>,
        inbox: &[Envelope<MaMsg<V, W>>],
        ctx: &mut Ctx<'_, MaMsg<V, W>>,
    ) {
        if !self.bf.emulates(ctx.id) {
            return; // sources fired at init; all traffic stays on columns
        }
        let alpha = self.bf.column_of(ctx.id);
        for env in inbox {
            match &env.payload {
                MaMsg::Spread(m) => crate::multicast::spread_arrive(
                    &self.hashes,
                    &mut st.spread,
                    m.level as u32,
                    m.group,
                    m.value.clone(),
                ),
                MaMsg::Agg(m) => combine_insert(
                    &self.bf,
                    &self.hashes,
                    self.agg,
                    &mut st.comb,
                    alpha,
                    m.level as u32,
                    m.group,
                    m.value.clone(),
                ),
            }
        }
        // one shared send budget across the fused pipeline's three phases
        let mut budget = self.send_budget;
        crate::multicast::spread_step(
            &self.bf,
            &self.hashes,
            &mut st.spread,
            alpha,
            &mut budget,
            &mut |dst, msg| ctx.send(dst, MaMsg::Spread(msg)),
        );
        // re-key fresh leaf arrivals and queue them for scattering
        for (group, member, value) in st.spread.at_leaves.drain(..) {
            let mapped = (self.leaf_map)(ctx.rng, GroupId(group), member, &value);
            st.to_send
                .push((GroupId::new(member, MA_SUB).raw(), mapped));
        }
        self.scatter(st, &mut budget, ctx);
        combine_step(
            &self.bf,
            &self.hashes,
            self.agg,
            &mut st.comb,
            alpha,
            &mut budget,
            &mut |dst, msg| ctx.send(dst, MaMsg::Agg(msg)),
        );
        if st.spread.busy() || !st.to_send.is_empty() || st.comb.busy() {
            ctx.stay_awake();
        }
    }
}

/// Multi-Aggregation as a composable lane: stage 1 is the fused
/// spread→re-key→scatter→combine pipeline, stage 2 the delivery. Build
/// with [`multi_aggregate_sub`], run under
/// [`crate::compose::run_composed`], read with
/// [`MultiAggSub::into_results`].
pub struct MultiAggSub<'a, V, W, A, F>
where
    V: Payload,
    W: Payload,
    A: Aggregate<W>,
    F: Fn(&mut rand::rngs::SmallRng, GroupId, ncc_model::NodeId, &V) -> W + Sync,
{
    stage: usize,
    lane_seed: u64,
    pipe: crate::compose::Stage<MaPipelineProgram<'a, V, W, A, F>, MaPipelineState<V, W>>,
    del: crate::compose::Stage<DeliverProgram<W>, DeliverState<W>>,
    out: Option<Vec<Option<W>>>,
}

/// Builds the multi-aggregation sub-protocol. Arguments mirror
/// [`multi_aggregate`]; `lane_seed` keys the lane's private randomness
/// (leaf-map draws, scatter columns).
pub fn multi_aggregate_sub<'a, V, W, A, F>(
    n: usize,
    shared: &SharedRandomness,
    trees: &crate::mctree::MulticastTrees,
    messages: Vec<Option<(GroupId, V)>>,
    leaf_map: F,
    agg: &'a A,
    lane_seed: u64,
) -> MultiAggSub<'a, V, W, A, F>
where
    V: Payload,
    W: Payload,
    A: Aggregate<W>,
    F: Fn(&mut rand::rngs::SmallRng, GroupId, ncc_model::NodeId, &V) -> W + Sync,
{
    assert_eq!(messages.len(), n);
    let bf = Butterfly::for_n(n);
    let hashes = RouteHashes::new(shared, &bf, n);
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let states: Vec<MaPipelineState<V, W>> =
        crate::multicast::spread_states(trees, messages, bf.d())
            .into_iter()
            .map(|spread| MaPipelineState {
                spread,
                to_send: Vec::new(),
                comb: CombineState::new(bf.d()),
            })
            .collect();
    MultiAggSub {
        stage: 0,
        lane_seed,
        pipe: Some((
            MaPipelineProgram {
                bf,
                hashes,
                agg,
                leaf_map,
                batch: logn,
                columns: bf.columns() as u32,
                send_budget: usize::MAX,
                _pd: std::marker::PhantomData,
            },
            states,
        )),
        del: None,
        out: None,
    }
}

impl<V, W, A, F> MultiAggSub<'_, V, W, A, F>
where
    V: Payload,
    W: Payload,
    A: Aggregate<W>,
    F: Fn(&mut rand::rngs::SmallRng, GroupId, ncc_model::NodeId, &V) -> W + Sync,
{
    /// Per node `u`: the aggregate over packets multicast to `u`, or `None`
    /// if no group reached it. Panics before the composition finished.
    pub fn into_results(self) -> Vec<Option<W>> {
        self.out
            .expect("multi-aggregation sub-protocol not finished")
    }
}

impl<'a, V, W, A, F> crate::compose::LaneSub<'a> for MultiAggSub<'a, V, W, A, F>
where
    V: Payload,
    W: Payload,
    A: Aggregate<W>,
    F: Fn(&mut rand::rngs::SmallRng, GroupId, ncc_model::NodeId, &V) -> W + Sync + 'a,
{
    fn pace(&mut self, send_budget: usize) {
        if let Some((prog, _)) = self.pipe.as_mut() {
            prog.send_budget = send_budget;
        }
    }

    fn install(&mut self, b: &mut ncc_model::MuxBuilder<'a>) -> Option<ncc_model::LaneId> {
        match self.stage {
            0 => {
                let (prog, states) = self.pipe.take()?;
                Some(b.lane_seeded(
                    prog,
                    states,
                    ncc_model::rng::derive_seed(&[self.lane_seed, 0]),
                ))
            }
            1 => {
                let (prog, states) = self.del.take()?;
                Some(b.lane_seeded(
                    prog,
                    states,
                    ncc_model::rng::derive_seed(&[self.lane_seed, 1]),
                ))
            }
            _ => None,
        }
    }

    fn collect(&mut self, lane: ncc_model::LaneId, states: &mut [ncc_model::MuxState]) {
        match self.stage {
            0 => {
                let pipe: Vec<MaPipelineState<V, W>> = ncc_model::take_lane_states(states, lane);
                let del_states: Vec<DeliverState<W>> = pipe
                    .into_iter()
                    .map(|s| DeliverState {
                        scheduled: s.comb.arrived.into_iter().map(|(g, v)| (0, g, v)).collect(),
                        received: Vec::new(),
                    })
                    .collect();
                self.del = Some((
                    DeliverProgram {
                        spread: 1, // each node is target of ≤ 1 re-keyed group
                        _pd: std::marker::PhantomData,
                    },
                    del_states,
                ));
            }
            _ => {
                let del: Vec<DeliverState<W>> = ncc_model::take_lane_states(states, lane);
                self.out = Some(
                    del.into_iter()
                        .map(|s| s.received.into_iter().next().map(|(_, v)| v))
                        .collect(),
                );
            }
        }
        self.stage += 1;
    }

    fn is_done(&self) -> bool {
        self.out.is_some()
    }
}

// ---------------------------------------------------------------------------
// Aggregate-and-Broadcast (Theorem 2.2, Appendix B.1)
// ---------------------------------------------------------------------------
//
// Given a distributive aggregate `f` and a set `A ⊆ V` of nodes holding one
// input each, every node learns `f(inputs of A)` in `O(log n)` rounds:
//
// 1. non-emulating nodes inject their inputs into their proxy level-0
//    butterfly nodes;
// 2. *aggregation sweep* (rounds `1..=d`): at round `r`, bit `r−1` of the
//    column index is fixed to 0 — every live column with that bit set
//    forwards its partial aggregate across the corresponding cross edge,
//    so after round `d` the root column 0 holds the full aggregate at
//    level `d`;
// 3. *broadcast sweep* (rounds `d+1..=2d`): the reverse binomial tree
//    pushes the result back to every column;
// 4. a final round informs the attached non-emulating nodes.
//
// Every node sends and receives `O(1)` messages per round here. The same
// execution doubles as the paper's synchronisation barrier
// ([`sync_barrier`]) — the token-passing variant of App. B.1 condensed to
// its round cost.

/// Wire format of Aggregate-and-Broadcast. Discriminant + payload; levels
/// are implied by the round.
#[derive(Debug, Clone)]
pub enum AbMsg<V> {
    /// Non-emulating node → proxy column (round 0).
    Inject(V),
    /// Aggregation sweep, cross edge toward the root.
    Down(V),
    /// Broadcast sweep, cross edge away from the root.
    Up(V),
    /// Level-0 column → attached non-emulating node.
    Result(V),
}

impl<V: Payload> Payload for AbMsg<V> {
    fn bit_size(&self) -> u32 {
        let inner = match self {
            AbMsg::Inject(v) | AbMsg::Down(v) | AbMsg::Up(v) | AbMsg::Result(v) => v.bit_size(),
        };
        2 + inner
    }
}

/// Per-node Aggregate-and-Broadcast state.
#[derive(Debug, Clone)]
pub struct AbState<V> {
    input: Option<V>,
    acc: Option<V>,
    /// The broadcast result once known; the driver reads this field.
    pub result: Option<V>,
}

struct AbProgram<'a, V, A> {
    bf: Butterfly,
    agg: &'a A,
    _pd: std::marker::PhantomData<V>,
}

impl<V: Payload, A: Aggregate<V>> AbProgram<'_, V, A> {
    fn absorb(&self, st: &mut AbState<V>, inbox: &[Envelope<AbMsg<V>>]) {
        for env in inbox {
            let v = match &env.payload {
                AbMsg::Inject(v) | AbMsg::Down(v) => v,
                AbMsg::Up(v) | AbMsg::Result(v) => {
                    st.result = Some(v.clone());
                    continue;
                }
            };
            st.acc = Some(match st.acc.take() {
                None => v.clone(),
                Some(a) => self.agg.combine(&a, v),
            });
        }
    }
}

impl<V: Payload, A: Aggregate<V>> NodeProgram for AbProgram<'_, V, A> {
    type State = AbState<V>;
    type Payload = AbMsg<V>;

    fn init(&self, st: &mut AbState<V>, ctx: &mut Ctx<'_, AbMsg<V>>) {
        if self.bf.emulates(ctx.id) {
            st.acc = st.input.clone();
            ctx.stay_awake();
        } else if let Some(v) = st.input.clone() {
            let proxy = self.bf.emulator(self.bf.proxy_column(ctx.id));
            ctx.send(proxy, AbMsg::Inject(v));
        }
    }

    fn round(
        &self,
        st: &mut AbState<V>,
        inbox: &[Envelope<AbMsg<V>>],
        ctx: &mut Ctx<'_, AbMsg<V>>,
    ) {
        let d = self.bf.d();
        let r = ctx.round;
        if !self.bf.emulates(ctx.id) {
            // non-emulating nodes only ever receive the final Result
            self.absorb(st, inbox);
            return;
        }
        let alpha = self.bf.column_of(ctx.id);
        self.absorb(st, inbox);

        if r <= d as u64 {
            // aggregation sweep: fix bit r−1
            let bit = 1u32 << (r - 1);
            let low_mask = bit - 1;
            if alpha & low_mask == 0 && alpha & bit != 0 {
                if let Some(v) = st.acc.take() {
                    ctx.send(self.bf.emulator(alpha & !bit), AbMsg::Down(v));
                }
            }
            ctx.stay_awake();
        } else if r <= 2 * d as u64 {
            // broadcast sweep: step j = r − d sends across bit d − j
            let j = (r - d as u64) as u32;
            if j == 1 && alpha == 0 {
                st.result = st.acc.clone();
            }
            let bit = 1u32 << (d - j);
            let low_mask = (bit << 1) - 1;
            if alpha & low_mask == 0 {
                if let Some(v) = st.result.clone() {
                    ctx.send(self.bf.emulator(alpha | bit), AbMsg::Up(v));
                }
            }
            ctx.stay_awake();
        } else if r == 2 * d as u64 + 1 {
            // inform the attached non-emulating node, if any
            if let Some(v) = st.result.clone() {
                if let Some(node) = self.bf.attached_node(alpha) {
                    ctx.send(node, AbMsg::Result(v));
                }
            }
        }
    }
}

/// Runs Aggregate-and-Broadcast: each node optionally holds one input;
/// afterwards every node knows the aggregate (or `None` if no node held an
/// input). Takes `O(log n)` rounds (Theorem 2.2).
pub fn aggregate_and_broadcast<V: Payload, A: Aggregate<V>>(
    engine: &mut Engine,
    inputs: Vec<Option<V>>,
    agg: &A,
) -> Result<(Vec<Option<V>>, ExecStats), ModelError> {
    let n = engine.n();
    assert_eq!(inputs.len(), n);
    if n == 1 {
        // degenerate network: the aggregate is the node's own input
        return Ok((inputs, ExecStats::default()));
    }
    let bf = Butterfly::for_n(n);
    let prog = AbProgram {
        bf,
        agg,
        _pd: std::marker::PhantomData,
    };
    let states: Vec<AbState<V>> = inputs
        .into_iter()
        .map(|input| AbState {
            input,
            acc: None,
            result: None,
        })
        .collect();
    let (states, stats) = run_single(engine, prog, states)?;
    // degenerate d = 0 (n = 2..3 has d = 1, so this only matters if the
    // butterfly had a single column; d ≥ 1 always holds for n ≥ 2)
    let results = states.into_iter().map(|s| s.result).collect();
    Ok((results, stats))
}

/// Aggregate-and-Broadcast as a composable lane: a single stage that rides
/// alongside heavier lanes (the paper's ubiquitous "agree on a global
/// value" step, at zero extra stage cost when composed). Build with
/// [`ab_sub`], run under [`crate::compose::run_composed`] or as a DAG
/// node, read with [`AbSub::into_results`].
pub struct AbSub<'a, V: Payload, A: Aggregate<V>> {
    stage: crate::compose::Stage<AbProgram<'a, V, A>, AbState<V>>,
    out: Option<Vec<Option<V>>>,
}

/// Builds the Aggregate-and-Broadcast sub-protocol. Arguments mirror
/// [`aggregate_and_broadcast`] (which stays the blocking adapter).
pub fn ab_sub<'a, V: Payload, A: Aggregate<V>>(
    n: usize,
    inputs: Vec<Option<V>>,
    agg: &'a A,
) -> AbSub<'a, V, A> {
    assert_eq!(inputs.len(), n);
    assert!(n >= 2, "composable A&B needs n ≥ 2");
    let bf = Butterfly::for_n(n);
    let states: Vec<AbState<V>> = inputs
        .into_iter()
        .map(|input| AbState {
            input,
            acc: None,
            result: None,
        })
        .collect();
    AbSub {
        stage: Some((
            AbProgram {
                bf,
                agg,
                _pd: std::marker::PhantomData,
            },
            states,
        )),
        out: None,
    }
}

impl<V: Payload, A: Aggregate<V>> AbSub<'_, V, A> {
    /// Per node: the broadcast aggregate (`None` iff no node held an
    /// input). Panics before the composition finished.
    pub fn into_results(self) -> Vec<Option<V>> {
        self.out.expect("A&B sub-protocol not finished")
    }
}

impl<'a, V: Payload, A: Aggregate<V>> crate::compose::LaneSub<'a> for AbSub<'a, V, A> {
    fn install(&mut self, b: &mut ncc_model::MuxBuilder<'a>) -> Option<ncc_model::LaneId> {
        let (prog, states) = self.stage.take()?;
        Some(b.lane(prog, states))
    }

    fn collect(&mut self, lane: ncc_model::LaneId, states: &mut [ncc_model::MuxState]) {
        let st: Vec<AbState<V>> = ncc_model::take_lane_states(states, lane);
        self.out = Some(st.into_iter().map(|s| s.result).collect());
    }

    fn is_done(&self) -> bool {
        self.out.is_some()
    }

    fn self_synchronizing(&self) -> bool {
        // A&B ends with everyone knowing the result — it IS the barrier
        // primitive (App. B.1), so a stage made only of A&B lanes needs no
        // trailing `sync_barrier` (matching the blocking adapter's cost).
        true
    }
}

/// The synchronisation barrier used between phases of larger primitives:
/// an Aggregate-and-Broadcast of a constant. Costs the `O(log n)` rounds
/// the paper charges for its token-based synchronisation (App. B.1).
pub fn sync_barrier(engine: &mut Engine) -> Result<ExecStats, ModelError> {
    let n = engine.n();
    let inputs: Vec<Option<u64>> = vec![Some(1); n];
    let (results, stats) = aggregate_and_broadcast(engine, inputs, &crate::combine::MinU64)?;
    debug_assert!(results.iter().all(|r| *r == Some(1)));
    Ok(stats)
}

#[cfg(test)]
mod ab_tests {
    use super::*;
    use crate::combine::{MaxU64, MinU64, SumU64};
    use ncc_model::NetConfig;

    fn engine(n: usize) -> Engine {
        Engine::new(NetConfig::new(n, 42))
    }

    #[test]
    fn sum_over_all_nodes() {
        for n in [2usize, 3, 4, 7, 8, 16, 33, 100, 128] {
            let mut eng = engine(n);
            let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
            let (res, stats) = aggregate_and_broadcast(&mut eng, inputs, &SumU64).unwrap();
            let expect = (n as u64 * (n as u64 - 1)) / 2;
            for (v, r) in res.iter().enumerate() {
                assert_eq!(*r, Some(expect), "node {v} at n={n}");
            }
            assert!(stats.clean(), "drops at n={n}");
        }
    }

    #[test]
    fn partial_input_set() {
        let n = 20;
        let mut eng = engine(n);
        // only nodes 3, 17 (non-emulating for d=4), 9 hold inputs
        let mut inputs: Vec<Option<u64>> = vec![None; n];
        inputs[3] = Some(30);
        inputs[17] = Some(5);
        inputs[9] = Some(12);
        let (res, _) = aggregate_and_broadcast(&mut eng, inputs, &MaxU64).unwrap();
        assert!(res.iter().all(|r| *r == Some(30)));
    }

    #[test]
    fn empty_input_set_gives_none() {
        let n = 16;
        let mut eng = engine(n);
        let inputs: Vec<Option<u64>> = vec![None; n];
        let (res, _) = aggregate_and_broadcast(&mut eng, inputs, &MinU64).unwrap();
        assert!(res.iter().all(|r| r.is_none()));
    }

    #[test]
    fn rounds_logarithmic() {
        // Theorem 2.2: O(log n) rounds. Measure the constant: 2d + O(1).
        for k in [3u32, 5, 8, 10] {
            let n = 1usize << k;
            let mut eng = engine(n);
            let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
            let (_, stats) = aggregate_and_broadcast(&mut eng, inputs, &SumU64).unwrap();
            assert!(
                stats.rounds <= 2 * k as u64 + 3,
                "n=2^{k}: {} rounds > 2d+3",
                stats.rounds
            );
        }
    }

    #[test]
    fn per_round_load_constant() {
        let n = 256;
        let mut eng = engine(n);
        let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
        let (_, stats) = aggregate_and_broadcast(&mut eng, inputs, &SumU64).unwrap();
        assert!(stats.max_in <= 2, "max in-degree {}", stats.max_in);
        assert!(stats.max_out <= 2, "max out-degree {}", stats.max_out);
    }

    #[test]
    fn non_power_of_two_includes_attached_nodes() {
        let n = 21; // d = 4, columns 0..16, attached 16..21
        let mut eng = engine(n);
        let inputs: Vec<Option<u64>> = (0..n as u64).map(|v| Some(v + 100)).collect();
        let (res, _) = aggregate_and_broadcast(&mut eng, inputs, &MaxU64).unwrap();
        // max input is node 20's (120); node 20 is non-emulating
        assert!(res.iter().all(|r| *r == Some(120)));
    }

    #[test]
    fn sync_barrier_costs_log_rounds() {
        let n = 64;
        let mut eng = engine(n);
        let stats = sync_barrier(&mut eng).unwrap();
        assert!(
            stats.rounds >= 6 && stats.rounds <= 16,
            "rounds {}",
            stats.rounds
        );
    }

    #[test]
    fn single_node_trivial() {
        let mut eng = engine(1);
        let (res, stats) = aggregate_and_broadcast(&mut eng, vec![Some(9u64)], &SumU64).unwrap();
        assert_eq!(res, vec![Some(9)]);
        assert_eq!(stats.rounds, 0);
    }
}
