//! The Aggregation Algorithm (Theorem 2.3, Appendix B.2).
//!
//! Aggregates the inputs of arbitrary *aggregation groups* to their targets
//! in `O(L/n + (ℓ₁ + ℓ̂₂)/log n + log n)` rounds w.h.p., where `L` is the
//! global load (total memberships), `ℓ₁` the maximum memberships per node
//! and `ℓ̂₂` a known bound on targets per node.
//!
//! Three phases, separated by [`sync_barrier`] (App. B.1 synchronisation):
//!
//! 1. **Preprocessing** — every node sends its packets `(group, value)` in
//!    batches of `⌈log n⌉` per round to uniformly random level-0 columns.
//! 2. **Combining** — the random-rank routing protocol of Aleliunas/Upfal
//!    \[1, 57\] moves packets level by level toward `h(group)` on the bottom
//!    level (bit-fixing paths). Packets of the same group that collide on a
//!    butterfly node **combine** via the distributive aggregate; when
//!    packets of different groups contend for one butterfly edge, the
//!    smallest rank `ρ(group)` wins and the rest wait (Theorem B.2 bounds
//!    the total delay). One packet crosses each butterfly edge per round.
//! 3. **Postprocessing** — each level-`d` node delivers every finished
//!    group aggregate to its target in a round chosen uniformly from
//!    `{1..⌈ℓ̂₂/log n⌉}`, smoothing the receive load.
//!
//! Group targets are encoded in the group identifier ([`GroupId`]), mirroring
//! the paper's content-addressed group names (`A_{id(w)∘i}`).

use std::collections::BTreeMap;

use ncc_hashing::shared::labels;
use ncc_hashing::{PolyHash, SharedRandomness};
use ncc_model::{Ctx, Engine, Envelope, ExecStats, ModelError, NodeProgram, Payload};
use rand::Rng;

use crate::agg_bcast::sync_barrier;
use crate::aggregate::Aggregate;
use crate::topology::{Butterfly, GroupId};

/// Per-node delivery lists: for each node, the `(group, value)` pairs it
/// received as a target/member.
pub type GroupedDeliveries<V> = Vec<Vec<(GroupId, V)>>;

/// Inputs to one aggregation run.
#[derive(Debug, Clone)]
pub struct AggregationSpec<V> {
    /// Per node: `(group, input)` for every group the node is a member of.
    pub memberships: Vec<Vec<(GroupId, V)>>,
    /// Known upper bound `ℓ̂₂` on the number of groups any node is target of.
    pub ell2_hat: usize,
}

/// Hash plumbing shared by the routing programs (derived from the agreed
/// shared randomness, so every node computes identical values locally).
#[derive(Debug, Clone)]
pub(crate) struct RouteHashes {
    target_fn: PolyHash,
    rank_fn: PolyHash,
    pub(crate) columns: u64,
    /// Random-rank contention (the paper's protocol). `false` degrades to a
    /// static priority (rank ≡ 0, ties by group id) — the E17 ablation.
    pub(crate) random_ranks: bool,
}

impl RouteHashes {
    pub(crate) fn new(shared: &SharedRandomness, bf: &Butterfly, n: usize) -> Self {
        let k = SharedRandomness::k_for(n);
        RouteHashes {
            target_fn: shared.poly(labels::AGG_TARGET, 0, k),
            rank_fn: shared.poly(labels::AGG_RANK, 0, k),
            columns: bf.columns() as u64,
            random_ranks: true,
        }
    }

    pub(crate) fn with_fifo(mut self) -> Self {
        self.random_ranks = false;
        self
    }

    /// Intermediate target `h(group)`: a uniform level-`d` column.
    #[inline]
    pub(crate) fn target_column(&self, g: u64) -> u32 {
        self.target_fn.to_range(g, self.columns) as u32
    }

    /// Routing rank `ρ(group)` (ties broken by group id, as in App. B.2).
    #[inline]
    pub(crate) fn rank(&self, g: u64) -> u64 {
        if self.random_ranks {
            self.rank_fn.to_range(g, 1 << 32)
        } else {
            0
        }
    }
}

// ---------------------------------------------------------------------------
// Phase 1: preprocessing (random injection in batches of ⌈log n⌉)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct PacketMsg<V> {
    pub group: u64,
    pub value: V,
}

impl<V: Payload> Payload for PacketMsg<V> {
    fn bit_size(&self) -> u32 {
        2 + ncc_model::payload::min_bits(self.group) + self.value.bit_size()
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct InjectState<V> {
    /// Outgoing packets (members' inputs), consumed in batches.
    pub to_send: Vec<(u64, V)>,
    /// Packets that landed on this column's level-0 butterfly node.
    pub landed: Vec<(u64, V)>,
}

pub(crate) struct InjectProgram<V> {
    pub batch: usize,
    pub columns: u32,
    pub _pd: std::marker::PhantomData<V>,
}

impl<V: Payload> InjectProgram<V> {
    fn send_batch(&self, st: &mut InjectState<V>, ctx: &mut Ctx<'_, PacketMsg<V>>) {
        let take = st.to_send.len().min(self.batch);
        for (group, value) in st.to_send.drain(..take) {
            let col = ctx.rng.gen_range(0..self.columns);
            ctx.send(col, PacketMsg { group, value });
        }
        if !st.to_send.is_empty() {
            ctx.stay_awake();
        }
    }
}

impl<V: Payload> NodeProgram for InjectProgram<V> {
    type State = InjectState<V>;
    type Payload = PacketMsg<V>;

    fn init(&self, st: &mut InjectState<V>, ctx: &mut Ctx<'_, PacketMsg<V>>) {
        self.send_batch(st, ctx);
    }

    fn round(
        &self,
        st: &mut InjectState<V>,
        inbox: &[Envelope<PacketMsg<V>>],
        ctx: &mut Ctx<'_, PacketMsg<V>>,
    ) {
        for env in inbox {
            st.landed
                .push((env.payload.group, env.payload.value.clone()));
        }
        self.send_batch(st, ctx);
    }
}

// ---------------------------------------------------------------------------
// Phase 2: combining (random-rank routing with in-network combining)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct LevelMsg<V> {
    /// Level of the butterfly node this packet is arriving at.
    pub level: u8,
    pub group: u64,
    pub value: V,
}

impl<V: Payload> Payload for LevelMsg<V> {
    fn bit_size(&self) -> u32 {
        6 + ncc_model::payload::min_bits(self.group) + self.value.bit_size()
    }
}

pub(crate) struct CombineState<V> {
    /// `queues[i][dir]`: packets waiting at `(i, α)` to traverse the edge to
    /// level `i+1` — `dir` 0 = straight, 1 = cross. Keyed by `(rank, group)`
    /// so `pop_first` is the contention rule and same-group inserts combine.
    pub queues: Vec<[BTreeMap<(u64, u64), V>; 2]>,
    /// Finished aggregates at level `d` (this column is `h(group)`).
    pub arrived: BTreeMap<u64, V>,
}

impl<V> CombineState<V> {
    pub fn new(d: u32) -> Self {
        CombineState {
            queues: (0..d).map(|_| [BTreeMap::new(), BTreeMap::new()]).collect(),
            arrived: BTreeMap::new(),
        }
    }

    fn busy(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q[0].is_empty() || !q[1].is_empty())
    }
}

pub(crate) struct CombineProgram<'a, V, A> {
    pub bf: Butterfly,
    pub hashes: RouteHashes,
    pub agg: &'a A,
    pub _pd: std::marker::PhantomData<V>,
}

impl<V: Payload, A: Aggregate<V>> CombineProgram<'_, V, A> {
    /// Inserts a packet at `(level, α)`, combining with a same-group packet
    /// already queued there.
    pub(crate) fn insert(
        &self,
        st: &mut CombineState<V>,
        alpha: u32,
        level: u32,
        group: u64,
        value: V,
    ) {
        let d = self.bf.d();
        if level == d {
            match st.arrived.entry(group) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(value);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let merged = self.agg.combine(e.get(), &value);
                    e.insert(merged);
                }
            }
            return;
        }
        let target = self.hashes.target_column(group);
        let dir = self.bf.route_is_cross(alpha, level, target) as usize;
        let key = (self.hashes.rank(group), group);
        match st.queues[level as usize][dir].entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = self.agg.combine(e.get(), &value);
                e.insert(merged);
            }
        }
    }

    /// One routing step: every queue forwards its minimum-rank packet.
    /// Levels are processed top-down so a locally forwarded packet cannot
    /// advance twice in one round.
    fn step(&self, st: &mut CombineState<V>, alpha: u32, ctx: &mut Ctx<'_, LevelMsg<V>>) {
        let d = self.bf.d();
        for level in (0..d).rev() {
            for dir in 0..2usize {
                let popped = st.queues[level as usize][dir].pop_first();
                if let Some(((_rank, group), value)) = popped {
                    let next_col = if dir == 0 {
                        alpha
                    } else {
                        alpha ^ (1 << level)
                    };
                    if next_col == alpha {
                        // straight edge: stays on this node
                        self.insert(st, alpha, level + 1, group, value);
                    } else {
                        ctx.send(
                            self.bf.emulator(next_col),
                            LevelMsg {
                                level: (level + 1) as u8,
                                group,
                                value,
                            },
                        );
                    }
                }
            }
        }
        if st.busy() {
            ctx.stay_awake();
        }
    }
}

impl<V: Payload, A: Aggregate<V>> NodeProgram for CombineProgram<'_, V, A> {
    type State = CombineState<V>;
    type Payload = LevelMsg<V>;

    fn init(&self, st: &mut CombineState<V>, ctx: &mut Ctx<'_, LevelMsg<V>>) {
        if self.bf.emulates(ctx.id) && st.busy() {
            ctx.stay_awake();
        }
    }

    fn round(
        &self,
        st: &mut CombineState<V>,
        inbox: &[Envelope<LevelMsg<V>>],
        ctx: &mut Ctx<'_, LevelMsg<V>>,
    ) {
        let alpha = self.bf.column_of(ctx.id);
        for env in inbox {
            self.insert(
                st,
                alpha,
                env.payload.level as u32,
                env.payload.group,
                env.payload.value.clone(),
            );
        }
        self.step(st, alpha, ctx);
    }
}

// ---------------------------------------------------------------------------
// Phase 3: postprocessing (randomized delivery rounds)
// ---------------------------------------------------------------------------

pub(crate) struct DeliverState<V> {
    /// `(round, group, value)` deliveries this column owes, sorted by round.
    pub scheduled: Vec<(u64, u64, V)>,
    /// Aggregates received by this node as a *target*.
    pub received: Vec<(GroupId, V)>,
}

pub(crate) struct DeliverProgram<V> {
    pub spread: u64,
    pub _pd: std::marker::PhantomData<V>,
}

impl<V: Payload> DeliverProgram<V> {
    fn flush(&self, st: &mut DeliverState<V>, ctx: &mut Ctx<'_, PacketMsg<V>>) {
        // scheduled is sorted by round; send everything due now
        let now = ctx.round + 1; // rounds are drawn from 1..=spread
        let due = st.scheduled.partition_point(|(r, _, _)| *r <= now);
        for (_, group, value) in st.scheduled.drain(..due) {
            ctx.send(GroupId(group).target(), PacketMsg { group, value });
        }
        if !st.scheduled.is_empty() {
            ctx.stay_awake();
        }
    }
}

impl<V: Payload> NodeProgram for DeliverProgram<V> {
    type State = DeliverState<V>;
    type Payload = PacketMsg<V>;

    fn init(&self, st: &mut DeliverState<V>, ctx: &mut Ctx<'_, PacketMsg<V>>) {
        // draw delivery rounds and sort
        let mut scheduled = std::mem::take(&mut st.scheduled);
        for slot in scheduled.iter_mut() {
            slot.0 = ctx.rng.gen_range(1..=self.spread);
        }
        scheduled.sort_by_key(|(r, g, _)| (*r, *g));
        st.scheduled = scheduled;
        self.flush(st, ctx);
    }

    fn round(
        &self,
        st: &mut DeliverState<V>,
        inbox: &[Envelope<PacketMsg<V>>],
        ctx: &mut Ctx<'_, PacketMsg<V>>,
    ) {
        for env in inbox {
            st.received
                .push((GroupId(env.payload.group), env.payload.value.clone()));
        }
        self.flush(st, ctx);
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs the full Aggregation Algorithm. Every group's inputs are combined
/// with `agg` and delivered to the group's target; the per-node output lists
/// the `(group, aggregate)` pairs that node received as a target.
///
/// Round complexity (Theorem 2.3): `O(L/n + (ℓ₁ + ℓ̂₂)/log n + log n)` w.h.p.
pub fn aggregate<V: Payload, A: Aggregate<V>>(
    engine: &mut Engine,
    shared: &SharedRandomness,
    spec: AggregationSpec<V>,
    agg: &A,
) -> Result<(GroupedDeliveries<V>, ExecStats), ModelError> {
    aggregate_opt(engine, shared, spec, agg, true)
}

/// [`aggregate`] with the contention rule exposed: `random_ranks = false`
/// replaces the random-rank routing with a static priority (ablation E17 —
/// Theorem B.2's guarantee only holds for random ranks).
pub fn aggregate_opt<V: Payload, A: Aggregate<V>>(
    engine: &mut Engine,
    shared: &SharedRandomness,
    spec: AggregationSpec<V>,
    agg: &A,
    random_ranks: bool,
) -> Result<(GroupedDeliveries<V>, ExecStats), ModelError> {
    let n = engine.n();
    assert_eq!(spec.memberships.len(), n);
    let mut total = ExecStats::default();

    if n == 1 {
        // trivial network: combine locally
        let mut by_group: BTreeMap<u64, V> = BTreeMap::new();
        for (g, v) in spec.memberships.into_iter().flatten() {
            match by_group.entry(g.raw()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let m = agg.combine(e.get(), &v);
                    e.insert(m);
                }
            }
        }
        let out = vec![by_group.into_iter().map(|(g, v)| (GroupId(g), v)).collect()];
        return Ok((out, total));
    }

    let bf = Butterfly::for_n(n);
    let hashes = if random_ranks {
        RouteHashes::new(shared, &bf, n)
    } else {
        RouteHashes::new(shared, &bf, n).with_fifo()
    };
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;

    // --- phase 1: inject ---------------------------------------------------
    let inject = InjectProgram {
        batch: logn,
        columns: bf.columns() as u32,
        _pd: std::marker::PhantomData,
    };
    let mut inj_states: Vec<InjectState<V>> = spec
        .memberships
        .into_iter()
        .map(|ms| InjectState {
            to_send: ms.into_iter().map(|(g, v)| (g.raw(), v)).collect(),
            landed: Vec::new(),
        })
        .collect();
    total.merge(&engine.execute(&inject, &mut inj_states)?);
    total.merge(&sync_barrier(engine)?);

    // --- phase 2: combine --------------------------------------------------
    let combine = CombineProgram {
        bf,
        hashes: hashes.clone(),
        agg,
        _pd: std::marker::PhantomData,
    };
    let mut comb_states: Vec<CombineState<V>> = (0..n).map(|_| CombineState::new(bf.d())).collect();
    for (col, inj) in inj_states.into_iter().enumerate() {
        for (group, value) in inj.landed {
            combine.insert(&mut comb_states[col], col as u32, 0, group, value);
        }
    }
    total.merge(&engine.execute(&combine, &mut comb_states)?);
    total.merge(&sync_barrier(engine)?);

    // --- phase 3: deliver --------------------------------------------------
    let spread = (spec.ell2_hat.div_ceil(logn)).max(1) as u64;
    let deliver = DeliverProgram {
        spread,
        _pd: std::marker::PhantomData,
    };
    let mut del_states: Vec<DeliverState<V>> = comb_states
        .into_iter()
        .map(|cs| DeliverState {
            scheduled: cs.arrived.into_iter().map(|(g, v)| (0, g, v)).collect(),
            received: Vec::new(),
        })
        .collect();
    total.merge(&engine.execute(&deliver, &mut del_states)?);
    total.merge(&sync_barrier(engine)?);

    let out = del_states.into_iter().map(|s| s.received).collect();
    Ok((out, total))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index several parallel per-node arrays
mod tests {
    use super::*;
    use crate::aggregate::{MinU64, SumU64, XorU64};
    use ncc_model::NetConfig;

    fn run_sum(
        n: usize,
        memberships: Vec<Vec<(GroupId, u64)>>,
        ell2: usize,
    ) -> (Vec<Vec<(GroupId, u64)>>, ExecStats) {
        let mut eng = Engine::new(NetConfig::new(n, 7));
        let shared = SharedRandomness::new(99);
        aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: ell2,
            },
            &SumU64,
        )
        .unwrap()
    }

    #[test]
    fn single_group_sums_all_inputs() {
        let n = 32;
        let g = GroupId::new(5, 0);
        let memberships: Vec<Vec<(GroupId, u64)>> = (0..n).map(|v| vec![(g, v as u64)]).collect();
        let (out, stats) = run_sum(n, memberships, 1);
        for (v, res) in out.iter().enumerate() {
            if v == 5 {
                assert_eq!(res.as_slice(), &[(g, (0..32u64).sum())]);
            } else {
                assert!(res.is_empty(), "node {v} got {res:?}");
            }
        }
        assert!(stats.clean());
    }

    #[test]
    fn many_groups_to_distinct_targets() {
        // group t collects from members {t, t+1, t+2 mod n}, for every t
        let n = 64;
        let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
        for t in 0..n as u32 {
            for off in 0..3u32 {
                let member = ((t + off) % n as u32) as usize;
                memberships[member].push((GroupId::new(t, 1), 10 + off as u64));
            }
        }
        let (out, stats) = run_sum(n, memberships, 1);
        for t in 0..n {
            assert_eq!(out[t].len(), 1, "node {t}: {:?}", out[t]);
            let (g, v) = out[t][0];
            assert_eq!(g, GroupId::new(t as u32, 1));
            assert_eq!(v, 33);
        }
        assert!(stats.clean());
    }

    #[test]
    fn min_aggregate_and_multiple_groups_per_target() {
        let n = 40;
        let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
        // two groups target node 3, members everywhere
        for v in 0..n {
            memberships[v].push((GroupId::new(3, 0), (v as u64) + 100));
            memberships[v].push((GroupId::new(3, 1), 1000 - v as u64));
        }
        let mut eng = Engine::new(NetConfig::new(n, 7));
        let shared = SharedRandomness::new(99);
        let (out, _) = aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: 2,
            },
            &MinU64,
        )
        .unwrap();
        let mut got = out[3].clone();
        got.sort_by_key(|(g, _)| *g);
        assert_eq!(
            got,
            vec![(GroupId::new(3, 0), 100), (GroupId::new(3, 1), 1000 - 39)]
        );
    }

    #[test]
    fn xor_cancellation_across_members() {
        let n = 16;
        let g = GroupId::new(0, 7);
        let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
        memberships[2].push((g, 0xAA));
        memberships[9].push((g, 0xAA));
        memberships[12].push((g, 0x55));
        let mut eng = Engine::new(NetConfig::new(n, 1));
        let shared = SharedRandomness::new(5);
        let (out, _) = aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: 1,
            },
            &XorU64,
        )
        .unwrap();
        assert_eq!(out[0], vec![(g, 0x55)]);
    }

    #[test]
    fn empty_spec_is_cheap() {
        let n = 16;
        let (out, stats) = run_sum(n, vec![Vec::new(); n], 1);
        assert!(out.iter().all(Vec::is_empty));
        // three sync barriers still run: O(log n) each
        assert!(stats.rounds < 40, "rounds {}", stats.rounds);
    }

    #[test]
    fn rounds_follow_theorem_bound() {
        // Theorem 2.3: O(L/n + (ℓ₁+ℓ̂₂)/log n + log n). With L = n·ℓ₁ and
        // small ℓ₁, rounds should stay O(log n)-ish, far below L.
        let n = 128;
        let ell1 = 8;
        let mut memberships: Vec<Vec<(GroupId, u64)>> = vec![Vec::new(); n];
        for v in 0..n as u32 {
            for j in 0..ell1 {
                let target = (v.wrapping_mul(31).wrapping_add(j)) % n as u32;
                memberships[v as usize].push((GroupId::new(target, j), 1));
            }
        }
        let (out, stats) = run_sum(n, memberships, 2 * ell1 as usize + 8);
        let total: u64 = out.iter().flatten().map(|(_, v)| v).sum();
        assert_eq!(total, (n * ell1 as usize) as u64, "no packet lost");
        let logn = 7;
        let bound = 40 * logn; // generous constant on O(L/n + ℓ/logn + logn) = O(logn) here
        assert!(
            (stats.rounds as usize) < bound,
            "rounds {} exceed c·log n = {bound}",
            stats.rounds
        );
        assert!(stats.clean());
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 32;
        let g = GroupId::new(1, 0);
        let mems: Vec<Vec<(GroupId, u64)>> = (0..n).map(|v| vec![(g, v as u64)]).collect();
        let a = run_sum(n, mems.clone(), 1);
        let b = run_sum(n, mems, 1);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
