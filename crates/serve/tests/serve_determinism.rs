//! The serve layer's load-bearing property: residency must be invisible in
//! results.
//!
//! * **Cache-hit byte-identity** — for arbitrary buildable specs and for
//!   engine thread counts 1 and 4, the record served from a warm cache
//!   (and a reset resident engine) is byte-for-byte the record a cold
//!   build produces, and byte-for-byte what the batch `run_record` path
//!   produces.
//! * **Eviction round-trip** — evicting an artifact and rebuilding it
//!   yields the same record again (the cache holds no state that matters).

use ncc_runner::{find_algorithm, run_record_threads, FamilySpec, ScenarioSpec};
use ncc_serve::{Coordinator, EngineSlots, Request, Response, ServeConfig};
use proptest::prelude::*;

fn family_strategy() -> impl Strategy<Value = FamilySpec> {
    // Buildable families only (no `Provided`), kept small for test speed.
    prop_oneof![
        Just(FamilySpec::Path),
        Just(FamilySpec::Cycle),
        Just(FamilySpec::Star),
        Just(FamilySpec::Tree),
        (1usize..4).prop_map(|k| FamilySpec::Forests { k }),
        (0.05f64..0.5).prop_map(|p| FamilySpec::Gnp { p }),
        (8usize..64).prop_map(|m| FamilySpec::Gnm { m }),
        (1usize..4).prop_map(|m| FamilySpec::Ba { m }),
    ]
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (family_strategy(), 16usize..40, 0u64..1_000)
        .prop_map(|(family, n, seed)| ScenarioSpec::new(family, n, seed))
}

/// Algorithms cheap enough to property-test; mix of weighted (mst),
/// rooted (bfs) and dissemination (broadcast) pipelines.
fn algo_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("broadcast"), Just("bfs"), Just("mst")]
}

fn run_line(id: u64, algorithm: &str, spec: &ScenarioSpec) -> String {
    serde_json::to_string(&Request::Run {
        id,
        algorithm: algorithm.into(),
        spec: spec.clone(),
    })
    .unwrap()
}

fn record_json(resp: Response) -> (bool, String) {
    match resp {
        Response::Record {
            cache_hit, record, ..
        } => (cache_hit, record.to_json()),
        other => panic!("expected record, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Cold build, then cache hit with a resident engine, at engine thread
    /// counts 1 and 4 — every path must produce byte-identical records,
    /// and they must equal the batch path's record.
    #[test]
    fn cache_hit_records_are_byte_identical(
        spec in spec_strategy(),
        algo in algo_strategy(),
    ) {
        let batch = run_record_threads(find_algorithm(algo).unwrap(), &spec, 1)
            .unwrap()
            .to_json();
        for engine_threads in [1usize, 4] {
            let cfg = ServeConfig::with_thread_budget(1)
                .with_engine_threads(engine_threads);
            let coord = Coordinator::new(cfg);
            let mut slots = EngineSlots::new(4);
            let line = run_line(1, algo, &spec);
            let (hit_cold, cold) =
                record_json(coord.handle_line(&line, &mut slots).unwrap());
            let (hit_warm, warm) =
                record_json(coord.handle_line(&line, &mut slots).unwrap());
            prop_assert!(!hit_cold);
            prop_assert!(hit_warm);
            prop_assert_eq!(&cold, &warm, "resident engine must replay exactly");
            prop_assert_eq!(&cold, &batch, "served record must equal batch record");
            prop_assert_eq!(coord.stats().engine_reuses, 1);
        }
    }

    /// Evict an artifact by cycling the cache past capacity, then request
    /// the original spec again: the rebuilt artifact serves the same
    /// record, and the eviction is visible only in the counters.
    #[test]
    fn eviction_then_rebuild_round_trips(
        spec in spec_strategy(),
        filler_seed in 10_000u64..20_000,
    ) {
        let cfg = ServeConfig::with_thread_budget(1).with_cache_capacity(1);
        let coord = Coordinator::new(cfg);
        let mut slots = EngineSlots::new(4);
        let line = run_line(1, "broadcast", &spec);
        let (_, first) = record_json(coord.handle_line(&line, &mut slots).unwrap());
        // Capacity-1 cache: this run evicts the original artifact.
        let filler = ScenarioSpec::new(FamilySpec::Star, 16, filler_seed);
        coord.handle_line(&run_line(2, "broadcast", &filler), &mut slots).unwrap();
        let (hit, rebuilt) = record_json(coord.handle_line(&line, &mut slots).unwrap());
        prop_assert!(!hit, "post-eviction lookup must rebuild");
        prop_assert_eq!(first, rebuilt);
        prop_assert!(coord.stats().cache.evictions >= 1);
    }
}
