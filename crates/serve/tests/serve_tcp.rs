//! End-to-end daemon test over the TCP front: 8 concurrent clients fire
//! simultaneously (a barrier releases them together, so at least 8
//! requests are in flight at once against an 8-worker pool), every request
//! gets its typed response, records for the same `(algorithm, spec)` are
//! byte-identical across clients regardless of which worker served them,
//! and the coordinator's counters add up.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use ncc_runner::{FamilySpec, ScenarioSpec, Verdict};
use ncc_serve::{Request, Response, ServeConfig, Server};

fn send_line(stream: &mut TcpStream, line: &str) {
    writeln!(stream, "{line}").unwrap();
    stream.flush().unwrap();
}

fn run_line(id: u64, algorithm: &str, spec: &ScenarioSpec) -> String {
    serde_json::to_string(&Request::Run {
        id,
        algorithm: algorithm.into(),
        spec: spec.clone(),
    })
    .unwrap()
}

#[test]
fn eight_concurrent_clients_get_identical_verified_records() {
    const CLIENTS: usize = 8;
    let cfg = ServeConfig::with_thread_budget(CLIENTS).with_cache_capacity(8);
    let server = Server::spawn(cfg, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    // Every client runs the same shared spec (exercising the cache under
    // contention) plus one client-specific spec (exercising misses).
    let shared = ScenarioSpec::new(FamilySpec::Gnp { p: 0.3 }, 32, 11);
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let shared = shared.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let own = ScenarioSpec::new(FamilySpec::Tree, 24, 100 + c as u64);
            barrier.wait(); // release all clients at once: ≥8 in flight
            send_line(&mut stream, &run_line(1, "mst", &shared));
            send_line(&mut stream, &run_line(2, "bfs", &own));
            let mut shared_json = None;
            let mut own_ok = false;
            let reader = BufReader::new(stream.try_clone().unwrap());
            for line in reader.lines().take(2) {
                let resp = Response::from_line(&line.unwrap()).unwrap();
                match resp {
                    Response::Record {
                        id,
                        record,
                        cache_hit,
                        spec_hash,
                    } => {
                        assert!(!spec_hash.is_empty());
                        match id {
                            1 => {
                                assert_eq!(record.verdict, Verdict::Verified);
                                // hit or miss depends on scheduling; the
                                // record must not depend on it either way
                                let _ = cache_hit;
                                shared_json = Some(record.to_json());
                            }
                            2 => {
                                assert_eq!(record.verdict, Verdict::Verified);
                                own_ok = true;
                            }
                            other => panic!("unexpected id {other}"),
                        }
                    }
                    other => panic!("expected record, got {other:?}"),
                }
            }
            assert!(own_ok, "client {c} never saw its own record");
            shared_json.expect("client never saw the shared record")
        }));
    }
    let records: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(records.len(), CLIENTS);
    for r in &records[1..] {
        assert_eq!(
            r, &records[0],
            "same spec must serve byte-identical records on every worker"
        );
    }

    // Counters: 2 requests per client served, the shared spec built at
    // most a few times (racing cold misses), then all hits.
    let stats = server.coordinator().stats();
    assert_eq!(stats.served, 2 * CLIENTS as u64);
    assert_eq!(stats.errors, 0);
    assert!(stats.cache.hits + stats.cache.misses >= 2 * CLIENTS as u64);
    assert!(
        stats.cache.hits > 0,
        "shared spec must hit the cache under contention: {stats:?}"
    );

    // Malformed input over the wire gets a typed error, not a hangup.
    let mut stream = TcpStream::connect(addr).unwrap();
    send_line(&mut stream, "definitely not json");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::from_line(&line).unwrap() {
        Response::Error { id, error } => {
            assert_eq!(id, None);
            assert!(error.contains("malformed"), "{error}");
        }
        other => panic!("expected error, got {other:?}"),
    }

    // Stats and shutdown over the wire.
    send_line(
        &mut stream,
        &serde_json::to_string(&Request::Stats { id: 50 }).unwrap(),
    );
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::from_line(&line).unwrap() {
        Response::Stats { id, stats } => {
            assert_eq!(id, 50);
            assert_eq!(stats.workers, CLIENTS as u64);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    send_line(
        &mut stream,
        &serde_json::to_string(&Request::Shutdown { id: 51 }).unwrap(),
    );
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::from_line(&line).unwrap(),
        Response::Shutdown { id: 51 }
    ));
    server.shutdown_and_join();
}
