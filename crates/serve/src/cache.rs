//! The content-addressed build cache: one built [`Scenario`] artifact per
//! canonical spec hash, with LRU eviction and hit/miss/eviction counters.
//!
//! Building a scenario — generating the graph, seeding the edge weights —
//! is the expensive, request-independent part of every run; the engine and
//! the algorithm execution are cheap by comparison and stay per-request.
//! The cache keys artifacts by [`spec_hash`] (the stable FNV-1a hash of
//! the spec's canonical JSON form, `threads` excluded) and stores the
//! canonical JSON alongside each artifact, so a hash collision can never
//! silently alias two different scenarios: on lookup the stored canonical
//! form is compared and a mismatch is handled as a miss that overwrites
//! the colliding entry.
//!
//! Concurrency: lookups and insertions take one short mutex; the build
//! itself runs *outside* the lock, so a slow cold build never serializes
//! the whole worker pool. Two workers missing on the same spec at the same
//! instant may both build — the artifacts are deterministic and identical,
//! the first insert wins, and both requests proceed; the wasted build is a
//! startup transient, not a correctness concern.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ncc_runner::{canonical_spec_json, spec_hash, RunnerError, Scenario, ScenarioSpec, SpecHash};
use serde::{Deserialize, Serialize};

/// Counter snapshot of a [`BuildCache`] — part of the serve protocol's
/// `Stats` response and of `BENCH_serve.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Artifacts currently resident.
    pub entries: u64,
    /// Maximum resident artifacts before LRU eviction.
    pub capacity: u64,
    /// Lookups served from a resident artifact.
    pub hits: u64,
    /// Lookups that had to build (first sight, post-eviction, collision).
    pub misses: u64,
    /// Artifacts evicted to make room.
    pub evictions: u64,
}

struct Entry {
    /// Canonical JSON of the spec this artifact was built from — the
    /// collision guard (compared on every hit).
    canonical: String,
    scenario: Arc<Scenario>,
    /// Monotonic recency stamp; smallest = least recently used.
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Thread-safe content-addressed LRU cache of built scenarios.
pub struct BuildCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl BuildCache {
    /// A cache holding at most `capacity` built scenarios (floor 1).
    pub fn new(capacity: usize) -> Self {
        BuildCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The artifact for `spec`, building (and caching) it on a miss.
    /// Returns the shared artifact and whether this lookup was a cache
    /// hit. Unbuildable specs (`Provided` family, bad grid dimensions)
    /// return the runner's error and leave the cache untouched.
    pub fn get_or_build(&self, spec: &ScenarioSpec) -> Result<(Arc<Scenario>, bool), RunnerError> {
        let key = spec_hash(spec);
        let canonical = canonical_spec_json(spec);

        {
            let mut inner = self.inner.lock().expect("cache lock");
            let tick = {
                inner.tick += 1;
                inner.tick
            };
            let hit = match inner.map.get_mut(&key.0) {
                Some(e) if e.canonical == canonical => {
                    e.last_used = tick;
                    Some(e.scenario.clone())
                }
                // 64-bit collision between distinct canonical forms: treat
                // as a miss; the build below overwrites the stale entry.
                _ => None,
            };
            if let Some(scenario) = hit {
                inner.hits += 1;
                return Ok((scenario, true));
            }
            inner.misses += 1;
        }

        // Build outside the lock: cold builds are the expensive path and
        // must not serialize concurrent workers.
        let scenario = Arc::new(spec.build()?);

        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        // A racing worker may have inserted while we built; its artifact
        // is byte-identical (deterministic build), keep whichever is in.
        if let Some(e) = inner.map.get_mut(&key.0) {
            if e.canonical == canonical {
                e.last_used = tick;
                return Ok((e.scenario.clone(), false));
            }
            e.canonical = canonical;
            e.scenario = scenario.clone();
            e.last_used = tick;
            return Ok((scenario, false));
        }
        if inner.map.len() >= self.capacity {
            if let Some(&lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&lru);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key.0,
            Entry {
                canonical,
                scenario: scenario.clone(),
                last_used: tick,
            },
        );
        Ok((scenario, false))
    }

    /// Whether an artifact for `spec` is currently resident (test hook;
    /// does not touch recency or counters).
    pub fn contains(&self, spec: &ScenarioSpec) -> bool {
        let key = spec_hash(spec);
        let canonical = canonical_spec_json(spec);
        let inner = self.inner.lock().expect("cache lock");
        inner
            .map
            .get(&key.0)
            .is_some_and(|e| e.canonical == canonical)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            entries: inner.map.len() as u64,
            capacity: self.capacity as u64,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }

    /// The hash an artifact for `spec` is addressed by.
    pub fn key_of(spec: &ScenarioSpec) -> SpecHash {
        spec_hash(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_runner::FamilySpec;

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec::new(FamilySpec::Gnp { p: 0.2 }, 32, seed)
    }

    #[test]
    fn miss_then_hit_shares_one_artifact() {
        let cache = BuildCache::new(4);
        let (a, hit_a) = cache.get_or_build(&spec(1)).unwrap();
        let (b, hit_b) = cache.get_or_build(&spec(1)).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the resident artifact");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn threads_do_not_split_the_cache() {
        let cache = BuildCache::new(4);
        let (_, h1) = cache.get_or_build(&spec(1)).unwrap();
        let (_, h2) = cache.get_or_build(&spec(1).with_threads(4)).unwrap();
        assert!(!h1);
        assert!(h2, "threads are execution layout, not cache identity");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = BuildCache::new(2);
        cache.get_or_build(&spec(1)).unwrap();
        cache.get_or_build(&spec(2)).unwrap();
        cache.get_or_build(&spec(1)).unwrap(); // refresh 1 → 2 is LRU
        cache.get_or_build(&spec(3)).unwrap(); // evicts 2
        assert!(cache.contains(&spec(1)));
        assert!(!cache.contains(&spec(2)));
        assert!(cache.contains(&spec(3)));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn eviction_then_rebuild_round_trips() {
        let cache = BuildCache::new(1);
        let (a, _) = cache.get_or_build(&spec(1)).unwrap();
        cache.get_or_build(&spec(2)).unwrap(); // evicts spec(1)
        let (b, hit) = cache.get_or_build(&spec(1)).unwrap(); // rebuild
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &b));
        // the rebuilt artifact is byte-identical in content
        assert_eq!(a.graph.n(), b.graph.n());
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn unbuildable_specs_error_and_leave_no_entry() {
        let cache = BuildCache::new(4);
        let bad = ScenarioSpec::new(FamilySpec::Provided, 8, 1);
        assert!(cache.get_or_build(&bad).is_err());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 1);
    }
}
