//! # ncc-serve — resident scenario coordinator
//!
//! The batch entrypoints (`ncc-cli run`, the experiment binaries) pay the
//! full scenario build — graph generation, edge weights — on every
//! invocation. This crate keeps that work *resident*: a daemon accepts
//! [`ScenarioSpec`](ncc_runner::ScenarioSpec) requests as newline-delimited
//! JSON over stdio or a local TCP socket, serves scenario artifacts out of
//! a content-addressed [`BuildCache`] keyed by the spec's canonical hash
//! ([`ncc_runner::spec_hash`]), and executes requests on a bounded
//! [`WorkerPool`] that shares one global thread budget.
//!
//! The contract that makes residency trustworthy is **byte-identity**: a
//! record served from a warm cache (and a reset resident engine) is
//! byte-for-byte the record a cold batch run would have produced — for any
//! worker count and any engine thread count. That is property-tested in
//! `tests/serve_determinism.rs`; the cache and the engine-residency layer
//! are not allowed to become observable in results, only in latency.
//!
//! ```text
//!            ┌───────────────┐   lines    ┌─────────────┐
//!  clients ─▶│ stdio / TCP   │──────────▶│ bounded queue│
//!            │ fronts        │            └──────┬──────┘
//!            └───────────────┘                   │ jobs
//!                                        ┌───────▼────────┐
//!                                        │ worker pool    │  per-worker
//!                                        │ (N threads)    │  EngineSlots
//!                                        └───────┬────────┘
//!                                                │ get_or_build
//!                                        ┌───────▼────────┐
//!                                        │ BuildCache     │  spec_hash →
//!                                        │ (LRU, counters)│  Arc<Scenario>
//!                                        └────────────────┘
//! ```
//!
//! Entry points: the `ncc-serve` binary (or `ncc-cli serve`) for the
//! daemon, [`Server::spawn`] for in-process embedding (the
//! `exp21_serve_load` load generator and the integration tests), and
//! [`Coordinator::handle_line`] for direct single-threaded use.

pub mod cache;
pub mod protocol;
pub mod server;

pub use cache::{BuildCache, CacheStats};
pub use protocol::{parse_request, Request, Response, ServeStats};
pub use server::{
    serve_stdio, Coordinator, EngineSlots, Job, ResponseSink, ServeConfig, Server, WorkerPool,
};
