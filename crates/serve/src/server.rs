//! The coordinator: request execution, worker-local engine residency, the
//! bounded worker pool, and the stdio / TCP fronts.
//!
//! One [`Coordinator`] owns the shared state (build cache, counters,
//! shutdown flag); N worker threads pull request lines off one bounded
//! queue and execute them against the coordinator. Each worker keeps its
//! own [`EngineSlots`] — resident engines it restores with
//! [`Engine::reset`] between runs of the same spec — because engines are
//! deliberately *not* shared across threads: residency is per worker, and
//! the byte-identity contract (a served record equals a cold batch run's
//! record, for any worker count and any engine thread count) is what makes
//! that residency safe to use at all.
//!
//! The thread budget is global: `workers × engine_threads` is the most
//! threads the daemon will run hot, and [`ServeConfig::with_thread_budget`]
//! splits a budget in favour of request concurrency (many workers, each
//! running its engine sequentially) — the serving workload is many small
//! scenarios, not one large one.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ncc_model::Engine;
use ncc_runner::{
    canonical_spec_json, find_algorithm, spec_hash, suggest_algorithm, Scenario, ScenarioSpec,
};

use crate::cache::BuildCache;
use crate::protocol::{parse_request, Request, Response, ServeStats};

/// Shape of a serving daemon: worker count, per-worker engine threads, and
/// the build-cache capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads pulling requests off the queue (concurrent in-flight
    /// requests).
    pub workers: usize,
    /// Engine threads each worker runs its scenarios with.
    pub engine_threads: usize,
    /// Build-cache capacity (resident scenario artifacts).
    pub cache_capacity: usize,
    /// Bounded job-queue depth; enqueueing past it blocks the fronts
    /// (backpressure instead of unbounded memory).
    pub queue_depth: usize,
}

impl ServeConfig {
    /// Splits a global thread budget in favour of request concurrency:
    /// every budgeted thread becomes a worker and each worker runs its
    /// engine sequentially. A serving workload is many small independent
    /// scenarios; parallelism across requests beats parallelism inside one.
    pub fn with_thread_budget(budget: usize) -> Self {
        let workers = budget.max(1);
        ServeConfig {
            workers,
            engine_threads: 1,
            cache_capacity: 64,
            queue_depth: 4 * workers,
        }
    }

    pub fn with_workers(mut self, w: usize) -> Self {
        self.workers = w.max(1);
        self.queue_depth = self.queue_depth.max(4 * self.workers);
        self
    }

    pub fn with_engine_threads(mut self, t: usize) -> Self {
        self.engine_threads = t.max(1);
        self
    }

    pub fn with_cache_capacity(mut self, c: usize) -> Self {
        self.cache_capacity = c.max(1);
        self
    }
}

impl Default for ServeConfig {
    /// One worker per available core, sequential engines.
    fn default() -> Self {
        let budget = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        Self::with_thread_budget(budget)
    }
}

/// Per-worker engine residency: engines keyed by spec hash, restored with
/// [`Engine::reset`] on reuse, LRU-evicted past `cap`. Never shared across
/// threads — each worker owns its slots outright.
pub struct EngineSlots {
    slots: HashMap<u64, Slot>,
    tick: u64,
    cap: usize,
}

struct Slot {
    /// Collision guard, same discipline as the build cache: the canonical
    /// spec JSON the engine was built for.
    canonical: String,
    engine: Engine,
    last_used: u64,
}

impl EngineSlots {
    pub fn new(cap: usize) -> Self {
        EngineSlots {
            slots: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
        }
    }

    /// Removes and returns the resident engine for `(hash, canonical)`, if
    /// any. The caller runs it and hands it back with [`Self::put`].
    fn take(&mut self, hash: u64, canonical: &str) -> Option<Engine> {
        match self.slots.get(&hash) {
            Some(s) if s.canonical == canonical => {
                Some(self.slots.remove(&hash).expect("slot present").engine)
            }
            _ => None,
        }
    }

    /// Parks an engine for later reuse, evicting the least recently used
    /// slot when full.
    fn put(&mut self, hash: u64, canonical: String, engine: Engine) {
        self.tick += 1;
        let tick = self.tick;
        if !self.slots.contains_key(&hash) && self.slots.len() >= self.cap {
            if let Some(&lru) = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k)
            {
                self.slots.remove(&lru);
            }
        }
        self.slots.insert(
            hash,
            Slot {
                canonical,
                engine,
                last_used: tick,
            },
        );
    }

    /// Resident engine count (test hook).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// The shared daemon state: cache, counters, shutdown flag. One per
/// server; workers and fronts hold it behind an [`Arc`].
pub struct Coordinator {
    cfg: ServeConfig,
    cache: BuildCache,
    served: AtomicU64,
    errors: AtomicU64,
    engine_reuses: AtomicU64,
    shutdown: AtomicBool,
}

impl Coordinator {
    pub fn new(cfg: ServeConfig) -> Self {
        Coordinator {
            cfg,
            cache: BuildCache::new(cfg.cache_capacity),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            engine_reuses: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    pub fn cache(&self) -> &BuildCache {
        &self.cache
    }

    /// Whether a shutdown request has been accepted.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown out of band (fronts use this on fatal IO errors).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            cache: self.cache.stats(),
            served: self.served.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
            workers: self.cfg.workers as u64,
            engine_threads: self.cfg.engine_threads as u64,
            engine_reuses: self.engine_reuses.load(Ordering::SeqCst),
        }
    }

    /// Parses and executes one wire line. `None` for blank lines (ignored,
    /// no response). Counter updates happen here, so every front and test
    /// that goes through this path is counted.
    pub fn handle_line(&self, line: &str, slots: &mut EngineSlots) -> Option<Response> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let resp = match parse_request(line) {
            Ok(req) => self.handle_request(req, slots),
            Err(e) => Response::Error { id: None, error: e },
        };
        match &resp {
            Response::Record { .. } => {
                self.served.fetch_add(1, Ordering::SeqCst);
            }
            Response::Error { .. } => {
                self.errors.fetch_add(1, Ordering::SeqCst);
            }
            _ => {}
        }
        Some(resp)
    }

    /// Executes one parsed request.
    pub fn handle_request(&self, req: Request, slots: &mut EngineSlots) -> Response {
        match req {
            Request::Run {
                id,
                algorithm,
                spec,
            } => self.execute(id, &algorithm, &spec, slots),
            Request::Stats { id } => Response::Stats {
                id,
                stats: self.stats(),
            },
            Request::Shutdown { id } => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::Shutdown { id }
            }
        }
    }

    /// One run: registry lookup → cached scenario build → resident (or
    /// fresh) engine → algorithm pipeline → typed record.
    fn execute(
        &self,
        id: u64,
        algorithm: &str,
        spec: &ScenarioSpec,
        slots: &mut EngineSlots,
    ) -> Response {
        let Some(algo) = find_algorithm(algorithm) else {
            let hint = suggest_algorithm(algorithm)
                .map(|s| format!("; did you mean `{s}`?"))
                .unwrap_or_default();
            return Response::Error {
                id: Some(id),
                error: format!("unknown algorithm `{algorithm}`{hint}"),
            };
        };
        let (scenario, cache_hit) = match self.cache.get_or_build(spec) {
            Ok(pair) => pair,
            Err(e) => {
                return Response::Error {
                    id: Some(id),
                    error: format!("cannot build scenario: {e}"),
                }
            }
        };
        let hash = spec_hash(spec);
        let canonical = canonical_spec_json(spec);
        let mut engine = match slots.take(hash.0, &canonical) {
            Some(mut eng) => {
                // Residency: restore just-constructed state instead of
                // rebuilding; `Engine::reset` guarantees byte-identical
                // execution (property-tested in ncc-model).
                eng.reset();
                self.engine_reuses.fetch_add(1, Ordering::SeqCst);
                eng
            }
            None => scenario.engine_with_threads(self.cfg.engine_threads),
        };
        let result = algo.run(&mut engine, &scenario);
        slots.put(hash.0, canonical, engine);
        match result {
            Ok(record) => Response::Record {
                id,
                cache_hit,
                spec_hash: hash.to_string(),
                record,
            },
            Err(e) => Response::Error {
                id: Some(id),
                error: format!("run failed: {e}"),
            },
        }
    }

    /// Runs one full request/response cycle against a scratch
    /// [`EngineSlots`] — the single-shot path for tests and simple tools
    /// that don't want a pool.
    pub fn handle_line_once(&self, line: &str) -> Option<Response> {
        let mut slots = EngineSlots::new(4);
        self.handle_line(line, &mut slots)
    }

    /// Convenience: build a [`Scenario`] through the cache (used by load
    /// generators that want warm artifacts without a run).
    pub fn warm(&self, spec: &ScenarioSpec) -> Result<Arc<Scenario>, ncc_runner::RunnerError> {
        self.cache.get_or_build(spec).map(|(s, _)| s)
    }
}

/// Where a worker writes its responses. Shared per connection, so
/// responses from concurrent requests interleave by *line*, never by byte.
pub type ResponseSink = Arc<Mutex<Box<dyn Write + Send>>>;

/// One queued request line plus the sink its response goes to.
pub struct Job {
    pub line: String,
    pub out: ResponseSink,
}

/// The bounded worker pool: N threads pulling [`Job`]s off one queue.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `cfg.workers` threads against the coordinator. The queue is
    /// bounded at `cfg.queue_depth`: fronts block on submit when the pool
    /// is saturated.
    pub fn spawn(coordinator: Arc<Coordinator>) -> Self {
        let cfg = *coordinator.config();
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let rx = Arc::clone(&rx);
            let coordinator = Arc::clone(&coordinator);
            handles.push(std::thread::spawn(move || {
                worker_loop(&coordinator, &rx);
            }));
        }
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    /// A sender handle for a front to submit jobs with.
    pub fn sender(&self) -> SyncSender<Job> {
        self.tx.as_ref().expect("pool not joined").clone()
    }

    /// Submits one job, blocking when the queue is full. `false` when the
    /// pool has shut down.
    pub fn submit(&self, job: Job) -> bool {
        match &self.tx {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        }
    }

    /// Drops the queue and joins every worker. Queued jobs are drained
    /// first (workers exit on disconnect-or-shutdown, not mid-queue).
    pub fn join(mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker body: drain the queue, checking the shutdown flag between jobs.
/// Exits when the queue disconnects or when shutdown is set and the queue
/// is empty — in-flight and queued requests always get their response.
fn worker_loop(coordinator: &Coordinator, rx: &Arc<Mutex<Receiver<Job>>>) {
    let cfg = *coordinator.config();
    let mut slots = EngineSlots::new(cfg.cache_capacity.clamp(1, 16));
    loop {
        let job = {
            let rx = rx.lock().expect("worker queue lock");
            match rx.try_recv() {
                Ok(job) => Some(job),
                Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => {
                    if coordinator.is_shutdown() {
                        return;
                    }
                    match rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(job) => Some(job),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            }
        };
        let Some(job) = job else { continue };
        if let Some(resp) = coordinator.handle_line(&job.line, &mut slots) {
            let mut out = job.out.lock().expect("response sink lock");
            let _ = writeln!(out, "{}", resp.to_line());
            let _ = out.flush();
        }
    }
}

/// A running in-process server: TCP front + worker pool, used by the
/// `ncc-serve` binary, the load generator, and the integration tests.
pub struct Server {
    coordinator: Arc<Coordinator>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), spawns the
    /// worker pool and the accept loop, and returns immediately.
    pub fn spawn(cfg: ServeConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let coordinator = Arc::new(Coordinator::new(cfg));
        let pool = WorkerPool::spawn(Arc::clone(&coordinator));
        let tx = pool.sender();
        let accept_coord = Arc::clone(&coordinator);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_coord, &tx));
        Ok(Server {
            coordinator,
            addr,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// Stops accepting, drains the queue, joins the pool. Idempotent with
    /// a `Shutdown` request already in flight.
    pub fn shutdown_and_join(mut self) {
        self.coordinator.request_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

/// Accept loop: non-blocking accept polled against the shutdown flag, one
/// detached reader thread per connection feeding the shared job queue.
fn accept_loop(listener: &TcpListener, coordinator: &Arc<Coordinator>, tx: &SyncSender<Job>) {
    loop {
        if coordinator.is_shutdown() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                std::thread::spawn(move || connection_reader(stream, &tx));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Per-connection reader: lines in, jobs out. The write half is shared by
/// every in-flight response for this connection (line-atomic interleaving).
fn connection_reader(stream: TcpStream, tx: &SyncSender<Job>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out: ResponseSink = Arc::new(Mutex::new(Box::new(write_half)));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        if tx
            .send(Job {
                line,
                out: Arc::clone(&out),
            })
            .is_err()
        {
            return;
        }
    }
}

/// The stdio front: requests on stdin (one per line, to EOF), responses on
/// stdout, executed by the same bounded pool. Returns when stdin closes or
/// a `Shutdown` request lands.
pub fn serve_stdio(cfg: ServeConfig) -> io::Result<()> {
    let coordinator = Arc::new(Coordinator::new(cfg));
    let pool = WorkerPool::spawn(Arc::clone(&coordinator));
    let out: ResponseSink = Arc::new(Mutex::new(Box::new(io::stdout())));
    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if !pool.submit(Job {
            line,
            out: Arc::clone(&out),
        }) {
            break;
        }
        if coordinator.is_shutdown() {
            break;
        }
    }
    coordinator.request_shutdown();
    pool.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_runner::FamilySpec;

    fn run_line(id: u64, algorithm: &str, spec: &ScenarioSpec) -> String {
        serde_json::to_string(&Request::Run {
            id,
            algorithm: algorithm.into(),
            spec: spec.clone(),
        })
        .unwrap()
    }

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec::new(FamilySpec::Gnp { p: 0.25 }, 32, seed)
    }

    #[test]
    fn executes_a_run_request() {
        let coord = Coordinator::new(ServeConfig::with_thread_budget(1));
        let resp = coord
            .handle_line_once(&run_line(1, "broadcast", &spec(3)))
            .unwrap();
        match resp {
            Response::Record {
                id,
                cache_hit,
                record,
                ..
            } => {
                assert_eq!(id, 1);
                assert!(!cache_hit);
                assert_eq!(record.algorithm, "broadcast");
                assert!(record.rounds > 0);
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn unknown_algorithm_gets_typed_error_with_suggestion() {
        let coord = Coordinator::new(ServeConfig::with_thread_budget(1));
        let resp = coord
            .handle_line_once(&run_line(2, "MTS", &spec(3)))
            .unwrap();
        match resp {
            Response::Error { id, error } => {
                assert_eq!(id, Some(2));
                assert!(error.contains("unknown algorithm"), "{error}");
                assert!(error.contains("did you mean"), "{error}");
            }
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(coord.stats().errors, 1);
    }

    #[test]
    fn malformed_line_gets_error_without_id() {
        let coord = Coordinator::new(ServeConfig::with_thread_budget(1));
        let resp = coord.handle_line_once("this is not json").unwrap();
        match resp {
            Response::Error { id, error } => {
                assert_eq!(id, None);
                assert!(error.contains("malformed"), "{error}");
            }
            other => panic!("expected error, got {other:?}"),
        }
        assert!(coord.handle_line_once("").is_none(), "blank lines ignored");
    }

    #[test]
    fn cache_hit_record_is_byte_identical_to_cold_record() {
        let coord = Coordinator::new(ServeConfig::with_thread_budget(1));
        let mut slots = EngineSlots::new(4);
        let line = run_line(1, "mst", &spec(7));
        let cold = coord.handle_line(&line, &mut slots).unwrap();
        let warm = coord.handle_line(&line, &mut slots).unwrap();
        let (cold_rec, cold_hit) = match cold {
            Response::Record {
                record, cache_hit, ..
            } => (record, cache_hit),
            other => panic!("{other:?}"),
        };
        let (warm_rec, warm_hit) = match warm {
            Response::Record {
                record, cache_hit, ..
            } => (record, cache_hit),
            other => panic!("{other:?}"),
        };
        assert!(!cold_hit);
        assert!(warm_hit);
        assert_eq!(cold_rec.to_json(), warm_rec.to_json());
        // the warm run also reused the resident engine
        assert_eq!(coord.stats().engine_reuses, 1);
    }

    #[test]
    fn engine_slots_reuse_evict_and_guard_collisions() {
        let mut slots = EngineSlots::new(2);
        let a = spec(1).build().unwrap();
        let b = spec(2).build().unwrap();
        let c = spec(3).build().unwrap();
        slots.put(1, "a".into(), a.engine());
        slots.put(2, "b".into(), b.engine());
        assert!(slots.take(1, "other").is_none(), "collision guard");
        assert!(slots.take(1, "a").is_some());
        assert_eq!(slots.len(), 1);
        slots.put(1, "a".into(), a.engine());
        slots.put(3, "c".into(), c.engine()); // evicts LRU (hash 2)
        assert_eq!(slots.len(), 2);
        assert!(slots.take(2, "b").is_none());
        assert!(slots.take(3, "c").is_some());
    }

    #[test]
    fn shutdown_request_flips_the_flag() {
        let coord = Coordinator::new(ServeConfig::with_thread_budget(1));
        assert!(!coord.is_shutdown());
        let resp = coord.handle_line_once("{\"Shutdown\":{\"id\":9}}").unwrap();
        assert!(matches!(resp, Response::Shutdown { id: 9 }));
        assert!(coord.is_shutdown());
    }

    #[test]
    fn stats_report_pool_shape_and_cache() {
        let cfg = ServeConfig::with_thread_budget(3).with_cache_capacity(5);
        let coord = Coordinator::new(cfg);
        coord.handle_line_once(&run_line(1, "gossip", &spec(1)));
        let stats = coord.stats();
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.engine_threads, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.cache.capacity, 5);
        assert_eq!(stats.cache.misses, 1);
    }
}
