//! `ncc-serve` — the resident scenario coordinator daemon.
//!
//! ```text
//! ncc-serve [--stdio] [--listen ADDR] [--workers N] [--engine-threads N]
//!           [--cache N]
//! ```
//!
//! Default is the stdio front (requests on stdin, responses on stdout, one
//! JSON value per line — exits on EOF or a `Shutdown` request). With
//! `--listen` the daemon binds a local TCP address instead and runs until
//! a `Shutdown` request lands. See `docs/serving.md` for the protocol.

use std::process::exit;

use ncc_serve::{serve_stdio, ServeConfig, Server};

fn usage_and_exit(code: i32) -> ! {
    eprintln!(
        "usage: ncc-serve [--stdio] [--listen ADDR] [--workers N] [--engine-threads N] [--cache N]

fronts (default: --stdio):
  --stdio             requests on stdin, responses on stdout, exit on EOF
  --listen ADDR       bind a local TCP address (e.g. 127.0.0.1:7070)

pool shape:
  --workers N         worker threads / concurrent in-flight requests
                      (default: available cores)
  --engine-threads N  engine threads per worker (default 1)
  --cache N           build-cache capacity in scenarios (default 64)"
    );
    exit(code);
}

fn parse_num(flag: &str, v: Option<String>) -> usize {
    let Some(v) = v else {
        eprintln!("error: {flag} needs a value");
        usage_and_exit(2);
    };
    match v.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} needs a number, got `{v}`");
            usage_and_exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = ServeConfig::default();
    let mut listen: Option<String> = None;
    let mut stdio = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--listen" => {
                listen = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --listen needs an address");
                    usage_and_exit(2);
                }))
            }
            "--workers" => cfg = cfg.with_workers(parse_num("--workers", args.next())),
            "--engine-threads" => {
                cfg = cfg.with_engine_threads(parse_num("--engine-threads", args.next()))
            }
            "--cache" => cfg = cfg.with_cache_capacity(parse_num("--cache", args.next())),
            "--help" | "-h" => usage_and_exit(0),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage_and_exit(2);
            }
        }
    }
    if stdio && listen.is_some() {
        eprintln!("error: --stdio and --listen are mutually exclusive");
        usage_and_exit(2);
    }

    match listen {
        Some(addr) => {
            let server = match Server::spawn(cfg, &addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot bind {addr}: {e}");
                    exit(1);
                }
            };
            eprintln!(
                "ncc-serve listening on {} ({} workers, {} engine threads, cache {})",
                server.addr(),
                cfg.workers,
                cfg.engine_threads,
                cfg.cache_capacity
            );
            // Run until a Shutdown request flips the flag, then drain.
            while !server.coordinator().is_shutdown() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            server.shutdown_and_join();
        }
        None => {
            if let Err(e) = serve_stdio(cfg) {
                eprintln!("error: {e}");
                exit(1);
            }
        }
    }
}
