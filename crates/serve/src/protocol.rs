//! The serve wire protocol: newline-delimited JSON, one [`Request`] per
//! line in, one [`Response`] per line out.
//!
//! The same protocol runs over both fronts (stdio and the local TCP
//! listener). Responses are *streamed per request* in completion order —
//! a slow run does not head-of-line-block a fast one — and every response
//! echoes the request `id`, so clients correlate out-of-order completions.
//!
//! All payloads are the existing typed values of the runner layer:
//! requests carry a [`ScenarioSpec`], successful runs return the full
//! [`RunRecord`] (byte-identical to what a batch `ncc-cli run --json`
//! would have produced — residency must not fork the record history), and
//! failures return a typed [`Response::Error`] rather than a dropped
//! connection. Malformed lines (unparseable JSON) get an error response
//! with `id: None`, since no id could be recovered.
//!
//! ```text
//! → {"Run":{"id":1,"algorithm":"mst","spec":{...}}}
//! ← {"Record":{"id":1,"cache_hit":false,"spec_hash":"9f2a…","record":{...}}}
//! → {"Stats":{"id":2}}
//! ← {"Stats":{"id":2,"stats":{"cache":{...},"served":1,...}}}
//! → {"Shutdown":{"id":3}}
//! ← {"Shutdown":{"id":3}}
//! ```

use ncc_runner::{RunRecord, ScenarioSpec};
use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;

/// One client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Execute `algorithm` on `spec`; the scenario build is served from
    /// the content-addressed cache when resident.
    Run {
        id: u64,
        algorithm: String,
        spec: ScenarioSpec,
    },
    /// Report coordinator counters (cache, served/error totals, pool
    /// shape).
    Stats { id: u64 },
    /// Stop accepting work and exit once in-flight requests drain.
    Shutdown { id: u64 },
}

impl Request {
    /// The request's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Run { id, .. } | Request::Stats { id } | Request::Shutdown { id } => *id,
        }
    }
}

/// One server response line.
///
/// `Record` dwarfs the other variants (a full `RunRecord` with its stage
/// breakdown), but responses are transient — built, serialized, dropped,
/// one at a time per worker — so the size asymmetry never accumulates;
/// boxing would only buy an allocation per response. (The vendored serde
/// subset has no `Box<T>` impls to lean on either.)
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// A completed run: the typed record plus cache provenance (`cache_hit`
    /// and the content hash the artifact is addressed by).
    Record {
        id: u64,
        cache_hit: bool,
        spec_hash: String,
        record: RunRecord,
    },
    /// A failed request: unknown algorithm (with a "did you mean"
    /// suggestion when one is close), unbuildable spec, or a malformed
    /// line (`id: None` — the id could not be recovered from the input).
    Error { id: Option<u64>, error: String },
    /// Counter snapshot, answering [`Request::Stats`].
    Stats { id: u64, stats: ServeStats },
    /// Acknowledges [`Request::Shutdown`]; the daemon exits after this.
    Shutdown { id: u64 },
}

impl Response {
    /// Serializes to the single wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("Response serializes")
    }

    /// Parses one wire line.
    pub fn from_line(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

/// Coordinator counters: the cache's hit/miss/eviction totals plus the
/// request totals and the worker-pool shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    pub cache: CacheStats,
    /// Requests answered with a `Record`.
    pub served: u64,
    /// Requests answered with an `Error`.
    pub errors: u64,
    /// Worker threads executing requests.
    pub workers: u64,
    /// Engine threads each worker runs its scenarios with.
    pub engine_threads: u64,
    /// Runs that reused a resident engine via `Engine::reset` instead of
    /// building a fresh one (worker-local engine residency).
    pub engine_reuses: u64,
}

/// Parses one request line. `Err` carries the parse error text for the
/// typed error response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    serde_json::from_str(line).map_err(|e| format!("malformed request: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_runner::FamilySpec;

    #[test]
    fn request_lines_round_trip() {
        let reqs = [
            Request::Run {
                id: 7,
                algorithm: "mst".into(),
                spec: ScenarioSpec::new(FamilySpec::Gnp { p: 0.25 }, 64, 3),
            },
            Request::Stats { id: 8 },
            Request::Shutdown { id: 9 },
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'), "wire lines are single lines");
            let back = parse_request(&line).unwrap();
            assert_eq!(back, req);
            assert_eq!(back.id(), req.id());
        }
    }

    #[test]
    fn malformed_lines_report_instead_of_panicking() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"Run\":{}}").is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn response_lines_round_trip() {
        let resp = Response::Error {
            id: Some(4),
            error: "unknown algorithm".into(),
        };
        let back = Response::from_line(&resp.to_line()).unwrap();
        match back {
            Response::Error { id, error } => {
                assert_eq!(id, Some(4));
                assert!(error.contains("unknown"));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let stats = Response::Stats {
            id: 5,
            stats: ServeStats {
                served: 3,
                ..ServeStats::default()
            },
        };
        assert!(stats.to_line().contains("\"served\":3"));
    }
}
