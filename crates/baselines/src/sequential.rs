//! Centralised greedy references for solution-quality comparisons.
//!
//! These never touch the simulated network; they provide the yardsticks the
//! experiment harness reports next to the distributed outputs (MIS size,
//! matching size, colors used).

use ncc_graph::{Graph, NodeId};

/// Greedy MIS in identifier order.
pub fn greedy_mis(g: &Graph) -> Vec<bool> {
    let n = g.n();
    let mut in_set = vec![false; n];
    let mut blocked = vec![false; n];
    for u in 0..n as NodeId {
        if !blocked[u as usize] {
            in_set[u as usize] = true;
            blocked[u as usize] = true;
            for &v in g.neighbors(u) {
                blocked[v as usize] = true;
            }
        }
    }
    in_set
}

/// Greedy maximal matching in edge order.
pub fn greedy_matching(g: &Graph) -> Vec<Option<NodeId>> {
    let n = g.n();
    let mut mate: Vec<Option<NodeId>> = vec![None; n];
    for (u, v) in g.edges() {
        if mate[u as usize].is_none() && mate[v as usize].is_none() {
            mate[u as usize] = Some(v);
            mate[v as usize] = Some(u);
        }
    }
    mate
}

/// Greedy coloring along a degeneracy order (uses ≤ degeneracy + 1 colors,
/// the quality benchmark for the §5.4 `O(a)`-coloring).
pub fn greedy_coloring(g: &Graph) -> (Vec<u32>, u32) {
    let n = g.n();
    let (_, order) = ncc_graph::analysis::degeneracy(g);
    let mut colors = vec![u32::MAX; n];
    let mut max_color = 0;
    // color in reverse peeling order so each node sees ≤ degeneracy colored
    // neighbors when its turn comes
    for &u in order.iter().rev() {
        let mut used: Vec<u32> = g
            .neighbors(u)
            .iter()
            .map(|&v| colors[v as usize])
            .filter(|&c| c != u32::MAX)
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut c = 0;
        for &x in &used {
            if x == c {
                c += 1;
            } else if x > c {
                break;
            }
        }
        colors[u as usize] = c;
        max_color = max_color.max(c);
    }
    (colors, max_color + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_graph::{check, gen};

    #[test]
    fn greedy_mis_valid() {
        for g in [gen::path(20), gen::star(20), gen::gnp(50, 0.15, 3)] {
            let s = greedy_mis(&g);
            check::check_mis(&g, &s).unwrap();
        }
    }

    #[test]
    fn greedy_matching_valid() {
        for g in [gen::path(21), gen::complete(10), gen::gnp(50, 0.15, 4)] {
            let m = greedy_matching(&g);
            check::check_matching(&g, &m).unwrap();
        }
    }

    #[test]
    fn greedy_coloring_valid_and_tight() {
        for (g, bound) in [
            (gen::path(30), 2u32),
            (gen::cycle(30), 3),
            (gen::star(30), 2),
            (gen::grid(6, 6), 3),
        ] {
            let (colors, used) = greedy_coloring(&g);
            check::check_coloring(&g, &colors, used).unwrap();
            assert!(used <= bound, "{used} > {bound}");
        }
    }

    #[test]
    fn greedy_coloring_degeneracy_bound() {
        let g = gen::gnp(60, 0.1, 9);
        let (deg, _) = ncc_graph::analysis::degeneracy(&g);
        let (colors, used) = greedy_coloring(&g);
        check::check_coloring(&g, &colors, used).unwrap();
        assert!(used as usize <= deg + 1);
    }
}
