//! The naive direct-communication baseline (ablation E16).
//!
//! §2.2: *"a node is not able to send or receive a large set of messages in
//! few rounds; the center of a star, for example, would need linear time to
//! deliver messages to all of its neighbors."* This module implements that
//! naive strategy — frontier nodes talk to every neighbor directly — made
//! *capacity-safe* with a deterministic sender-TDMA schedule: time is
//! sliced into `⌈n / cap⌉` slots per wave; node `u` transmits only in slot
//! `u mod slots`, in send-cap-sized batches. At most `cap` potential
//! senders share a slot, so no receiver can be overrun and nothing is
//! dropped — but a wave costs `Θ(n/log n + Δ/log n)` rounds instead of the
//! primitive stack's `O(a + log n)`.

use ncc_graph::Graph;
use ncc_model::{Ctx, Engine, Envelope, ExecStats, ModelError, NodeId, NodeProgram};

/// Result of the naive BFS.
#[derive(Debug, Clone)]
pub struct NaiveBfsResult {
    pub dist: Vec<u32>,
    pub parent: Vec<Option<NodeId>>,
    pub phases: u32,
    pub stats: ExecStats,
}

/// One TDMA wave: every node in `senders` transmits `value` to all of its
/// neighbors, capacity-safely. Used as the building block of the naive BFS.
struct WaveProgram {
    slots: u64,
    batch: usize,
}

#[derive(Debug, Clone, Default)]
struct WaveState {
    /// Remaining neighbors to message (empty if not a sender).
    pending: Vec<NodeId>,
    value: u64,
    received: Vec<(NodeId, u64)>,
}

impl NodeProgram for WaveProgram {
    type State = WaveState;
    type Payload = u64;

    fn init(&self, st: &mut WaveState, ctx: &mut Ctx<'_, u64>) {
        if !st.pending.is_empty() {
            ctx.stay_awake();
        }
    }

    fn round(&self, st: &mut WaveState, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
        for env in inbox {
            st.received.push((env.src, env.payload));
        }
        if st.pending.is_empty() {
            return;
        }
        // my slot comes up every `slots` rounds
        if ctx.round % self.slots == ctx.id as u64 % self.slots {
            let take = st.pending.len().min(self.batch);
            for v in st.pending.drain(..take) {
                ctx.send(v, st.value);
            }
        }
        if !st.pending.is_empty() {
            ctx.stay_awake();
        }
    }
}

/// Naive BFS: per frontier wave, every frontier node sends its identifier
/// directly to each neighbor under the TDMA schedule.
pub fn naive_bfs(
    engine: &mut Engine,
    g: &Graph,
    src: NodeId,
) -> Result<NaiveBfsResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, g.n());
    let cap = engine
        .config()
        .capacity
        .send
        .min(engine.config().capacity.recv);
    let slots = (n as u64).div_ceil(cap as u64).max(1);
    let mut stats = ExecStats::default();

    let mut dist = vec![u32::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    dist[src as usize] = 0;
    let mut frontier = vec![src];
    let mut phase = 0u32;

    while !frontier.is_empty() {
        phase += 1;
        let prog = WaveProgram { slots, batch: cap };
        let mut states: Vec<WaveState> = (0..n).map(|_| WaveState::default()).collect();
        for &u in &frontier {
            states[u as usize].pending = g.neighbors(u).to_vec();
            states[u as usize].value = u as u64;
        }
        stats.merge(&engine.execute(&prog, &mut states)?);

        let mut next = Vec::new();
        for v in 0..n {
            if dist[v] == u32::MAX {
                if let Some(&(_, m)) = states[v].received.iter().min_by_key(|&&(_, m)| m) {
                    dist[v] = phase;
                    parent[v] = Some(m as NodeId);
                    next.push(v as NodeId);
                }
            }
        }
        frontier = next;
    }

    Ok(NaiveBfsResult {
        dist,
        parent,
        phases: phase,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    #[test]
    fn naive_bfs_correct_on_path() {
        let g = gen::path(16);
        let mut eng = Engine::new(NetConfig::new(16, 1));
        let r = naive_bfs(&mut eng, &g, 0).unwrap();
        check::check_bfs(&g, 0, &r.dist, &r.parent).unwrap();
        assert!(r.stats.clean());
    }

    #[test]
    fn naive_bfs_correct_on_star_but_slow() {
        let n = 256;
        let g = gen::star(n);
        let mut eng = Engine::new(NetConfig::new(n, 2));
        let r = naive_bfs(&mut eng, &g, 0).unwrap();
        check::check_bfs(&g, 0, &r.dist, &r.parent).unwrap();
        assert!(r.stats.clean(), "TDMA must prevent drops");
        // the center must push n−1 ids through a Θ(log n) cap: Θ(n/log n)
        let cap = eng.config().capacity.send as u64;
        assert!(
            r.stats.rounds >= (n as u64 - 1) / cap,
            "rounds {} suspiciously fast",
            r.stats.rounds
        );
    }

    #[test]
    fn naive_bfs_random_graph() {
        let g = gen::gnp(48, 0.12, 5);
        let mut eng = Engine::new(NetConfig::new(48, 3));
        let r = naive_bfs(&mut eng, &g, 7).unwrap();
        check::check_bfs(&g, 7, &r.dist, &r.parent).unwrap();
        assert!(r.stats.clean());
    }

    #[test]
    fn naive_bfs_never_drops_under_tdma() {
        // adversarial: dense bipartite-ish graph, many simultaneous senders
        let g = gen::gnp(64, 0.5, 7);
        let mut eng = Engine::new(NetConfig::new(64, 4));
        let r = naive_bfs(&mut eng, &g, 0).unwrap();
        check::check_bfs(&g, 0, &r.dist, &r.parent).unwrap();
        assert_eq!(r.stats.dropped, 0);
    }
}
