//! Gossip and broadcast — the intro's capacity-bound demonstrations.
//!
//! §1: *"the gossip problem … requires at least `Ω(n/log n)` rounds in the
//! Node-Capacitated Clique model. Even the simple broadcast problem …
//! already takes time `Ω(log n / log log n)`."*
//!
//! Both protocols here are round-optimal up to constants, so measuring them
//! (experiment E13) traces out exactly those curves:
//!
//! * **gossip** — rotation schedule: in round `t`, node `u` sends its token
//!   to nodes `u + t·cap + 1 … u + (t+1)·cap (mod n)`. Every node sends and
//!   receives exactly `cap` messages per round; `⌈(n−1)/cap⌉` rounds total.
//! * **broadcast** — `cap`-ary information dissemination tree over the
//!   identifiers: node `u`'s children are `cap·u + 1 … cap·u + cap`. Depth
//!   `⌈log n / log cap⌉ = Θ(log n / log log n)` for `cap = Θ(log n)`.

use ncc_model::{Ctx, Engine, Envelope, ExecStats, ModelError, NodeId, NodeProgram};

// ---------------------------------------------------------------------------
// Gossip
// ---------------------------------------------------------------------------

struct GossipProgram {
    n: u64,
    cap: u64,
}

#[derive(Debug, Clone, Default)]
struct GossipState {
    token: u64,
    received_count: u64,
    received_sum: u64,
}

impl GossipProgram {
    fn send_batch(&self, st: &GossipState, ctx: &mut Ctx<'_, u64>) {
        let start = ctx.round * self.cap + 1;
        if start >= self.n {
            return;
        }
        let end = (start + self.cap - 1).min(self.n - 1);
        for off in start..=end {
            let dst = ((ctx.id as u64 + off) % self.n) as NodeId;
            ctx.send(dst, st.token);
        }
        if end < self.n - 1 {
            ctx.stay_awake();
        }
    }
}

impl NodeProgram for GossipProgram {
    type State = GossipState;
    type Payload = u64;

    fn init(&self, st: &mut GossipState, ctx: &mut Ctx<'_, u64>) {
        self.send_batch(st, ctx);
    }

    fn round(&self, st: &mut GossipState, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
        for env in inbox {
            st.received_count += 1;
            st.received_sum = st.received_sum.wrapping_add(env.payload);
        }
        self.send_batch(st, ctx);
    }
}

/// All-to-all token exchange. Returns the statistics; panics (in debug) if
/// any node missed a token. Rounds: `⌈(n−1)/cap⌉ + 1`.
pub fn gossip_all(engine: &mut Engine) -> Result<ExecStats, ModelError> {
    let n = engine.n();
    let cap = (engine
        .config()
        .capacity
        .send
        .min(engine.config().capacity.recv) as u64)
        .min(n as u64); // batches beyond n−1 are pointless (and overflow-safe)
    let prog = GossipProgram { n: n as u64, cap };
    let mut states: Vec<GossipState> = (0..n as u64)
        .map(|u| GossipState {
            token: 1000 + u,
            ..GossipState::default()
        })
        .collect();
    let stats = engine.execute(&prog, &mut states)?;
    let total: u64 = (0..n as u64).map(|u| 1000 + u).sum();
    for (u, st) in states.iter().enumerate() {
        debug_assert_eq!(st.received_count, n as u64 - 1, "node {u} missed tokens");
        debug_assert_eq!(
            st.received_sum,
            total - (1000 + u as u64),
            "node {u} token checksum"
        );
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

struct BroadcastProgram {
    n: u64,
    fanout: u64,
}

#[derive(Debug, Clone, Default)]
struct BroadcastState {
    value: Option<u64>,
}

impl BroadcastProgram {
    fn relay(&self, id: NodeId, value: u64, ctx: &mut Ctx<'_, u64>) {
        for c in 1..=self.fanout {
            let child = self.fanout * id as u64 + c;
            if child < self.n {
                ctx.send(child as NodeId, value);
            }
        }
    }
}

impl NodeProgram for BroadcastProgram {
    type State = BroadcastState;
    type Payload = u64;

    fn init(&self, st: &mut BroadcastState, ctx: &mut Ctx<'_, u64>) {
        if ctx.id == 0 {
            let v = st.value.expect("source holds the value");
            self.relay(0, v, ctx);
        }
    }

    fn round(&self, st: &mut BroadcastState, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
        if let Some(env) = inbox.first() {
            if st.value.is_none() {
                st.value = Some(env.payload);
                self.relay(ctx.id, env.payload, ctx);
            }
        }
    }
}

/// One-to-all broadcast over the `cap`-ary id tree. Returns the statistics;
/// rounds = tree depth = `Θ(log n / log cap)`.
pub fn broadcast_all(engine: &mut Engine, value: u64) -> Result<ExecStats, ModelError> {
    let n = engine.n();
    let fanout = (engine
        .config()
        .capacity
        .send
        .min(engine.config().capacity.recv) as u64)
        .min(n as u64);
    let prog = BroadcastProgram {
        n: n as u64,
        fanout,
    };
    let mut states: Vec<BroadcastState> = vec![BroadcastState::default(); n];
    states[0].value = Some(value);
    let stats = engine.execute(&prog, &mut states)?;
    for (u, st) in states.iter().enumerate() {
        debug_assert_eq!(st.value, Some(value), "node {u} not informed");
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_model::NetConfig;

    #[test]
    fn gossip_completes_and_is_clean() {
        for n in [8usize, 64, 200] {
            let mut eng = Engine::new(NetConfig::new(n, 5));
            let stats = gossip_all(&mut eng).unwrap();
            assert!(stats.clean(), "n={n}");
            let cap = eng.config().capacity.send as u64;
            let expect = (n as u64 - 1).div_ceil(cap);
            assert!(
                stats.rounds >= expect && stats.rounds <= expect + 2,
                "n={n}: rounds {} vs expected ≈{expect}",
                stats.rounds
            );
        }
    }

    #[test]
    fn gossip_rounds_scale_linearly_in_n() {
        let rounds = |n: usize| {
            let mut eng = Engine::new(NetConfig::new(n, 5));
            gossip_all(&mut eng).unwrap().rounds
        };
        let (r256, r1024) = (rounds(256), rounds(1024));
        // n/log n scaling: quadrupling n with cap growing by 10/8 →
        // rounds grow ≈ 3.2×; certainly more than 2×
        assert!(r1024 >= 2 * r256, "r256={r256}, r1024={r1024}");
    }

    #[test]
    fn broadcast_completes_fast() {
        for n in [8usize, 64, 512, 4096] {
            let mut eng = Engine::new(NetConfig::new(n, 6));
            let stats = broadcast_all(&mut eng, 42).unwrap();
            assert!(stats.clean());
            let cap = eng.config().capacity.send as f64;
            let depth = ((n as f64).ln() / cap.ln()).ceil() as u64 + 2;
            assert!(
                stats.rounds <= depth + 2,
                "n={n}: rounds {} vs depth bound {depth}",
                stats.rounds
            );
        }
    }

    #[test]
    fn broadcast_slower_than_constant() {
        // Ω(log n / log log n): at n = 4096 with cap 96 this is ≥ 2 levels
        let mut eng = Engine::new(NetConfig::new(4096, 7));
        let stats = broadcast_all(&mut eng, 1).unwrap();
        assert!(stats.rounds >= 2, "rounds {}", stats.rounds);
    }
}
