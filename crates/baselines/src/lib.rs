//! # ncc-baselines — reference points for the reproduction
//!
//! Three families of baselines:
//!
//! * [`sequential`] — centralised greedy algorithms (MIS, matching,
//!   coloring) used to sanity-check solution *quality* (the paper's
//!   algorithms compute maximal/proper solutions, not optimal ones, so the
//!   comparison is validity plus size ratios);
//! * [`naive`] — what §1/§2.2 argue against: direct neighbor-to-neighbor
//!   communication on the capacitated clique. The implementation respects
//!   the capacity bound *deterministically* via sender-id TDMA slots, which
//!   makes its cost `Θ(n/log n)` rounds per communication phase on
//!   high-degree graphs — the contrast experiment E16 measures against the
//!   `O(a + log n)` primitive stack;
//! * [`dissemination`] — gossip and broadcast protocols matching the
//!   intro's bounds: gossip needs `Ω(n/log n)` rounds (Θ̃(n) bits per round
//!   network-wide), broadcast `Ω(log n / log log n)` (fan-out `Θ(log n)`
//!   doubling).

pub mod dissemination;
pub mod naive;
pub mod sequential;

pub use dissemination::{broadcast_all, gossip_all};
pub use naive::{naive_bfs, NaiveBfsResult};
pub use sequential::{greedy_coloring, greedy_matching, greedy_mis};
