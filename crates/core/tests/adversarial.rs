//! Adversarial-structure tests for the §3–§5 algorithms: the graph
//! families that break naive capacity handling (hubs, dense cores, deep
//! paths) and model corner cases (non-power-of-two n, isolated nodes).

use ncc_core as algo;
use ncc_graph::{check, gen, Graph};
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, NetConfig};

fn setup(n: usize, seed: u64) -> (Engine, SharedRandomness) {
    (
        Engine::new(NetConfig::new(n, seed)),
        SharedRandomness::new(seed ^ 0xADD),
    )
}

#[test]
fn orientation_on_barabasi_albert_hubs() {
    let g = gen::barabasi_albert(200, 4, 3);
    let (mut eng, shared) = setup(200, 1);
    let r = algo::orient(&mut eng, &shared, &g).unwrap();
    let (_, hi) = ncc_graph::analysis::arboricity_bounds(&g);
    check::check_orientation(&g, &r.directed_edges(), 4 * hi).unwrap();
    // the hub's outdegree must be O(a), far below its degree
    assert!(r.max_outdegree() < g.max_degree() / 2);
    assert!(eng.total.clean());
}

#[test]
fn orientation_on_dense_core_plus_pendants() {
    // clique K20 with 44 pendant nodes hanging off node 0: mixes a dense
    // core (high arboricity) with trivial periphery
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..20u32 {
        for v in (u + 1)..20 {
            edges.push((u, v));
        }
    }
    for p in 20..64u32 {
        edges.push((0, p));
    }
    let g = Graph::from_edges(64, edges);
    let (mut eng, shared) = setup(64, 2);
    let r = algo::orient(&mut eng, &shared, &g).unwrap();
    let (_, hi) = ncc_graph::analysis::arboricity_bounds(&g);
    check::check_orientation(&g, &r.directed_edges(), 4 * hi).unwrap();
}

#[test]
fn mis_on_bipartite() {
    let g = gen::bipartite(24, 40, 0.3, 5);
    let (mut eng, shared) = setup(64, 3);
    let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
    let r = algo::mis(&mut eng, &shared, &bt, &g).unwrap();
    check::check_mis(&g, &r.in_mis).unwrap();
}

#[test]
fn matching_on_deep_path_odd_length() {
    let g = gen::path(49);
    let (mut eng, shared) = setup(49, 4);
    let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
    let r = algo::maximal_matching(&mut eng, &shared, &bt, &g).unwrap();
    check::check_matching(&g, &r.mate).unwrap();
    // a maximal matching on P_49 has at least ⌈48/3⌉ = 16 edges
    let size = r.mate.iter().filter(|m| m.is_some()).count() / 2;
    assert!(size >= 16, "matching size {size}");
}

#[test]
fn coloring_on_clique_plus_isolated() {
    // K12 plus 20 isolated nodes: levels collapse, palette must cover the
    // clique (a = 6 there)
    let mut edges = Vec::new();
    for u in 0..12u32 {
        for v in (u + 1)..12 {
            edges.push((u, v));
        }
    }
    let g = Graph::from_edges(32, edges);
    let (mut eng, shared) = setup(32, 5);
    let o = algo::orient(&mut eng, &shared, &g).unwrap();
    let r = algo::coloring(&mut eng, &shared, &o, &g).unwrap();
    check::check_coloring(&g, &r.colors, r.palette).unwrap();
    // clique nodes all differ
    for u in 0..12usize {
        for v in (u + 1)..12 {
            assert_ne!(r.colors[u], r.colors[v]);
        }
    }
}

#[test]
fn bfs_from_every_source_on_asymmetric_graph() {
    let g = gen::barabasi_albert(48, 2, 9);
    let (mut eng, shared) = setup(48, 6);
    let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
    for src in [0u32, 7, 23, 47] {
        let r = algo::bfs(&mut eng, &shared, &bt, &g, src).unwrap();
        check::check_bfs(&g, src, &r.dist, &r.parent).unwrap();
    }
}

#[test]
fn mst_star_heavy_center_weights() {
    // the lightest edges all share the center: FindMin must disambiguate
    // many same-endpoint arcs
    let _star_shape = gen::star(60); // shape reference; weights built explicitly below
    let wg = ncc_graph::WeightedGraph::from_weighted_edges(
        60,
        (1..60u32).map(|v| (0, v, (v as u64) % 7 + 1)),
    );
    let (mut eng, shared) = setup(60, 7);
    let r = algo::mst(&mut eng, &shared, &wg).unwrap();
    check::check_mst(&wg, &r.edges).unwrap();
    assert_eq!(r.edges.len(), 59);
}

#[test]
fn mst_two_cliques_one_bridge() {
    // the bridge is the unique cut edge; it must always be found
    let mut edges = Vec::new();
    for u in 0..10u32 {
        for v in (u + 1)..10 {
            edges.push((u, v, 5 + (u + v) as u64));
        }
    }
    for u in 10..20u32 {
        for v in (u + 1)..20 {
            edges.push((u, v, 5 + (u + v) as u64));
        }
    }
    edges.push((3, 14, 1000)); // expensive bridge, still mandatory
    let wg = ncc_graph::WeightedGraph::from_weighted_edges(20, edges);
    let (mut eng, shared) = setup(20, 8);
    let r = algo::mst(&mut eng, &shared, &wg).unwrap();
    check::check_mst(&wg, &r.edges).unwrap();
    assert!(r.edges.contains(&(3, 14)), "bridge missing: {:?}", r.edges);
}

#[test]
fn full_suite_on_non_power_of_two() {
    for n in [19usize, 37, 67] {
        let g = gen::gnp(n, 0.15, n as u64);
        let (mut eng, shared) = setup(n, 9 + n as u64);
        let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
        let r = algo::mis(&mut eng, &shared, &bt, &g).unwrap();
        check::check_mis(&g, &r.in_mis).unwrap();
        let m = algo::maximal_matching(&mut eng, &shared, &bt, &g).unwrap();
        check::check_matching(&g, &m.mate).unwrap();
        assert!(eng.total.clean(), "n={n}");
    }
}

#[test]
fn parallel_engine_full_pipeline_identical() {
    let n = 300;
    let g = gen::gnp(n, 0.08, 5);
    let run = |threads: usize| {
        let mut eng = Engine::new(NetConfig::new(n, 44).with_threads(threads));
        let shared = SharedRandomness::new(45);
        let (bt, _) = algo::build_broadcast_trees(&mut eng, &shared, &g).unwrap();
        let r = algo::coloring(&mut eng, &shared, &bt.orientation, &g).unwrap();
        (r.colors, eng.total)
    };
    let (c1, t1) = run(1);
    let (c4, t4) = run(4);
    assert_eq!(c1, c4);
    assert_eq!(t1, t4);
}
