//! Small supporting protocols used inside the §4/§5 algorithms.
//!
//! * [`gather_and_broadcast`] — the "high-degree identifiers" pattern of §4
//!   Stage 2: a sparse set of nodes sends their identifiers to node 0 over
//!   the butterfly's binomial tree (queued, smallest-first) and node 0
//!   broadcasts them back pipelined. `O(k + log n)` rounds for `k` values.
//! * [`scheduled_exchange`] — point-to-point sends at node-chosen rounds
//!   (the "pick a uniform round in {1..T}" load-smoothing idiom used by §4
//!   Stage 2's `R_u` responses and several §5 steps).
//! * [`rendezvous`] — §4 Stage 3: both endpoints of an edge hash to a
//!   common `(node, round)`; the rendezvous node answers both senders when
//!   two identical edge identifiers collide.

use std::collections::BTreeSet;

use ncc_butterfly::Butterfly;
use ncc_hashing::FxHashMap;
use ncc_model::{Ctx, Engine, Envelope, ExecStats, ModelError, NodeId, NodeProgram};

// ---------------------------------------------------------------------------
// Gather-and-broadcast of a sparse identifier set
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum GatherMsg {
    /// Value moving toward node 0 (or injected from a proxy node).
    Gather(u64),
    /// Value broadcast back down the binomial tree.
    Bcast(u64),
}

impl ncc_model::Payload for GatherMsg {
    fn bit_size(&self) -> u32 {
        match self {
            GatherMsg::Gather(v) | GatherMsg::Bcast(v) => 1 + ncc_model::payload::min_bits(*v),
        }
    }
}

#[derive(Debug, Default, Clone)]
struct GatherState {
    /// Pending values to forward toward the root (sorted, min first).
    queue: BTreeSet<u64>,
    /// At node 0: everything collected. Everywhere: everything broadcast.
    collected: Vec<u64>,
}

struct GatherProgram {
    bf: Butterfly,
    n: usize,
}

impl GatherProgram {
    fn parent(&self, alpha: u32) -> u32 {
        alpha & (alpha - 1) // clear lowest set bit
    }
}

impl NodeProgram for GatherProgram {
    type State = GatherState;
    type Payload = GatherMsg;

    fn init(&self, st: &mut GatherState, ctx: &mut Ctx<'_, GatherMsg>) {
        if !self.bf.emulates(ctx.id) {
            // proxy-inject, one value per round
            if let Some(&v) = st.queue.iter().next() {
                st.queue.remove(&v);
                let proxy = self.bf.emulator(self.bf.proxy_column(ctx.id));
                ctx.send(proxy, GatherMsg::Gather(v));
                if !st.queue.is_empty() {
                    ctx.stay_awake();
                }
            }
            return;
        }
        if !st.queue.is_empty() {
            ctx.stay_awake();
        }
    }

    fn round(
        &self,
        st: &mut GatherState,
        inbox: &[Envelope<GatherMsg>],
        ctx: &mut Ctx<'_, GatherMsg>,
    ) {
        if !self.bf.emulates(ctx.id) {
            // continue proxy injection; also absorb broadcasts
            for env in inbox {
                if let GatherMsg::Bcast(v) = env.payload {
                    st.collected.push(v);
                }
            }
            if let Some(&v) = st.queue.iter().next() {
                st.queue.remove(&v);
                let proxy = self.bf.emulator(self.bf.proxy_column(ctx.id));
                ctx.send(proxy, GatherMsg::Gather(v));
                if !st.queue.is_empty() {
                    ctx.stay_awake();
                }
            }
            return;
        }
        let alpha = self.bf.column_of(ctx.id);
        for env in inbox {
            match env.payload {
                GatherMsg::Gather(v) => {
                    if alpha == 0 {
                        st.collected.push(v);
                    } else {
                        st.queue.insert(v);
                    }
                }
                GatherMsg::Bcast(v) => {
                    st.collected.push(v);
                    // relay down the binomial tree, pipelined
                    let limit = if alpha == 0 {
                        self.bf.d()
                    } else {
                        alpha.trailing_zeros()
                    };
                    for b in 0..limit {
                        ctx.send(self.bf.emulator(alpha | (1 << b)), GatherMsg::Bcast(v));
                    }
                    if let Some(att) = self.bf.attached_node(alpha) {
                        if (att as usize) < self.n {
                            ctx.send(att, GatherMsg::Bcast(v));
                        }
                    }
                }
            }
        }
        if alpha != 0 {
            if let Some(&v) = st.queue.iter().next() {
                st.queue.remove(&v);
                ctx.send(self.bf.emulator(self.parent(alpha)), GatherMsg::Gather(v));
            }
            if !st.queue.is_empty() {
                ctx.stay_awake();
            }
        }
    }
}

/// Broadcast phase driver state is the same program with node 0 seeding
/// `Bcast` messages; implemented as a second program for clarity.
struct BcastProgram {
    bf: Butterfly,
    n: usize,
}

#[derive(Debug, Default, Clone)]
struct BcastState {
    to_send: Vec<u64>,
    received: Vec<u64>,
}

impl NodeProgram for BcastProgram {
    type State = BcastState;
    type Payload = GatherMsg;

    fn init(&self, st: &mut BcastState, ctx: &mut Ctx<'_, GatherMsg>) {
        if ctx.id == 0 && !st.to_send.is_empty() {
            ctx.stay_awake();
        }
    }

    fn round(
        &self,
        st: &mut BcastState,
        inbox: &[Envelope<GatherMsg>],
        ctx: &mut Ctx<'_, GatherMsg>,
    ) {
        if !self.bf.emulates(ctx.id) {
            for env in inbox {
                if let GatherMsg::Bcast(v) = env.payload {
                    st.received.push(v);
                }
            }
            return;
        }
        let alpha = self.bf.column_of(ctx.id);
        let mut relay: Vec<u64> = Vec::new();
        if ctx.id == 0 {
            let idx = (ctx.round - 1) as usize;
            if idx < st.to_send.len() {
                let v = st.to_send[idx];
                st.received.push(v);
                relay.push(v);
                if idx + 1 < st.to_send.len() {
                    ctx.stay_awake();
                }
            }
        }
        for env in inbox {
            if let GatherMsg::Bcast(v) = env.payload {
                st.received.push(v);
                relay.push(v);
            }
        }
        for v in relay {
            let limit = if alpha == 0 {
                self.bf.d()
            } else {
                alpha.trailing_zeros()
            };
            for b in 0..limit {
                ctx.send(self.bf.emulator(alpha | (1 << b)), GatherMsg::Bcast(v));
            }
            if let Some(att) = self.bf.attached_node(alpha) {
                if (att as usize) < self.n {
                    ctx.send(att, GatherMsg::Bcast(v));
                }
            }
        }
    }
}

/// Gathers the `Some` values to node 0 (queued, smallest-first, over the
/// butterfly's binomial tree) and broadcasts the collected sorted list back
/// to every node. Returns the list (identical at every node, asserted).
/// Rounds: `O(k + log n)` for `k` values.
pub fn gather_and_broadcast(
    engine: &mut Engine,
    values: Vec<Option<u64>>,
) -> Result<(Vec<u64>, ExecStats), ModelError> {
    let n = engine.n();
    assert_eq!(values.len(), n);
    if n == 1 {
        let v: Vec<u64> = values.into_iter().flatten().collect();
        return Ok((v, ExecStats::default()));
    }
    let bf = Butterfly::for_n(n);
    let mut total = ExecStats::default();

    // gather
    let gprog = GatherProgram { bf, n };
    let mut gstates: Vec<GatherState> = values
        .into_iter()
        .map(|v| GatherState {
            queue: v.into_iter().collect(),
            collected: Vec::new(),
        })
        .collect();
    total.merge(&engine.execute(&gprog, &mut gstates)?);
    total.merge(&ncc_butterfly::sync_barrier(engine)?);

    let mut collected = std::mem::take(&mut gstates[0].collected);
    // node 0's own value never left its queue in the gather program
    collected.extend(gstates[0].queue.iter().copied());
    collected.sort_unstable();
    collected.dedup();

    // broadcast
    let bprog = BcastProgram { bf, n };
    let mut bstates: Vec<BcastState> = (0..n).map(|_| BcastState::default()).collect();
    bstates[0].to_send = collected;
    total.merge(&engine.execute(&bprog, &mut bstates)?);
    total.merge(&ncc_butterfly::sync_barrier(engine)?);

    let reference = {
        let mut r = bstates[0].received.clone();
        r.sort_unstable();
        r
    };
    for (v, st) in bstates.iter().enumerate() {
        let mut got = st.received.clone();
        got.sort_unstable();
        debug_assert_eq!(got, reference, "node {v} missed broadcast values");
    }
    Ok((reference, total))
}

// ---------------------------------------------------------------------------
// Scheduled point-to-point exchange
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
pub struct ScheduleState {
    /// `(round ≥ 1, dst, value)` — must be sorted by round.
    pub to_send: Vec<(u64, NodeId, u64)>,
    /// `(src, value)` received.
    pub received: Vec<(NodeId, u64)>,
}

struct ScheduleProgram;

impl ScheduleProgram {
    fn flush(&self, st: &mut ScheduleState, ctx: &mut Ctx<'_, u64>) {
        let now = ctx.round + 1;
        let due = st.to_send.partition_point(|(r, _, _)| *r <= now);
        for (_, dst, v) in st.to_send.drain(..due) {
            ctx.send(dst, v);
        }
        if !st.to_send.is_empty() {
            ctx.stay_awake();
        }
    }
}

impl NodeProgram for ScheduleProgram {
    type State = ScheduleState;
    type Payload = u64;

    fn init(&self, st: &mut ScheduleState, ctx: &mut Ctx<'_, u64>) {
        st.to_send.sort_by_key(|&(r, d, v)| (r, d, v));
        self.flush(st, ctx);
    }

    fn round(&self, st: &mut ScheduleState, inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
        for env in inbox {
            st.received.push((env.src, env.payload));
        }
        self.flush(st, ctx);
    }
}

/// Runs a scheduled point-to-point exchange: node `u` sends `value` to
/// `dst` in its chosen `round`. Returns per node the `(src, value)` pairs
/// received. The caller is responsible for schedules that respect the
/// capacity bound w.h.p. (uniform rounds over a window ≥ load/log n).
pub fn scheduled_exchange(
    engine: &mut Engine,
    schedules: Vec<Vec<(u64, NodeId, u64)>>,
) -> Result<(ReceivedPerNode, ExecStats), ModelError> {
    let n = engine.n();
    assert_eq!(schedules.len(), n);
    let mut states: Vec<ScheduleState> = schedules
        .into_iter()
        .map(|to_send| ScheduleState {
            to_send,
            received: Vec::new(),
        })
        .collect();
    let mut total = engine.execute(&ScheduleProgram, &mut states)?;
    total.merge(&ncc_butterfly::sync_barrier(engine)?);
    Ok((states.into_iter().map(|s| s.received).collect(), total))
}

// ---------------------------------------------------------------------------
// Edge rendezvous (§4 Stage 3)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RdvMsg {
    /// Edge-message: canonical edge id, sent by an endpoint.
    Probe(u64),
    /// Response: both endpoints sent the same id this round.
    Match(u64),
}

impl ncc_model::Payload for RdvMsg {
    fn bit_size(&self) -> u32 {
        match self {
            RdvMsg::Probe(v) | RdvMsg::Match(v) => 1 + ncc_model::payload::min_bits(*v),
        }
    }
}

#[derive(Debug, Default, Clone)]
struct RdvState {
    /// `(round, rendezvous node, edge id)`, sorted by round.
    probes: Vec<(u64, NodeId, u64)>,
    /// Edge ids confirmed to have both endpoints probing.
    matched: Vec<u64>,
}

struct RdvProgram {
    /// Extracts the two endpoints from a canonical edge id.
    id_bits: u32,
}

impl RdvProgram {
    fn endpoints(&self, edge_id: u64) -> (NodeId, NodeId) {
        (
            (edge_id >> self.id_bits) as NodeId,
            (edge_id & ((1 << self.id_bits) - 1)) as NodeId,
        )
    }

    fn flush(&self, st: &mut RdvState, ctx: &mut Ctx<'_, RdvMsg>) {
        let now = ctx.round + 1;
        let due = st.probes.partition_point(|(r, _, _)| *r <= now);
        for (_, dst, id) in st.probes.drain(..due) {
            ctx.send(dst, RdvMsg::Probe(id));
        }
        if !st.probes.is_empty() {
            ctx.stay_awake();
        }
    }
}

impl NodeProgram for RdvProgram {
    type State = RdvState;
    type Payload = RdvMsg;

    fn init(&self, st: &mut RdvState, ctx: &mut Ctx<'_, RdvMsg>) {
        st.probes.sort_by_key(|&(r, d, v)| (r, d, v));
        self.flush(st, ctx);
    }

    fn round(&self, st: &mut RdvState, inbox: &[Envelope<RdvMsg>], ctx: &mut Ctx<'_, RdvMsg>) {
        // count same-round probes per edge id
        let mut seen: FxHashMap<u64, u32> = FxHashMap::default();
        for env in inbox {
            match env.payload {
                RdvMsg::Probe(id) => *seen.entry(id).or_insert(0) += 1,
                RdvMsg::Match(id) => st.matched.push(id),
            }
        }
        for (id, count) in seen {
            if count >= 2 {
                let (a, b) = self.endpoints(id);
                ctx.send(a, RdvMsg::Match(id));
                ctx.send(b, RdvMsg::Match(id));
            }
        }
        self.flush(st, ctx);
    }
}

/// Runs the §4 Stage 3 rendezvous: each participating node probes
/// `(round, node)` pairs derived from shared hashes of its candidate edge
/// ids; when both endpoints of an edge probe the same node in the same
/// round, both get a `Match`. Returns per node the matched edge ids.
pub fn rendezvous(
    engine: &mut Engine,
    probes: Vec<Vec<(u64, NodeId, u64)>>,
    id_bits: u32,
) -> Result<(Vec<Vec<u64>>, ExecStats), ModelError> {
    let n = engine.n();
    assert_eq!(probes.len(), n);
    let mut states: Vec<RdvState> = probes
        .into_iter()
        .map(|p| RdvState {
            probes: p,
            matched: Vec::new(),
        })
        .collect();
    let prog = RdvProgram { id_bits };
    let mut total = engine.execute(&prog, &mut states)?;
    total.merge(&ncc_butterfly::sync_barrier(engine)?);
    Ok((states.into_iter().map(|s| s.matched).collect(), total))
}

/// Per-node received `(source, value)` pairs from a scheduled exchange.
pub type ReceivedPerNode = Vec<Vec<(NodeId, u64)>>;

// ---------------------------------------------------------------------------
// Composable lane adapters (for protocol DAGs)
// ---------------------------------------------------------------------------

/// [`scheduled_exchange`] as a composable lane: one stage on the engine's
/// own randomness stream (the program draws none). Read with
/// [`ScheduleSub::into_results`].
pub struct ScheduleSub {
    stage: Option<Vec<ScheduleState>>,
    out: Option<ReceivedPerNode>,
}

/// Builds the scheduled-exchange sub-protocol. Arguments mirror
/// [`scheduled_exchange`].
pub fn schedule_sub(n: usize, schedules: Vec<Vec<(u64, NodeId, u64)>>) -> ScheduleSub {
    assert_eq!(schedules.len(), n);
    let states = schedules
        .into_iter()
        .map(|to_send| ScheduleState {
            to_send,
            received: Vec::new(),
        })
        .collect();
    ScheduleSub {
        stage: Some(states),
        out: None,
    }
}

impl ScheduleSub {
    /// Per-node `(src, value)` pairs. Panics before the composition finished.
    pub fn into_results(self) -> ReceivedPerNode {
        self.out
            .expect("scheduled-exchange sub-protocol not finished")
    }
}

impl<'a> ncc_butterfly::LaneSub<'a> for ScheduleSub {
    fn install(&mut self, b: &mut ncc_model::MuxBuilder<'a>) -> Option<ncc_model::LaneId> {
        let states = self.stage.take()?;
        Some(b.lane(ScheduleProgram, states))
    }

    fn collect(&mut self, lane: ncc_model::LaneId, states: &mut [ncc_model::MuxState]) {
        let st: Vec<ScheduleState> = ncc_model::take_lane_states(states, lane);
        self.out = Some(st.into_iter().map(|s| s.received).collect());
    }

    fn is_done(&self) -> bool {
        self.out.is_some()
    }
}

/// [`rendezvous`] as a composable lane: one stage. Read with
/// [`RdvSub::into_results`].
pub struct RdvSub {
    stage: Option<(RdvProgram, Vec<RdvState>)>,
    out: Option<Vec<Vec<u64>>>,
}

/// Builds the rendezvous sub-protocol. Arguments mirror [`rendezvous`].
pub fn rendezvous_sub(n: usize, probes: Vec<Vec<(u64, NodeId, u64)>>, id_bits: u32) -> RdvSub {
    assert_eq!(probes.len(), n);
    let states = probes
        .into_iter()
        .map(|p| RdvState {
            probes: p,
            matched: Vec::new(),
        })
        .collect();
    RdvSub {
        stage: Some((RdvProgram { id_bits }, states)),
        out: None,
    }
}

impl RdvSub {
    /// Per-node matched edge ids. Panics before the composition finished.
    pub fn into_results(self) -> Vec<Vec<u64>> {
        self.out.expect("rendezvous sub-protocol not finished")
    }
}

impl<'a> ncc_butterfly::LaneSub<'a> for RdvSub {
    fn install(&mut self, b: &mut ncc_model::MuxBuilder<'a>) -> Option<ncc_model::LaneId> {
        let (prog, states) = self.stage.take()?;
        Some(b.lane(prog, states))
    }

    fn collect(&mut self, lane: ncc_model::LaneId, states: &mut [ncc_model::MuxState]) {
        let st: Vec<RdvState> = ncc_model::take_lane_states(states, lane);
        self.out = Some(st.into_iter().map(|s| s.matched).collect());
    }

    fn is_done(&self) -> bool {
        self.out.is_some()
    }
}

/// [`gather_and_broadcast`] as a composable lane: two stages (gather toward
/// node 0, pipelined broadcast back), with the collect step between them
/// performing node 0's sort/dedup locally — exactly the blocking function's
/// structure. Read with [`GatherBcastSub::into_results`].
pub struct GatherBcastSub {
    n: usize,
    bf: Option<Butterfly>,
    /// 0 = gather, 1 = broadcast (stage being installed/collected next).
    stage: u8,
    gather: Option<Vec<GatherState>>,
    bcast: Option<Vec<BcastState>>,
    out: Option<Vec<u64>>,
}

/// Builds the gather-and-broadcast sub-protocol. Arguments mirror
/// [`gather_and_broadcast`].
pub fn gather_broadcast_sub(n: usize, values: Vec<Option<u64>>) -> GatherBcastSub {
    assert_eq!(values.len(), n);
    if n == 1 {
        let v: Vec<u64> = values.into_iter().flatten().collect();
        return GatherBcastSub {
            n,
            bf: None,
            stage: 0,
            gather: None,
            bcast: None,
            out: Some(v),
        };
    }
    let bf = Butterfly::for_n(n);
    let gstates = values
        .into_iter()
        .map(|v| GatherState {
            queue: v.into_iter().collect(),
            collected: Vec::new(),
        })
        .collect();
    GatherBcastSub {
        n,
        bf: Some(bf),
        stage: 0,
        gather: Some(gstates),
        bcast: None,
        out: None,
    }
}

impl GatherBcastSub {
    /// The collected sorted list (identical at every node). Panics before
    /// the composition finished.
    pub fn into_results(self) -> Vec<u64> {
        self.out
            .expect("gather-and-broadcast sub-protocol not finished")
    }
}

impl<'a> ncc_butterfly::LaneSub<'a> for GatherBcastSub {
    fn install(&mut self, b: &mut ncc_model::MuxBuilder<'a>) -> Option<ncc_model::LaneId> {
        let bf = self.bf?;
        if let Some(gstates) = self.gather.take() {
            return Some(b.lane(GatherProgram { bf, n: self.n }, gstates));
        }
        let bstates = self.bcast.take()?;
        Some(b.lane(BcastProgram { bf, n: self.n }, bstates))
    }

    fn collect(&mut self, lane: ncc_model::LaneId, states: &mut [ncc_model::MuxState]) {
        if self.stage == 0 {
            // end of the gather stage: node 0 sorts and seeds the broadcast
            self.stage = 1;
            let mut gstates: Vec<GatherState> = ncc_model::take_lane_states(states, lane);
            let mut collected = std::mem::take(&mut gstates[0].collected);
            collected.extend(gstates[0].queue.iter().copied());
            collected.sort_unstable();
            collected.dedup();
            let mut bstates: Vec<BcastState> = (0..self.n).map(|_| BcastState::default()).collect();
            bstates[0].to_send = collected;
            self.bcast = Some(bstates);
        } else {
            let bstates: Vec<BcastState> = ncc_model::take_lane_states(states, lane);
            let reference = {
                let mut r = bstates[0].received.clone();
                r.sort_unstable();
                r
            };
            for (v, st) in bstates.iter().enumerate() {
                let mut got = st.received.clone();
                got.sort_unstable();
                debug_assert_eq!(got, reference, "node {v} missed broadcast values");
            }
            self.out = Some(reference);
        }
    }

    fn is_done(&self) -> bool {
        self.out.is_some()
    }
}

/// Canonical undirected edge id: `min ∘ max` packed with `id_bits` per node.
#[inline]
pub fn edge_id(u: NodeId, v: NodeId, id_bits: u32) -> u64 {
    let (a, b) = (u.min(v), u.max(v));
    ((a as u64) << id_bits) | b as u64
}

/// Directed arc id: `u ∘ v` packed with `id_bits` per endpoint.
#[inline]
pub fn arc_id(u: NodeId, v: NodeId, id_bits: u32) -> u64 {
    ((u as u64) << id_bits) | v as u64
}

/// Bits needed per node id in arc/edge encodings.
#[inline]
pub fn node_id_bits(n: usize) -> u32 {
    ncc_model::ilog2_ceil(n).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_model::NetConfig;

    #[test]
    fn gather_broadcast_collects_sparse_set() {
        for n in [8usize, 21, 64] {
            let mut eng = Engine::new(NetConfig::new(n, 3));
            let mut values = vec![None; n];
            values[1] = Some(100);
            values[n - 1] = Some(7);
            values[n / 2] = Some(55);
            let (list, stats) = gather_and_broadcast(&mut eng, values).unwrap();
            assert_eq!(list, vec![7, 55, 100], "n={n}");
            assert!(stats.clean());
        }
    }

    #[test]
    fn gather_broadcast_includes_node_zero() {
        let n = 16;
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let mut values = vec![None; n];
        values[0] = Some(42);
        let (list, _) = gather_and_broadcast(&mut eng, values).unwrap();
        assert_eq!(list, vec![42]);
    }

    #[test]
    fn gather_broadcast_empty() {
        let n = 16;
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let (list, _) = gather_and_broadcast(&mut eng, vec![None; n]).unwrap();
        assert!(list.is_empty());
    }

    #[test]
    fn gather_rounds_linear_in_k_plus_log() {
        let n = 128;
        let k = 30;
        let mut eng = Engine::new(NetConfig::new(n, 3));
        let mut values = vec![None; n];
        for i in 0..k {
            values[i * 4] = Some(i as u64);
        }
        let (list, stats) = gather_and_broadcast(&mut eng, values).unwrap();
        assert_eq!(list.len(), k);
        assert!(stats.rounds <= (k as u64) + 60, "rounds {}", stats.rounds);
    }

    #[test]
    fn scheduled_exchange_delivers() {
        let n = 16;
        let mut eng = Engine::new(NetConfig::new(n, 9));
        let mut schedules = vec![Vec::new(); n];
        schedules[3] = vec![(1, 7, 33), (2, 8, 34)];
        schedules[5] = vec![(1, 7, 55)];
        let (recv, stats) = scheduled_exchange(&mut eng, schedules).unwrap();
        let mut at7 = recv[7].clone();
        at7.sort_unstable();
        assert_eq!(at7, vec![(3, 33), (5, 55)]);
        assert_eq!(recv[8], vec![(3, 34)]);
        assert!(stats.clean());
    }

    #[test]
    fn rendezvous_matches_pairs_only() {
        let n = 32;
        let idb = node_id_bits(n);
        let mut eng = Engine::new(NetConfig::new(n, 13));
        let mut probes = vec![Vec::new(); n];
        // edge {2, 9}: both endpoints probe node 20 in round 1 → match
        let e29 = edge_id(2, 9, idb);
        probes[2].push((1, 20, e29));
        probes[9].push((1, 20, e29));
        // edge {4, 11}: only node 4 probes → no match
        let e411 = edge_id(4, 11, idb);
        probes[4].push((1, 21, e411));
        // edge {5, 6}: endpoints probe the same node in DIFFERENT rounds → no match
        let e56 = edge_id(5, 6, idb);
        probes[5].push((1, 22, e56));
        probes[6].push((2, 22, e56));
        let (matched, _) = rendezvous(&mut eng, probes, idb).unwrap();
        assert_eq!(matched[2], vec![e29]);
        assert_eq!(matched[9], vec![e29]);
        assert!(matched[4].is_empty());
        assert!(matched[5].is_empty());
        assert!(matched[6].is_empty());
    }

    #[test]
    fn edge_and_arc_ids() {
        let idb = node_id_bits(100);
        assert_eq!(edge_id(9, 2, idb), edge_id(2, 9, idb));
        assert_ne!(arc_id(9, 2, idb), arc_id(2, 9, idb));
        let e = edge_id(2, 9, idb);
        assert_eq!((e >> idb) as u32, 2);
        assert_eq!((e & ((1 << idb) - 1)) as u32, 9);
    }
}
