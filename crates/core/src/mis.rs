//! Maximal Independent Set (§5.2, Theorem 5.3): `O((a + log n) log n)`.
//!
//! The algorithm of Métivier, Robson, Saheb-Djahromi and Zemmari \[48\] run
//! over the broadcast trees: each phase, every active node draws a random
//! value and multicasts it to its neighborhood (Multi-Aggregation, MIN);
//! a node strictly below all active neighbors joins the MIS and announces
//! it with a second Multi-Aggregation, deactivating its neighborhood.
//! `O(log n)` phases suffice w.h.p. \[48\]; each phase is `O(a + log n)` by
//! Corollary 1.
//!
//! Each phase is declared as a protocol [`Dag`] — draw → join decision →
//! announce → termination check — and the scheduler serialises the chain
//! (every node depends on its predecessor) while charging the same stages
//! and barriers as the hand-fused lane code did.

use ncc_butterfly::{
    ab_sub, lane_seed, multi_aggregate_sub, Dag, GroupId, MaxU64, MinU64, SchedReport,
};
use ncc_graph::Graph;
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, ModelError, NodeId};
use rand::Rng;

use crate::broadcast_trees::{neighborhood_group, BroadcastTrees};
use crate::report::AlgoReport;

/// Output of the distributed MIS.
#[derive(Debug, Clone)]
pub struct MisResult {
    pub in_mis: Vec<bool>,
    pub phases: u32,
    pub report: AlgoReport,
    /// The scheduler's packing plan across all phases.
    pub plan: SchedReport,
}

/// Runs the MIS algorithm over prebuilt broadcast trees.
pub fn mis(
    engine: &mut Engine,
    shared: &SharedRandomness,
    bt: &BroadcastTrees,
    g: &Graph,
) -> Result<MisResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, g.n());
    let logn = ncc_model::ilog2_ceil(n).max(1);
    let idb = crate::support::node_id_bits(n);
    let mut report = AlgoReport::default();
    let mut plan = SchedReport::default();

    let mut in_mis = vec![false; n];
    let mut active = vec![true; n];
    let max_phases = 8 * logn + 24;

    let mut phase: u32 = 0;
    loop {
        phase += 1;
        assert!(
            phase <= max_phases,
            "MIS did not converge in {max_phases} phases"
        );

        // --- step 1: active nodes draw and multicast random values --------
        // r(u) ∈ [0,1] realised as a 2·log n-bit integer with the node id as
        // tie-break (values are then distinct, as the analysis assumes).
        let mut rvals: Vec<u64> = vec![0; n];
        let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
        for u in 0..n {
            if active[u] {
                let mut rng = ncc_model::rng::node_rng(
                    engine.config().seed ^ 0x4d49_5300 ^ ((phase as u64) << 32),
                    u as u32,
                );
                let r: u64 = rng.gen_range(0..(1u64 << (2 * logn).min(40)));
                rvals[u] = (r << idb) | u as u64;
                messages[u] = Some((neighborhood_group(u as NodeId), rvals[u]));
            }
        }
        let draw_seed = lane_seed(engine, 0x6d69_7301, phase as u64);
        let announce_seed = lane_seed(engine, 0x6d69_7302, phase as u64);
        let trees = &bt.trees;

        let mut dag = Dag::new();
        let draw = dag.proto(
            format!("p{phase}:draw"),
            &[],
            move |_| {
                multi_aggregate_sub(
                    n,
                    shared,
                    trees,
                    messages,
                    |_, _, _, v| *v,
                    &MinU64,
                    draw_seed,
                )
            },
            |s| s.into_results(),
        );
        // a node joins if strictly below the minimum over its *active*
        // neighbors (only active nodes sent, so the delivered MIN is it)
        let pick_active = active.clone();
        let pick_rvals = rvals.clone();
        let pick = dag.compute(format!("p{phase}:pick"), &[draw.into()], move |d| {
            let mins = d.get(draw);
            (0..n)
                .map(|u| {
                    pick_active[u]
                        && match mins[u] {
                            None => true, // no active neighbor left
                            Some(m) => pick_rvals[u] < m,
                        }
                })
                .collect::<Vec<bool>>()
        });
        // --- step 2: joiners announce, neighborhoods deactivate -----------
        let announce = dag.proto(
            format!("p{phase}:announce"),
            &[pick.into()],
            move |d| {
                let joined = d.get(pick);
                let messages: Vec<Option<(GroupId, u64)>> = (0..n)
                    .map(|u| joined[u].then(|| (neighborhood_group(u as NodeId), 1)))
                    .collect();
                multi_aggregate_sub(
                    n,
                    shared,
                    trees,
                    messages,
                    |_, _, _, v| *v,
                    &MaxU64,
                    announce_seed,
                )
            },
            |s| s.into_results(),
        );
        // --- termination consensus ----------------------------------------
        let flag_active = active.clone();
        let flag = dag.compute(
            format!("p{phase}:flag"),
            &[pick.into(), announce.into()],
            move |d| {
                let joined = d.get(pick);
                let hit = d.get(announce);
                (0..n)
                    .map(|u| (flag_active[u] && !joined[u] && hit[u].is_none()).then_some(1u64))
                    .collect::<Vec<Option<u64>>>()
            },
        );
        let check = dag.proto(
            format!("p{phase}:check"),
            &[flag.into()],
            move |d| ab_sub(n, d.get(flag).clone(), &MaxU64),
            |s| s.into_results(),
        );

        let mut run = dag.run(engine)?;
        report.push(format!("phase{phase}"), run.stats);
        let joined = run.outputs.take(pick);
        let hit = run.outputs.take(announce);
        let any = run.outputs.take(check);
        plan.merge(run.report);

        for u in 0..n {
            if joined[u] {
                in_mis[u] = true;
                active[u] = false;
            } else if active[u] && hit[u].is_some() {
                active[u] = false;
            }
        }
        if any[0].is_none() {
            break;
        }
    }

    Ok(MisResult {
        in_mis,
        phases: phase,
        report,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast_trees::build_broadcast_trees;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    fn run(g: &Graph, seed: u64) -> MisResult {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0x415);
        let (bt, _) = build_broadcast_trees(&mut eng, &shared, g).unwrap();
        mis(&mut eng, &shared, &bt, g).unwrap()
    }

    fn assert_valid(g: &Graph, r: &MisResult) {
        check::check_mis(g, &r.in_mis).unwrap_or_else(|e| panic!("invalid MIS: {e}"));
    }

    #[test]
    fn star_mis() {
        let g = gen::star(48);
        let r = run(&g, 1);
        assert_valid(&g, &r);
        // either the center alone, or all leaves
        if r.in_mis[0] {
            assert_eq!(r.in_mis.iter().filter(|&&b| b).count(), 1);
        } else {
            assert_eq!(r.in_mis.iter().filter(|&&b| b).count(), 47);
        }
    }

    #[test]
    fn path_mis() {
        let g = gen::path(30);
        let r = run(&g, 2);
        assert_valid(&g, &r);
    }

    #[test]
    fn empty_graph_everyone_in() {
        let g = Graph::empty(16);
        let r = run(&g, 3);
        assert_valid(&g, &r);
        assert!(r.in_mis.iter().all(|&b| b));
        assert_eq!(r.phases, 1);
    }

    #[test]
    fn complete_graph_single_winner() {
        let g = gen::complete(24);
        let r = run(&g, 4);
        assert_valid(&g, &r);
        assert_eq!(r.in_mis.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn random_graphs_valid_and_fast() {
        for seed in 0..3 {
            let g = gen::gnp(64, 0.1, seed);
            let r = run(&g, 10 + seed);
            assert_valid(&g, &r);
            assert!(r.phases <= 30, "phases {}", r.phases);
        }
    }

    #[test]
    fn bounded_arboricity_graph() {
        let g = gen::forest_union(96, 3, 5);
        let r = run(&g, 6);
        assert_valid(&g, &r);
    }
}
