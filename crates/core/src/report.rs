//! Per-stage execution reports.
//!
//! The paper's theorems bound *total rounds*; understanding where rounds go
//! (tree setup vs. FindMin vs. synchronisation) is what the ablation
//! experiments need, so every algorithm driver labels its stages.

use ncc_model::ExecStats;
use serde::{Deserialize, Serialize};

/// Accumulated statistics with labelled stages.
///
/// Serializes structurally (stages as `[label, stats]` pairs), so
/// `RunRecord` JSON needs no hand-rolled mirror structs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AlgoReport {
    pub total: ExecStats,
    /// `(stage label, stats)` in execution order. Repeated labels are fine
    /// (e.g. one entry per Boruvka phase).
    pub stages: Vec<(String, ExecStats)>,
}

impl AlgoReport {
    /// Records a stage and folds it into the total.
    pub fn push(&mut self, label: impl Into<String>, stats: ExecStats) {
        self.total.merge(&stats);
        self.stages.push((label.into(), stats));
    }

    /// Sums the stats of all stages whose label starts with `prefix`.
    pub fn stage_total(&self, prefix: &str) -> ExecStats {
        let mut acc = ExecStats::default();
        for (label, s) in &self.stages {
            if label.starts_with(prefix) {
                acc.merge(s);
            }
        }
        acc
    }

    /// Number of stages with the given label prefix.
    pub fn stage_count(&self, prefix: &str) -> usize {
        self.stages
            .iter()
            .filter(|(l, _)| l.starts_with(prefix))
            .count()
    }

    /// Groups stages by *kind* (the label suffix after the last `:`, so the
    /// per-phase labels like `p3:ident1` and `p4:ident1` fold together) and
    /// returns `(kind, occurrences, total rounds)` sorted by rounds,
    /// descending. This is the round-budget breakdown used to see where an
    /// algorithm's time actually goes (synchronisation vs routing vs
    /// delivery).
    pub fn breakdown(&self) -> Vec<(String, usize, u64)> {
        let mut by_kind: std::collections::BTreeMap<String, (usize, u64)> = Default::default();
        for (label, s) in &self.stages {
            let kind = label.rsplit(':').next().unwrap_or(label).to_string();
            // strip trailing iteration indices like "ident2.3" → "ident2"
            let kind = kind.split('.').next().unwrap_or(&kind).to_string();
            let e = by_kind.entry(kind).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.rounds;
        }
        let mut rows: Vec<(String, usize, u64)> =
            by_kind.into_iter().map(|(k, (c, r))| (k, c, r)).collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.2));
        rows
    }

    /// Renders [`Self::breakdown`] as an aligned text table.
    pub fn breakdown_table(&self) -> String {
        let rows = self.breakdown();
        let mut out = String::from("stage                     runs     rounds\n");
        for (kind, runs, rounds) in rows {
            out.push_str(&format!("{kind:<24} {runs:>5} {rounds:>10}\n"));
        }
        out.push_str(&format!(
            "{:<24} {:>5} {:>10}\n",
            "TOTAL",
            self.stages.len(),
            self.total.rounds
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rounds: u64) -> ExecStats {
        ExecStats {
            rounds,
            ..ExecStats::default()
        }
    }

    #[test]
    fn push_accumulates_total() {
        let mut r = AlgoReport::default();
        r.push("setup", stats(5));
        r.push("phase", stats(7));
        r.push("phase", stats(9));
        assert_eq!(r.total.rounds, 21);
        assert_eq!(r.stage_total("phase").rounds, 16);
        assert_eq!(r.stage_count("phase"), 2);
        assert_eq!(r.stage_count("setup"), 1);
        assert_eq!(r.stage_count("missing"), 0);
    }

    #[test]
    fn serde_round_trip_preserves_stages_and_total() {
        let mut r = AlgoReport::default();
        r.push("setup", stats(5));
        r.push("phase", stats(7));
        let json = serde_json::to_string(&r).unwrap();
        let back: AlgoReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total, r.total);
        assert_eq!(back.stages.len(), 2);
        assert_eq!(back.stages[0].0, "setup");
        assert_eq!(back.stages[1].1.rounds, 7);
    }

    #[test]
    fn breakdown_folds_phase_labels() {
        let mut r = AlgoReport::default();
        r.push("p1:ident1", stats(10));
        r.push("p2:ident1", stats(20));
        r.push("p1:ident2.0", stats(5));
        r.push("p2:ident2.1", stats(5));
        r.push("trees", stats(3));
        let rows = r.breakdown();
        assert_eq!(rows[0], ("ident1".to_string(), 2, 30));
        assert_eq!(rows[1], ("ident2".to_string(), 2, 10));
        assert_eq!(rows[2], ("trees".to_string(), 1, 3));
        let table = r.breakdown_table();
        assert!(table.contains("ident1"));
        assert!(table.contains("TOTAL"));
        assert!(table.contains("43"));
    }
}
