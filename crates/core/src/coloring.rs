//! `O(a)`-Coloring (§5.4, Theorem 5.5): `O((a + log n) log^{3/2} n)`.
//!
//! Following Barenboim–Elkin \[4\], nodes are colored level by level along
//! the §4 orientation partition `L_1 … L_T`, highest level first, running
//! the Color-Random procedure of Kothapalli et al. \[42\] within each level:
//!
//! * every uncolored node of the current level picks a candidate uniformly
//!   from its palette (initially `[2(1+ε)â]`) and announces it to its
//!   **in-neighbors** through the `N_in` multicast trees;
//! * a node that does not hear its own candidate from any same-level
//!   out-neighbor keeps the color permanently and informs its in-neighbors
//!   (Multicast) and out-neighbors (Aggregation over groups
//!   `A_{id(v) ∘ c}`), who strike the color from their palettes;
//! * `O(√log n)` repetitions per level suffice w.h.p. \[42\].
//!
//! Because a node's already-colored neighbors are exactly its `≤ â`
//! higher-level out-neighbors plus `≤ â` same-level neighbors, palettes
//! never empty; the implementation pads the palette to `2â + ⌈â/2⌉ + 2` so
//! the guarantee is non-vacuous at `â = 1` as well.

//!
//! The setup agreements and every repetition are declared as protocol
//! [`Dag`]s: the â/T consensus rides the `N_in` tree build as a packed
//! antichain, and within a repetition the permanent in-neighbor multicast
//! and out-neighbor aggregation (both depending only on the keep decision)
//! are packed into one mux by the scheduler.

use ncc_butterfly::{
    ab_sub, aggregation_sub, lane_seed, multicast_setup_sub, multicast_sub, AggregationSpec, Dag,
    GroupId, MaxU64, MulticastSub, MulticastTrees, SchedReport, SumU64,
};
use ncc_graph::Graph;
use ncc_hashing::{FxHashSet, SharedRandomness};
use ncc_model::{Engine, ModelError, NodeId};
use rand::Rng;

use crate::orientation::{LevelClass, OrientationResult};
use crate::report::AlgoReport;

/// Sub-identifier for the `N_in(u)` multicast groups.
const IN_SUB: u32 = 7;

/// Output of the distributed coloring.
#[derive(Debug, Clone)]
pub struct ColoringResult {
    pub colors: Vec<u32>,
    /// Palette size used — `O(â) = O(a)`.
    pub palette: u32,
    pub levels_processed: u32,
    pub repetitions_total: u32,
    pub report: AlgoReport,
    /// The scheduler's packing plan across setup and all repetitions.
    pub plan: SchedReport,
}

/// Runs the level-by-level coloring, consuming a §4 orientation.
pub fn coloring(
    engine: &mut Engine,
    shared: &SharedRandomness,
    orientation: &OrientationResult,
    g: &Graph,
) -> Result<ColoringResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, g.n());
    let logn = ncc_model::ilog2_ceil(n).max(1);
    let mut report = AlgoReport::default();
    let mut plan = SchedReport::default();

    // --- setup, declared as one DAG: the â and T agreements and the N_in
    // tree build all depend only on the finished orientation, so they are
    // an antichain the scheduler packs into one execution.
    let ahat_inputs: Vec<Option<u64>> = (0..n)
        .map(|u| {
            let d_l = orientation.neighbor_class[u]
                .values()
                .filter(|c| **c == LevelClass::Same)
                .count();
            let d_out = orientation.out_neighbors[u].len();
            Some(d_l.max(d_out) as u64)
        })
        .collect();
    let level_inputs: Vec<Option<u64>> =
        (0..n).map(|u| Some(orientation.levels[u] as u64)).collect();
    let joins: Vec<Vec<(GroupId, NodeId)>> = orientation
        .out_neighbors
        .iter()
        .enumerate()
        .map(|(u, outs)| {
            outs.iter()
                .map(|&v| (GroupId::new(v, IN_SUB), u as NodeId))
                .collect()
        })
        .collect();
    let trees_seed = lane_seed(engine, 0x636c_7201, 0);
    let mut dag = Dag::new();
    let trees = dag.proto(
        "setup:in-trees",
        &[],
        move |_| multicast_setup_sub(n, shared, joins, trees_seed),
        |s| s.into_trees(),
    );
    let ahat = dag.proto(
        "setup:ahat",
        &[],
        move |_| ab_sub(n, ahat_inputs, &MaxU64),
        |s| s.into_results(),
    );
    let level = dag.proto(
        "setup:levels",
        &[],
        move |_| ab_sub(n, level_inputs, &MaxU64),
        |s| s.into_results(),
    );
    let mut run = dag.run(engine)?;
    report.push("in-trees+agree", run.stats);
    let in_trees = run.outputs.take(trees);
    let a_hat = run.outputs.take(ahat)[0].unwrap_or(0) as usize;
    let t_max = run.outputs.take(level)[0].unwrap_or(0) as u32;
    plan.merge(run.report);

    // palette [2(1+ε)â] with ε = ¼, padded so â = 1 stays feasible
    let palette = (2 * a_hat + a_hat.div_ceil(2) + 2) as u32;

    let mut colors: Vec<Option<u32>> = vec![None; n];
    let mut forbidden: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    let mut reps_total: u32 = 0;

    // levels processed from the top (last activated) down, per §5.4
    for (li, level) in (1..=t_max).rev().enumerate() {
        let mut rep: u32 = 0;
        loop {
            rep += 1;
            reps_total += 1;
            assert!(
                rep <= 6 * logn + 20,
                "level {level} did not color in {rep} repetitions"
            );

            // --- candidates + tentative announcement ----------------------
            let mut cand: Vec<Option<u32>> = vec![None; n];
            let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
            for u in 0..n {
                if orientation.levels[u] == level && colors[u].is_none() {
                    let allowed: Vec<u32> =
                        (0..palette).filter(|c| !forbidden[u].contains(c)).collect();
                    assert!(
                        !allowed.is_empty(),
                        "palette exhausted at node {u} (â = {a_hat})"
                    );
                    let mut rng = ncc_model::rng::node_rng(
                        engine.config().seed
                            ^ 0x434c_5200
                            ^ ((level as u64) << 32)
                            ^ ((rep as u64) << 48),
                        u as u32,
                    );
                    let c = allowed[rng.gen_range(0..allowed.len())];
                    cand[u] = Some(c);
                    messages[u] = Some((GroupId::new(u as u32, IN_SUB), c as u64));
                }
            }
            let tent_seed = lane_seed(engine, 0x636c_7202, ((level as u64) << 16) | rep as u64);
            let perm_in_seed = lane_seed(engine, 0x636c_7203, ((level as u64) << 16) | rep as u64);
            let perm_out_seed = lane_seed(engine, 0x636c_7204, ((level as u64) << 16) | rep as u64);
            let in_trees = &in_trees;
            let levels = &orientation.levels;
            let outs = &orientation.out_neighbors;

            let mut dag = Dag::new();
            let tent = dag.proto(
                format!("l{li}:r{rep}:tentative"),
                &[],
                move |_| in_multicast_sub(n, shared, in_trees, messages, a_hat, tent_seed),
                |s| s.into_deliveries(),
            );
            // u defers iff some same-level uncolored out-neighbor announced
            // u's own candidate (u receives announcements of all x with
            // u ∈ N_in(x), i.e. of its out-neighbors)
            let keep_cand = cand.clone();
            let keep_colors = colors.clone();
            let keeps = dag.compute(format!("l{li}:r{rep}:keep"), &[tent.into()], move |d| {
                let heard = d.get(tent);
                (0..n)
                    .map(|u| {
                        keep_cand[u].is_some_and(|c| {
                            !heard[u].iter().any(|&(src_group, col)| {
                                let x = src_group.target();
                                col as u32 == c
                                    && levels[x as usize] == level
                                    && keep_colors[x as usize].is_none()
                            })
                        })
                    })
                    .collect::<Vec<bool>>()
            });
            // --- permanent announcements: to in-neighbors by multicast, to
            // out-neighbors by aggregation over groups A_{id(v) ∘ c}. Both
            // depend only on `keeps`, so they are an antichain the scheduler
            // packs into one mux.
            let perm_in_cand = cand.clone();
            let perm_in = dag.proto(
                format!("l{li}:r{rep}:perm-mc"),
                &[keeps.into()],
                move |d| {
                    let keeps = d.get(keeps);
                    let messages: Vec<Option<(GroupId, u64)>> = (0..n)
                        .map(|u| {
                            keeps[u].then(|| {
                                (
                                    GroupId::new(u as u32, IN_SUB),
                                    perm_in_cand[u].unwrap() as u64,
                                )
                            })
                        })
                        .collect();
                    in_multicast_sub(n, shared, in_trees, messages, a_hat, perm_in_seed)
                },
                |s| s.into_deliveries(),
            );
            let perm_out_cand = cand.clone();
            let perm_out = dag.proto(
                format!("l{li}:r{rep}:perm-agg"),
                &[keeps.into()],
                move |d| {
                    let keeps = d.get(keeps);
                    let memberships: Vec<Vec<(GroupId, u64)>> = (0..n)
                        .map(|u| {
                            if keeps[u] {
                                let c = perm_out_cand[u].unwrap();
                                outs[u]
                                    .iter()
                                    .map(|&v| (GroupId::new(v, 100 + c), 1u64))
                                    .collect()
                            } else {
                                Vec::new()
                            }
                        })
                        .collect();
                    aggregation_sub(
                        n,
                        shared,
                        AggregationSpec {
                            memberships,
                            ell2_hat: palette as usize,
                        },
                        &SumU64,
                        perm_out_seed,
                    )
                },
                |s| s.into_deliveries(),
            );
            // --- is this level done? The check consumes the keep decision
            // but must run after the announcements (the deps serialise it,
            // exactly like the hand-fused sequence did).
            let check_colors = colors.clone();
            let check = dag.proto(
                format!("l{li}:r{rep}:check"),
                &[keeps.into(), perm_in.into(), perm_out.into()],
                move |d| {
                    let keeps = d.get(keeps);
                    let inputs: Vec<Option<u64>> = (0..n)
                        .map(|u| {
                            (levels[u] == level && check_colors[u].is_none() && !keeps[u])
                                .then_some(1)
                        })
                        .collect();
                    ab_sub(n, inputs, &MaxU64)
                },
                |s| s.into_results(),
            );

            let mut run = dag.run(engine)?;
            report.push(format!("l{li}:r{rep}"), run.stats);
            let keeps = run.outputs.take(keeps);
            let perm_in = run.outputs.take(perm_in);
            let perm_out = run.outputs.take(perm_out);
            let remaining = run.outputs.take(check);
            plan.merge(run.report);

            // apply: winners fix their colors; everyone strikes heard colors
            for u in 0..n {
                if keeps[u] {
                    colors[u] = cand[u];
                }
                for &(gid, c) in &perm_in[u] {
                    let _ = gid;
                    forbidden[u].insert(c as u32);
                }
                for &(gid, _count) in &perm_out[u] {
                    forbidden[u].insert(gid.sub() - 100);
                }
            }
            if remaining[0].is_none() {
                break;
            }
        }
    }

    Ok(ColoringResult {
        colors: colors.into_iter().map(|c| c.unwrap_or(0)).collect(),
        palette: palette.max(1),
        levels_processed: t_max,
        repetitions_total: reps_total,
        report,
        plan,
    })
}

/// Multicast lane over the `N_in` trees: thin wrapper fixing the `ℓ̂`
/// bound (members per node ≤ outdegree ≤ â).
fn in_multicast_sub(
    n: usize,
    shared: &SharedRandomness,
    in_trees: &MulticastTrees,
    messages: Vec<Option<(GroupId, u64)>>,
    a_hat: usize,
    seed: u64,
) -> MulticastSub<u64> {
    multicast_sub(n, shared, in_trees, messages, a_hat.max(1), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::orient;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    fn run(g: &Graph, seed: u64) -> ColoringResult {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0xC01);
        let o = orient(&mut eng, &shared, g).unwrap();
        coloring(&mut eng, &shared, &o, g).unwrap()
    }

    fn assert_valid(g: &Graph, r: &ColoringResult) {
        check::check_coloring(g, &r.colors, r.palette)
            .unwrap_or_else(|e| panic!("invalid coloring: {e}"));
    }

    #[test]
    fn path_few_colors() {
        let g = gen::path(32);
        let r = run(&g, 1);
        assert_valid(&g, &r);
        assert!(r.palette <= 8, "palette {}", r.palette);
    }

    #[test]
    fn star_constant_palette() {
        // star has a = 1 but Δ = n−1: palette must stay O(1)
        let g = gen::star(48);
        let r = run(&g, 2);
        assert_valid(&g, &r);
        assert!(r.palette <= 10, "palette {}", r.palette);
    }

    #[test]
    fn tree_coloring() {
        let g = gen::random_tree(64, 3);
        let r = run(&g, 3);
        assert_valid(&g, &r);
        assert!(r.palette <= 10);
    }

    #[test]
    fn grid_planar_coloring() {
        let g = gen::grid(7, 7);
        let r = run(&g, 4);
        assert_valid(&g, &r);
        // a ≤ 2 → d* ≤ 8ish → palette O(a)
        assert!(r.palette <= 24, "palette {}", r.palette);
    }

    #[test]
    fn forest_union_palette_scales_with_a() {
        let g = gen::forest_union(64, 4, 5);
        let r = run(&g, 5);
        assert_valid(&g, &r);
        // â ≤ 4a = 16 → palette ≤ 2.5·16 + 2
        assert!(r.palette <= 44, "palette {}", r.palette);
    }

    #[test]
    fn random_graph_coloring() {
        let g = gen::gnp(40, 0.1, 6);
        let r = run(&g, 6);
        assert_valid(&g, &r);
    }

    #[test]
    fn empty_graph_trivial() {
        let g = Graph::empty(10);
        let r = run(&g, 7);
        assert_valid(&g, &r);
    }
}
