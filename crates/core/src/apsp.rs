//! Landmark distance sketches — approximate all-pairs shortest paths in
//! `O((a + D + log n) log n)` rounds (§5.1 applied `Θ(log n)` times *in
//! parallel*).
//!
//! §5.1 builds one BFS tree in `O((a + D + log n) log n)` rounds and §2
//! observes that `O(log n)` instances of such a primitive can share the
//! network's per-node budget. This algorithm exercises exactly that claim:
//! `L = Θ(log n)` landmarks — agreed from shared randomness, zero
//! communication — run their layer-synchronous BFS *simultaneously*, one
//! frontier-spread Multi-Aggregation per landmark per phase. The per-phase
//! spreads are mutually independent, so they are declared as `L` root
//! nodes of a protocol [`Dag`] and the scheduler packs them into one mux
//! automatically, within the `O(log n)` lane budget; the termination
//! consensus hangs off the combine step as a barrier-free solo stage.
//!
//! Every node ends with its exact distance to every landmark, i.e. an
//! `L`-entry distance sketch. Two sketches give the classic landmark
//! estimate `d̂(u, v) = min_ℓ d(u, ℓ) + d(ℓ, v)` — an upper bound on the
//! true distance that is exact whenever some landmark lies on a shortest
//! `u`–`v` path, and a `2`-approximation of eccentric pairs in practice.
//!
//! The whole algorithm is *declared*: no lane ids, no install/collect
//! plumbing, no manual packing — the scheduler reproduces the paper's
//! parallel-instances argument from the DAG shape alone.

use ncc_butterfly::{ab_sub, lane_seed, multi_aggregate_sub, Dag, MaxU64, MinU64, SchedReport};
use ncc_graph::Graph;
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, ModelError, NodeId};

use crate::bfs::UNREACHABLE;
use crate::broadcast_trees::{neighborhood_group, BroadcastTrees};
use crate::report::AlgoReport;

/// Shared-randomness label for the landmark choice.
const LANDMARK_LABEL: u64 = 0x6170_7370; // "apsp"

/// Output of the landmark-sketch computation.
#[derive(Debug, Clone)]
pub struct ApspResult {
    /// The agreed landmarks (distinct node ids, common knowledge).
    pub landmarks: Vec<NodeId>,
    /// `dist[l][u]` = exact hop distance from `landmarks[l]` to `u`
    /// ([`UNREACHABLE`] across components).
    pub dist: Vec<Vec<u32>>,
    /// Number of frontier phases executed (`≤ max eccentricity + 1`).
    pub phases: u32,
    pub report: AlgoReport,
    /// The scheduler's packing plan across all phases.
    pub plan: SchedReport,
}

impl ApspResult {
    /// The landmark upper bound `min_ℓ d(u, ℓ) + d(ℓ, v)` on the true
    /// distance ([`UNREACHABLE`] if no landmark reaches both endpoints).
    pub fn estimate(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = UNREACHABLE;
        for d in &self.dist {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                best = best.min(du + dv);
            }
        }
        best
    }
}

/// Picks `count` distinct landmarks from shared randomness — common
/// knowledge, so the agreement costs zero communication.
fn choose_landmarks(shared: &SharedRandomness, n: usize, count: usize) -> Vec<NodeId> {
    let h = shared.poly(LANDMARK_LABEL, 0, SharedRandomness::k_for(n));
    let mut picked = Vec::with_capacity(count);
    let mut j = 0u64;
    while picked.len() < count {
        let cand = h.to_range(j, n as u64) as NodeId;
        if !picked.contains(&cand) {
            picked.push(cand);
        }
        j += 1;
    }
    picked
}

/// Computes distance sketches toward `Θ(log n)` shared-randomness landmarks
/// (or `num_landmarks`, if given) over prebuilt broadcast trees.
pub fn landmark_apsp(
    engine: &mut Engine,
    shared: &SharedRandomness,
    bt: &BroadcastTrees,
    g: &Graph,
    num_landmarks: Option<usize>,
) -> Result<ApspResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, g.n());
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let count = num_landmarks.unwrap_or(logn).clamp(1, n);
    let landmarks = choose_landmarks(shared, n, count);
    let mut report = AlgoReport::default();
    let mut plan = SchedReport::default();

    let mut dist: Vec<Vec<u32>> = vec![vec![UNREACHABLE; n]; count];
    let mut frontiers: Vec<Vec<NodeId>> = Vec::with_capacity(count);
    for (l, &lm) in landmarks.iter().enumerate() {
        dist[l][lm as usize] = 0;
        frontiers.push(vec![lm]);
    }

    let mut phase: u32 = 0;
    while frontiers.iter().any(|f| !f.is_empty()) {
        phase += 1;
        // hoist the per-landmark lane seeds (engine-independent of the DAG)
        let seeds: Vec<u64> = (0..count)
            .map(|l| lane_seed(engine, 0x6170_7301, ((phase as u64) << 16) | l as u64))
            .collect();

        let mut dag = Dag::new();
        let trees = &bt.trees;
        // one frontier spread per landmark still expanding — mutually
        // independent, so the scheduler packs them into one mux
        let mut spreads = Vec::with_capacity(count);
        for l in 0..count {
            if frontiers[l].is_empty() {
                spreads.push(None);
                continue;
            }
            let mut messages: Vec<Option<(ncc_butterfly::GroupId, u64)>> = vec![None; n];
            for &u in &frontiers[l] {
                messages[u as usize] = Some((neighborhood_group(u), u as u64));
            }
            let seed = seeds[l];
            spreads.push(Some(dag.proto(
                format!("p{phase}:spread{l}"),
                &[],
                move |_| {
                    multi_aggregate_sub(n, shared, trees, messages, |_, _, _, v| *v, &MinU64, seed)
                },
                |s| s.into_results(),
            )));
        }
        // combine: each landmark's newly reached nodes form its next
        // frontier; any progress at all keeps the loop alive
        let deps: Vec<ncc_butterfly::Dep> = spreads.iter().flatten().map(|&s| s.into()).collect();
        let known = dist.clone();
        let combine_spreads = spreads.clone();
        let combine = dag.compute(format!("p{phase}:combine"), &deps, move |d| {
            let mut dist = known;
            let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); dist.len()];
            for (l, spread) in combine_spreads.iter().enumerate() {
                let Some(spread) = spread else { continue };
                let mins = d.get(*spread);
                for v in 0..n {
                    if dist[l][v] == UNREACHABLE && mins[v].is_some() {
                        dist[l][v] = phase;
                        next[l].push(v as NodeId);
                    }
                }
            }
            let newly: Vec<Option<u64>> = (0..n)
                .map(|v| next.iter().any(|f| f.contains(&(v as NodeId))).then_some(1))
                .collect();
            (dist, next, newly)
        });
        // termination consensus (self-synchronizing — no extra barrier)
        let check = dag.proto(
            format!("p{phase}:check"),
            &[combine.into()],
            move |d| {
                let (_, _, newly) = d.get(combine);
                ab_sub(n, newly.clone(), &MaxU64)
            },
            |s| s.into_results(),
        );

        let mut run = dag.run(engine)?;
        report.push(format!("phase{phase}"), run.stats);
        let (new_dist, next, _) = run.outputs.take(combine);
        let any_new = run.outputs.take(check);
        plan.merge(run.report);

        dist = new_dist;
        frontiers = next;
        if any_new[0].is_none() {
            break;
        }
    }

    Ok(ApspResult {
        landmarks,
        dist,
        phases: phase,
        report,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast_trees::build_broadcast_trees;
    use ncc_graph::{analysis, gen};
    use ncc_model::NetConfig;

    fn run(g: &Graph, seed: u64, count: Option<usize>) -> ApspResult {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0xA5);
        let (bt, _) = build_broadcast_trees(&mut eng, &shared, g).unwrap();
        landmark_apsp(&mut eng, &shared, &bt, g, count).unwrap()
    }

    fn assert_sketches_exact(g: &Graph, r: &ApspResult) {
        for (l, &lm) in r.landmarks.iter().enumerate() {
            let reference = analysis::bfs_distances(g, lm);
            assert_eq!(r.dist[l], reference, "landmark {lm} sketch mismatch");
        }
    }

    #[test]
    fn sketches_match_reference_bfs() {
        for (i, g) in [
            gen::grid(6, 6),
            gen::gnp(48, 0.1, 5),
            gen::random_tree(40, 3),
        ]
        .iter()
        .enumerate()
        {
            let r = run(g, 10 + i as u64, None);
            assert_sketches_exact(g, &r);
        }
    }

    #[test]
    fn landmarks_distinct_and_agreed() {
        let g = gen::gnp(32, 0.15, 2);
        let r = run(&g, 3, None);
        let mut seen = r.landmarks.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), r.landmarks.len(), "landmarks must be distinct");
        assert_eq!(r.landmarks.len(), 5); // ⌈log₂ 32⌉
    }

    #[test]
    fn estimate_upper_bounds_true_distance() {
        let g = gen::gnp(40, 0.12, 9);
        let r = run(&g, 4, None);
        for u in 0..g.n() as NodeId {
            let reference = analysis::bfs_distances(&g, u);
            for v in 0..g.n() as NodeId {
                let est = r.estimate(u, v);
                let truth = reference[v as usize];
                if truth == UNREACHABLE {
                    assert_eq!(est, UNREACHABLE);
                } else {
                    assert!(est >= truth, "estimate below true distance");
                    assert!(est != UNREACHABLE, "landmark reaches both in one component");
                }
            }
        }
    }

    #[test]
    fn estimate_exact_through_landmark() {
        // on a path every node lies on the unique shortest path, so any
        // estimate through an interior landmark is exact for its endpoints
        let g = gen::path(16);
        let r = run(&g, 6, Some(1));
        let lm = r.landmarks[0];
        let a = 0u32;
        let b = 15u32;
        let expected = lm.abs_diff(a) + lm.abs_diff(b);
        assert_eq!(r.estimate(a, b), expected);
    }

    #[test]
    fn disconnected_components_unreachable() {
        let g = Graph::from_edges(12, [(0, 1), (1, 2), (4, 5), (6, 7)]);
        let r = run(&g, 7, None);
        assert_sketches_exact(&g, &r);
    }

    #[test]
    fn deterministic_given_seeds() {
        let g = gen::gnp(36, 0.14, 8);
        let a = run(&g, 42, None);
        let b = run(&g, 42, None);
        assert_eq!(a.dist, b.dist);
        assert_eq!(a.report.total, b.report.total);
    }

    #[test]
    fn plan_packs_spreads_into_shared_stages() {
        // phase 1: all L spreads are an antichain within the lane budget →
        // exactly 3 stages (spread ×2 barriered, check barrier-free)
        let g = gen::gnp(64, 0.2, 3);
        let r = run(&g, 11, None);
        let l = r.landmarks.len();
        let first = &r.plan.stages[0];
        assert_eq!(first.lanes.len(), l, "all spreads must share one mux");
        assert!(first.barrier);
        assert!(r.plan.max_lanes() <= r.plan.budget);
        // the check stages pay no barrier
        for ph in r.plan.stages.chunks(3) {
            assert!(!ph[2].barrier, "A&B check must not pay a barrier");
        }
    }
}
