//! # ncc-core — the paper's algorithms (§3–§5)
//!
//! Every algorithm here runs *on the Node-Capacitated Clique*: all
//! inter-node information flow goes through `ncc-model`'s capacity-limited
//! engine, composed from the `ncc-butterfly` primitives exactly as the
//! paper composes them. Local computation is free (as in the model); nodes
//! only ever act on their own state, their neighborhood in the input graph
//! `G`, received messages, and shared randomness agreed via an in-model
//! seed broadcast.
//!
//! | algorithm | paper | bound |
//! |---|---|---|
//! | [`mst::mst`] | §3, Thm 3.2 | `O(log⁴ n)` |
//! | [`orientation::orient`] | §4, Thm 4.12 | `O((a + log n) log n)`, outdegree `O(a)` |
//! | [`broadcast_trees::build_broadcast_trees`] | §5, Lemma 5.1 | `O(a + log n)`, congestion `O(a + log n)` |
//! | [`bfs::bfs`] | §5.1, Thm 5.2 | `O((a + D + log n) log n)` |
//! | [`mis::mis`] | §5.2, Thm 5.3 | `O((a + log n) log n)` |
//! | [`matching::maximal_matching`] | §5.3, Thm 5.4 | `O((a + log n) log n)` |
//! | [`coloring::coloring`] | §5.4, Thm 5.5 | `O(a)` colors in `O((a + log n) log^{3/2} n)` |
//! | [`apsp::landmark_apsp`] | §5.1 × §2 parallel instances | `O((a + D + log n) log n)` for `Θ(log n)` sketches |
//!
//! Each driver returns its output *and* an [`report::AlgoReport`] with
//! per-stage round/message statistics, which the benchmark harness compares
//! against the theorem bounds.
//!
//! # Example: MST under node capacities
//!
//! ```
//! use ncc_core::mst;
//! use ncc_graph::{check, gen};
//! use ncc_hashing::SharedRandomness;
//! use ncc_model::{Engine, NetConfig};
//!
//! let g = gen::gnp(32, 0.25, 1);
//! let wg = gen::with_random_weights(&g, 100, 2);
//! let mut engine = Engine::new(NetConfig::new(32, 3));
//! let shared = SharedRandomness::new(4);
//!
//! let result = mst(&mut engine, &shared, &wg).unwrap();
//! check::check_mst(&wg, &result.edges).unwrap(); // weight == Kruskal
//! assert!(engine.total.clean());                 // capacity respected
//! ```

pub mod apsp;
pub mod bfs;
pub mod broadcast_trees;
pub mod coloring;
pub mod matching;
pub mod mis;
pub mod mst;
pub mod orientation;
pub mod report;
pub mod support;

pub use apsp::{landmark_apsp, ApspResult};
pub use bfs::{bfs, BfsResult};
pub use broadcast_trees::{build_broadcast_trees, BroadcastTrees};
pub use coloring::{coloring, ColoringResult};
pub use matching::{maximal_matching, MatchingResult};
pub use mis::{mis, MisResult};
pub use mst::{mst, MstResult};
pub use orientation::{orient, LevelClass, OrientationResult};
pub use report::AlgoReport;
