//! Maximal Matching (§5.3, Theorem 5.4): `O((a + log n) log n)`.
//!
//! Israeli–Itai \[31\] over the primitives, phase by phase:
//!
//! 1. every unmatched node multicasts a pick-me packet over its broadcast
//!    tree; the Multi-Aggregation leaves annotate each delivered copy with
//!    a uniform random rank, and the annotated-minimum aggregate leaves
//!    each receiver with a **uniformly random unmatched neighbor** — the
//!    paper's modified Multi-Aggregation, verbatim;
//! 2. nodes chosen by several neighbors accept one (Aggregation, MIN over
//!    chooser ids) and notify the accepted chooser directly — the result is
//!    a collection of paths and cycles;
//! 3. every node on a path/cycle proposes to one of its ≤ 2 incident
//!    chain edges at random; mutual proposals join the matching.
//!
//! `O(log n)` phases suffice w.h.p. (Corollary 3.5 of \[31\] + Chernoff).
//!
//! Each phase is declared as two protocol [`Dag`]s (the second is skipped
//! once the termination consensus comes back empty): pick → accept ∥ check,
//! where the accept Aggregation and the termination A&B are an antichain the
//! scheduler packs into one mux — the same fusion the hand-wired lane code
//! did explicitly — then notify → propose over scheduled exchanges.

use ncc_butterfly::{
    ab_sub, aggregation_sub, lane_seed, multi_aggregate_sub, AggregationSpec, Dag, GroupId, MaxU64,
    MinByKey, MinU64, SchedReport,
};
use ncc_graph::Graph;
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, ModelError, NodeId};
use rand::Rng;

use crate::broadcast_trees::{neighborhood_group, BroadcastTrees};
use crate::report::AlgoReport;
use crate::support::schedule_sub;

/// Output of the distributed maximal matching.
#[derive(Debug, Clone)]
pub struct MatchingResult {
    /// `mate[u]` is `Some(v)` iff edge `{u, v}` is in the matching.
    pub mate: Vec<Option<NodeId>>,
    pub phases: u32,
    pub report: AlgoReport,
    /// The scheduler's packing plan across all phases.
    pub plan: SchedReport,
}

/// Runs Israeli–Itai maximal matching over prebuilt broadcast trees.
pub fn maximal_matching(
    engine: &mut Engine,
    shared: &SharedRandomness,
    bt: &BroadcastTrees,
    g: &Graph,
) -> Result<MatchingResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, g.n());
    let logn = ncc_model::ilog2_ceil(n).max(1);
    let mut report = AlgoReport::default();
    let mut plan = SchedReport::default();

    let mut mate: Vec<Option<NodeId>> = vec![None; n];
    let max_phases = 8 * logn + 24;

    let mut phase: u32 = 0;
    loop {
        phase += 1;
        assert!(
            phase <= max_phases,
            "matching did not converge in {max_phases} phases"
        );

        // --- step 1: random unmatched neighbor via annotated-min ----------
        let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
        for u in 0..n {
            if mate[u].is_none() {
                messages[u] = Some((neighborhood_group(u as NodeId), u as u64));
            }
        }
        let pick_seed = lane_seed(engine, 0x6d6d_0001, phase as u64);
        let accept_seed = lane_seed(engine, 0x6d6d_0002, phase as u64);
        let trees = &bt.trees;

        let mut dag = Dag::new();
        let picks = dag.proto(
            format!("p{phase}:pick"),
            &[],
            // the leaf l(i,u) annotates with r ∈ [0,1] (here: 24 random
            // bits), exactly as §5.3 prescribes
            move |_| {
                multi_aggregate_sub(
                    n,
                    shared,
                    trees,
                    messages,
                    |rng, _g, _member, v| ((rng.gen::<u64>() >> 40), *v),
                    &MinByKey,
                    pick_seed,
                )
            },
            |s| s.into_results(),
        );
        // pick(u): a uniformly random unmatched neighbor (None if no
        // unmatched neighbor remains). Matched nodes ignore deliveries.
        let choose_mate = mate.clone();
        let choose = dag.compute(format!("p{phase}:choose"), &[picks.into()], move |d| {
            let picks = d.get(picks);
            (0..n)
                .map(|u| {
                    if choose_mate[u].is_none() {
                        picks[u].map(|(_, v)| v as NodeId)
                    } else {
                        None
                    }
                })
                .collect::<Vec<Option<NodeId>>>()
        });
        // --- step 2 ∥ termination: accept one chooser (MIN id) while the
        // "anyone still pairable?" consensus rides the same rounds — both
        // depend only on `choose`, so they are an antichain the scheduler
        // packs into one mux. When the check comes back empty the accept
        // output is empty too (no picks, no memberships) and the phase ends.
        let accept = dag.proto(
            format!("p{phase}:accept"),
            &[choose.into()],
            move |d| {
                let pick = d.get(choose);
                let memberships: Vec<Vec<(GroupId, u64)>> = (0..n)
                    .map(|u| match pick[u] {
                        Some(v) => vec![(GroupId::new(v, 9), u as u64)],
                        None => Vec::new(),
                    })
                    .collect();
                aggregation_sub(
                    n,
                    shared,
                    AggregationSpec {
                        memberships,
                        ell2_hat: 1,
                    },
                    &MinU64,
                    accept_seed,
                )
            },
            |s| s.into_deliveries(),
        );
        let check = dag.proto(
            format!("p{phase}:check"),
            &[choose.into()],
            move |d| {
                let pick = d.get(choose);
                let inputs: Vec<Option<u64>> = (0..n)
                    .map(|u| if pick[u].is_some() { Some(1) } else { None })
                    .collect();
                ab_sub(n, inputs, &MaxU64)
            },
            |s| s.into_results(),
        );
        let mut run = dag.run(engine)?;
        report.push(format!("phase{phase}:select"), run.stats);
        let pick = run.outputs.take(choose);
        let accepted_in = run.outputs.take(accept);
        let still_pairable = run.outputs.take(check)[0].is_some();
        plan.merge(run.report);
        if !still_pairable {
            break;
        }
        // acc(v): the chooser v accepts (only meaningful for unmatched v)
        let acc: Vec<Option<NodeId>> = (0..n)
            .map(|v| {
                if mate[v].is_none() {
                    accepted_in[v].first().map(|&(_, u)| u as NodeId)
                } else {
                    None
                }
            })
            .collect();

        // --- step 3 as a second DAG: notify the accepted chooser, then the
        // chain nodes propose to one incident chain edge at random ---------
        let eseed = engine.config().seed;
        let notify_acc = acc.clone();
        let mut dag = Dag::new();
        // v → acc(v); receiver u learns its pick was accepted, i.e. the
        // chain edge (u → pick(u)) exists
        let notify = dag.proto(
            format!("p{phase}:notify"),
            &[],
            move |_| {
                let schedules: Vec<Vec<(u64, NodeId, u64)>> = (0..n)
                    .map(|v| match notify_acc[v] {
                        Some(u) => vec![(1, u, 1)],
                        None => Vec::new(),
                    })
                    .collect();
                schedule_sub(n, schedules)
            },
            |s| s.into_results(),
        );
        // chain neighbors of x: `out` = pick(x) if accepted, `in` = acc(x)
        let chain_pick = pick.clone();
        let chain = dag.compute(format!("p{phase}:chain"), &[notify.into()], move |d| {
            let notifs = d.get(notify);
            let mut chain: Vec<Vec<NodeId>> = vec![Vec::new(); n];
            for x in 0..n {
                if notifs[x].iter().any(|&(src, _)| Some(src) == chain_pick[x]) {
                    chain[x].push(chain_pick[x].unwrap());
                }
                if let Some(c) = acc[x] {
                    if !chain[x].contains(&c) {
                        chain[x].push(c);
                    }
                }
            }
            let schedules: Vec<Vec<(u64, NodeId, u64)>> = (0..n)
                .map(|x| {
                    if chain[x].is_empty() {
                        return Vec::new();
                    }
                    let mut rng = ncc_model::rng::node_rng(
                        eseed ^ 0x4d4d_5000 ^ ((phase as u64) << 32),
                        x as u32,
                    );
                    let t = chain[x][rng.gen_range(0..chain[x].len())];
                    vec![(1, t, 2)]
                })
                .collect();
            // remember who we proposed to (local knowledge)
            let proposed: Vec<Option<NodeId>> = schedules
                .iter()
                .map(|s| s.first().map(|&(_, t, _)| t))
                .collect();
            (schedules, proposed)
        });
        let propose = dag.proto(
            format!("p{phase}:propose"),
            &[chain.into()],
            move |d| {
                let (schedules, _) = d.get(chain);
                schedule_sub(n, schedules.clone())
            },
            |s| s.into_results(),
        );
        let mut run = dag.run(engine)?;
        report.push(format!("phase{phase}:resolve"), run.stats);
        let (_, proposed) = run.outputs.take(chain);
        let props = run.outputs.take(propose);
        plan.merge(run.report);

        for x in 0..n {
            if let Some(y) = proposed[x] {
                // mutual proposal ⇒ matched
                if props[x].iter().any(|&(src, _)| src == y) {
                    mate[x] = Some(y);
                }
            }
        }
    }

    Ok(MatchingResult {
        mate,
        phases: phase,
        report,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast_trees::build_broadcast_trees;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    fn run(g: &Graph, seed: u64) -> MatchingResult {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0x99A);
        let (bt, _) = build_broadcast_trees(&mut eng, &shared, g).unwrap();
        maximal_matching(&mut eng, &shared, &bt, g).unwrap()
    }

    fn assert_valid(g: &Graph, r: &MatchingResult) {
        check::check_matching(g, &r.mate).unwrap_or_else(|e| panic!("invalid matching: {e}"));
    }

    #[test]
    fn single_edge() {
        let g = Graph::from_edges(8, [(2, 5)]);
        let r = run(&g, 1);
        assert_valid(&g, &r);
        assert_eq!(r.mate[2], Some(5));
        assert_eq!(r.mate[5], Some(2));
    }

    #[test]
    fn star_matches_exactly_one_leaf() {
        let g = gen::star(32);
        let r = run(&g, 2);
        assert_valid(&g, &r);
        assert!(r.mate[0].is_some());
        let matched = r.mate.iter().filter(|m| m.is_some()).count();
        assert_eq!(matched, 2);
    }

    #[test]
    fn path_matching_maximal() {
        let g = gen::path(25);
        let r = run(&g, 3);
        assert_valid(&g, &r);
    }

    #[test]
    fn complete_graph_perfect_matching() {
        let g = gen::complete(16);
        let r = run(&g, 4);
        assert_valid(&g, &r);
        // maximal on K_16 is perfect
        assert!(r.mate.iter().all(Option::is_some));
    }

    #[test]
    fn random_graphs_valid() {
        for seed in 0..3 {
            let g = gen::gnp(48, 0.12, seed);
            let r = run(&g, 20 + seed);
            assert_valid(&g, &r);
            assert!(r.phases <= 40, "phases {}", r.phases);
        }
    }

    #[test]
    fn empty_graph_trivial() {
        let g = Graph::empty(12);
        let r = run(&g, 5);
        assert_valid(&g, &r);
        assert!(r.mate.iter().all(Option::is_none));
        assert_eq!(r.phases, 1);
    }

    #[test]
    fn bounded_arboricity_graph() {
        let g = gen::forest_union(64, 4, 6);
        let r = run(&g, 7);
        assert_valid(&g, &r);
    }
}
