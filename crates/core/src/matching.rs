//! Maximal Matching (§5.3, Theorem 5.4): `O((a + log n) log n)`.
//!
//! Israeli–Itai \[31\] over the primitives, phase by phase:
//!
//! 1. every unmatched node multicasts a pick-me packet over its broadcast
//!    tree; the Multi-Aggregation leaves annotate each delivered copy with
//!    a uniform random rank, and the annotated-minimum aggregate leaves
//!    each receiver with a **uniformly random unmatched neighbor** — the
//!    paper's modified Multi-Aggregation, verbatim;
//! 2. nodes chosen by several neighbors accept one (Aggregation, MIN over
//!    chooser ids) and notify the accepted chooser directly — the result is
//!    a collection of paths and cycles;
//! 3. every node on a path/cycle proposes to one of its ≤ 2 incident
//!    chain edges at random; mutual proposals join the matching.
//!
//! `O(log n)` phases suffice w.h.p. (Corollary 3.5 of \[31\] + Chernoff).

use ncc_butterfly::{
    ab_sub, aggregation_sub, lane_seed, multi_aggregate_sub, run_composed, AggregationSpec,
    GroupId, LaneSub, MaxU64, MinByKey, MinU64,
};
use ncc_graph::Graph;
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, ModelError, NodeId};
use rand::Rng;

use crate::broadcast_trees::{neighborhood_group, BroadcastTrees};
use crate::report::AlgoReport;
use crate::support::scheduled_exchange;

/// Output of the distributed maximal matching.
#[derive(Debug, Clone)]
pub struct MatchingResult {
    /// `mate[u]` is `Some(v)` iff edge `{u, v}` is in the matching.
    pub mate: Vec<Option<NodeId>>,
    pub phases: u32,
    pub report: AlgoReport,
}

/// Runs Israeli–Itai maximal matching over prebuilt broadcast trees.
pub fn maximal_matching(
    engine: &mut Engine,
    shared: &SharedRandomness,
    bt: &BroadcastTrees,
    g: &Graph,
) -> Result<MatchingResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, g.n());
    let logn = ncc_model::ilog2_ceil(n).max(1);
    let mut report = AlgoReport::default();
    let min_by_key = MinByKey;
    let min_agg = MinU64;
    let max_agg = MaxU64;

    let mut mate: Vec<Option<NodeId>> = vec![None; n];
    let max_phases = 8 * logn + 24;

    let mut phase: u32 = 0;
    loop {
        phase += 1;
        assert!(
            phase <= max_phases,
            "matching did not converge in {max_phases} phases"
        );

        // --- step 1: random unmatched neighbor via annotated-min ----------
        let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
        for u in 0..n {
            if mate[u].is_none() {
                messages[u] = Some((neighborhood_group(u as NodeId), u as u64));
            }
        }
        let mut pick_sub = multi_aggregate_sub(
            n,
            shared,
            &bt.trees,
            messages,
            // the leaf l(i,u) annotates with r ∈ [0,1] (here: 24 random
            // bits), exactly as §5.3 prescribes
            |rng, _g, _member, v| ((rng.gen::<u64>() >> 40), *v),
            &min_by_key,
            lane_seed(engine, 0x6d6d_0001, phase as u64),
        );
        let (s, _) = run_composed(engine, &mut [&mut pick_sub])?;
        report.push(format!("phase{phase}:pick"), s);
        let picks = pick_sub.into_results();

        // pick(u): a uniformly random unmatched neighbor (None if no
        // unmatched neighbor remains). Matched nodes ignore deliveries.
        let pick: Vec<Option<NodeId>> = (0..n)
            .map(|u| {
                if mate[u].is_none() {
                    picks[u].map(|(_, v)| v as NodeId)
                } else {
                    None
                }
            })
            .collect();

        // --- step 2 ∥ termination: accept one chooser (MIN id) while the
        // "anyone still pairable?" consensus rides the same rounds — both
        // depend only on `pick`, so they compose as lanes. When the check
        // comes back empty the accept output is empty too (no picks, no
        // memberships) and the phase ends.
        let memberships: Vec<Vec<(GroupId, u64)>> = (0..n)
            .map(|u| match pick[u] {
                Some(v) => vec![(GroupId::new(v, 9), u as u64)],
                None => Vec::new(),
            })
            .collect();
        let check_inputs: Vec<Option<u64>> = (0..n)
            .map(|u| if pick[u].is_some() { Some(1) } else { None })
            .collect();
        let mut accept_sub = aggregation_sub(
            n,
            shared,
            AggregationSpec {
                memberships,
                ell2_hat: 1,
            },
            &min_agg,
            lane_seed(engine, 0x6d6d_0002, phase as u64),
        );
        let mut check_sub = ab_sub(n, check_inputs, &max_agg);
        let (s, _) = {
            let mut refs: [&mut dyn LaneSub; 2] = [&mut accept_sub, &mut check_sub];
            run_composed(engine, &mut refs)?
        };
        report.push(format!("phase{phase}:accept+check"), s);
        if check_sub.into_results()[0].is_none() {
            break;
        }
        let accepted_in = accept_sub.into_deliveries();
        // acc(v): the chooser v accepts (only meaningful for unmatched v)
        let acc: Vec<Option<NodeId>> = (0..n)
            .map(|v| {
                if mate[v].is_none() {
                    accepted_in[v].first().map(|&(_, u)| u as NodeId)
                } else {
                    None
                }
            })
            .collect();

        // notify the accepted chooser: v → acc(v); receiver u learns its
        // pick was accepted, i.e. chain edge (u → pick(u)) exists
        let schedules: Vec<Vec<(u64, NodeId, u64)>> = (0..n)
            .map(|v| match acc[v] {
                Some(u) => vec![(1, u, 1)],
                None => Vec::new(),
            })
            .collect();
        let (notifs, s) = scheduled_exchange(engine, schedules)?;
        report.push(format!("phase{phase}:notify"), s);

        // --- step 3: chain nodes propose to one incident chain edge --------
        // chain neighbors of x: `out` = pick(x) if accepted, `in` = acc(x)
        let mut chain: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for x in 0..n {
            if notifs[x].iter().any(|&(src, _)| Some(src) == pick[x]) {
                chain[x].push(pick[x].unwrap());
            }
            if let Some(c) = acc[x] {
                if !chain[x].contains(&c) {
                    chain[x].push(c);
                }
            }
        }
        let schedules: Vec<Vec<(u64, NodeId, u64)>> = (0..n)
            .map(|x| {
                if chain[x].is_empty() {
                    return Vec::new();
                }
                let mut rng = ncc_model::rng::node_rng(
                    engine.config().seed ^ 0x4d4d_5000 ^ ((phase as u64) << 32),
                    x as u32,
                );
                let t = chain[x][rng.gen_range(0..chain[x].len())];
                vec![(1, t, 2)]
            })
            .collect();
        // remember who we proposed to (local knowledge)
        let proposed: Vec<Option<NodeId>> = schedules
            .iter()
            .map(|s| s.first().map(|&(_, t, _)| t))
            .collect();
        let (props, s) = scheduled_exchange(engine, schedules)?;
        report.push(format!("phase{phase}:propose"), s);

        for x in 0..n {
            if let Some(y) = proposed[x] {
                // mutual proposal ⇒ matched
                if props[x].iter().any(|&(src, _)| src == y) {
                    mate[x] = Some(y);
                }
            }
        }
    }

    Ok(MatchingResult {
        mate,
        phases: phase,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast_trees::build_broadcast_trees;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    fn run(g: &Graph, seed: u64) -> MatchingResult {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0x99A);
        let (bt, _) = build_broadcast_trees(&mut eng, &shared, g).unwrap();
        maximal_matching(&mut eng, &shared, &bt, g).unwrap()
    }

    fn assert_valid(g: &Graph, r: &MatchingResult) {
        check::check_matching(g, &r.mate).unwrap_or_else(|e| panic!("invalid matching: {e}"));
    }

    #[test]
    fn single_edge() {
        let g = Graph::from_edges(8, [(2, 5)]);
        let r = run(&g, 1);
        assert_valid(&g, &r);
        assert_eq!(r.mate[2], Some(5));
        assert_eq!(r.mate[5], Some(2));
    }

    #[test]
    fn star_matches_exactly_one_leaf() {
        let g = gen::star(32);
        let r = run(&g, 2);
        assert_valid(&g, &r);
        assert!(r.mate[0].is_some());
        let matched = r.mate.iter().filter(|m| m.is_some()).count();
        assert_eq!(matched, 2);
    }

    #[test]
    fn path_matching_maximal() {
        let g = gen::path(25);
        let r = run(&g, 3);
        assert_valid(&g, &r);
    }

    #[test]
    fn complete_graph_perfect_matching() {
        let g = gen::complete(16);
        let r = run(&g, 4);
        assert_valid(&g, &r);
        // maximal on K_16 is perfect
        assert!(r.mate.iter().all(Option::is_some));
    }

    #[test]
    fn random_graphs_valid() {
        for seed in 0..3 {
            let g = gen::gnp(48, 0.12, seed);
            let r = run(&g, 20 + seed);
            assert_valid(&g, &r);
            assert!(r.phases <= 40, "phases {}", r.phases);
        }
    }

    #[test]
    fn empty_graph_trivial() {
        let g = Graph::empty(12);
        let r = run(&g, 5);
        assert_valid(&g, &r);
        assert!(r.mate.iter().all(Option::is_none));
        assert_eq!(r.phases, 1);
    }

    #[test]
    fn bounded_arboricity_graph() {
        let g = gen::forest_union(64, 4, 6);
        let r = run(&g, 7);
        assert_valid(&g, &r);
    }
}
