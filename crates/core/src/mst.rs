//! Minimum Spanning Tree (§3, Theorem 3.2): `O(log⁴ n)` rounds.
//!
//! Boruvka with Heads/Tails clustering. Each component keeps a leader and a
//! multicast tree (congestion `O(log n)` — components are disjoint); per
//! Boruvka phase:
//!
//! 1. the leader flips Heads/Tails and multicasts the coin;
//! 2. **FindMin** (King–Kutten–Thorup \[35\] adapted): the component finds its
//!    minimum outgoing edge by search over the combined `(weight ∘ arc id)`
//!    key space. Each step splits the live range into `B = 4` buckets and
//!    asks, **concurrently**, "does the component have an outgoing arc with
//!    key in bucket `j`?" — one Aggregation *lane* per bucket, multiplexed
//!    into the same rounds (the §2 "run many instances in parallel"
//!    argument, executed literally). A bucket's answer compares the XOR
//!    sketches `h↑(C)` and `h↓(C)` (§3): internal edges contribute the same
//!    arc ids to both sums and cancel; outgoing arcs survive. The leader
//!    descends into the smallest non-empty bucket, so the search takes
//!    `⌈log₄ range⌉` steps instead of `⌈log₂ range⌉` — the composition
//!    halves the dominant round cost. One range multicast precedes each
//!    step (step 0 needs none: the initial range is common knowledge, and
//!    the coin multicast rides the step-0 lanes instead);
//! 3. the inside endpoint of the minimum outgoing edge joins the outside
//!    endpoint's multicast group and learns its component's coin and
//!    leader (Theorem 2.4 + 2.5);
//! 4. Tails components whose outgoing edge leads to a Heads component add
//!    the edge to the MST (**only the inside endpoint learns this**, as in
//!    the paper), adopt the Heads leader, and the trees are rebuilt.
//!
//! `O(log n)` phases merge everything w.h.p. \[23, 24\].

//!
//! Every execution group is declared as a protocol [`Dag`]: the four
//! FindMin bucket lanes (plus the step-0 coin multicast) are an antichain
//! the scheduler packs into one mux, the range multicast feeds the bucket
//! memberships through a compute node, and the link/adopt chains thread
//! typed outputs (multicast trees, exchange inboxes) into downstream build
//! closures.

use ncc_butterfly::{
    ab_sub, aggregate_and_broadcast, aggregation_sub, lane_seed, multicast_setup_sub,
    multicast_sub, AggregationSpec, Dag, GroupId, MaxU64, SchedReport, XorPair,
};
use ncc_graph::{NodeId, WeightedGraph};
use ncc_hashing::{SharedRandomness, XorSketch};
use ncc_model::{Engine, ModelError};
use rand::Rng;

use crate::report::AlgoReport;
use crate::support::{arc_id, node_id_bits, schedule_sub};

/// Sub-identifier namespaces for the MST's group families.
const COMP_SUB: u32 = 11; // component trees (target = leader)
const LINK_SUB: u32 = 13; // cross-component coin queries (target = outside endpoint)
const FIND_SUB: u32 = 12; // FindMin sketch aggregation (target = leader)

/// Sketch trials per probe: failure 2⁻⁴⁰ per probe, packed in one word and
/// still `O(log n)` bits.
const SKETCH_TRIALS: usize = 40;

/// FindMin search arity: buckets probed concurrently per step, one
/// aggregation lane each. All lanes share the per-node capacity budget
/// (4 · ⌈log n⌉ scatter messages per round ≤ the κ·⌈log n⌉ cap).
const FIND_BUCKETS: u64 = 4;

/// Lane-seed labels for the composed sub-protocols.
const LS_TREES: u64 = 0x6d73_7401;
const LS_COIN: u64 = 0x6d73_7402;
const LS_RANGE: u64 = 0x6d73_7403;
const LS_AGG: u64 = 0x6d73_7404;
const LS_ANNOUNCE: u64 = 0x6d73_7405;
const LS_LINK_TREES: u64 = 0x6d73_7406;
const LS_LINK_MC: u64 = 0x6d73_7407;
const LS_ADOPT_MC: u64 = 0x6d73_7408;

/// Output of the distributed MST.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// MST/MSF edges, canonical `(min, max)` — the union over nodes of the
    /// locally learned edges (each edge is known to exactly one endpoint).
    pub edges: Vec<(NodeId, NodeId)>,
    pub phases: u32,
    /// Total FindMin search steps across all phases (each step probes
    /// `FIND_BUCKETS` buckets concurrently).
    pub findmin_steps: u32,
    /// Total lane-stages executed by composed (multiplexed) runs — the
    /// per-lane accounting echoed into `RunRecord.metrics`.
    pub lane_stages: u32,
    pub report: AlgoReport,
    /// The scheduler's packing plan across all phases.
    pub plan: SchedReport,
}

/// Splits `[lo, hi)` into at most `b` contiguous integer buckets of
/// near-equal width (every bucket non-empty).
fn bucket_bounds(lo: u64, hi: u64, b: u64) -> Vec<(u64, u64)> {
    let width = hi.saturating_sub(lo);
    if width == 0 {
        return Vec::new();
    }
    let b = b.min(width);
    (0..b)
        .map(|i| (lo + width * i / b, lo + width * (i + 1) / b))
        .collect()
}

/// Runs the MST algorithm. Works on disconnected graphs (yields a forest).
pub fn mst(
    engine: &mut Engine,
    shared: &SharedRandomness,
    wg: &WeightedGraph,
) -> Result<MstResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, wg.n());
    assert!(n >= 2, "MST needs n ≥ 2");
    let idb = node_id_bits(n);
    let arc_mask: u64 = (1u64 << (2 * idb)) - 1;
    let logn = ncc_model::ilog2_ceil(n).max(1);
    let mut report = AlgoReport::default();
    let mut plan = SchedReport::default();

    // agree on W (weights are {1..W}, W = poly(n))
    let inputs: Vec<Option<u64>> = (0..n)
        .map(|u| wg.weighted_neighbors(u as NodeId).map(|(_, w)| w).max())
        .collect();
    let (wmax, s) = aggregate_and_broadcast(engine, inputs, &MaxU64)?;
    report.push("agree-w", s);
    let w_max = wmax[0].unwrap_or(1);

    let key_of = |w: u64, a: NodeId, b: NodeId| -> u64 { (w << (2 * idb)) | arc_id(a, b, idb) };
    let range_hi: u64 = (w_max + 1) << (2 * idb);
    // steps until every component's live range has width ≤ 1 (worst-case
    // bucket width is ⌈width / B⌉)
    let find_steps = {
        let mut steps = 0u32;
        let mut w = range_hi;
        while w > 1 {
            w = w.div_ceil(FIND_BUCKETS);
            steps += 1;
        }
        steps
    };

    let sketch = XorSketch::derive(
        shared,
        ncc_hashing::shared::labels::MST_SKETCH,
        SKETCH_TRIALS,
        SharedRandomness::k_for(n),
    );

    // bucket-j memberships for the given live ranges: every node sketches
    // its incident arcs with keys in bucket j of its component's range.
    // A `Copy` closure, so the per-bucket DAG build closures can share it.
    let sketch_ref = &sketch;
    let build_memberships = move |lo: &[u64], hi: &[u64], leader: &[NodeId], j: usize| {
        (0..n)
            .map(|u| {
                let bounds = bucket_bounds(lo[u], hi[u], FIND_BUCKETS);
                let Some(&(blo, bhi)) = bounds.get(j) else {
                    return Vec::new();
                };
                let mut up = 0u64;
                let mut down = 0u64;
                for (v, w) in wg.weighted_neighbors(u as NodeId) {
                    let k_up = key_of(w, u as NodeId, v);
                    if (blo..bhi).contains(&k_up) {
                        up ^= sketch_ref.element_mask(k_up & arc_mask | (w << (2 * idb)));
                    }
                    let k_dn = key_of(w, v, u as NodeId);
                    if (blo..bhi).contains(&k_dn) {
                        down ^= sketch_ref.element_mask(k_dn & arc_mask | (w << (2 * idb)));
                    }
                }
                if up == 0 && down == 0 {
                    Vec::new() // zero contribution: XOR-identity, skip
                } else {
                    vec![(GroupId::new(leader[u], FIND_SUB), (up, down))]
                }
            })
            .collect::<Vec<Vec<(GroupId, (u64, u64))>>>()
    };

    // leaders descend into the smallest non-empty bucket (up ≠ down sketch)
    fn descend(
        lo: &mut [u64],
        hi: &mut [u64],
        leader: &[NodeId],
        lane_out: &[ncc_butterfly::GroupedDeliveries<(u64, u64)>],
    ) {
        for u in 0..lo.len() {
            if leader[u] != u as NodeId || hi[u] <= lo[u] {
                continue;
            }
            let bounds = bucket_bounds(lo[u], hi[u], FIND_BUCKETS);
            let mut chosen = None;
            for (j, &(blo, bhi)) in bounds.iter().enumerate() {
                let (up, down) = lane_out[j][u].first().map(|&(_, v)| v).unwrap_or((0, 0));
                if up != down {
                    chosen = Some((blo, bhi));
                    break;
                }
            }
            match chosen {
                Some((blo, bhi)) => {
                    lo[u] = blo;
                    hi[u] = bhi;
                }
                None => {
                    // no outgoing arc anywhere in the live range
                    lo[u] = 0;
                    hi[u] = 0;
                }
            }
        }
    }

    let mut leader: Vec<NodeId> = (0..n as NodeId).collect();
    let mut mst_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let max_phases = 4 * logn + 16;
    let mut findmin_steps: u32 = 0;

    let mut phase: u32 = 0;
    loop {
        phase += 1;
        assert!(phase <= max_phases, "Boruvka did not converge");
        let pl = phase as u64;

        // ---- component trees (fused setup) ----------------------------------
        let joins: Vec<Vec<(GroupId, NodeId)>> = (0..n)
            .map(|u| {
                if leader[u] != u as NodeId {
                    vec![(GroupId::new(leader[u], COMP_SUB), u as NodeId)]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let trees_seed = lane_seed(engine, LS_TREES, pl);
        let mut dag = Dag::new();
        let trees_node = dag.proto(
            format!("p{phase}:trees"),
            &[],
            move |_| multicast_setup_sub(n, shared, joins, trees_seed),
            |s| s.into_trees(),
        );
        let mut run = dag.run(engine)?;
        report.push(format!("p{phase}:trees"), run.stats);
        let trees = run.outputs.take(trees_node);
        plan.merge(run.report);

        // ---- coin flips (multicast rides the step-0 FindMin lanes) ----------
        let mut coin: Vec<bool> = vec![false; n]; // per node: its component's coin
        let mut coin_msgs: Vec<Option<(GroupId, u64)>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId {
                let mut rng = ncc_model::rng::node_rng(
                    engine.config().seed ^ 0x6d73_7400 ^ (pl << 32),
                    u as u32,
                );
                coin[u] = rng.gen_bool(0.5);
                coin_msgs[u] = Some((GroupId::new(u as NodeId, COMP_SUB), coin[u] as u64));
            }
        }

        // ---- FindMin: B-ary search over (weight ∘ arc id) keys --------------
        // The live range [lo, hi) starts as common knowledge and is
        // re-multicast by the leader after each narrowing; (0, 0) encodes
        // "no outgoing edge".
        let mut lo: Vec<u64> = vec![0; n];
        let mut hi: Vec<u64> = vec![range_hi; n];
        for step in 0..find_steps {
            findmin_steps += 1;
            let sl = (pl << 16) | step as u64;
            let agg_seeds: Vec<u64> = (0..FIND_BUCKETS)
                .map(|j| lane_seed(engine, LS_AGG, (sl << 3) | j))
                .collect();
            let trees = &trees;

            let mut dag = Dag::new();
            if step == 0 {
                // the initial range is common knowledge: the four bucket
                // lanes and the coin multicast are one packed antichain
                let mut aggs = Vec::new();
                for (j, &seed) in agg_seeds.iter().enumerate() {
                    let leader_c = leader.clone();
                    let lo_c = lo.clone();
                    let hi_c = hi.clone();
                    aggs.push(dag.proto(
                        format!("p{phase}:find0:agg{j}"),
                        &[],
                        move |_| {
                            aggregation_sub(
                                n,
                                shared,
                                AggregationSpec {
                                    memberships: build_memberships(&lo_c, &hi_c, &leader_c, j),
                                    ell2_hat: 1,
                                },
                                &XorPair,
                                seed,
                            )
                        },
                        |s| s.into_deliveries(),
                    ));
                }
                let coin_seed = lane_seed(engine, LS_COIN, pl);
                let msgs = std::mem::take(&mut coin_msgs);
                let coin_node = dag.proto(
                    format!("p{phase}:find0:coin"),
                    &[],
                    move |_| multicast_sub(n, shared, trees, msgs, 1, coin_seed),
                    |s| s.into_deliveries(),
                );
                let mut run = dag.run(engine)?;
                report.push(format!("p{phase}:find{step}"), run.stats);
                let lane_out: Vec<_> = aggs.iter().map(|&a| run.outputs.take(a)).collect();
                let coins_recv = run.outputs.take(coin_node);
                plan.merge(run.report);
                for u in 0..n {
                    if leader[u] != u as NodeId {
                        coin[u] = coins_recv[u]
                            .first()
                            .map(|&(_, c)| c == 1)
                            .expect("member must receive its component's coin");
                    }
                }
                descend(&mut lo, &mut hi, &leader, &lane_out);
            } else {
                // leaders re-announce their narrowed range; the delivered
                // ranges feed the bucket memberships through a compute node
                let range_seed = lane_seed(engine, LS_RANGE, sl);
                let mut msgs: Vec<Option<(GroupId, (u64, u64))>> = vec![None; n];
                for u in 0..n {
                    if leader[u] == u as NodeId {
                        msgs[u] = Some((GroupId::new(u as NodeId, COMP_SUB), (lo[u], hi[u])));
                    }
                }
                let mc = dag.proto(
                    format!("p{phase}:find{step}:range-mc"),
                    &[],
                    move |_| multicast_sub(n, shared, trees, msgs, 1, range_seed),
                    |s| s.into_deliveries(),
                );
                let lo_c = lo.clone();
                let hi_c = hi.clone();
                let leader_c = leader.clone();
                let ranges = dag.compute(
                    format!("p{phase}:find{step}:range"),
                    &[mc.into()],
                    move |d| {
                        let recv = d.get(mc);
                        let (mut lo, mut hi) = (lo_c, hi_c);
                        for u in 0..n {
                            if leader_c[u] != u as NodeId {
                                let (rlo, rhi) = recv[u]
                                    .first()
                                    .map(|&(_, r)| r)
                                    .expect("range reaches members");
                                lo[u] = rlo;
                                hi[u] = rhi;
                            }
                        }
                        (lo, hi)
                    },
                );
                let mut aggs = Vec::new();
                for (j, &seed) in agg_seeds.iter().enumerate() {
                    let leader_c = leader.clone();
                    aggs.push(dag.proto(
                        format!("p{phase}:find{step}:agg{j}"),
                        &[ranges.into()],
                        move |d| {
                            let (lo, hi) = d.get(ranges);
                            aggregation_sub(
                                n,
                                shared,
                                AggregationSpec {
                                    memberships: build_memberships(lo, hi, &leader_c, j),
                                    ell2_hat: 1,
                                },
                                &XorPair,
                                seed,
                            )
                        },
                        |s| s.into_deliveries(),
                    ));
                }
                let mut run = dag.run(engine)?;
                report.push(format!("p{phase}:find{step}"), run.stats);
                let (new_lo, new_hi) = run.outputs.take(ranges);
                lo = new_lo;
                hi = new_hi;
                let lane_out: Vec<_> = aggs.iter().map(|&a| run.outputs.take(a)).collect();
                plan.merge(run.report);
                descend(&mut lo, &mut hi, &leader, &lane_out);
            }
        }

        // leaders know the minimum outgoing key (width-1 range) or "none"
        let mut found: Vec<Option<u64>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId && hi[u] > lo[u] {
                debug_assert_eq!(hi[u] - lo[u], 1, "search must converge to one key");
                found[u] = Some(lo[u]);
            }
        }

        // ---- announce the found key ∥ global termination check --------------
        let mut msgs: Vec<Option<(GroupId, u64)>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId {
                let code = found[u].map_or(0, |k| k + 1);
                msgs[u] = Some((GroupId::new(u as NodeId, COMP_SUB), code));
            }
        }
        let done_inputs: Vec<Option<u64>> = (0..n)
            .map(|u| {
                if leader[u] == u as NodeId && found[u].is_some() {
                    Some(1)
                } else {
                    None
                }
            })
            .collect();
        let announce_seed = lane_seed(engine, LS_ANNOUNCE, pl);
        let trees_ref = &trees;
        let mut dag = Dag::new();
        let announce = dag.proto(
            format!("p{phase}:announce"),
            &[],
            move |_| multicast_sub(n, shared, trees_ref, msgs, 1, announce_seed),
            |s| s.into_deliveries(),
        );
        let done = dag.proto(
            format!("p{phase}:done"),
            &[],
            move |_| ab_sub(n, done_inputs, &MaxU64),
            |s| s.into_results(),
        );
        let mut run = dag.run(engine)?;
        report.push(format!("p{phase}:announce+done"), run.stats);
        let keys_recv = run.outputs.take(announce);
        let still_merging = run.outputs.take(done)[0].is_some();
        plan.merge(run.report);
        for u in 0..n {
            if leader[u] != u as NodeId {
                let code = keys_recv[u]
                    .first()
                    .map(|&(_, c)| c)
                    .expect("key reaches members");
                found[u] = if code > 0 { Some(code - 1) } else { None };
            }
        }
        if !still_merging {
            break;
        }

        // ---- inside endpoints identify themselves ---------------------------
        // key decodes to arc (a, b); exactly one endpoint is in the component
        // and only component members received the key.
        let mut inside: Vec<Option<(NodeId, NodeId)>> = vec![None; n]; // u → (me, outside)
        for u in 0..n {
            if let Some(k) = found[u] {
                let arc = k & arc_mask;
                let a = (arc >> idb) as NodeId;
                let b = (arc & ((1 << idb) - 1)) as NodeId;
                if u as NodeId == a {
                    inside[u] = Some((a, b));
                } else if u as NodeId == b {
                    inside[u] = Some((b, a));
                }
            }
        }

        // ---- learn the neighbor component's coin and leader ------------------
        let joins: Vec<Vec<(GroupId, NodeId)>> = (0..n)
            .map(|u| match inside[u] {
                Some((_, y)) if !coin[u] => {
                    vec![(GroupId::new(y, LINK_SUB), u as NodeId)]
                }
                _ => Vec::new(),
            })
            .collect();
        let link_trees_seed = lane_seed(engine, LS_LINK_TREES, pl);
        let link_mc_seed = lane_seed(engine, LS_LINK_MC, pl);
        let messages: Vec<Option<(GroupId, (u64, u64))>> = (0..n)
            .map(|y| {
                Some((
                    GroupId::new(y as NodeId, LINK_SUB),
                    (coin[y] as u64, leader[y] as u64),
                ))
            })
            .collect();
        let mut dag = Dag::new();
        let link_trees = dag.proto(
            format!("p{phase}:link-trees"),
            &[],
            move |_| multicast_setup_sub(n, shared, joins, link_trees_seed),
            |s| s.into_trees(),
        );
        // the freshly recorded trees thread straight into the coin/leader
        // multicast's build closure
        let link_mc = dag.proto(
            format!("p{phase}:link-mc"),
            &[link_trees.into()],
            move |d| multicast_sub(n, shared, d.get(link_trees), messages, 1, link_mc_seed),
            |s| s.into_deliveries(),
        );
        let mut run = dag.run(engine)?;
        report.push(format!("p{phase}:link"), run.stats);
        let link_info = run.outputs.take(link_mc);
        plan.merge(run.report);

        // ---- merge decisions --------------------------------------------------
        // Tails component whose edge leads to Heads: record the MST edge at
        // the inside endpoint and ship the new leader to the old leader.
        let mut new_leader_msg: Vec<Vec<(u64, NodeId, u64)>> = vec![Vec::new(); n];
        let mut local_new_leader: Vec<Option<NodeId>> = vec![None; n];
        for u in 0..n {
            let Some((me, y)) = inside[u] else { continue };
            if coin[u] {
                continue; // Heads components don't move
            }
            let Some(&(_, (coin_y, leader_y))) = link_info[u].first() else {
                continue;
            };
            if coin_y == 1 {
                // Tails → Heads: edge joins the MST (only `me` learns this)
                mst_edges.push((me.min(y), me.max(y)));
                if leader[u] == u as NodeId {
                    local_new_leader[u] = Some(leader_y as NodeId);
                } else {
                    new_leader_msg[u].push((1, leader[u], leader_y));
                }
            }
        }
        let adopt_mc_seed = lane_seed(engine, LS_ADOPT_MC, pl);
        let mut dag = Dag::new();
        let adopt = dag.proto(
            format!("p{phase}:adopt"),
            &[],
            move |_| schedule_sub(n, new_leader_msg),
            |s| s.into_results(),
        );
        // leaders fold their inbox with the locally decided adoption and
        // broadcast the outcome (0 = unchanged) down the component trees
        let leader_c = leader.clone();
        let decide = dag.compute(format!("p{phase}:adopted"), &[adopt.into()], move |d| {
            let leader_inbox = d.get(adopt);
            let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
            let mut adopted: Vec<Option<NodeId>> = vec![None; n];
            for u in 0..n {
                if leader_c[u] == u as NodeId {
                    let nl = local_new_leader[u]
                        .or_else(|| leader_inbox[u].first().map(|&(_, nl)| nl as NodeId));
                    adopted[u] = nl;
                    messages[u] = Some((
                        GroupId::new(u as NodeId, COMP_SUB),
                        nl.map_or(0, |l| l as u64 + 1),
                    ));
                }
            }
            (adopted, messages)
        });
        let adopt_mc = dag.proto(
            format!("p{phase}:adopt-mc"),
            &[decide.into()],
            move |d| {
                let (_, messages) = d.get(decide);
                multicast_sub(n, shared, trees_ref, messages.clone(), 1, adopt_mc_seed)
            },
            |s| s.into_deliveries(),
        );
        let mut run = dag.run(engine)?;
        report.push(format!("p{phase}:adopt"), run.stats);
        let (adopted, _) = run.outputs.take(decide);
        let adopt_recv = run.outputs.take(adopt_mc);
        plan.merge(run.report);
        for u in 0..n {
            if leader[u] == u as NodeId {
                if let Some(nl) = adopted[u] {
                    leader[u] = nl;
                }
            } else {
                let code = adopt_recv[u]
                    .first()
                    .map(|&(_, c)| c)
                    .expect("members hear adoption");
                if code > 0 {
                    leader[u] = (code - 1) as NodeId;
                }
            }
        }
    }

    mst_edges.sort_unstable();
    mst_edges.dedup();
    Ok(MstResult {
        edges: mst_edges,
        phases: phase,
        findmin_steps,
        lane_stages: plan.lane_stages() as u32,
        report,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    fn run(wg: &WeightedGraph, seed: u64) -> MstResult {
        let mut eng = Engine::new(NetConfig::new(wg.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0x357);
        mst(&mut eng, &shared, wg).unwrap()
    }

    fn assert_valid(wg: &WeightedGraph, r: &MstResult) {
        check::check_mst(wg, &r.edges).unwrap_or_else(|e| panic!("invalid MST: {e}"));
    }

    #[test]
    fn tiny_known_graph() {
        let wg = WeightedGraph::from_weighted_edges(
            4,
            [(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 10), (0, 2, 9)],
        );
        let r = run(&wg, 1);
        assert_valid(&wg, &r);
        assert_eq!(r.edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn path_takes_all_edges() {
        let g = gen::path(20);
        let wg = gen::with_random_weights(&g, 100, 3);
        let r = run(&wg, 2);
        assert_valid(&wg, &r);
        assert_eq!(r.edges.len(), 19);
    }

    #[test]
    fn cycle_drops_heaviest() {
        let wg = WeightedGraph::from_weighted_edges(
            6,
            (0..6u32).map(|i| (i, (i + 1) % 6, if i == 3 { 50 } else { i as u64 + 1 })),
        );
        let r = run(&wg, 3);
        assert_valid(&wg, &r);
        assert!(
            !r.edges.contains(&(3, 4)),
            "heaviest edge kept: {:?}",
            r.edges
        );
    }

    #[test]
    fn random_graph_weight_matches_kruskal() {
        for seed in 0..3u64 {
            let g = gen::gnp(32, 0.2, seed);
            let wg = gen::with_random_weights(&g, 1000, seed + 10);
            let r = run(&wg, 20 + seed);
            assert_valid(&wg, &r);
        }
    }

    #[test]
    fn duplicate_weights_still_minimal() {
        // many equal weights: tie-break by arc id must stay consistent
        let g = gen::gnp(24, 0.3, 7);
        let wg = gen::with_random_weights(&g, 3, 8);
        let r = run(&wg, 9);
        assert_valid(&wg, &r);
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let wg = WeightedGraph::from_weighted_edges(
            10,
            [(0, 1, 1), (1, 2, 5), (4, 5, 2), (5, 6, 1), (8, 9, 9)],
        );
        let r = run(&wg, 4);
        assert_valid(&wg, &r);
        assert_eq!(r.edges.len(), 5);
    }

    #[test]
    fn star_with_distinct_weights() {
        let g = gen::star(30);
        let wg = gen::with_distinct_weights(&g, 5);
        let r = run(&wg, 6);
        assert_valid(&wg, &r);
        assert_eq!(r.edges.len(), 29);
    }

    #[test]
    fn phases_logarithmic() {
        let g = gen::gnp(64, 0.15, 11);
        let wg = gen::with_random_weights(&g, 10_000, 12);
        let r = run(&wg, 13);
        assert_valid(&wg, &r);
        assert!(r.phases <= 4 * 6 + 4, "phases {}", r.phases);
        // lane accounting: every phase ran multi-lane FindMin steps
        assert!(r.findmin_steps >= r.phases);
        assert!(r.lane_stages > r.findmin_steps);
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        for (lo, hi) in [(0u64, 1u64), (0, 7), (5, 6), (10, 100), (0, 1 << 40)] {
            let b = bucket_bounds(lo, hi, 4);
            assert!(!b.is_empty());
            assert_eq!(b[0].0, lo);
            assert_eq!(b.last().unwrap().1, hi);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0, "buckets must be contiguous");
            }
            assert!(b.iter().all(|&(a, z)| z > a), "no empty buckets");
        }
        assert!(bucket_bounds(3, 3, 4).is_empty());
    }
}
