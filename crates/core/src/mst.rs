//! Minimum Spanning Tree (§3, Theorem 3.2): `O(log⁴ n)` rounds.
//!
//! Boruvka with Heads/Tails clustering. Each component keeps a leader and a
//! multicast tree (congestion `O(log n)` — components are disjoint); per
//! Boruvka phase:
//!
//! 1. the leader flips Heads/Tails and multicasts the coin;
//! 2. **FindMin** (King–Kutten–Thorup \[35\] adapted): the component finds its
//!    minimum outgoing edge by binary search over the combined
//!    `(weight ∘ arc id)` key space. Each probe asks "does the component
//!    have an outgoing arc with key in `[lo, mid)`?", answered by comparing
//!    the XOR sketches `h↑(C)` and `h↓(C)` (§3): internal edges contribute
//!    the same arc ids to both sums and cancel; outgoing arcs survive. One
//!    Multicast (the range) plus one Aggregation (the packed multi-trial
//!    sketch pair, see `ncc_hashing::XorSketch`) per probe;
//! 3. the inside endpoint of the minimum outgoing edge joins the outside
//!    endpoint's multicast group and learns its component's coin and
//!    leader (Theorem 2.4 + 2.5);
//! 4. Tails components whose outgoing edge leads to a Heads component add
//!    the edge to the MST (**only the inside endpoint learns this**, as in
//!    the paper), adopt the Heads leader, and the trees are rebuilt.
//!
//! `O(log n)` phases merge everything w.h.p. \[23, 24\].

use ncc_butterfly::{
    aggregate, aggregate_and_broadcast, multicast, multicast_setup, AggregationSpec, GroupId,
    MaxU64, XorPair,
};
use ncc_graph::{NodeId, WeightedGraph};
use ncc_hashing::{SharedRandomness, XorSketch};
use ncc_model::{Engine, ModelError};
use rand::Rng;

use crate::report::AlgoReport;
use crate::support::{arc_id, node_id_bits, scheduled_exchange};

/// Sub-identifier namespaces for the MST's group families.
const COMP_SUB: u32 = 11; // component trees (target = leader)
const LINK_SUB: u32 = 13; // cross-component coin queries (target = outside endpoint)
const FIND_SUB: u32 = 12; // FindMin sketch aggregation (target = leader)

/// Sketch trials per probe: failure 2⁻⁴⁰ per probe, packed in one word and
/// still `O(log n)` bits.
const SKETCH_TRIALS: usize = 40;

/// Output of the distributed MST.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// MST/MSF edges, canonical `(min, max)` — the union over nodes of the
    /// locally learned edges (each edge is known to exactly one endpoint).
    pub edges: Vec<(NodeId, NodeId)>,
    pub phases: u32,
    pub report: AlgoReport,
}

/// Runs the MST algorithm. Works on disconnected graphs (yields a forest).
pub fn mst(
    engine: &mut Engine,
    shared: &SharedRandomness,
    wg: &WeightedGraph,
) -> Result<MstResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, wg.n());
    assert!(n >= 2, "MST needs n ≥ 2");
    let idb = node_id_bits(n);
    let arc_mask: u64 = (1u64 << (2 * idb)) - 1;
    let logn = ncc_model::ilog2_ceil(n).max(1);
    let mut report = AlgoReport::default();

    // agree on W (weights are {1..W}, W = poly(n))
    let inputs: Vec<Option<u64>> = (0..n)
        .map(|u| wg.weighted_neighbors(u as NodeId).map(|(_, w)| w).max())
        .collect();
    let (wmax, s) = aggregate_and_broadcast(engine, inputs, &MaxU64)?;
    report.push("agree-w", s);
    let w_max = wmax[0].unwrap_or(1);

    let key_of = |w: u64, a: NodeId, b: NodeId| -> u64 { (w << (2 * idb)) | arc_id(a, b, idb) };
    let range_hi: u64 = (w_max + 1) << (2 * idb);
    let probe_count = 64 - (range_hi - 1).leading_zeros(); // ⌈log₂ range⌉

    let sketch = XorSketch::derive(
        shared,
        ncc_hashing::shared::labels::MST_SKETCH,
        SKETCH_TRIALS,
        SharedRandomness::k_for(n),
    );

    let mut leader: Vec<NodeId> = (0..n as NodeId).collect();
    let mut mst_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let max_phases = 4 * logn + 16;

    let mut phase: u32 = 0;
    loop {
        phase += 1;
        assert!(phase <= max_phases, "Boruvka did not converge");

        // ---- component trees ------------------------------------------------
        let joins: Vec<Vec<(GroupId, NodeId)>> = (0..n)
            .map(|u| {
                if leader[u] != u as NodeId {
                    vec![(GroupId::new(leader[u], COMP_SUB), u as NodeId)]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let (trees, s) = multicast_setup(engine, shared, joins)?;
        report.push(format!("p{phase}:trees"), s);

        // ---- coin flips ------------------------------------------------------
        let mut coin: Vec<bool> = vec![false; n]; // per node: its component's coin
        let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId {
                let mut rng = ncc_model::rng::node_rng(
                    engine.config().seed ^ 0x6d73_7400 ^ ((phase as u64) << 32),
                    u as u32,
                );
                coin[u] = rng.gen_bool(0.5);
                messages[u] = Some((GroupId::new(u as NodeId, COMP_SUB), coin[u] as u64));
            }
        }
        let (coins_recv, s) = multicast(engine, shared, &trees, messages, 1)?;
        report.push(format!("p{phase}:coin"), s);
        for u in 0..n {
            if leader[u] != u as NodeId {
                coin[u] = coins_recv[u]
                    .first()
                    .map(|&(_, c)| c == 1)
                    .expect("member must receive its component's coin");
            }
        }

        // ---- FindMin: binary search over (weight ∘ arc id) keys -------------
        let mut lo: Vec<u64> = vec![0; n]; // per node: its leader's view, mirrored
        let mut hi: Vec<u64> = vec![range_hi; n];
        // Only leaders maintain the authoritative [lo, hi); members learn the
        // probe range from the multicast each step.
        for step in 0..=probe_count {
            // leaders announce the probe range [lo, mid) — or the final
            // existence probe [lo, lo+1) in the last step
            let mut messages: Vec<Option<(GroupId, (u64, u64))>> = vec![None; n];
            let mut probe: Vec<(u64, u64)> = vec![(0, 0); n];
            for u in 0..n {
                if leader[u] == u as NodeId {
                    let mid = if step < probe_count {
                        lo[u] + (hi[u] - lo[u]) / 2
                    } else {
                        lo[u] + 1
                    };
                    probe[u] = (lo[u], mid);
                    messages[u] = Some((GroupId::new(u as NodeId, COMP_SUB), (lo[u], mid)));
                }
            }
            let (ranges, s) = multicast(engine, shared, &trees, messages, 1)?;
            report.push(format!("p{phase}:find{step}:mc"), s);
            for u in 0..n {
                if leader[u] != u as NodeId {
                    probe[u] = ranges[u]
                        .first()
                        .map(|&(_, r)| r)
                        .expect("range reaches members");
                }
            }

            // every node sketches its incident arcs with keys in [plo, pmid)
            let memberships: Vec<Vec<(GroupId, (u64, u64))>> = (0..n)
                .map(|u| {
                    let (plo, pmid) = probe[u];
                    let mut up = 0u64;
                    let mut down = 0u64;
                    for (v, w) in wg.weighted_neighbors(u as NodeId) {
                        let k_up = key_of(w, u as NodeId, v);
                        if (plo..pmid).contains(&k_up) {
                            up ^= sketch.element_mask(k_up & arc_mask | (w << (2 * idb)));
                        }
                        let k_dn = key_of(w, v, u as NodeId);
                        if (plo..pmid).contains(&k_dn) {
                            down ^= sketch.element_mask(k_dn & arc_mask | (w << (2 * idb)));
                        }
                    }
                    vec![(GroupId::new(leader[u], FIND_SUB), (up, down))]
                })
                .collect();
            let (sketches, s) = aggregate(
                engine,
                shared,
                AggregationSpec {
                    memberships,
                    ell2_hat: 1,
                },
                &XorPair,
            )?;
            report.push(format!("p{phase}:find{step}:agg"), s);

            for u in 0..n {
                if leader[u] == u as NodeId {
                    let (up, down) = sketches[u].first().map(|&(_, v)| v).unwrap_or((0, 0));
                    let has_outgoing = up != down;
                    let (plo, pmid) = probe[u];
                    if step < probe_count {
                        if has_outgoing {
                            hi[u] = pmid;
                        } else {
                            lo[u] = pmid;
                        }
                    } else {
                        // final existence probe on the single key lo
                        if !has_outgoing {
                            lo[u] = u64::MAX; // sentinel: no outgoing edge
                        }
                        let _ = (plo, pmid);
                    }
                }
            }
        }

        // leaders announce the found key (or "none")
        let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
        let mut found: Vec<Option<u64>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId {
                let code = if lo[u] == u64::MAX { 0 } else { lo[u] + 1 };
                if code > 0 {
                    found[u] = Some(code - 1);
                }
                messages[u] = Some((GroupId::new(u as NodeId, COMP_SUB), code));
            }
        }
        let (keys_recv, s) = multicast(engine, shared, &trees, messages, 1)?;
        report.push(format!("p{phase}:announce"), s);
        for u in 0..n {
            if leader[u] != u as NodeId {
                let code = keys_recv[u]
                    .first()
                    .map(|&(_, c)| c)
                    .expect("key reaches members");
                found[u] = if code > 0 { Some(code - 1) } else { None };
            }
        }

        // ---- global termination: any component with an outgoing edge? -------
        let inputs: Vec<Option<u64>> = (0..n)
            .map(|u| {
                if leader[u] == u as NodeId && found[u].is_some() {
                    Some(1)
                } else {
                    None
                }
            })
            .collect();
        let (any, s) = aggregate_and_broadcast(engine, inputs, &MaxU64)?;
        report.push(format!("p{phase}:done?"), s);
        if any[0].is_none() {
            break;
        }

        // ---- inside endpoints identify themselves ---------------------------
        // key decodes to arc (a, b); exactly one endpoint is in the component
        // and only component members received the key.
        let mut inside: Vec<Option<(NodeId, NodeId)>> = vec![None; n]; // u → (me, outside)
        for u in 0..n {
            if let Some(k) = found[u] {
                let arc = k & arc_mask;
                let a = (arc >> idb) as NodeId;
                let b = (arc & ((1 << idb) - 1)) as NodeId;
                if u as NodeId == a {
                    inside[u] = Some((a, b));
                } else if u as NodeId == b {
                    inside[u] = Some((b, a));
                }
            }
        }

        // ---- learn the neighbor component's coin and leader ------------------
        let joins: Vec<Vec<(GroupId, NodeId)>> = (0..n)
            .map(|u| match inside[u] {
                Some((_, y)) if !coin[u] => {
                    vec![(GroupId::new(y, LINK_SUB), u as NodeId)]
                }
                _ => Vec::new(),
            })
            .collect();
        let (link_trees, s) = multicast_setup(engine, shared, joins)?;
        report.push(format!("p{phase}:link-trees"), s);
        let messages: Vec<Option<(GroupId, (u64, u64))>> = (0..n)
            .map(|y| {
                Some((
                    GroupId::new(y as NodeId, LINK_SUB),
                    (coin[y] as u64, leader[y] as u64),
                ))
            })
            .collect();
        let (link_info, s) = multicast(engine, shared, &link_trees, messages, 1)?;
        report.push(format!("p{phase}:link-mc"), s);

        // ---- merge decisions --------------------------------------------------
        // Tails component whose edge leads to Heads: record the MST edge at
        // the inside endpoint and ship the new leader to the old leader.
        let mut new_leader_msg: Vec<Vec<(u64, NodeId, u64)>> = vec![Vec::new(); n];
        let mut local_new_leader: Vec<Option<NodeId>> = vec![None; n];
        for u in 0..n {
            let Some((me, y)) = inside[u] else { continue };
            if coin[u] {
                continue; // Heads components don't move
            }
            let Some(&(_, (coin_y, leader_y))) = link_info[u].first() else {
                continue;
            };
            if coin_y == 1 {
                // Tails → Heads: edge joins the MST (only `me` learns this)
                mst_edges.push((me.min(y), me.max(y)));
                if leader[u] == u as NodeId {
                    local_new_leader[u] = Some(leader_y as NodeId);
                } else {
                    new_leader_msg[u].push((1, leader[u], leader_y));
                }
            }
        }
        let (leader_inbox, s) = scheduled_exchange(engine, new_leader_msg)?;
        report.push(format!("p{phase}:adopt"), s);

        // leaders broadcast the adopted leader (0 = unchanged)
        let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
        let mut adopted: Vec<Option<NodeId>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId {
                let nl = local_new_leader[u]
                    .or_else(|| leader_inbox[u].first().map(|&(_, nl)| nl as NodeId));
                adopted[u] = nl;
                messages[u] = Some((
                    GroupId::new(u as NodeId, COMP_SUB),
                    nl.map_or(0, |l| l as u64 + 1),
                ));
            }
        }
        let (adopt_recv, s) = multicast(engine, shared, &trees, messages, 1)?;
        report.push(format!("p{phase}:adopt-mc"), s);
        for u in 0..n {
            if leader[u] == u as NodeId {
                if let Some(nl) = adopted[u] {
                    leader[u] = nl;
                }
            } else {
                let code = adopt_recv[u]
                    .first()
                    .map(|&(_, c)| c)
                    .expect("members hear adoption");
                if code > 0 {
                    leader[u] = (code - 1) as NodeId;
                }
            }
        }
    }

    mst_edges.sort_unstable();
    mst_edges.dedup();
    Ok(MstResult {
        edges: mst_edges,
        phases: phase,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    fn run(wg: &WeightedGraph, seed: u64) -> MstResult {
        let mut eng = Engine::new(NetConfig::new(wg.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0x357);
        mst(&mut eng, &shared, wg).unwrap()
    }

    fn assert_valid(wg: &WeightedGraph, r: &MstResult) {
        check::check_mst(wg, &r.edges).unwrap_or_else(|e| panic!("invalid MST: {e}"));
    }

    #[test]
    fn tiny_known_graph() {
        let wg = WeightedGraph::from_weighted_edges(
            4,
            [(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 10), (0, 2, 9)],
        );
        let r = run(&wg, 1);
        assert_valid(&wg, &r);
        assert_eq!(r.edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn path_takes_all_edges() {
        let g = gen::path(20);
        let wg = gen::with_random_weights(&g, 100, 3);
        let r = run(&wg, 2);
        assert_valid(&wg, &r);
        assert_eq!(r.edges.len(), 19);
    }

    #[test]
    fn cycle_drops_heaviest() {
        let wg = WeightedGraph::from_weighted_edges(
            6,
            (0..6u32).map(|i| (i, (i + 1) % 6, if i == 3 { 50 } else { i as u64 + 1 })),
        );
        let r = run(&wg, 3);
        assert_valid(&wg, &r);
        assert!(
            !r.edges.contains(&(3, 4)),
            "heaviest edge kept: {:?}",
            r.edges
        );
    }

    #[test]
    fn random_graph_weight_matches_kruskal() {
        for seed in 0..3u64 {
            let g = gen::gnp(32, 0.2, seed);
            let wg = gen::with_random_weights(&g, 1000, seed + 10);
            let r = run(&wg, 20 + seed);
            assert_valid(&wg, &r);
        }
    }

    #[test]
    fn duplicate_weights_still_minimal() {
        // many equal weights: tie-break by arc id must stay consistent
        let g = gen::gnp(24, 0.3, 7);
        let wg = gen::with_random_weights(&g, 3, 8);
        let r = run(&wg, 9);
        assert_valid(&wg, &r);
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let wg = WeightedGraph::from_weighted_edges(
            10,
            [(0, 1, 1), (1, 2, 5), (4, 5, 2), (5, 6, 1), (8, 9, 9)],
        );
        let r = run(&wg, 4);
        assert_valid(&wg, &r);
        assert_eq!(r.edges.len(), 5);
    }

    #[test]
    fn star_with_distinct_weights() {
        let g = gen::star(30);
        let wg = gen::with_distinct_weights(&g, 5);
        let r = run(&wg, 6);
        assert_valid(&wg, &r);
        assert_eq!(r.edges.len(), 29);
    }

    #[test]
    fn phases_logarithmic() {
        let g = gen::gnp(64, 0.15, 11);
        let wg = gen::with_random_weights(&g, 10_000, 12);
        let r = run(&wg, 13);
        assert_valid(&wg, &r);
        assert!(r.phases <= 4 * 6 + 4, "phases {}", r.phases);
    }
}
