//! Minimum Spanning Tree (§3, Theorem 3.2): `O(log⁴ n)` rounds.
//!
//! Boruvka with Heads/Tails clustering. Each component keeps a leader and a
//! multicast tree (congestion `O(log n)` — components are disjoint); per
//! Boruvka phase:
//!
//! 1. the leader flips Heads/Tails and multicasts the coin;
//! 2. **FindMin** (King–Kutten–Thorup \[35\] adapted): the component finds its
//!    minimum outgoing edge by search over the combined `(weight ∘ arc id)`
//!    key space. Each step splits the live range into `B = 4` buckets and
//!    asks, **concurrently**, "does the component have an outgoing arc with
//!    key in bucket `j`?" — one Aggregation *lane* per bucket, multiplexed
//!    into the same rounds (the §2 "run many instances in parallel"
//!    argument, executed literally). A bucket's answer compares the XOR
//!    sketches `h↑(C)` and `h↓(C)` (§3): internal edges contribute the same
//!    arc ids to both sums and cancel; outgoing arcs survive. The leader
//!    descends into the smallest non-empty bucket, so the search takes
//!    `⌈log₄ range⌉` steps instead of `⌈log₂ range⌉` — the composition
//!    halves the dominant round cost. One range multicast precedes each
//!    step (step 0 needs none: the initial range is common knowledge, and
//!    the coin multicast rides the step-0 lanes instead);
//! 3. the inside endpoint of the minimum outgoing edge joins the outside
//!    endpoint's multicast group and learns its component's coin and
//!    leader (Theorem 2.4 + 2.5);
//! 4. Tails components whose outgoing edge leads to a Heads component add
//!    the edge to the MST (**only the inside endpoint learns this**, as in
//!    the paper), adopt the Heads leader, and the trees are rebuilt.
//!
//! `O(log n)` phases merge everything w.h.p. \[23, 24\].

use ncc_butterfly::{
    ab_sub, aggregate_and_broadcast, aggregation_sub, lane_seed, multicast_setup_sub,
    multicast_sub, run_composed, AggregationSpec, AggregationSub, GroupId, LaneSub, MaxU64,
    XorPair,
};
use ncc_graph::{NodeId, WeightedGraph};
use ncc_hashing::{SharedRandomness, XorSketch};
use ncc_model::{Engine, ModelError};
use rand::Rng;

use crate::report::AlgoReport;
use crate::support::{arc_id, node_id_bits, scheduled_exchange};

/// Sub-identifier namespaces for the MST's group families.
const COMP_SUB: u32 = 11; // component trees (target = leader)
const LINK_SUB: u32 = 13; // cross-component coin queries (target = outside endpoint)
const FIND_SUB: u32 = 12; // FindMin sketch aggregation (target = leader)

/// Sketch trials per probe: failure 2⁻⁴⁰ per probe, packed in one word and
/// still `O(log n)` bits.
const SKETCH_TRIALS: usize = 40;

/// FindMin search arity: buckets probed concurrently per step, one
/// aggregation lane each. All lanes share the per-node capacity budget
/// (4 · ⌈log n⌉ scatter messages per round ≤ the κ·⌈log n⌉ cap).
const FIND_BUCKETS: u64 = 4;

/// Lane-seed labels for the composed sub-protocols.
const LS_TREES: u64 = 0x6d73_7401;
const LS_COIN: u64 = 0x6d73_7402;
const LS_RANGE: u64 = 0x6d73_7403;
const LS_AGG: u64 = 0x6d73_7404;
const LS_ANNOUNCE: u64 = 0x6d73_7405;
const LS_LINK_TREES: u64 = 0x6d73_7406;
const LS_LINK_MC: u64 = 0x6d73_7407;
const LS_ADOPT_MC: u64 = 0x6d73_7408;

/// Output of the distributed MST.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// MST/MSF edges, canonical `(min, max)` — the union over nodes of the
    /// locally learned edges (each edge is known to exactly one endpoint).
    pub edges: Vec<(NodeId, NodeId)>,
    pub phases: u32,
    /// Total FindMin search steps across all phases (each step probes
    /// `FIND_BUCKETS` buckets concurrently).
    pub findmin_steps: u32,
    /// Total lane-stages executed by composed (multiplexed) runs — the
    /// per-lane accounting echoed into `RunRecord.metrics`.
    pub lane_stages: u32,
    pub report: AlgoReport,
}

/// Splits `[lo, hi)` into at most `b` contiguous integer buckets of
/// near-equal width (every bucket non-empty).
fn bucket_bounds(lo: u64, hi: u64, b: u64) -> Vec<(u64, u64)> {
    let width = hi.saturating_sub(lo);
    if width == 0 {
        return Vec::new();
    }
    let b = b.min(width);
    (0..b)
        .map(|i| (lo + width * i / b, lo + width * (i + 1) / b))
        .collect()
}

/// Runs the MST algorithm. Works on disconnected graphs (yields a forest).
pub fn mst(
    engine: &mut Engine,
    shared: &SharedRandomness,
    wg: &WeightedGraph,
) -> Result<MstResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, wg.n());
    assert!(n >= 2, "MST needs n ≥ 2");
    let idb = node_id_bits(n);
    let arc_mask: u64 = (1u64 << (2 * idb)) - 1;
    let logn = ncc_model::ilog2_ceil(n).max(1);
    let mut report = AlgoReport::default();
    let xor_pair = XorPair;
    let max_agg = MaxU64;

    // agree on W (weights are {1..W}, W = poly(n))
    let inputs: Vec<Option<u64>> = (0..n)
        .map(|u| wg.weighted_neighbors(u as NodeId).map(|(_, w)| w).max())
        .collect();
    let (wmax, s) = aggregate_and_broadcast(engine, inputs, &max_agg)?;
    report.push("agree-w", s);
    let w_max = wmax[0].unwrap_or(1);

    let key_of = |w: u64, a: NodeId, b: NodeId| -> u64 { (w << (2 * idb)) | arc_id(a, b, idb) };
    let range_hi: u64 = (w_max + 1) << (2 * idb);
    // steps until every component's live range has width ≤ 1 (worst-case
    // bucket width is ⌈width / B⌉)
    let find_steps = {
        let mut steps = 0u32;
        let mut w = range_hi;
        while w > 1 {
            w = w.div_ceil(FIND_BUCKETS);
            steps += 1;
        }
        steps
    };

    let sketch = XorSketch::derive(
        shared,
        ncc_hashing::shared::labels::MST_SKETCH,
        SKETCH_TRIALS,
        SharedRandomness::k_for(n),
    );

    let mut leader: Vec<NodeId> = (0..n as NodeId).collect();
    let mut mst_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let max_phases = 4 * logn + 16;
    let mut findmin_steps: u32 = 0;
    let mut lane_stages: u32 = 0;

    let mut phase: u32 = 0;
    loop {
        phase += 1;
        assert!(phase <= max_phases, "Boruvka did not converge");
        let pl = phase as u64;

        // ---- component trees (fused setup) ----------------------------------
        let joins: Vec<Vec<(GroupId, NodeId)>> = (0..n)
            .map(|u| {
                if leader[u] != u as NodeId {
                    vec![(GroupId::new(leader[u], COMP_SUB), u as NodeId)]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let mut tree_sub = multicast_setup_sub(n, shared, joins, lane_seed(engine, LS_TREES, pl));
        let (s, rep) = run_composed(engine, &mut [&mut tree_sub])?;
        report.push(format!("p{phase}:trees"), s);
        lane_stages += rep.lane_stages;
        let trees = tree_sub.into_trees();

        // ---- coin flips (multicast rides the step-0 FindMin lanes) ----------
        let mut coin: Vec<bool> = vec![false; n]; // per node: its component's coin
        let mut coin_msgs: Vec<Option<(GroupId, u64)>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId {
                let mut rng = ncc_model::rng::node_rng(
                    engine.config().seed ^ 0x6d73_7400 ^ (pl << 32),
                    u as u32,
                );
                coin[u] = rng.gen_bool(0.5);
                coin_msgs[u] = Some((GroupId::new(u as NodeId, COMP_SUB), coin[u] as u64));
            }
        }

        // ---- FindMin: B-ary search over (weight ∘ arc id) keys --------------
        // The live range [lo, hi) starts as common knowledge and is
        // re-multicast by the leader after each narrowing; (0, 0) encodes
        // "no outgoing edge".
        let mut lo: Vec<u64> = vec![0; n];
        let mut hi: Vec<u64> = vec![range_hi; n];
        for step in 0..find_steps {
            findmin_steps += 1;
            let sl = (pl << 16) | step as u64;

            if step > 0 {
                // leaders re-announce their narrowed range
                let mut msgs: Vec<Option<(GroupId, (u64, u64))>> = vec![None; n];
                for u in 0..n {
                    if leader[u] == u as NodeId {
                        msgs[u] = Some((GroupId::new(u as NodeId, COMP_SUB), (lo[u], hi[u])));
                    }
                }
                let mut mc =
                    multicast_sub(n, shared, &trees, msgs, 1, lane_seed(engine, LS_RANGE, sl));
                let (s, rep) = run_composed(engine, &mut [&mut mc])?;
                report.push(format!("p{phase}:find{step}:mc"), s);
                lane_stages += rep.lane_stages;
                let ranges = mc.into_deliveries();
                for u in 0..n {
                    if leader[u] != u as NodeId {
                        let (rlo, rhi) = ranges[u]
                            .first()
                            .map(|&(_, r)| r)
                            .expect("range reaches members");
                        lo[u] = rlo;
                        hi[u] = rhi;
                    }
                }
            }

            // every node sketches its incident arcs, one lane per bucket
            let bounds: Vec<Vec<(u64, u64)>> = (0..n)
                .map(|u| bucket_bounds(lo[u], hi[u], FIND_BUCKETS))
                .collect();
            let mut lanes: Vec<AggregationSub<'_, (u64, u64), XorPair>> = (0..FIND_BUCKETS
                as usize)
                .map(|j| {
                    let memberships: Vec<Vec<(GroupId, (u64, u64))>> = (0..n)
                        .map(|u| {
                            let Some(&(blo, bhi)) = bounds[u].get(j) else {
                                return Vec::new();
                            };
                            let mut up = 0u64;
                            let mut down = 0u64;
                            for (v, w) in wg.weighted_neighbors(u as NodeId) {
                                let k_up = key_of(w, u as NodeId, v);
                                if (blo..bhi).contains(&k_up) {
                                    up ^= sketch.element_mask(k_up & arc_mask | (w << (2 * idb)));
                                }
                                let k_dn = key_of(w, v, u as NodeId);
                                if (blo..bhi).contains(&k_dn) {
                                    down ^= sketch.element_mask(k_dn & arc_mask | (w << (2 * idb)));
                                }
                            }
                            if up == 0 && down == 0 {
                                Vec::new() // zero contribution: XOR-identity, skip
                            } else {
                                vec![(GroupId::new(leader[u], FIND_SUB), (up, down))]
                            }
                        })
                        .collect();
                    aggregation_sub(
                        n,
                        shared,
                        AggregationSpec {
                            memberships,
                            ell2_hat: 1,
                        },
                        &xor_pair,
                        lane_seed(engine, LS_AGG, (sl << 3) | j as u64),
                    )
                })
                .collect();

            let (stats, rep, coin_out) = if step == 0 {
                let mut coin_mc = multicast_sub(
                    n,
                    shared,
                    &trees,
                    std::mem::take(&mut coin_msgs),
                    1,
                    lane_seed(engine, LS_COIN, pl),
                );
                let (stats, rep) = {
                    let mut refs: Vec<&mut dyn LaneSub> =
                        lanes.iter_mut().map(|l| l as &mut dyn LaneSub).collect();
                    refs.push(&mut coin_mc);
                    run_composed(engine, &mut refs)?
                };
                (stats, rep, Some(coin_mc.into_deliveries()))
            } else {
                let (stats, rep) = {
                    let mut refs: Vec<&mut dyn LaneSub> =
                        lanes.iter_mut().map(|l| l as &mut dyn LaneSub).collect();
                    run_composed(engine, &mut refs)?
                };
                (stats, rep, None)
            };
            report.push(
                if step == 0 {
                    format!("p{phase}:find{step}:agg+coin")
                } else {
                    format!("p{phase}:find{step}:agg")
                },
                stats,
            );
            lane_stages += rep.lane_stages;
            if let Some(coins_recv) = coin_out {
                for u in 0..n {
                    if leader[u] != u as NodeId {
                        coin[u] = coins_recv[u]
                            .first()
                            .map(|&(_, c)| c == 1)
                            .expect("member must receive its component's coin");
                    }
                }
            }

            // leaders descend into the smallest non-empty bucket
            let lane_out: Vec<_> = lanes.into_iter().map(|l| l.into_deliveries()).collect();
            for u in 0..n {
                if leader[u] != u as NodeId || hi[u] <= lo[u] {
                    continue;
                }
                let mut chosen = None;
                for (j, &(blo, bhi)) in bounds[u].iter().enumerate() {
                    let (up, down) = lane_out[j][u].first().map(|&(_, v)| v).unwrap_or((0, 0));
                    if up != down {
                        chosen = Some((blo, bhi));
                        break;
                    }
                }
                match chosen {
                    Some((blo, bhi)) => {
                        lo[u] = blo;
                        hi[u] = bhi;
                    }
                    None => {
                        // no outgoing arc anywhere in the live range
                        lo[u] = 0;
                        hi[u] = 0;
                    }
                }
            }
        }

        // leaders know the minimum outgoing key (width-1 range) or "none"
        let mut found: Vec<Option<u64>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId && hi[u] > lo[u] {
                debug_assert_eq!(hi[u] - lo[u], 1, "search must converge to one key");
                found[u] = Some(lo[u]);
            }
        }

        // ---- announce the found key ∥ global termination check --------------
        let mut msgs: Vec<Option<(GroupId, u64)>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId {
                let code = found[u].map_or(0, |k| k + 1);
                msgs[u] = Some((GroupId::new(u as NodeId, COMP_SUB), code));
            }
        }
        let done_inputs: Vec<Option<u64>> = (0..n)
            .map(|u| {
                if leader[u] == u as NodeId && found[u].is_some() {
                    Some(1)
                } else {
                    None
                }
            })
            .collect();
        let mut announce = multicast_sub(
            n,
            shared,
            &trees,
            msgs,
            1,
            lane_seed(engine, LS_ANNOUNCE, pl),
        );
        let mut done = ab_sub(n, done_inputs, &max_agg);
        let (s, rep) = run_composed(engine, &mut [&mut announce, &mut done])?;
        report.push(format!("p{phase}:announce+done"), s);
        lane_stages += rep.lane_stages;
        let keys_recv = announce.into_deliveries();
        for u in 0..n {
            if leader[u] != u as NodeId {
                let code = keys_recv[u]
                    .first()
                    .map(|&(_, c)| c)
                    .expect("key reaches members");
                found[u] = if code > 0 { Some(code - 1) } else { None };
            }
        }
        if done.into_results()[0].is_none() {
            break;
        }

        // ---- inside endpoints identify themselves ---------------------------
        // key decodes to arc (a, b); exactly one endpoint is in the component
        // and only component members received the key.
        let mut inside: Vec<Option<(NodeId, NodeId)>> = vec![None; n]; // u → (me, outside)
        for u in 0..n {
            if let Some(k) = found[u] {
                let arc = k & arc_mask;
                let a = (arc >> idb) as NodeId;
                let b = (arc & ((1 << idb) - 1)) as NodeId;
                if u as NodeId == a {
                    inside[u] = Some((a, b));
                } else if u as NodeId == b {
                    inside[u] = Some((b, a));
                }
            }
        }

        // ---- learn the neighbor component's coin and leader ------------------
        let joins: Vec<Vec<(GroupId, NodeId)>> = (0..n)
            .map(|u| match inside[u] {
                Some((_, y)) if !coin[u] => {
                    vec![(GroupId::new(y, LINK_SUB), u as NodeId)]
                }
                _ => Vec::new(),
            })
            .collect();
        let mut link_sub =
            multicast_setup_sub(n, shared, joins, lane_seed(engine, LS_LINK_TREES, pl));
        let (s, rep) = run_composed(engine, &mut [&mut link_sub])?;
        report.push(format!("p{phase}:link-trees"), s);
        lane_stages += rep.lane_stages;
        let link_trees = link_sub.into_trees();

        let messages: Vec<Option<(GroupId, (u64, u64))>> = (0..n)
            .map(|y| {
                Some((
                    GroupId::new(y as NodeId, LINK_SUB),
                    (coin[y] as u64, leader[y] as u64),
                ))
            })
            .collect();
        let mut link_mc = multicast_sub(
            n,
            shared,
            &link_trees,
            messages,
            1,
            lane_seed(engine, LS_LINK_MC, pl),
        );
        let (s, rep) = run_composed(engine, &mut [&mut link_mc])?;
        report.push(format!("p{phase}:link-mc"), s);
        lane_stages += rep.lane_stages;
        let link_info = link_mc.into_deliveries();

        // ---- merge decisions --------------------------------------------------
        // Tails component whose edge leads to Heads: record the MST edge at
        // the inside endpoint and ship the new leader to the old leader.
        let mut new_leader_msg: Vec<Vec<(u64, NodeId, u64)>> = vec![Vec::new(); n];
        let mut local_new_leader: Vec<Option<NodeId>> = vec![None; n];
        for u in 0..n {
            let Some((me, y)) = inside[u] else { continue };
            if coin[u] {
                continue; // Heads components don't move
            }
            let Some(&(_, (coin_y, leader_y))) = link_info[u].first() else {
                continue;
            };
            if coin_y == 1 {
                // Tails → Heads: edge joins the MST (only `me` learns this)
                mst_edges.push((me.min(y), me.max(y)));
                if leader[u] == u as NodeId {
                    local_new_leader[u] = Some(leader_y as NodeId);
                } else {
                    new_leader_msg[u].push((1, leader[u], leader_y));
                }
            }
        }
        let (leader_inbox, s) = scheduled_exchange(engine, new_leader_msg)?;
        report.push(format!("p{phase}:adopt"), s);

        // leaders broadcast the adopted leader (0 = unchanged)
        let mut messages: Vec<Option<(GroupId, u64)>> = vec![None; n];
        let mut adopted: Vec<Option<NodeId>> = vec![None; n];
        for u in 0..n {
            if leader[u] == u as NodeId {
                let nl = local_new_leader[u]
                    .or_else(|| leader_inbox[u].first().map(|&(_, nl)| nl as NodeId));
                adopted[u] = nl;
                messages[u] = Some((
                    GroupId::new(u as NodeId, COMP_SUB),
                    nl.map_or(0, |l| l as u64 + 1),
                ));
            }
        }
        let mut adopt_mc = multicast_sub(
            n,
            shared,
            &trees,
            messages,
            1,
            lane_seed(engine, LS_ADOPT_MC, pl),
        );
        let (s, rep) = run_composed(engine, &mut [&mut adopt_mc])?;
        report.push(format!("p{phase}:adopt-mc"), s);
        lane_stages += rep.lane_stages;
        let adopt_recv = adopt_mc.into_deliveries();
        for u in 0..n {
            if leader[u] == u as NodeId {
                if let Some(nl) = adopted[u] {
                    leader[u] = nl;
                }
            } else {
                let code = adopt_recv[u]
                    .first()
                    .map(|&(_, c)| c)
                    .expect("members hear adoption");
                if code > 0 {
                    leader[u] = (code - 1) as NodeId;
                }
            }
        }
    }

    mst_edges.sort_unstable();
    mst_edges.dedup();
    Ok(MstResult {
        edges: mst_edges,
        phases: phase,
        findmin_steps,
        lane_stages,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    fn run(wg: &WeightedGraph, seed: u64) -> MstResult {
        let mut eng = Engine::new(NetConfig::new(wg.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0x357);
        mst(&mut eng, &shared, wg).unwrap()
    }

    fn assert_valid(wg: &WeightedGraph, r: &MstResult) {
        check::check_mst(wg, &r.edges).unwrap_or_else(|e| panic!("invalid MST: {e}"));
    }

    #[test]
    fn tiny_known_graph() {
        let wg = WeightedGraph::from_weighted_edges(
            4,
            [(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 10), (0, 2, 9)],
        );
        let r = run(&wg, 1);
        assert_valid(&wg, &r);
        assert_eq!(r.edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn path_takes_all_edges() {
        let g = gen::path(20);
        let wg = gen::with_random_weights(&g, 100, 3);
        let r = run(&wg, 2);
        assert_valid(&wg, &r);
        assert_eq!(r.edges.len(), 19);
    }

    #[test]
    fn cycle_drops_heaviest() {
        let wg = WeightedGraph::from_weighted_edges(
            6,
            (0..6u32).map(|i| (i, (i + 1) % 6, if i == 3 { 50 } else { i as u64 + 1 })),
        );
        let r = run(&wg, 3);
        assert_valid(&wg, &r);
        assert!(
            !r.edges.contains(&(3, 4)),
            "heaviest edge kept: {:?}",
            r.edges
        );
    }

    #[test]
    fn random_graph_weight_matches_kruskal() {
        for seed in 0..3u64 {
            let g = gen::gnp(32, 0.2, seed);
            let wg = gen::with_random_weights(&g, 1000, seed + 10);
            let r = run(&wg, 20 + seed);
            assert_valid(&wg, &r);
        }
    }

    #[test]
    fn duplicate_weights_still_minimal() {
        // many equal weights: tie-break by arc id must stay consistent
        let g = gen::gnp(24, 0.3, 7);
        let wg = gen::with_random_weights(&g, 3, 8);
        let r = run(&wg, 9);
        assert_valid(&wg, &r);
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let wg = WeightedGraph::from_weighted_edges(
            10,
            [(0, 1, 1), (1, 2, 5), (4, 5, 2), (5, 6, 1), (8, 9, 9)],
        );
        let r = run(&wg, 4);
        assert_valid(&wg, &r);
        assert_eq!(r.edges.len(), 5);
    }

    #[test]
    fn star_with_distinct_weights() {
        let g = gen::star(30);
        let wg = gen::with_distinct_weights(&g, 5);
        let r = run(&wg, 6);
        assert_valid(&wg, &r);
        assert_eq!(r.edges.len(), 29);
    }

    #[test]
    fn phases_logarithmic() {
        let g = gen::gnp(64, 0.15, 11);
        let wg = gen::with_random_weights(&g, 10_000, 12);
        let r = run(&wg, 13);
        assert_valid(&wg, &r);
        assert!(r.phases <= 4 * 6 + 4, "phases {}", r.phases);
        // lane accounting: every phase ran multi-lane FindMin steps
        assert!(r.findmin_steps >= r.phases);
        assert!(r.lane_stages > r.findmin_steps);
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        for (lo, hi) in [(0u64, 1u64), (0, 7), (5, 6), (10, 100), (0, 1 << 40)] {
            let b = bucket_bounds(lo, hi, 4);
            assert!(!b.is_empty());
            assert_eq!(b[0].0, lo);
            assert_eq!(b.last().unwrap().1, hi);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0, "buckets must be contiguous");
            }
            assert!(b.iter().all(|&(a, z)| z > a), "no empty buckets");
        }
        assert!(bucket_bounds(3, 3, 4).is_empty());
    }
}
