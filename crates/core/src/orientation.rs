//! The Orientation Algorithm (§4): an `O(a)`-orientation in
//! `O((a + log n) log n)` rounds (Theorem 4.12).
//!
//! The algorithm peels the graph Nash-Williams-style (following Barenboim–
//! Elkin \[4\]): in each phase, nodes whose *residual degree* `dᵢ(u)` (edges
//! to non-inactive neighbors) is at most twice the average become **active**,
//! direct all their still-undirected edges away from themselves, and turn
//! **inactive**; at least half of the remaining nodes retire per phase
//! (Lemma 4.1), and residual averages stay ≤ 2a, so outdegrees are `O(a)`.
//!
//! The distributed difficulty is that an activating node must learn *which
//! of its neighbors are already inactive* without touching each edge — that
//! is §4.1's **Identification Algorithm**, a peeling sketch (an invertible-
//! Bloom-lookup-style structure built from `(XOR of arc ids, count)` pairs
//! per random trial) computed with one Aggregation run. Per phase:
//!
//! * **Stage 1** — inactive nodes report themselves to their out-neighbors
//!   (Aggregation, SUM); everyone computes `dᵢ(u)`, the average `d̄ᵢ` and the
//!   maximum `d*ᵢ` over active nodes (two Aggregate-and-Broadcasts).
//! * **Stage 2, step 1** — Identification with `s = c` trials-per-arc and
//!   `q = 4ecd*log n` trial buckets: every active node peels red (non-
//!   inactive) arcs out of the sketch; w.h.p. at most `log n` per node
//!   survive (Lemma 4.4).
//! * **Stage 2, step 2** — unsuccessful nodes with many inactive neighbors
//!   (`U_high`) broadcast their ids (gather-and-broadcast) and get direct
//!   responses from their active/waiting neighbors in randomised rounds;
//!   the remaining `U_low` nodes narrow the players' candidate sets with a
//!   multicast and re-run Identification with `s = c log n`,
//!   `q = 4ec log² n` (Lemma 4.5). We iterate this step until an
//!   Aggregate-and-Broadcast confirms global success — a small-`n`
//!   robustness guard; the paper's w.h.p. analysis gives one iteration.
//! * **Stage 3** — red edges rendezvous at `h(id(e))` in round `r(id(e))`;
//!   edges whose both endpoints probe are active–active (same level), the
//!   rest lead to waiting (higher-level) neighbors.
//!
//! Besides the orientation itself, the result records each node's **level**
//! and per-neighbor level classification (lower/same/higher), which §5.4's
//! coloring consumes.
//!
//! Each phase is declared as a handful of protocol [`Dag`]s whose antichains
//! the scheduler packs exactly as the hand-fused lane code did: the phase-1
//! Δ agreement rides stage 1's aggregation, the d* agreement rides the
//! identification, and every consensus (`avg`, `flags`, `continue`) hangs
//! off a compute node so it runs as a barrier-free solo stage — the same
//! rounds as the old blocking calls, declared instead of hand-sequenced.

use ncc_butterfly::{
    ab_sub, aggregation_sub, lane_seed, multicast_setup_sub, multicast_sub, AggregationSpec, Dag,
    GroupId, MaxU64, SchedReport, SumPair, SumU64, XorSum,
};
use ncc_graph::Graph;
use ncc_hashing::{FxHashMap, FxHashSet, PolyHash, SharedRandomness};
use ncc_model::{Engine, ModelError, NodeId};
use rand::Rng;

use crate::report::AlgoReport;
use crate::support::{
    arc_id, edge_id, gather_broadcast_sub, node_id_bits, rendezvous_sub, schedule_sub,
};

/// Where a neighbor sits relative to a node's own level (§5.4 needs this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelClass {
    /// Neighbor became inactive in an earlier phase (edge points here).
    Lower,
    /// Neighbor activated in the same phase (direction by identifier).
    Same,
    /// Neighbor was still waiting (edge points away from this node).
    Higher,
}

/// Output of the Orientation Algorithm.
#[derive(Debug, Clone)]
pub struct OrientationResult {
    /// Per node: neighbors its edges point *to* (outdegree = `O(a)`).
    pub out_neighbors: Vec<Vec<NodeId>>,
    /// Per node: the phase in which it retired (1-based level index).
    pub levels: Vec<u32>,
    /// Per node: level classification of each neighbor, learned during the
    /// node's active phase.
    pub neighbor_class: Vec<FxHashMap<NodeId, LevelClass>>,
    /// Number of phases executed (Lemma 4.1: `O(log n)`).
    pub phases: u32,
    /// `d* = maxᵢ d*ᵢ = O(a)` — the residual-degree bound all later stages
    /// use as their common-knowledge `O(a)` estimate.
    pub d_star: usize,
    /// Maximum degree Δ, agreed in-model at the start (the honest bound on
    /// sketch groups per learner that keys the identification delivery
    /// windows; consumers like the broadcast-tree setup reuse it as `ℓ̂`).
    pub max_degree: usize,
    /// Total lane-stages executed by composed (multiplexed) runs.
    pub lane_stages: u32,
    pub report: AlgoReport,
    /// The scheduler's packing plan across all phases.
    pub plan: SchedReport,
}

impl OrientationResult {
    /// Flattens into a directed edge list (each input edge exactly once).
    pub fn directed_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (u, nbrs) in self.out_neighbors.iter().enumerate() {
            for &v in nbrs {
                out.push((u as NodeId, v));
            }
        }
        out
    }

    /// Maximum outdegree of the computed orientation.
    pub fn max_outdegree(&self) -> usize {
        self.out_neighbors.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Identification constant `c` (> the paper's requirement of small
/// constants; governs trial counts).
const C_IDENT: usize = 6;
/// Euler's constant rounded up, used in the `q = 4ec·…` bucket counts.
const E_UP: usize = 3;
/// Robustness cap on step-2 re-identification iterations.
const MAX_REIDENT: usize = 6;

#[derive(Debug, Clone, Default)]
struct NodeState {
    inactive: bool,
    level: u32,
    out: Vec<NodeId>,
    class: FxHashMap<NodeId, LevelClass>,
    /// Potentially-learning out-neighbors while playing (the Higher-class
    /// neighbors recorded at activation).
    pl: Vec<NodeId>,
}

/// Runs the Orientation Algorithm on input graph `g` (the engine's `n`
/// must equal `g.n()`).
pub fn orient(
    engine: &mut Engine,
    shared: &SharedRandomness,
    g: &Graph,
) -> Result<OrientationResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, g.n(), "input graph must live on the network's node set");
    assert!(n >= 2, "orientation needs n ≥ 2");
    let idb = node_id_bits(n);
    let logn = ncc_model::ilog2_ceil(n).max(1) as usize;
    let k = SharedRandomness::k_for(n);

    let mut report = AlgoReport::default();
    let mut plan = SchedReport::default();
    let mut nodes: Vec<NodeState> = vec![NodeState::default(); n];
    let mut d_star_global: usize = 0;
    let mut delta: usize = 0; // Δ, agreed during phase 1's first composition
    let max_phases = 2 * logn as u32 + 10;

    let mut phase: u32 = 0;
    loop {
        phase += 1;
        if phase > max_phases {
            return Err(ModelError::RoundLimitExceeded {
                limit: max_phases as u64,
            });
        }
        let pl = phase as u64;

        // =================== Stage 1: residual degrees ====================
        // Inactive nodes report a 1 to every out-neighbor. In phase 1, the
        // Δ agreement (max degree — every node's input is local) rides the
        // same rounds as an extra lane; the residual-average consensus hangs
        // off the residual compute node as a barrier-free solo stage.
        let memberships: Vec<Vec<(GroupId, u64)>> = nodes
            .iter()
            .map(|st| {
                if st.inactive {
                    st.out.iter().map(|&w| (GroupId::new(w, 0), 1u64)).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let counts_seed = lane_seed(engine, 0x6f72_6901, pl);
        let inactive: Vec<bool> = nodes.iter().map(|st| st.inactive).collect();

        let mut dag = Dag::new();
        let counts = dag.proto(
            format!("p{phase}:counts"),
            &[],
            move |_| {
                aggregation_sub(
                    n,
                    shared,
                    AggregationSpec {
                        memberships,
                        ell2_hat: 1,
                    },
                    &SumU64,
                    counts_seed,
                )
            },
            |s| s.into_deliveries(),
        );
        let delta_node = (phase == 1).then(|| {
            let delta_inputs: Vec<Option<u64>> =
                (0..n).map(|u| Some(g.degree(u as NodeId) as u64)).collect();
            dag.proto(
                format!("p{phase}:delta"),
                &[],
                move |_| ab_sub(n, delta_inputs, &MaxU64),
                |s| s.into_results(),
            )
        });
        let di_inactive = inactive.clone();
        let di_node = dag.compute(format!("p{phase}:residuals"), &[counts.into()], move |d| {
            let counts = d.get(counts);
            let mut di: Vec<usize> = vec![0; n];
            for u in 0..n {
                if di_inactive[u] {
                    continue;
                }
                let inactive_nbrs: u64 = counts[u].iter().map(|(_, v)| *v).sum();
                di[u] = g.degree(u as NodeId) - inactive_nbrs as usize;
            }
            di
        });
        // Average over nodes with positive residual degree.
        let avg = dag.proto(
            format!("p{phase}:avg"),
            &[di_node.into()],
            move |d| {
                let di = d.get(di_node);
                let inputs: Vec<Option<(u64, u64)>> = (0..n)
                    .map(|u| {
                        if !inactive[u] && di[u] > 0 {
                            Some((di[u] as u64, 1))
                        } else {
                            None
                        }
                    })
                    .collect();
                ab_sub(n, inputs, &SumPair)
            },
            |s| s.into_results(),
        );
        let mut run = dag.run(engine)?;
        report.push(format!("p{phase}:stage1"), run.stats);
        plan.merge(run.report);
        let di = run.outputs.take(di_node);
        if let Some(dn) = delta_node {
            delta = run.outputs.take(dn)[0].unwrap_or(0) as usize;
        }
        let avg = run.outputs.take(avg)[0]; // identical at every node

        // Nodes whose residual degree hit zero retire immediately: all their
        // edges are already directed (toward them), so they know everything.
        for u in 0..n {
            if !nodes[u].inactive && di[u] == 0 {
                let st = &mut nodes[u];
                st.inactive = true;
                st.level = phase;
                for &v in g.neighbors(u as NodeId) {
                    st.class.insert(v, LevelClass::Lower);
                }
            }
        }
        let Some((sum_di, cnt)) = avg else {
            // no node with positive residual degree remains — done
            report.push(format!("p{phase}:done"), Default::default());
            break;
        };

        // Status: active iff dᵢ(u) ≤ 2·d̄ᵢ  ⇔  dᵢ(u)·cnt ≤ 2·Σdᵢ.
        let is_active: Vec<bool> = (0..n)
            .map(|u| !nodes[u].inactive && di[u] > 0 && (di[u] as u64) * cnt <= 2 * sum_di)
            .collect();

        // The exact d*ᵢ = max residual degree among active nodes is still
        // agreed in-model (stage-3 windows and the exported `d_star` use
        // it), but the identification below no longer *waits* for it: the
        // trial-bucket count is keyed by the already-known upper bound
        // `min(2·d̄ᵢ, Δ) ≥ d*ᵢ` (active ⇒ dᵢ ≤ 2·d̄ᵢ), so the d* agreement
        // runs as a lane of the identification's own rounds.
        let d_bound = {
            let avg_bound = (2 * sum_di).div_ceil(cnt).max(1) as usize;
            avg_bound.min(delta.max(1))
        };
        let dstar_inputs: Vec<Option<u64>> = (0..n)
            .map(|u| {
                if is_active[u] {
                    Some(di[u] as u64)
                } else {
                    None
                }
            })
            .collect();

        // ============ Stage 2 step 1: constant-trial identification ========
        // The d* agreement rides the identification's rounds as a second
        // lane; the learner-side peeling is a compute node, and the
        // high/low rescue-flag consensus hangs off it barrier-free.
        let s1 = C_IDENT;
        let q1 = (4 * E_UP * s1 * d_bound * logn).max(16);
        let trial_fns: Vec<PolyHash> = shared.family(
            ncc_hashing::shared::labels::IDENT_TRIALS ^ ((phase as u64) << 20),
            s1,
            k,
        );
        let trials_of = |a: u64, fns: &[PolyHash], q: usize| -> Vec<u32> {
            let mut t: Vec<u32> = fns.iter().map(|f| f.to_range(a, q as u64) as u32).collect();
            t.sort_unstable();
            t.dedup();
            t
        };

        let memberships: Vec<Vec<(GroupId, (u64, u64))>> = nodes
            .iter()
            .enumerate()
            .map(|(v, st)| {
                if !st.inactive {
                    return Vec::new();
                }
                let mut ms = Vec::new();
                for &w in &st.pl {
                    let a = arc_id(w, v as NodeId, idb);
                    for t in trials_of(a, &trial_fns, q1) {
                        ms.push((GroupId::new(w, t), (a, 1u64)));
                    }
                }
                ms
            })
            .collect();
        // Honest delivery bound: a learner `w` is target of at most
        // `s₁ · deg(w) ≤ s₁ · Δ` distinct trial groups (and never more
        // than q₁) — far tighter than q₁ when Δ ≪ d*·log n, which is what
        // keeps the randomized delivery window short.
        let ell2_ident1 = q1.min(s1 * delta.max(1)).max(1);
        let ident_seed = lane_seed(engine, 0x6f72_6902, pl);

        let mut dag = Dag::new();
        let ident = dag.proto(
            format!("p{phase}:ident1"),
            &[],
            move |_| {
                aggregation_sub(
                    n,
                    shared,
                    AggregationSpec {
                        memberships,
                        ell2_hat: ell2_ident1,
                    },
                    &XorSum,
                    ident_seed,
                )
            },
            |s| s.into_deliveries(),
        );
        let dstar = dag.proto(
            format!("p{phase}:dstar"),
            &[],
            move |_| ab_sub(n, dstar_inputs, &MaxU64),
            |s| s.into_results(),
        );
        let peel_active = is_active.clone();
        let peel_di = di.clone();
        let peel_fns = trial_fns;
        let peeled = dag.compute(format!("p{phase}:peel"), &[ident.into()], move |d| {
            let sketches = d.get(ident);
            let mut red: Vec<FxHashSet<NodeId>> = vec![FxHashSet::default(); n];
            let mut unsuccessful: Vec<bool> = vec![false; n];
            for u in 0..n {
                if !peel_active[u] {
                    continue;
                }
                let arcs: Vec<(u64, NodeId)> = g
                    .neighbors(u as NodeId)
                    .iter()
                    .map(|&v| (arc_id(u as NodeId, v, idb), v))
                    .collect();
                let blues: FxHashMap<u32, (u64, u64)> =
                    sketches[u].iter().map(|(gid, v)| (gid.sub(), *v)).collect();
                let found = peel(&arcs, &blues, |a| trials_of(a, &peel_fns, q1));
                for v in found {
                    red[u].insert(v);
                }
                if red[u].len() < peel_di[u] {
                    unsuccessful[u] = true;
                }
            }
            (red, unsuccessful)
        });
        // Global flags: does anyone need the high/low-degree rescue paths?
        let flags_active = is_active.clone();
        let flags_di = di.clone();
        let flags = dag.proto(
            format!("p{phase}:flags"),
            &[peeled.into()],
            move |d| {
                let (_, unsuccessful) = d.get(peeled);
                let inputs: Vec<Option<(u64, u64)>> = (0..n)
                    .map(|u| {
                        if flags_active[u] && unsuccessful[u] {
                            let high = g.degree(u as NodeId) - flags_di[u] > n / logn;
                            Some((high as u64, (!high) as u64))
                        } else {
                            None
                        }
                    })
                    .collect();
                ab_sub(n, inputs, &SumPair)
            },
            |s| s.into_results(),
        );
        let mut run = dag.run(engine)?;
        report.push(format!("p{phase}:ident1+dstar"), run.stats);
        plan.merge(run.report);
        let d_star_i =
            run.outputs.take(dstar)[0].expect("active set is non-empty when Σdᵢ > 0") as usize;
        debug_assert!(d_star_i <= d_bound, "bound must dominate the exact d*");
        d_star_global = d_star_global.max(d_star_i);
        let (mut red, mut unsuccessful) = run.outputs.take(peeled);
        let (any_high, any_low) =
            run.outputs.take(flags)[0].map_or((false, false), |(h, l)| (h > 0, l > 0));

        // ============ Stage 2 step 2a: high-degree broadcast path ==========
        // Declared as gather∥broadcast → response schedule (a compute node
        // seeded by the broadcast ids) → scheduled exchange.
        if any_high {
            let high_nodes: Vec<bool> = (0..n)
                .map(|u| {
                    is_active[u] && unsuccessful[u] && g.degree(u as NodeId) - di[u] > n / logn
                })
                .collect();
            let values: Vec<Option<u64>> = (0..n)
                .map(|u| if high_nodes[u] { Some(u as u64) } else { None })
                .collect();
            let eseed = engine.config().seed;
            let sched_inactive: Vec<bool> = nodes.iter().map(|st| st.inactive).collect();

            let mut dag = Dag::new();
            let gb = dag.proto(
                format!("p{phase}:uhigh-bcast"),
                &[],
                move |_| gather_broadcast_sub(n, values),
                |s| s.into_results(),
            );
            // every active-or-waiting node responds to its U_high neighbors
            // in rounds uniform over {1..max(|R_u|, d*ᵢ)}
            let sched = dag.compute(format!("p{phase}:uhigh-sched"), &[gb.into()], move |d| {
                let high_ids = d.get(gb);
                let high_set: FxHashSet<NodeId> = high_ids.iter().map(|&v| v as NodeId).collect();
                let mut schedules: Vec<Vec<(u64, NodeId, u64)>> = vec![Vec::new(); n];
                for u in 0..n {
                    if sched_inactive[u] {
                        continue;
                    }
                    let ru: Vec<NodeId> = g
                        .neighbors(u as NodeId)
                        .iter()
                        .copied()
                        .filter(|v| high_set.contains(v))
                        .collect();
                    if ru.is_empty() {
                        continue;
                    }
                    let window = ru.len().max(d_star_i).max(1) as u64;
                    let mut rng = ncc_model::rng::node_rng(
                        eseed ^ 0x7568_6967 ^ ((phase as u64) << 32),
                        u as u32,
                    );
                    for v in ru {
                        schedules[u].push((rng.gen_range(1..=window), v, 1));
                    }
                }
                schedules
            });
            let resp = dag.proto(
                format!("p{phase}:uhigh-resp"),
                &[sched.into()],
                move |d| schedule_sub(n, d.get(sched).clone()),
                |s| s.into_results(),
            );
            let mut run = dag.run(engine)?;
            report.push(format!("p{phase}:uhigh"), run.stats);
            plan.merge(run.report);
            let responses = run.outputs.take(resp);
            for u in 0..n {
                if high_nodes[u] {
                    red[u] = responses[u].iter().map(|&(src, _)| src).collect();
                    unsuccessful[u] = false;
                    debug_assert_eq!(red[u].len(), di[u], "U_high node {u} red-set mismatch");
                }
            }
        }

        // ============ Stage 2 step 2b: low-degree re-identification ========
        if any_low {
            // narrow the players' candidate sets: inactive nodes join the
            // multicast group of every potentially-learning out-neighbor;
            // U_low nodes announce themselves down those trees.
            let joins: Vec<Vec<(GroupId, NodeId)>> = nodes
                .iter()
                .enumerate()
                .map(|(v, st)| {
                    if st.inactive {
                        st.pl
                            .iter()
                            .map(|&w| (GroupId::new(w, 1), v as NodeId))
                            .collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let trees_seed = lane_seed(engine, 0x6f72_6903, pl);
            let mc_seed = lane_seed(engine, 0x6f72_6904, pl);
            let messages: Vec<Option<(GroupId, u64)>> = (0..n)
                .map(|u| {
                    if is_active[u] && unsuccessful[u] {
                        Some((GroupId::new(u as u32, 1), 1))
                    } else {
                        None
                    }
                })
                .collect();
            let ell_hat = d_star_global.max(1);

            let mut dag = Dag::new();
            let trees = dag.proto(
                format!("p{phase}:ulow-trees"),
                &[],
                move |_| multicast_setup_sub(n, shared, joins, trees_seed),
                |s| s.into_trees(),
            );
            // the announcement threads the freshly built trees straight from
            // the upstream node's typed output
            let flagged = dag.proto(
                format!("p{phase}:ulow-mc"),
                &[trees.into()],
                move |d| multicast_sub(n, shared, d.get(trees), messages, ell_hat, mc_seed),
                |s| s.into_deliveries(),
            );
            let mut run = dag.run(engine)?;
            report.push(format!("p{phase}:ulow"), run.stats);
            plan.merge(run.report);
            let flagged = run.outputs.take(flagged);
            let narrowed: Vec<Vec<NodeId>> = flagged
                .iter()
                .map(|f| f.iter().map(|(gid, _)| gid.target()).collect())
                .collect();

            // iterate the log n-trial identification until global success
            let s2 = C_IDENT * logn;
            let q2 = (4 * E_UP * s2 * logn).max(64);
            for iter in 0..MAX_REIDENT {
                let fns: Vec<PolyHash> = shared.family(
                    ncc_hashing::shared::labels::IDENT_TRIALS
                        ^ ((phase as u64) << 20)
                        ^ ((iter as u64 + 1) << 44),
                    s2,
                    k,
                );
                let memberships: Vec<Vec<(GroupId, (u64, u64))>> = (0..n)
                    .map(|v| {
                        if !nodes[v].inactive {
                            return Vec::new();
                        }
                        let mut ms = Vec::new();
                        for &w in &narrowed[v] {
                            // only play for still-unsuccessful learners
                            if !unsuccessful[w as usize] {
                                continue;
                            }
                            let a = arc_id(w, v as NodeId, idb);
                            for t in trials_of(a, &fns, q2) {
                                ms.push((GroupId::new(w, t), (a, 1u64)));
                            }
                        }
                        ms
                    })
                    .collect();
                let ell2_ident2 = q2.min(s2 * delta.max(1)).max(1);
                let re_seed = lane_seed(engine, 0x6f72_6905, (pl << 8) | iter as u64);

                let mut dag = Dag::new();
                let re = dag.proto(
                    format!("p{phase}:ident2.{iter}"),
                    &[],
                    move |_| {
                        aggregation_sub(
                            n,
                            shared,
                            AggregationSpec {
                                memberships,
                                ell2_hat: ell2_ident2,
                            },
                            &XorSum,
                            re_seed,
                        )
                    },
                    |s| s.into_deliveries(),
                );
                let peel_active = is_active.clone();
                let peel_di = di.clone();
                let peel_red = red.clone();
                let peel_unsucc = unsuccessful.clone();
                let peeled =
                    dag.compute(format!("p{phase}:repeel.{iter}"), &[re.into()], move |d| {
                        let sketches = d.get(re);
                        let mut red = peel_red;
                        let mut unsuccessful = peel_unsucc;
                        for u in 0..n {
                            if !peel_active[u] || !unsuccessful[u] {
                                continue;
                            }
                            let arcs: Vec<(u64, NodeId)> = g
                                .neighbors(u as NodeId)
                                .iter()
                                .filter(|&&v| !red[u].contains(&v))
                                .map(|&v| (arc_id(u as NodeId, v, idb), v))
                                .collect();
                            let blues: FxHashMap<u32, (u64, u64)> =
                                sketches[u].iter().map(|(gid, v)| (gid.sub(), *v)).collect();
                            let found = peel(&arcs, &blues, |a| trials_of(a, &fns, q2));
                            for v in found {
                                red[u].insert(v);
                            }
                            if red[u].len() == peel_di[u] {
                                unsuccessful[u] = false;
                            }
                        }
                        (red, unsuccessful)
                    });
                let check_active = is_active.clone();
                let check = dag.proto(
                    format!("p{phase}:ident2-check.{iter}"),
                    &[peeled.into()],
                    move |d| {
                        let (_, unsuccessful) = d.get(peeled);
                        let inputs: Vec<Option<u64>> = (0..n)
                            .map(|u| {
                                if check_active[u] && unsuccessful[u] {
                                    Some(1)
                                } else {
                                    None
                                }
                            })
                            .collect();
                        ab_sub(n, inputs, &MaxU64)
                    },
                    |s| s.into_results(),
                );
                let mut run = dag.run(engine)?;
                report.push(format!("p{phase}:ident2.{iter}"), run.stats);
                plan.merge(run.report);
                (red, unsuccessful) = run.outputs.take(peeled);
                let still = run.outputs.take(check);
                if still[0].is_none() {
                    break;
                }
                assert!(
                    iter + 1 < MAX_REIDENT,
                    "identification did not converge — raise C_IDENT"
                );
            }
        }

        // ===================== Stage 3: edge rendezvous ====================
        let h_node = shared.poly(
            ncc_hashing::shared::labels::STAGE3_NODE ^ ((phase as u64) << 20),
            0,
            k,
        );
        let h_round = shared.poly(
            ncc_hashing::shared::labels::STAGE3_ROUND ^ ((phase as u64) << 20),
            0,
            k,
        );
        let window = d_star_i.max(1) as u64;
        let probes: Vec<Vec<(u64, NodeId, u64)>> = (0..n)
            .map(|u| {
                if !is_active[u] {
                    return Vec::new();
                }
                red[u]
                    .iter()
                    .map(|&v| {
                        let e = edge_id(u as NodeId, v, idb);
                        let node = h_node.to_range(e, n as u64) as NodeId;
                        let round = h_round.to_range(e, window) + 1;
                        (round, node, e)
                    })
                    .collect()
            })
            .collect();
        // The finish-phase edge directing is a compute node on the matched
        // edges, and the continue consensus hangs off it barrier-free — the
        // whole stage is one declared chain: rendezvous → finish → continue.
        let mut dag = Dag::new();
        let rdv = dag.proto(
            format!("p{phase}:stage3"),
            &[],
            move |_| rendezvous_sub(n, probes, idb),
            |s| s.into_results(),
        );
        let finish_nodes = nodes.clone();
        let finish_active = is_active.clone();
        let finish_red = red;
        let finish = dag.compute(format!("p{phase}:finish"), &[rdv.into()], move |d| {
            let matched = d.get(rdv);
            let mut nodes = finish_nodes;
            // ================ finish phase: direct edges ==================
            for u in 0..n {
                if !finish_active[u] {
                    continue;
                }
                let matched_set: FxHashSet<u64> = matched[u].iter().copied().collect();
                let st = &mut nodes[u];
                st.inactive = true;
                st.level = phase;
                let mut pl = Vec::new();
                for &v in g.neighbors(u as NodeId) {
                    if !finish_red[u].contains(&v) {
                        st.class.insert(v, LevelClass::Lower);
                    } else if matched_set.contains(&edge_id(u as NodeId, v, idb)) {
                        st.class.insert(v, LevelClass::Same);
                        if (u as NodeId) < v {
                            st.out.push(v);
                        }
                    } else {
                        st.class.insert(v, LevelClass::Higher);
                        st.out.push(v);
                        pl.push(v);
                    }
                }
                st.pl = pl;
            }
            nodes
        });
        // ================== continue? (barrier + decision) ================
        let cont = dag.proto(
            format!("p{phase}:continue"),
            &[finish.into()],
            move |d| {
                let nodes = d.get(finish);
                let inputs: Vec<Option<u64>> = (0..n)
                    .map(|u| if nodes[u].inactive { None } else { Some(1) })
                    .collect();
                ab_sub(n, inputs, &MaxU64)
            },
            |s| s.into_results(),
        );
        let mut run = dag.run(engine)?;
        report.push(format!("p{phase}:stage3"), run.stats);
        plan.merge(run.report);
        nodes = run.outputs.take(finish);
        if run.outputs.take(cont)[0].is_none() {
            break;
        }
    }

    // No trailing barrier: both exit paths end with an Aggregate-and-
    // Broadcast (the avg / continue consensus), which already leaves the
    // network quiescent and every node synchronised.
    Ok(OrientationResult {
        out_neighbors: nodes.iter().map(|s| s.out.clone()).collect(),
        levels: nodes.iter().map(|s| s.level).collect(),
        neighbor_class: nodes.into_iter().map(|s| s.class).collect(),
        phases: phase,
        d_star: d_star_global.max(1),
        max_degree: delta,
        lane_stages: plan.lane_stages() as u32,
        report,
        plan,
    })
}

/// The learner-side peeling of §4.1: given the learner's unresolved arcs,
/// the received `(X'(t), x'(t))` blue sketches, and the trial map, identify
/// red arcs by repeatedly extracting trials whose red-count is exactly one.
/// Returns the identified red neighbors.
fn peel<F: Fn(u64) -> Vec<u32>>(
    arcs: &[(u64, NodeId)],
    blues: &FxHashMap<u32, (u64, u64)>,
    trials_of: F,
) -> Vec<NodeId> {
    // D(t) = X(t) ⊕ X'(t), c(t) = x(t) − x'(t): XOR and count of *red* arcs
    // participating in trial t.
    let mut d: FxHashMap<u32, u64> = FxHashMap::default();
    let mut c: FxHashMap<u32, i64> = FxHashMap::default();
    let mut arc_nbr: FxHashMap<u64, NodeId> = FxHashMap::default();
    for &(a, v) in arcs {
        arc_nbr.insert(a, v);
        for t in trials_of(a) {
            *d.entry(t).or_insert(0) ^= a;
            *c.entry(t).or_insert(0) += 1;
        }
    }
    for (&t, &(x, cnt)) in blues {
        *d.entry(t).or_insert(0) ^= x;
        *c.entry(t).or_insert(0) -= cnt as i64;
    }
    let mut work: Vec<u32> = c
        .iter()
        .filter(|&(_, &v)| v == 1)
        .map(|(&t, _)| t)
        .collect();
    let mut found = Vec::new();
    while let Some(t) = work.pop() {
        if c.get(&t).copied() != Some(1) {
            continue;
        }
        let a = d[&t];
        let Some(&nbr) = arc_nbr.get(&a) else {
            // sketch noise (possible only on hash failure) — stop peeling
            // this trial; other trials may still resolve.
            continue;
        };
        arc_nbr.remove(&a);
        found.push(nbr);
        for t2 in trials_of(a) {
            *d.get_mut(&t2).unwrap() ^= a;
            let slot = c.get_mut(&t2).unwrap();
            *slot -= 1;
            if *slot == 1 {
                work.push(t2);
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    fn run(g: &Graph, seed: u64) -> OrientationResult {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0xABCD);
        orient(&mut eng, &shared, g).unwrap()
    }

    fn assert_valid(g: &Graph, res: &OrientationResult, bound: usize) {
        let directed = res.directed_edges();
        check::check_orientation(g, &directed, bound)
            .unwrap_or_else(|e| panic!("invalid orientation: {e}"));
    }

    #[test]
    fn star_orients_with_outdegree_constant() {
        let g = gen::star(32);
        let res = run(&g, 1);
        assert_valid(&g, &res, 2);
        assert!(res.max_outdegree() <= 2, "outdeg {}", res.max_outdegree());
    }

    #[test]
    fn path_and_cycle() {
        for g in [gen::path(40), gen::cycle(40)] {
            let res = run(&g, 2);
            assert_valid(&g, &res, 4 * 2);
        }
    }

    #[test]
    fn tree_low_outdegree() {
        let g = gen::random_tree(64, 5);
        let res = run(&g, 3);
        // arboricity 1 → O(a) with our constants means ≤ 2·d̄ ≤ 4
        assert_valid(&g, &res, 4);
        assert!(res.phases <= 14, "phases {}", res.phases);
    }

    #[test]
    fn grid_planar() {
        let g = gen::grid(8, 8);
        let res = run(&g, 4);
        assert_valid(&g, &res, 8); // a ≤ 2 → 4a = 8
    }

    #[test]
    fn forest_union_scaled_arboricity() {
        let g = gen::forest_union(64, 4, 7);
        let res = run(&g, 5);
        // a ≤ 4 → d* ≤ 4a = 16
        assert_valid(&g, &res, 16);
        assert!(res.d_star <= 16, "d* = {}", res.d_star);
    }

    #[test]
    fn gnp_random_graph() {
        let g = gen::gnp(48, 0.15, 11);
        let res = run(&g, 6);
        let (_, degeneracy_hi) = ncc_graph::analysis::arboricity_bounds(&g);
        assert_valid(&g, &res, 4 * degeneracy_hi.max(1));
    }

    #[test]
    fn empty_graph_trivially_oriented() {
        let g = Graph::empty(16);
        let res = run(&g, 7);
        assert_eq!(res.directed_edges().len(), 0);
        assert_eq!(res.max_outdegree(), 0);
        assert!(res.phases <= 2);
    }

    #[test]
    fn levels_and_classes_consistent() {
        let g = gen::forest_union(48, 3, 9);
        let res = run(&g, 8);
        for u in 0..g.n() as NodeId {
            for &v in g.neighbors(u) {
                let cu = res.neighbor_class[u as usize][&v];
                let (lu, lv) = (res.levels[u as usize], res.levels[v as usize]);
                match cu {
                    LevelClass::Lower => assert!(lv < lu, "{v}@{lv} not lower than {u}@{lu}"),
                    LevelClass::Same => assert_eq!(lv, lu),
                    LevelClass::Higher => assert!(lv > lu),
                }
            }
        }
    }

    #[test]
    fn phase_count_logarithmic() {
        let g = gen::gnp(128, 0.06, 13);
        let res = run(&g, 10);
        // Lemma 4.1: O(log n) phases; generous constant
        assert!(res.phases <= 2 * 7 + 4, "phases {}", res.phases);
    }

    #[test]
    fn deterministic_given_seeds() {
        let g = gen::gnp(40, 0.12, 3);
        let a = run(&g, 42);
        let b = run(&g, 42);
        assert_eq!(a.out_neighbors, b.out_neighbors);
        assert_eq!(a.report.total, b.report.total);
    }

    #[test]
    fn peel_recovers_reds_directly() {
        // unit test of the sketch peeling, independent of the network
        let arcs: Vec<(u64, NodeId)> = (0..20u64).map(|i| (1000 + i * 7, i as NodeId)).collect();
        let trials_of = |a: u64| {
            vec![
                (a % 31) as u32,
                ((a / 31) % 31) as u32,
                ((a / 961) % 31) as u32,
            ]
        };
        // blues = arcs 5..20; reds = arcs 0..5
        let mut blues: FxHashMap<u32, (u64, u64)> = FxHashMap::default();
        for &(a, _) in &arcs[5..] {
            let mut ts = trials_of(a);
            ts.sort_unstable();
            ts.dedup();
            for t in ts {
                let e = blues.entry(t).or_insert((0, 0));
                e.0 ^= a;
                e.1 += 1;
            }
        }
        let dedup_trials = |a: u64| {
            let mut ts = trials_of(a);
            ts.sort_unstable();
            ts.dedup();
            ts
        };
        let mut found = peel(&arcs, &blues, dedup_trials);
        found.sort_unstable();
        assert_eq!(found, vec![0, 1, 2, 3, 4]);
    }
}
