//! BFS trees (§5.1, Theorem 5.2): `O((a + D + log n) log n)` rounds.
//!
//! Layer-synchronous BFS over the broadcast trees: in phase `i` the nodes
//! at distance `i − 1` multicast their identifiers to their neighborhoods
//! (Multi-Aggregation with MIN, Corollary 1); a node receiving its first
//! message fixes `δ(u) = i − 1 + 1` and `π(u)` = the smallest identifier
//! received — the paper's tie-breaking rule. An Aggregate-and-Broadcast per
//! phase decides termination, after at most `D + 1` phases.
//!
//! Each phase is *declared* as a protocol [`Dag`]: frontier spread →
//! node-local frontier update → termination check, and the scheduler packs
//! and barriers the stages (the check is an A&B, so it self-synchronises
//! and costs no extra barrier — same round count as the hand-fused path).

use ncc_butterfly::{ab_sub, lane_seed, multi_aggregate_sub, Dag, MaxU64, MinU64, SchedReport};
use ncc_graph::Graph;
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, ModelError, NodeId};

use crate::broadcast_trees::{neighborhood_group, BroadcastTrees};
use crate::report::AlgoReport;

/// Distance marker for unreachable nodes (matches `ncc_graph::analysis`).
pub const UNREACHABLE: u32 = u32::MAX;

/// Output of the distributed BFS.
#[derive(Debug, Clone)]
pub struct BfsResult {
    pub dist: Vec<u32>,
    pub parent: Vec<Option<NodeId>>,
    /// Number of frontier phases executed (`≤ D + 1`).
    pub phases: u32,
    pub report: AlgoReport,
    /// The scheduler's packing plan across all phases.
    pub plan: SchedReport,
}

/// Runs BFS from `src` over prebuilt broadcast trees.
pub fn bfs(
    engine: &mut Engine,
    shared: &SharedRandomness,
    bt: &BroadcastTrees,
    g: &Graph,
    src: NodeId,
) -> Result<BfsResult, ModelError> {
    let n = engine.n();
    assert_eq!(n, g.n());
    let mut report = AlgoReport::default();
    let mut plan = SchedReport::default();

    let mut dist = vec![UNREACHABLE; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    dist[src as usize] = 0;
    let mut frontier: Vec<NodeId> = vec![src];

    let mut phase: u32 = 0;
    while !frontier.is_empty() {
        phase += 1;
        // frontier nodes multicast their identifiers; MIN keeps the
        // smallest sender per receiving node (§5.1's π tie-break)
        let mut messages: Vec<Option<(ncc_butterfly::GroupId, u64)>> = vec![None; n];
        for &u in &frontier {
            messages[u as usize] = Some((neighborhood_group(u), u as u64));
        }
        let seed = lane_seed(engine, 0x6266_7301, phase as u64);
        let known = dist.clone();

        let mut dag = Dag::new();
        let trees = &bt.trees;
        let spread = dag.proto(
            format!("p{phase}:spread"),
            &[],
            move |_| {
                multi_aggregate_sub(n, shared, trees, messages, |_, _, _, v| *v, &MinU64, seed)
            },
            |s| s.into_results(),
        );
        // a node joins the next frontier iff it was unknown and heard a
        // frontier identifier this phase
        let newly = dag.compute(format!("p{phase}:next"), &[spread.into()], move |d| {
            let mins = d.get(spread);
            (0..n)
                .map(|v| {
                    if known[v] == UNREACHABLE && mins[v].is_some() {
                        Some(1u64)
                    } else {
                        None
                    }
                })
                .collect::<Vec<Option<u64>>>()
        });
        // termination consensus (also the phase barrier)
        let check = dag.proto(
            format!("p{phase}:check"),
            &[newly.into()],
            move |d| ab_sub(n, d.get(newly).clone(), &MaxU64),
            |s| s.into_results(),
        );

        let mut run = dag.run(engine)?;
        report.push(format!("phase{phase}"), run.stats);
        let mins = run.outputs.take(spread);
        let any_new = run.outputs.take(check);
        plan.merge(run.report);

        let mut next = Vec::new();
        for v in 0..n {
            if dist[v] == UNREACHABLE {
                if let Some(m) = mins[v] {
                    dist[v] = phase;
                    parent[v] = Some(m as NodeId);
                    next.push(v as NodeId);
                }
            }
        }
        frontier = next;

        if any_new[0].is_none() {
            break;
        }
    }

    Ok(BfsResult {
        dist,
        parent,
        phases: phase,
        report,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast_trees::build_broadcast_trees;
    use ncc_graph::{check, gen};
    use ncc_model::NetConfig;

    fn run(g: &Graph, src: NodeId, seed: u64) -> BfsResult {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0xBF5);
        let (bt, _) = build_broadcast_trees(&mut eng, &shared, g).unwrap();
        bfs(&mut eng, &shared, &bt, g, src).unwrap()
    }

    fn assert_valid(g: &Graph, src: NodeId, r: &BfsResult) {
        check::check_bfs(g, src, &r.dist, &r.parent).unwrap_or_else(|e| panic!("invalid BFS: {e}"));
    }

    #[test]
    fn path_graph_distances() {
        let g = gen::path(24);
        let r = run(&g, 0, 1);
        assert_valid(&g, 0, &r);
        assert_eq!(r.dist[23], 23);
        assert_eq!(r.phases as usize, 24); // D + 1
    }

    #[test]
    fn star_from_center_and_leaf() {
        let g = gen::star(48);
        let r = run(&g, 0, 2);
        assert_valid(&g, 0, &r);
        assert!(r.dist[1..].iter().all(|&d| d == 1));
        let r = run(&g, 5, 3);
        assert_valid(&g, 5, &r);
        assert_eq!(r.dist[0], 1);
        assert_eq!(r.dist[7], 2);
        assert_eq!(r.parent[7], Some(0));
    }

    #[test]
    fn grid_distances_and_parents() {
        let g = gen::grid(6, 6);
        let r = run(&g, 0, 4);
        assert_valid(&g, 0, &r);
        assert_eq!(r.dist[35], 10);
    }

    #[test]
    fn disconnected_marks_unreachable() {
        let g = Graph::from_edges(12, [(0, 1), (1, 2), (4, 5)]);
        let r = run(&g, 0, 5);
        assert_valid(&g, 0, &r);
        assert_eq!(r.dist[2], 2);
        assert_eq!(r.dist[4], UNREACHABLE);
        assert_eq!(r.dist[11], UNREACHABLE);
    }

    #[test]
    fn random_graph_matches_reference() {
        let g = gen::gnp(40, 0.12, 7);
        let r = run(&g, 3, 6);
        assert_valid(&g, 3, &r);
    }

    #[test]
    fn tree_parents_are_tree_edges() {
        let g = gen::random_tree(32, 8);
        let r = run(&g, 0, 7);
        assert_valid(&g, 0, &r);
        // in a tree, the parent is the unique neighbor toward the root
        for v in 1..32u32 {
            let p = r.parent[v as usize].unwrap();
            assert!(g.has_edge(v, p));
        }
    }

    #[test]
    fn plan_packs_check_without_barrier() {
        // every phase: spread pipeline (2 stages, barriered) then the A&B
        // check (self-synchronizing, no barrier) — the same cost structure
        // the hand-fused path had
        let g = gen::grid(4, 4);
        let r = run(&g, 0, 9);
        assert_eq!(r.plan.stages.len() as u32, 3 * r.phases);
        for ph in r.plan.stages.chunks(3) {
            assert!(ph[0].barrier && ph[1].barrier);
            assert!(!ph[2].barrier, "A&B check must not pay a barrier");
            assert_eq!(ph[2].lanes.len(), 1);
        }
    }
}
