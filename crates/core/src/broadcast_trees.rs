//! Broadcast trees (§5 preamble, Lemma 5.1).
//!
//! For every node `u` a multicast tree for the group `A_{id(u)} = N(u)`,
//! enabling neighborhood multicasts. The naive setup (every node joins every
//! neighbor's group) costs `Θ(Δ)` injections at high-degree nodes — a star
//! center would need `Θ(n/log n)` rounds. Instead the graph is first
//! oriented with outdegree `O(a)` (§4); then each node registers itself in
//! its out-neighbors' groups *and registers each out-neighbor in its own
//! group* — `O(a)` injections per node, so the setup and the resulting tree
//! congestion are `O(a + log n)` (Lemma 5.1).
//!
//! Corollary 1 (the §5 workhorse) follows by running Multi-Aggregation over
//! these trees: any source set `S` reaches all neighborhoods in
//! `O(Σ_{u∈S} d(u)/n + log n)` rounds.

use ncc_butterfly::{lane_seed, multicast_setup_sub, run_composed, GroupId, MulticastTrees};
use ncc_graph::Graph;
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, ModelError, NodeId};

use crate::orientation::{orient, OrientationResult};
use crate::report::AlgoReport;

/// Sub-identifier of the neighborhood groups `A_{id(u)} = N(u)`.
pub const NEIGHBORHOOD_SUB: u32 = 0;

/// The neighborhood multicast group of node `u`.
#[inline]
pub fn neighborhood_group(u: NodeId) -> GroupId {
    GroupId::new(u, NEIGHBORHOOD_SUB)
}

/// Broadcast trees plus the orientation they were built from.
#[derive(Debug, Clone)]
pub struct BroadcastTrees {
    pub trees: MulticastTrees,
    pub orientation: OrientationResult,
    /// Common-knowledge `O(a)` bound (`d*` from the orientation).
    pub a_hat: usize,
    /// Maximum degree Δ, agreed via Aggregate-and-Broadcast at build time.
    /// A node is a member of one neighborhood group per neighbor, so Δ is
    /// the honest `ℓ̂` bound for multicasts over these trees.
    pub max_degree: usize,
}

impl BroadcastTrees {
    /// The `ℓ̂` bound (memberships per node) for neighborhood multicasts.
    pub fn ell_hat(&self) -> usize {
        self.max_degree.max(1)
    }
}

/// Builds the broadcast trees: orientation (§4) + registration-based
/// multicast tree setup (Lemma 5.1). Also agrees on the maximum degree
/// (used as the `ℓ̂` bound by multicasts over these trees).
pub fn build_broadcast_trees(
    engine: &mut Engine,
    shared: &SharedRandomness,
    g: &Graph,
) -> Result<(BroadcastTrees, AlgoReport), ModelError> {
    let mut report = AlgoReport::default();

    let orientation = orient(engine, shared, g)?;
    report.push("orientation", orientation.report.total);

    // registrations: u joins A_{id(v)} for each out-neighbor v, and
    // registers v into A_{id(u)} — 2·outdeg(u) = O(a) injections per node.
    let joins: Vec<Vec<(GroupId, NodeId)>> = orientation
        .out_neighbors
        .iter()
        .enumerate()
        .map(|(u, outs)| {
            let mut regs = Vec::with_capacity(2 * outs.len());
            for &v in outs {
                regs.push((neighborhood_group(v), u as NodeId));
                regs.push((neighborhood_group(u as NodeId), v));
            }
            regs
        })
        .collect();
    let mut setup = multicast_setup_sub(g.n(), shared, joins, lane_seed(engine, 0x6274_7265, 0));
    let (s, _) = run_composed(engine, &mut [&mut setup])?;
    report.push("tree-setup", s);
    let trees = setup.into_trees();

    // Δ (the ℓ̂ bound for neighborhood multicasts) was already agreed
    // in-model during the orientation's first composed stage.
    let max_degree = orientation.max_degree;
    let a_hat = orientation.d_star;
    Ok((
        BroadcastTrees {
            trees,
            orientation,
            a_hat,
            max_degree,
        },
        report,
    ))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // tests index several parallel per-node arrays
mod tests {
    use super::*;
    use ncc_graph::gen;
    use ncc_model::NetConfig;

    fn build(g: &Graph, seed: u64) -> (Engine, SharedRandomness, BroadcastTrees, AlgoReport) {
        let mut eng = Engine::new(NetConfig::new(g.n(), seed));
        let shared = SharedRandomness::new(seed ^ 0x5555);
        let (bt, rep) = build_broadcast_trees(&mut eng, &shared, g).unwrap();
        (eng, shared, bt, rep)
    }

    #[test]
    fn star_trees_cover_all_neighbors() {
        // the star is the motivating adversary: naive setup would be Θ(n/log n)
        let g = gen::star(64);
        let (mut eng, shared, bt, _) = build(&g, 3);
        // multicast from the center must reach every leaf
        let mut messages = vec![None; 64];
        messages[0] = Some((neighborhood_group(0), 7u64));
        let (got, stats) =
            ncc_butterfly::multicast(&mut eng, &shared, &bt.trees, messages, bt.ell_hat()).unwrap();
        for v in 1..64 {
            assert_eq!(got[v], vec![(neighborhood_group(0), 7)], "leaf {v}");
        }
        assert!(got[0].is_empty());
        assert!(stats.clean());
    }

    #[test]
    fn leaf_multicast_reaches_center() {
        let g = gen::star(32);
        let (mut eng, shared, bt, _) = build(&g, 5);
        let mut messages = vec![None; 32];
        messages[9] = Some((neighborhood_group(9), 99u64));
        let (got, _) =
            ncc_butterfly::multicast(&mut eng, &shared, &bt.trees, messages, bt.ell_hat()).unwrap();
        assert_eq!(got[0], vec![(neighborhood_group(9), 99)]);
        for v in 1..32 {
            assert!(got[v].is_empty(), "leaf {v}");
        }
    }

    #[test]
    fn congestion_bounded_by_a_plus_log() {
        let g = gen::forest_union(128, 3, 9);
        let (_, _, bt, _) = build(&g, 7);
        let c = bt.trees.congestion();
        // Lemma 5.1: O(a + log n); generous constant
        assert!(c <= 8 * (3 + 7), "congestion {c}");
    }

    #[test]
    fn every_neighborhood_covered_on_random_graph() {
        let g = gen::gnp(48, 0.1, 11);
        let (mut eng, shared, bt, _) = build(&g, 11);
        // every node multicasts; every node must receive from each neighbor
        let messages: Vec<Option<(GroupId, u64)>> = (0..48)
            .map(|u| Some((neighborhood_group(u as NodeId), 1000 + u as u64)))
            .collect();
        let (got, _) =
            ncc_butterfly::multicast(&mut eng, &shared, &bt.trees, messages, bt.ell_hat()).unwrap();
        for u in 0..48u32 {
            let mut senders: Vec<u32> = got[u as usize].iter().map(|(g, _)| g.target()).collect();
            senders.sort_unstable();
            let mut expect: Vec<u32> = g.neighbors(u).to_vec();
            expect.sort_unstable();
            assert_eq!(senders, expect, "node {u}");
        }
    }
}
