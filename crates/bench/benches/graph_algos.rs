//! Criterion benches for the §4/§5 graph algorithms (Table 1 rows 2–5 +
//! the orientation): wall-clock of full pipelines at fixed sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncc_bench::{arboricity_workload, SEED};
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, NetConfig};

fn bench_orientation(c: &mut Criterion) {
    let mut group = c.benchmark_group("orientation");
    for &n in &[128usize, 256] {
        let g = arboricity_workload(n, 4, SEED);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let shared = SharedRandomness::new(SEED);
            b.iter(|| {
                let mut eng = Engine::new(NetConfig::new(n, SEED));
                ncc_core::orient(&mut eng, &shared, &g).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    // full §5 prep: orientation + broadcast trees
    let mut group = c.benchmark_group("prepare_pipeline");
    for &n in &[128usize, 256] {
        let g = arboricity_workload(n, 3, SEED);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut eng = Engine::new(NetConfig::new(n, SEED));
                ncc_bench::prepare(&mut eng, &g, SEED)
            });
        });
    }
    group.finish();
}

fn bench_mis_phase(c: &mut Criterion) {
    let n = 256;
    let g = arboricity_workload(n, 3, SEED);
    c.bench_function("mis_full_256", |b| {
        b.iter(|| {
            let mut eng = Engine::new(NetConfig::new(n, SEED));
            let (shared, bt, _) = ncc_bench::prepare(&mut eng, &g, SEED);
            ncc_core::mis(&mut eng, &shared, &bt, &g).unwrap()
        });
    });
}

fn bench_bfs(c: &mut Criterion) {
    let g = ncc_graph::gen::grid(12, 12);
    let n = g.n();
    c.bench_function("bfs_grid_144", |b| {
        b.iter(|| {
            let mut eng = Engine::new(NetConfig::new(n, SEED));
            let (shared, bt, _) = ncc_bench::prepare(&mut eng, &g, SEED);
            ncc_core::bfs(&mut eng, &shared, &bt, &g, 0).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_orientation, bench_pipeline, bench_mis_phase, bench_bfs
}
criterion_main!(benches);
