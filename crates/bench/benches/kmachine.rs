//! Criterion bench for the Appendix-A conversion: the trace-sink overhead
//! of charging k-machine rounds while an algorithm runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncc_baselines::gossip_all;
use ncc_bench::SEED;
use ncc_kmachine::{KMachineCost, SharedSink};
use ncc_model::{Engine, NetConfig};

fn bench_conversion_overhead(c: &mut Criterion) {
    let n = 1024usize;
    let mut group = c.benchmark_group("kmachine_sink");
    group.sample_size(10);
    for &k in &[0usize, 8] {
        // k = 0 → no sink installed (baseline)
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut eng = Engine::new(NetConfig::new(n, SEED));
                if k > 0 {
                    let (sink, _handle) =
                        SharedSink::new(KMachineCost::with_random_assignment(n, k, SEED, 1));
                    eng.set_sink(Box::new(sink));
                }
                gossip_all(&mut eng).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conversion_overhead);
criterion_main!(benches);
