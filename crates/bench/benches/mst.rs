//! Criterion bench for the §3 MST (Table 1 row 1): full runs at small and
//! medium sizes. Round counts are validated by `exp07_mst`; this tracks the
//! simulator's wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncc_bench::SEED;
use ncc_graph::gen;
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, NetConfig};

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let g = gen::gnp(n, 24.0 / n as f64, SEED);
        let wg = gen::with_random_weights(&g, (n * n) as u64, SEED + 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let shared = SharedRandomness::new(SEED);
            b.iter(|| {
                let mut eng = Engine::new(NetConfig::new(n, SEED));
                ncc_core::mst(&mut eng, &shared, &wg).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mst);
criterion_main!(benches);
