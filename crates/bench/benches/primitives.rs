//! Criterion wall-clock benches for the communication primitives
//! (Theorems 2.2–2.6). Round counts are covered by the `expNN` binaries;
//! these benches track simulator throughput so performance regressions in
//! the engine or the routing queues are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncc_bench::SEED;
use ncc_butterfly::aggregation::aggregate;
use ncc_butterfly::{
    aggregate_and_broadcast, multicast, multicast_setup, self_joins, AggregationSpec, GroupId,
    MinU64, SumU64,
};
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, NetConfig};

fn bench_aggregate_and_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_and_broadcast");
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut eng = Engine::new(NetConfig::new(n, SEED));
                let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
                aggregate_and_broadcast(&mut eng, inputs, &SumU64).unwrap()
            });
        });
    }
    group.finish();
}

#[allow(clippy::needless_range_loop)]
fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_l1_8");
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let shared = SharedRandomness::new(SEED);
            b.iter(|| {
                let memberships: Vec<Vec<(GroupId, u64)>> = (0..n)
                    .map(|u| {
                        (0..8u32)
                            .map(|j| {
                                (
                                    GroupId::new(((u * 31 + j as usize * 977) % n) as u32, j),
                                    1u64,
                                )
                            })
                            .collect()
                    })
                    .collect();
                let mut eng = Engine::new(NetConfig::new(n, SEED));
                aggregate(
                    &mut eng,
                    &shared,
                    AggregationSpec {
                        memberships,
                        ell2_hat: 48,
                    },
                    &SumU64,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_multicast_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicast_setup_plus_send");
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let shared = SharedRandomness::new(SEED);
            b.iter(|| {
                let joins: Vec<Vec<GroupId>> = (0..n)
                    .map(|u| vec![GroupId::new((u % (n / 8)) as u32, 0)])
                    .collect();
                let mut eng = Engine::new(NetConfig::new(n, SEED));
                let (trees, _) = multicast_setup(&mut eng, &shared, self_joins(joins)).unwrap();
                let messages: Vec<Option<(GroupId, u64)>> = (0..n)
                    .map(|u| {
                        if u < n / 8 {
                            Some((GroupId::new(u as u32, 0), u as u64))
                        } else {
                            None
                        }
                    })
                    .collect();
                multicast(&mut eng, &shared, &trees, messages, 1).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_min_aggregate(c: &mut Criterion) {
    c.bench_function("agg_bcast_min_4096", |b| {
        b.iter(|| {
            let mut eng = Engine::new(NetConfig::new(4096, SEED));
            let inputs: Vec<Option<u64>> = (0..4096u64).map(|v| Some(v * 7 % 997)).collect();
            aggregate_and_broadcast(&mut eng, inputs, &MinU64).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_aggregate_and_broadcast, bench_aggregation, bench_multicast_roundtrip, bench_min_aggregate
}
criterion_main!(benches);
