//! bench_router — delivery-phase throughput of the batched counting-sort
//! router versus the seed engine's per-envelope grouping, at
//! n ∈ {1e3, 1e4, 1e5}.
//!
//! Both variants route the same seeded, skewed send batch (8 messages per
//! node, one in four aimed at a hot 1% of destinations so the receive-cap
//! sampling path is exercised). `legacy` reproduces the pre-refactor
//! delivery loop with its per-round allocations; `batched` reuses one
//! [`Router`] across iterations, i.e. the steady state of an execution.
//! The acceptance bar for the refactor is ≥ 2× at n = 1e5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncc_bench::SEED;
use ncc_model::rng::network_rng;
use ncc_model::router::reference_route;
use ncc_model::{Capacity, Envelope, Router};
use rand::Rng;

const PER_NODE: usize = 8;

/// Seeded skewed send batch: `8n` messages, 25% aimed at the hottest 1% of
/// destinations so several buckets exceed the receive cap every round.
fn make_sends(n: usize) -> Vec<Envelope<u64>> {
    let mut rng = network_rng(SEED, 0, 0);
    let hot = (n / 100).max(1) as u32;
    (0..n * PER_NODE)
        .map(|i| {
            let src = (i / PER_NODE) as u32;
            let dst = if i % 4 == 0 {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(0..n as u32)
            };
            Envelope::new(src, dst, i as u64)
        })
        .collect()
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_delivery");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let template = make_sends(n);
        let recv = Capacity::default_for(n).recv;

        // `reference_route` is the seed engine's delivery loop verbatim
        // (exported by ncc-model as the shared semantic oracle), allocation
        // behaviour included: fresh grouping state every call, per-envelope
        // pushes into per-destination `Vec`s that start empty each round,
        // exactly like the `mem::take`n inboxes of the old engine.
        group.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, &n| {
            b.iter(|| reference_route(&template, n, recv, SEED, 1));
        });

        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            let mut router: Router<u64> = Router::new(n, SEED, 1);
            let mut batch: Vec<Envelope<u64>> = Vec::with_capacity(template.len());
            b.iter(|| {
                batch.clear();
                batch.extend_from_slice(&template);
                router.route(&mut batch, 1, recv)
            });
        });

        group.bench_with_input(BenchmarkId::new("batched_t4", n), &n, |b, _| {
            let mut router: Router<u64> = Router::new(n, SEED, 4);
            let mut batch: Vec<Envelope<u64>> = Vec::with_capacity(template.len());
            b.iter(|| {
                batch.clear();
                batch.extend_from_slice(&template);
                router.route(&mut batch, 1, recv)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_router
}
criterion_main!(benches);
