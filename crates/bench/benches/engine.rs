//! Criterion benches for the raw engine: message throughput, drop path,
//! parallel step scaling, and the dissemination protocols (E13's subjects).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncc_baselines::{broadcast_all, gossip_all};
use ncc_bench::SEED;
use ncc_model::{Capacity, Engine, NetConfig};

fn bench_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip");
    group.sample_size(10);
    for &n in &[512usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut eng = Engine::new(NetConfig::new(n, SEED));
                gossip_all(&mut eng).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    c.bench_function("broadcast_8192", |b| {
        b.iter(|| {
            let mut eng = Engine::new(NetConfig::new(8192, SEED));
            broadcast_all(&mut eng, 42).unwrap()
        });
    });
}

fn bench_parallel_step(c: &mut Criterion) {
    // gossip is all-nodes-active every round: a good parallel-step stressor
    let mut group = c.benchmark_group("gossip_4096_threads");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let mut eng = Engine::new(NetConfig::new(4096, SEED).with_threads(t));
                gossip_all(&mut eng).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_drop_path(c: &mut Criterion) {
    // squeezed capacity forces the network's drop machinery every round
    c.bench_function("drop_path_1024", |b| {
        b.iter(|| {
            let cfg = NetConfig::new(1024, SEED)
                .with_capacity(Capacity::squeezed(64, 8))
                .permissive();
            let mut eng = Engine::new(cfg);
            gossip_all(&mut eng).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gossip, bench_broadcast, bench_parallel_step, bench_drop_path
}
criterion_main!(benches);
