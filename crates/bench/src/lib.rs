//! # ncc-bench — the experiment harness
//!
//! One binary per experiment (see DESIGN.md §3 for the index); each prints
//! a table in the shape of the paper's results (round counts next to the
//! theorem bound, plus the bound *ratio*, which should stay flat across the
//! sweep if the asymptotic shape holds). Criterion benches in `benches/`
//! cover wall-clock performance of the simulator itself.
//!
//! Everything is seeded; rerunning a binary reproduces its table exactly.

use ncc_core::broadcast_trees::BroadcastTrees;
use ncc_core::AlgoReport;
use ncc_graph::Graph;
use ncc_hashing::SharedRandomness;
use ncc_model::{Engine, NetConfig};

/// Standard experiment seed (documented in EXPERIMENTS.md).
pub const SEED: u64 = 20190622; // SPAA'19 conference date

/// log₂-style helper used in bound formulas.
pub fn lg(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// Prints a fixed-width table.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            widths: headers.iter().map(|s| s.len()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!("| {c:>w$} "));
            }
            s.push('|');
            println!("{s}");
        };
        line(&self.headers, &self.widths);
        let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep, &self.widths);
        for r in &self.rows {
            line(r, &self.widths);
        }
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Builds an engine with the repository-default capacity.
pub fn engine(n: usize, seed: u64) -> Engine {
    Engine::new(NetConfig::new(n, seed))
}

/// Builds an engine with the repository-default capacity and `threads`
/// worker threads for the step and route phases. Results are bit-identical
/// to `threads = 1`.
pub fn engine_threaded(n: usize, seed: u64, threads: usize) -> Engine {
    Engine::new(NetConfig::new(n, seed).with_threads(threads))
}

/// Parses `--threads <t>` from a raw argument list (default 1), so every
/// experiment binary plumbs the deterministic parallel executor the same
/// way.
pub fn cli_threads(args: &[String]) -> usize {
    cli_value(args, "--threads")
        .map(|v| v.parse().expect("--threads needs an integer"))
        .unwrap_or(1)
}

/// Parses `--json <path>` from a raw argument list.
pub fn cli_json(args: &[String]) -> Option<String> {
    cli_value(args, "--json").map(str::to_string)
}

/// Value of `flag`, if present. A `--`-prefixed next token is another flag,
/// not a value (`--json --threads 4` must not read `--threads` as the json
/// path); a flag without a value is an error.
fn cli_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.as_str(),
            _ => panic!("{flag} needs a value"),
        })
}

/// Agrees on shared randomness in-model (charged) and returns it with the
/// setup statistics folded into the report.
pub fn agree_randomness(eng: &mut Engine, report: &mut AlgoReport, seed: u64) -> SharedRandomness {
    let n = eng.n();
    let k = SharedRandomness::k_for(n);
    // enough bits for the hash-function budget of the largest consumer
    // (MST: O(log n) functions of Θ(log n) coefficients, §3)
    let bits = SharedRandomness::bits_required(n, 2 * ncc_model::ilog2_ceil(n).max(1) as usize, k);
    let (shared, stats) =
        ncc_butterfly::broadcast_seed(eng, seed ^ 0x5eed, bits).expect("seed broadcast");
    report.push("seed-agreement", stats);
    shared
}

/// Full §5 preparation pipeline: seed agreement + orientation + broadcast
/// trees, with all costs in the report.
pub fn prepare(
    eng: &mut Engine,
    g: &Graph,
    seed: u64,
) -> (SharedRandomness, BroadcastTrees, AlgoReport) {
    let mut report = AlgoReport::default();
    let shared = agree_randomness(eng, &mut report, seed);
    let (bt, rep) = ncc_core::build_broadcast_trees(eng, &shared, g).expect("broadcast trees");
    report.push("orientation+trees", rep.total);
    (shared, bt, report)
}

/// The bounded-arboricity workload family used across Table-1 experiments.
pub fn arboricity_workload(n: usize, a: usize, seed: u64) -> Graph {
    ncc_graph::gen::forest_union(n, a, seed)
}

/// Describes a graph in one line (for table captions).
pub fn describe(g: &Graph) -> String {
    let (lo, hi) = ncc_graph::analysis::arboricity_bounds(g);
    format!(
        "n={} m={} deg_max={} arboricity∈[{lo},{hi}]",
        g.n(),
        g.m(),
        g.max_degree()
    )
}

/// Rebuilds a spec's input graph for post-hoc analysis (diameter,
/// arboricity, sequential baselines). Deterministic, so the analysed graph
/// is exactly the one the run saw.
pub fn spec_graph(spec: &ncc_runner::ScenarioSpec) -> Graph {
    spec.build_graph()
        .unwrap_or_else(|e| panic!("unbuildable spec {}: {e}", spec.label()))
}

/// Writes a migrated experiment's records as JSON (the `BENCH_*.json`
/// schema shared with `ncc-cli suite`), so every sweep leaves a
/// machine-readable trail for the perf-trajectory history.
pub fn write_records_json(path: &str, experiment: &str, records: &[ncc_runner::RunRecord]) {
    ncc_runner::SuiteOutput::new(experiment, SEED, records.to_vec())
        .write(path)
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["n", "rounds", "ratio"]);
        t.row(vec!["64".into(), "120".into(), f2(1.25)]);
        t.print();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn prepare_pipeline_runs() {
        let g = arboricity_workload(32, 2, 1);
        let mut eng = engine(32, 2);
        let (_, bt, report) = prepare(&mut eng, &g, 3);
        assert!(report.total.rounds > 0);
        assert!(bt.a_hat >= 1);
        assert!(report.total.clean());
    }

    #[test]
    fn lg_monotone() {
        assert!(lg(1024) > lg(256));
        assert!((lg(1024) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cli_flags_parse() {
        let args: Vec<String> = ["--json", "out.json", "--threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(cli_threads(&args), 4);
        assert_eq!(cli_json(&args).as_deref(), Some("out.json"));
        assert_eq!(cli_threads(&[]), 1);
        assert_eq!(cli_json(&[]), None);
    }

    #[test]
    #[should_panic(expected = "--json needs a value")]
    fn cli_json_rejects_flag_as_value() {
        // the old parser silently returned "--threads" as the json path
        let args: Vec<String> = ["--json", "--threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let _ = cli_json(&args);
    }

    #[test]
    fn spec_graph_matches_run_input() {
        let spec = ncc_runner::ScenarioSpec::new(ncc_runner::FamilySpec::Gnp { p: 0.2 }, 32, 5);
        let g = spec_graph(&spec);
        assert_eq!(g.n(), 32);
        assert_eq!(g.m(), spec.build().unwrap().graph.m());
    }

    #[test]
    fn threaded_engine_matches_sequential() {
        let g = arboricity_workload(32, 2, 1);
        let run = |threads| {
            let mut eng = engine_threaded(32, 2, threads);
            let (_, _, report) = prepare(&mut eng, &g, 3);
            report.total
        };
        assert_eq!(run(1), run(4));
    }
}
