//! E17 — ablation of the random-rank contention rule (Appendix B.2).
//!
//! Theorem B.2's delay bound holds for *random* ranks; replacing them with
//! a static priority (rank ≡ 0, ties by group id) lets an unlucky group be
//! starved behind every lower-id group along its path. The effect shows as
//! a growing gap in combining-phase rounds as group contention rises.

use ncc_bench::{engine, f2, Table, SEED};
use ncc_butterfly::{aggregate_opt, AggregationSpec, GroupId, SumU64};
use ncc_hashing::SharedRandomness;

fn run(n: usize, l1: usize, random_ranks: bool) -> u64 {
    let shared = SharedRandomness::new(SEED);
    let memberships: Vec<Vec<(GroupId, u64)>> = (0..n)
        .map(|u| {
            (0..l1)
                .map(|j| {
                    // adversarial: many distinct groups, targets clustered on
                    // few columns so rank order matters on shared edges
                    let target = ((j * 7) % 16) as u32;
                    (GroupId::new(target, (u / 2 + j * n) as u32), 1u64)
                })
                .collect()
        })
        .collect();
    let mut eng = engine(n, SEED + l1 as u64 + random_ranks as u64);
    let (_, stats) = aggregate_opt(
        &mut eng,
        &shared,
        AggregationSpec {
            memberships,
            ell2_hat: n * l1 / 16 + 16,
        },
        &SumU64,
        random_ranks,
    )
    .expect("aggregation");
    stats.rounds
}

fn main() {
    println!("# E17 — routing ablation: random ranks (paper) vs static priority");
    let n = 512usize;
    let mut t = Table::new(&["l1", "random_ranks", "static_prio", "static/random"]);
    for l1 in [2usize, 4, 8, 16, 32] {
        let rr = run(n, l1, true);
        let st = run(n, l1, false);
        t.row(vec![
            l1.to_string(),
            rr.to_string(),
            st.to_string(),
            f2(st as f64 / rr as f64),
        ]);
    }
    t.print();
    println!("\nexpected: both complete (correctness is rank-independent), but the");
    println!("static-priority column trends upward relative to random ranks as");
    println!("contention grows — the Theorem B.2 delay-sequence effect.");
}
