//! E1 — **Table 1 of the paper**: round complexity of all five problems.
//!
//! For each `n`, runs MST, BFS Tree, MIS, Maximal Matching and
//! O(a)-Coloring on a bounded-arboricity workload (union of 3 random
//! forests, `a ≈ 3`), verifies every output against the centralised
//! checkers, and prints measured rounds next to the paper's bound with the
//! ratio `rounds / bound`. A flat ratio column across `n` reproduces the
//! table's asymptotic claims.

use ncc_bench::{arboricity_workload, describe, engine, f2, lg, prepare, Table, SEED};
use ncc_core::AlgoReport;
use ncc_graph::{analysis, check, gen};

fn main() {
    println!("# E1 — Table 1: problem / measured rounds / paper bound / ratio");
    let mut table = Table::new(&["problem", "n", "a", "rounds", "bound", "ratio", "verified"]);

    for &n in &[64usize, 128, 256] {
        let a = 3usize;
        let g = arboricity_workload(n, a, SEED);
        let (lo, hi) = analysis::arboricity_bounds(&g);
        let a_real = ((lo + hi) / 2).max(1) as f64;
        let d = analysis::diameter(&g) as f64;
        println!("\n## workload: {}", describe(&g));

        // ---- MST (Thm 3.2: O(log⁴ n)) -------------------------------------
        {
            let wg = gen::with_random_weights(&g, (n * n) as u64, SEED + 1);
            let mut eng = engine(n, SEED + 2);
            let mut report = AlgoReport::default();
            let shared = ncc_bench::agree_randomness(&mut eng, &mut report, SEED + 3);
            let r = ncc_core::mst(&mut eng, &shared, &wg).expect("mst");
            report.push("mst", r.report.total);
            let ok = check::check_mst(&wg, &r.edges).is_ok();
            let bound = lg(n).powi(4);
            table.row(vec![
                "MST".into(),
                n.to_string(),
                a.to_string(),
                report.total.rounds.to_string(),
                f2(bound),
                f2(report.total.rounds as f64 / bound),
                ok.to_string(),
            ]);
        }

        // ---- shared §5 pipeline --------------------------------------------
        let mut eng = engine(n, SEED + 4);
        let (shared, bt, prep) = prepare(&mut eng, &g, SEED + 5);

        // ---- BFS (Thm 5.2: O((a + D + log n) log n)) -----------------------
        {
            let r = ncc_core::bfs(&mut eng, &shared, &bt, &g, 0).expect("bfs");
            let ok = check::check_bfs(&g, 0, &r.dist, &r.parent).is_ok();
            let rounds = prep.total.rounds + r.report.total.rounds;
            let bound = (a_real + d + lg(n)) * lg(n);
            table.row(vec![
                "BFS Tree".into(),
                n.to_string(),
                a.to_string(),
                rounds.to_string(),
                f2(bound),
                f2(rounds as f64 / bound),
                ok.to_string(),
            ]);
        }

        // ---- MIS (Thm 5.3: O((a + log n) log n)) ---------------------------
        {
            let r = ncc_core::mis(&mut eng, &shared, &bt, &g).expect("mis");
            let ok = check::check_mis(&g, &r.in_mis).is_ok();
            let rounds = prep.total.rounds + r.report.total.rounds;
            let bound = (a_real + lg(n)) * lg(n);
            table.row(vec![
                "MIS".into(),
                n.to_string(),
                a.to_string(),
                rounds.to_string(),
                f2(bound),
                f2(rounds as f64 / bound),
                ok.to_string(),
            ]);
        }

        // ---- Maximal Matching (Thm 5.4: O((a + log n) log n)) ---------------
        {
            let r = ncc_core::maximal_matching(&mut eng, &shared, &bt, &g).expect("mm");
            let ok = check::check_matching(&g, &r.mate).is_ok();
            let rounds = prep.total.rounds + r.report.total.rounds;
            let bound = (a_real + lg(n)) * lg(n);
            table.row(vec![
                "Matching".into(),
                n.to_string(),
                a.to_string(),
                rounds.to_string(),
                f2(bound),
                f2(rounds as f64 / bound),
                ok.to_string(),
            ]);
        }

        // ---- O(a)-Coloring (Thm 5.5: O((a + log n) log^{3/2} n)) ------------
        {
            let r = ncc_core::coloring(&mut eng, &shared, &bt.orientation, &g).expect("coloring");
            let ok = check::check_coloring(&g, &r.colors, r.palette).is_ok();
            let rounds = prep.total.rounds + r.report.total.rounds;
            let bound = (a_real + lg(n)) * lg(n).powf(1.5);
            table.row(vec![
                "Coloring".into(),
                n.to_string(),
                a.to_string(),
                rounds.to_string(),
                f2(bound),
                f2(rounds as f64 / bound),
                ok.to_string(),
            ]);
        }
    }

    println!();
    table.print();
    println!("\nratio columns should stay roughly flat across n (same hidden constant).");
}
