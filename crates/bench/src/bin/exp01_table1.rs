//! E1 — **Table 1 of the paper**: round complexity of all five problems.
//!
//! For each `n`, runs MST, BFS Tree, MIS, Maximal Matching and
//! O(a)-Coloring on a bounded-arboricity workload (union of 3 random
//! forests, `a ≈ 3`), verifies every output against the centralised
//! checkers, and prints measured rounds next to the paper's bound with the
//! ratio `rounds / bound`. A flat ratio column across `n` reproduces the
//! table's asymptotic claims.
//!
//! With `--json <path>` the same records are also written as a JSON
//! document (see `bench.sh`, which snapshots them to `BENCH_exp01.json`
//! for the perf-trajectory history, and `bench_compare`, which gates CI on
//! the deterministic fields: rounds, drops, max_load, verified).
//! `--threads <t>` runs the deterministic parallel executor; every number
//! in the table is identical for any thread count.

use ncc_bench::{
    arboricity_workload, cli_json, cli_threads, describe, engine_threaded, f2, lg, prepare, Table,
    SEED,
};
use ncc_core::AlgoReport;
use ncc_graph::{analysis, check, gen};
use ncc_model::ExecStats;

#[derive(serde::Serialize)]
struct Record {
    problem: String,
    n: usize,
    a: usize,
    rounds: u64,
    drops: u64,
    max_load: u64,
    bound: f64,
    ratio: f64,
    verified: bool,
}

#[derive(serde::Serialize)]
struct Output {
    experiment: String,
    seed: u64,
    records: Vec<Record>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = cli_json(&args);
    let threads = cli_threads(&args);

    println!("# E1 — Table 1: problem / measured rounds / paper bound / ratio");
    let mut table = Table::new(&[
        "problem", "n", "a", "rounds", "drops", "load", "bound", "ratio", "verified",
    ]);
    let mut records: Vec<Record> = Vec::new();

    let mut emit = |problem: &str, n: usize, a: usize, total: &ExecStats, bound: f64, ok: bool| {
        let rounds = total.rounds;
        let ratio = rounds as f64 / bound;
        table.row(vec![
            problem.into(),
            n.to_string(),
            a.to_string(),
            rounds.to_string(),
            total.dropped.to_string(),
            total.peak_load().to_string(),
            f2(bound),
            f2(ratio),
            ok.to_string(),
        ]);
        records.push(Record {
            problem: problem.into(),
            n,
            a,
            rounds,
            drops: total.dropped,
            max_load: total.peak_load(),
            bound,
            ratio,
            verified: ok,
        });
    };

    for &n in &[64usize, 128, 256] {
        let a = 3usize;
        let g = arboricity_workload(n, a, SEED);
        let (lo, hi) = analysis::arboricity_bounds(&g);
        let a_real = ((lo + hi) / 2).max(1) as f64;
        let d = analysis::diameter(&g) as f64;
        println!("\n## workload: {}", describe(&g));

        // ---- MST (Thm 3.2: O(log⁴ n)) -------------------------------------
        {
            let wg = gen::with_random_weights(&g, (n * n) as u64, SEED + 1);
            let mut eng = engine_threaded(n, SEED + 2, threads);
            let mut report = AlgoReport::default();
            let shared = ncc_bench::agree_randomness(&mut eng, &mut report, SEED + 3);
            let r = ncc_core::mst(&mut eng, &shared, &wg).expect("mst");
            report.push("mst", r.report.total);
            let ok = check::check_mst(&wg, &r.edges).is_ok();
            let bound = lg(n).powi(4);
            emit("MST", n, a, &report.total, bound, ok);
        }

        // ---- shared §5 pipeline --------------------------------------------
        let mut eng = engine_threaded(n, SEED + 4, threads);
        let (shared, bt, prep) = prepare(&mut eng, &g, SEED + 5);

        // ---- BFS (Thm 5.2: O((a + D + log n) log n)) -----------------------
        {
            let r = ncc_core::bfs(&mut eng, &shared, &bt, &g, 0).expect("bfs");
            let ok = check::check_bfs(&g, 0, &r.dist, &r.parent).is_ok();
            let mut total = prep.total;
            total.merge(&r.report.total);
            let bound = (a_real + d + lg(n)) * lg(n);
            emit("BFS Tree", n, a, &total, bound, ok);
        }

        // ---- MIS (Thm 5.3: O((a + log n) log n)) ---------------------------
        {
            let r = ncc_core::mis(&mut eng, &shared, &bt, &g).expect("mis");
            let ok = check::check_mis(&g, &r.in_mis).is_ok();
            let mut total = prep.total;
            total.merge(&r.report.total);
            let bound = (a_real + lg(n)) * lg(n);
            emit("MIS", n, a, &total, bound, ok);
        }

        // ---- Maximal Matching (Thm 5.4: O((a + log n) log n)) ---------------
        {
            let r = ncc_core::maximal_matching(&mut eng, &shared, &bt, &g).expect("mm");
            let ok = check::check_matching(&g, &r.mate).is_ok();
            let mut total = prep.total;
            total.merge(&r.report.total);
            let bound = (a_real + lg(n)) * lg(n);
            emit("Matching", n, a, &total, bound, ok);
        }

        // ---- O(a)-Coloring (Thm 5.5: O((a + log n) log^{3/2} n)) ------------
        {
            let r = ncc_core::coloring(&mut eng, &shared, &bt.orientation, &g).expect("coloring");
            let ok = check::check_coloring(&g, &r.colors, r.palette).is_ok();
            let mut total = prep.total;
            total.merge(&r.report.total);
            let bound = (a_real + lg(n)) * lg(n).powf(1.5);
            emit("Coloring", n, a, &total, bound, ok);
        }
    }

    println!();
    table.print();
    println!("\nratio columns should stay roughly flat across n (same hidden constant).");

    if let Some(path) = json_path {
        let out = Output {
            experiment: "exp01_table1".into(),
            seed: SEED,
            records,
        };
        let json = serde_json::to_string_pretty(&out).expect("serialize records");
        std::fs::write(&path, json + "\n").expect("write JSON output");
        println!("wrote {path}");
    }
}
