//! E6 — Theorem 2.6 + Corollary 1: Multi-Aggregation in `O(C + log n)`;
//! over broadcast trees, a source set `S` costs
//! `O(Σ_{u∈S} d(u)/n + log n)`.
//!
//! Runs neighborhood multi-aggregations on structurally different graphs
//! (star, cycle, G(n,p), union of forests) with everyone as source, and
//! with small source subsets, validating the Corollary-1 form.

use ncc_bench::{engine, f2, lg, prepare, Table, SEED};
use ncc_butterfly::{multi_aggregate, MinU64};
use ncc_core::broadcast_trees::neighborhood_group;
use ncc_graph::{gen, Graph};

fn run(name: &str, g: &Graph, frac: usize, t: &mut Table) {
    let n = g.n();
    let mut eng = engine(n, SEED + 77);
    let (shared, bt, _) = prepare(&mut eng, g, SEED + 78);
    let sources: Vec<usize> = (0..n).filter(|u| u % frac == 0).collect();
    let messages: Vec<Option<(ncc_butterfly::GroupId, u64)>> = (0..n)
        .map(|u| {
            if u % frac == 0 {
                Some((neighborhood_group(u as u32), 100 + u as u64))
            } else {
                None
            }
        })
        .collect();
    let (out, stats) = multi_aggregate(
        &mut eng,
        &shared,
        &bt.trees,
        messages,
        |_, _, _, v| *v,
        &MinU64,
    )
    .expect("multi-agg");
    let degree_sum: usize = sources.iter().map(|&u| g.degree(u as u32)).sum();
    let reached = out.iter().filter(|o| o.is_some()).count();
    let bound = degree_sum as f64 / n as f64 + lg(n);
    t.row(vec![
        name.into(),
        n.to_string(),
        format!("1/{frac}"),
        degree_sum.to_string(),
        stats.rounds.to_string(),
        f2(bound),
        f2(stats.rounds as f64 / bound),
        reached.to_string(),
        stats.clean().to_string(),
    ]);
}

fn main() {
    println!("# E6 — Theorem 2.6 / Corollary 1 (Multi-Aggregation over broadcast trees)");
    let mut t = Table::new(&[
        "graph", "n", "sources", "sum_deg", "rounds", "bound", "ratio", "reached", "clean",
    ]);
    let n = 512;
    run("star", &gen::star(n), 1, &mut t);
    run("star", &gen::star(n), 8, &mut t);
    run("cycle", &gen::cycle(n), 1, &mut t);
    run("gnp(0.02)", &gen::gnp(n, 0.02, SEED), 1, &mut t);
    run("gnp(0.02)", &gen::gnp(n, 0.02, SEED), 8, &mut t);
    run("forests(4)", &gen::forest_union(n, 4, SEED), 1, &mut t);
    t.print();
    println!("\nexpected: ratio flat; the star row is the paper's capacity adversary.");
}
