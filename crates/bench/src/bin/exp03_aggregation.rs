//! E3 — Theorem 2.3: Aggregation runs in
//! `O(L/n + (ℓ₁ + ℓ̂₂)/log n + log n)` rounds.
//!
//! Two sweeps at fixed `n`: (a) memberships-per-node `ℓ₁` (which scales
//! `L = n·ℓ₁` too), (b) a target-concentration sweep that scales `ℓ₂`.
//! The bound-ratio column must stay flat.

use ncc_bench::{engine, f2, lg, Table, SEED};
use ncc_butterfly::aggregation::aggregate;
use ncc_butterfly::{AggregationSpec, GroupId, SumU64};
use ncc_hashing::SharedRandomness;

fn main() {
    let n = 1024usize;
    let shared = SharedRandomness::new(SEED);
    println!("# E3 — Theorem 2.3 (Aggregation), n = {n}");

    println!("\n## sweep (a): ℓ₁ = memberships per node (L = n·ℓ₁, spread targets)");
    let mut t = Table::new(&["l1", "L", "rounds", "bound", "ratio", "clean"]);
    for l1 in [1usize, 2, 4, 8, 16, 32, 64] {
        let memberships: Vec<Vec<(GroupId, u64)>> = (0..n)
            .map(|u| {
                (0..l1)
                    .map(|j| {
                        let target = ((u * 31 + j * 977) % n) as u32;
                        (GroupId::new(target, j as u32), 1u64)
                    })
                    .collect()
            })
            .collect();
        let ell2 = 4 * l1 + 16; // generous known bound on targets per node
        let mut eng = engine(n, SEED + l1 as u64);
        let (out, stats) = aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: ell2,
            },
            &SumU64,
        )
        .expect("aggregation");
        let delivered: u64 = out.iter().flatten().map(|(_, v)| v).sum();
        assert_eq!(delivered as usize, n * l1, "no packet may be lost");
        let load = (n * l1) as f64;
        let bound = load / n as f64 + (l1 + ell2) as f64 / lg(n) + lg(n);
        t.row(vec![
            l1.to_string(),
            (n * l1).to_string(),
            stats.rounds.to_string(),
            f2(bound),
            f2(stats.rounds as f64 / bound),
            stats.clean().to_string(),
        ]);
    }
    t.print();

    println!("\n## sweep (b): target concentration (ℓ₂ grows, L = 8n fixed)");
    let mut t = Table::new(&["targets", "l2", "rounds", "bound", "ratio", "clean"]);
    for targets in [1024usize, 256, 64, 16, 4] {
        let l1 = 8usize;
        let memberships: Vec<Vec<(GroupId, u64)>> = (0..n)
            .map(|u| {
                (0..l1)
                    .map(|j| {
                        let target = ((u + j * 131) % targets) as u32;
                        (GroupId::new(target, (u % 4) as u32 * 64 + j as u32), 1u64)
                    })
                    .collect()
            })
            .collect();
        // each target node owns ≤ 4·64 = 256 sub-groups at full concentration
        let ell2 = (n * l1 / targets / 2).clamp(16, 4 * 64);
        let mut eng = engine(n, SEED + targets as u64);
        let (_, stats) = aggregate(
            &mut eng,
            &shared,
            AggregationSpec {
                memberships,
                ell2_hat: ell2,
            },
            &SumU64,
        )
        .expect("aggregation");
        let bound = (n * l1) as f64 / n as f64 + (l1 + ell2) as f64 / lg(n) + lg(n);
        t.row(vec![
            targets.to_string(),
            ell2.to_string(),
            stats.rounds.to_string(),
            f2(bound),
            f2(stats.rounds as f64 / bound),
            stats.clean().to_string(),
        ]);
    }
    t.print();
    println!("\nexpected: ratio flat in both sweeps (Theorem 2.3's three-term bound).");
}
