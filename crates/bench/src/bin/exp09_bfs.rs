//! E9 — Theorem 5.2: BFS trees in `O((a + D + log n) log n)` rounds.
//!
//! The bound has two regimes: diameter-dominated (grids, paths) and
//! log-dominated (G(n,p), stars). The workload set covers both; every
//! output is validated against the centralised BFS.

use ncc_bench::{engine, f2, lg, prepare, Table, SEED};
use ncc_graph::{analysis, check, gen, Graph};

fn run(name: &str, g: &Graph, t: &mut Table) {
    let n = g.n();
    let d = analysis::diameter(g) as f64;
    let (alo, _) = analysis::arboricity_bounds(g);
    let mut eng = engine(n, SEED + n as u64);
    let (shared, bt, prep) = prepare(&mut eng, g, SEED + 3);
    let r = ncc_core::bfs(&mut eng, &shared, &bt, g, 0).expect("bfs");
    let ok = check::check_bfs(g, 0, &r.dist, &r.parent).is_ok();
    let rounds = prep.total.rounds + r.report.total.rounds;
    let bound = (alo as f64 + d + lg(n)) * lg(n);
    t.row(vec![
        name.into(),
        n.to_string(),
        (d as u64).to_string(),
        r.phases.to_string(),
        rounds.to_string(),
        f2(bound),
        f2(rounds as f64 / bound),
        ok.to_string(),
    ]);
}

fn main() {
    println!("# E9 — Theorem 5.2 (BFS Tree): rounds vs (a + D + log n)·log n");
    let mut t = Table::new(&[
        "graph", "n", "D", "phases", "rounds", "bound", "ratio", "ok",
    ]);
    // diameter-dominated regime
    run("path", &gen::path(128), &mut t);
    run("grid 8x32", &gen::grid(8, 32), &mut t);
    run("grid 16x16", &gen::grid(16, 16), &mut t);
    run("grid 23x23", &gen::grid(23, 23), &mut t);
    // log-dominated regime
    run("star", &gen::star(256), &mut t);
    run("gnp(0.05)", &gen::gnp(256, 0.05, SEED), &mut t);
    run("tree(rand)", &gen::random_tree(256, SEED), &mut t);
    // n sweep on grids (D = Θ(√n))
    run("grid 8x8", &gen::grid(8, 8), &mut t);
    run("grid 12x12", &gen::grid(12, 12), &mut t);
    run("grid 20x20", &gen::grid(20, 20), &mut t);
    t.print();
    println!("\nexpected: ratio flat across both regimes (D-dominated and log-dominated).");
}
