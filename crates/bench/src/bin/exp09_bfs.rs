//! E9 — Theorem 5.2: BFS trees in `O((a + D + log n) log n)` rounds.
//!
//! The bound has two regimes: diameter-dominated (grids, paths) and
//! log-dominated (G(n,p), stars). The declarative scenario grid covers
//! both; every output is validated against the centralised BFS inside the
//! registry run. `--json <path>` writes the records.

use ncc_bench::{cli_json, cli_threads, f2, lg, spec_graph, write_records_json, Table, SEED};
use ncc_graph::analysis;
use ncc_runner::{run_named_threads, FamilySpec, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli_threads(&args);
    let json = cli_json(&args);

    let grid: Vec<(&str, ScenarioSpec)> = vec![
        // diameter-dominated regime
        ("path", ScenarioSpec::new(FamilySpec::Path, 128, SEED)),
        ("grid 8x32", ScenarioSpec::grid(8, 32, SEED)),
        ("grid 16x16", ScenarioSpec::grid(16, 16, SEED)),
        ("grid 23x23", ScenarioSpec::grid(23, 23, SEED)),
        // log-dominated regime
        ("star", ScenarioSpec::new(FamilySpec::Star, 256, SEED)),
        (
            "gnp(0.05)",
            ScenarioSpec::new(FamilySpec::Gnp { p: 0.05 }, 256, SEED),
        ),
        ("tree(rand)", ScenarioSpec::new(FamilySpec::Tree, 256, SEED)),
        // n sweep on grids (D = Θ(√n))
        ("grid 8x8", ScenarioSpec::grid(8, 8, SEED)),
        ("grid 12x12", ScenarioSpec::grid(12, 12, SEED)),
        ("grid 20x20", ScenarioSpec::grid(20, 20, SEED)),
    ];

    println!("# E9 — Theorem 5.2 (BFS Tree): rounds vs (a + D + log n)·log n");
    let mut t = Table::new(&[
        "graph", "n", "D", "phases", "rounds", "bound", "ratio", "ok",
    ]);
    let mut records = Vec::new();
    for (name, spec) in &grid {
        let rec = run_named_threads("bfs", spec, threads).expect("bfs");
        let g = spec_graph(spec);
        let d = analysis::diameter(&g) as f64;
        let (alo, _) = analysis::arboricity_bounds(&g);
        let bound = (alo as f64 + d + lg(spec.n)) * lg(spec.n);
        t.row(vec![
            (*name).into(),
            spec.n.to_string(),
            (d as u64).to_string(),
            rec.phases.unwrap_or(0).to_string(),
            rec.rounds.to_string(),
            f2(bound),
            f2(rec.rounds as f64 / bound),
            rec.verdict.ok().to_string(),
        ]);
        records.push(rec);
    }
    t.print();
    println!("\nexpected: ratio flat across both regimes (D-dominated and log-dominated).");
    if let Some(path) = json {
        write_records_json(&path, "exp09_bfs", &records);
    }
}
