//! E18 (supplementary) — contact-set sizes, motivated by the paper's
//! conclusion: *"all of our algorithms still achieve the presented runtimes
//! if … they initially only know Θ(log n) random nodes"*, because almost
//! all communication flows through the butterfly overlay whose per-node
//! contact set is `O(log n)` fixed columns.
//!
//! This experiment measures, per algorithm, how many *distinct* nodes each
//! node actually sends to over a full execution: the butterfly accounts
//! for `O(log n)` of them; random injections, deliveries and rendezvous
//! add slowly-growing tails. Reported: median and max distinct contacts,
//! and their ratio to `log₂ n`.

use ncc_bench::{arboricity_workload, engine, f2, lg, prepare, Table, SEED};
use ncc_model::{NodeId, TraceEvent, TraceSink};
use std::sync::{Arc, Mutex};

/// Counts distinct destinations per source.
struct ContactSink(Arc<Mutex<Vec<std::collections::BTreeSet<NodeId>>>>);

impl TraceSink for ContactSink {
    fn on_round(&mut self, _round: u64, delivered: &[TraceEvent]) {
        let mut sets = self.0.lock().unwrap();
        for ev in delivered {
            sets[ev.src as usize].insert(ev.dst);
        }
    }
}

fn main() {
    println!("# E18 — distinct contacts per node across full executions");
    let n = 256usize;
    let g = arboricity_workload(n, 3, SEED);
    let mut t = Table::new(&["algorithm", "median", "max", "median/log2n", "max/log2n"]);

    let run = |label: &str, which: u8, t: &mut Table| {
        let sets = Arc::new(Mutex::new(vec![std::collections::BTreeSet::new(); n]));
        let mut eng = engine(n, SEED + which as u64);
        eng.set_sink(Box::new(ContactSink(sets.clone())));
        let (shared, bt, _) = prepare(&mut eng, &g, SEED + 9);
        match which {
            0 => {
                let _ = ncc_core::bfs(&mut eng, &shared, &bt, &g, 0).unwrap();
            }
            1 => {
                let _ = ncc_core::mis(&mut eng, &shared, &bt, &g).unwrap();
            }
            2 => {
                let _ = ncc_core::maximal_matching(&mut eng, &shared, &bt, &g).unwrap();
            }
            _ => {
                let _ = ncc_core::coloring(&mut eng, &shared, &bt.orientation, &g).unwrap();
            }
        }
        let mut sizes: Vec<usize> = sets.lock().unwrap().iter().map(|s| s.len()).collect();
        sizes.sort_unstable();
        let median = sizes[n / 2];
        let max = *sizes.last().unwrap();
        t.row(vec![
            label.into(),
            median.to_string(),
            max.to_string(),
            f2(median as f64 / lg(n)),
            f2(max as f64 / lg(n)),
        ]);
    };
    run("prepare+BFS", 0, &mut t);
    run("prepare+MIS", 1, &mut t);
    run("prepare+Matching", 2, &mut t);
    run("prepare+Coloring", 3, &mut t);
    t.print();
    println!("\ninterpretation: medians of a few·log n distinct contacts support the");
    println!("conclusion's remark that Θ(log n) initial contacts (plus graph neighbors");
    println!("and overlay-introduced ones) suffice — nodes never need the full clique.");
}
