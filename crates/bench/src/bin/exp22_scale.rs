//! exp22 — scale sweep: the huge-graph families at n up to 10⁷, plus the
//! sparse-tail micro-benchmark that certifies the O(active) round loop.
//!
//! Three parts:
//!
//! 1. **Family sweep** — flooding broadcast on R-MAT and random
//!    hyperbolic graphs at n ∈ {10⁴, 10⁵, 10⁶}, an R-MAT broadcast row
//!    at n = 10⁷ (the paper's §1 "millions of users" regime,
//!    end-to-end: generate + run), plus full tree-based BFS at 10⁴
//!    (BFS is a multi-thousand-round protocol whose wall-clock is
//!    dominated by the algorithm, not the engine — one size pins it
//!    without hour-long sweeps), timing graph generation and the
//!    algorithm run separately and recording the warm engine's
//!    resident bytes per node. `--smoke` (the CI scale-smoke job) runs
//!    BFS only at 10⁴ so every emitted record is checkable and the job
//!    can gate on all-`Verified`.
//! 2. **Generation identity smoke** (`--smoke` only) — one R-MAT
//!    instance whose sample count crosses the parallel generator's
//!    block boundary, generated at 1 and 4 threads and asserted
//!    byte-identical, so the CI job guards the parallel generators,
//!    not just the BFS cells.
//! 3. **Sparse tail** — one node stays awake for thousands of rounds on
//!    an n = 10⁵ network while everyone else sleeps. The same program is
//!    timed under the seed engine's scan-everything baseline
//!    (`dense_activity_scan`) and the dirty-set scheduler; results are
//!    asserted identical and the wall-clock speedup is recorded. This is
//!    the direct measurement of "a round costs O(active), not O(n)".
//!
//! Wall-clock numbers are machine-dependent, so the snapshot sets
//! `"wall_clock": true` and `bench_compare` reports it without gating —
//! while the embedded `RunRecord`s (rounds, sent, verdicts) stay fully
//! deterministic and are still checked for `Failed` verdicts.
//!
//! ```text
//! exp22_scale [--smoke] [--threads t] [--json BENCH_scale.json]
//! ```

use std::time::Instant;

use ncc_bench::{cli_json, cli_threads, f2, Table, SEED};
use ncc_graph::gen;
use ncc_model::{Ctx, Engine, Envelope, ExecStats, NetConfig, NodeProgram};
use ncc_runner::{find_algorithm, FamilySpec, RunRecord, ScenarioSpec};
use serde::Serialize;

/// One sweep cell: deterministic record plus its wall-clock costs and
/// the warm engine's memory footprint.
#[derive(Serialize)]
struct ScaleCell {
    family: String,
    n: usize,
    algorithm: String,
    /// Edges of the generated graph (deterministic for the seed).
    edges: usize,
    /// Graph generation wall time (wall_clock — tracked so the
    /// generation-vs-run ratio stays visible in the trajectory).
    gen_wall_ms: f64,
    run_ms: f64,
    /// Resident engine bytes per node after the run (capacity-based
    /// estimate from `Engine::resident_bytes`; wall-clock-adjacent in
    /// that allocator growth policies may vary, so not gated).
    resident_bytes_per_node: f64,
    record: RunRecord,
}

/// The sparse-tail measurement: same program, same results, two
/// schedulers. `speedup` is the acceptance quantity (dense / sparse).
#[derive(Serialize)]
struct SparseTail {
    n: usize,
    tail_rounds: u64,
    sum_active: u64,
    dense_ms: f64,
    sparse_ms: f64,
    speedup: f64,
}

/// The `BENCH_scale.json` schema. `wall_clock: true` keys
/// `bench_compare`'s report-only mode.
#[derive(Serialize)]
struct ScaleBench {
    experiment: String,
    seed: u64,
    wall_clock: bool,
    threads: usize,
    smoke: bool,
    /// Set in smoke mode after the parallel-vs-sequential R-MAT
    /// generation identity assertion passed.
    gen_identity_checked: bool,
    cells: Vec<ScaleCell>,
    sparse_tail: SparseTail,
}

/// Sparse-tail workload: node 0 counts down via `stay_awake`, pinging a
/// far node every few ticks; all other nodes idle after round 0. Under a
/// dirty-set scheduler each tail round is O(1); under a full scan it is
/// O(n) — the ratio is the whole point of the measurement.
struct LoneWalker {
    ticks: u32,
}

impl NodeProgram for LoneWalker {
    type State = u32;
    type Payload = u64;
    fn init(&self, st: &mut u32, ctx: &mut Ctx<'_, u64>) {
        if ctx.id == 0 {
            *st = self.ticks;
            ctx.stay_awake();
        }
    }
    fn round(&self, st: &mut u32, _inbox: &[Envelope<u64>], ctx: &mut Ctx<'_, u64>) {
        if ctx.id == 0 && *st > 0 {
            *st -= 1;
            if (*st).is_multiple_of(16) {
                ctx.send((ctx.n as u32) / 2, *st as u64);
            }
            if *st > 0 {
                ctx.stay_awake();
            }
        }
    }
}

fn run_tail(n: usize, ticks: u32, dense: bool) -> (ExecStats, Vec<u32>, f64) {
    let cfg = NetConfig::new(n, SEED).with_dense_activity_scan(dense);
    let mut eng = Engine::new(cfg);
    let mut states = vec![0u32; n];
    let start = Instant::now();
    let stats = eng
        .execute(&LoneWalker { ticks }, &mut states)
        .expect("sparse tail executes");
    (stats, states, start.elapsed().as_secs_f64() * 1000.0)
}

fn sparse_tail_bench(smoke: bool) -> SparseTail {
    let n = 100_000;
    let ticks: u32 = if smoke { 1_000 } else { 4_000 };
    // Untimed warmup so allocator behavior doesn't pollute the first
    // timed run.
    let _ = run_tail(n, ticks.min(100), false);
    let (sparse_stats, sparse_states, sparse_ms) = run_tail(n, ticks, false);
    let (dense_stats, dense_states, dense_ms) = run_tail(n, ticks, true);
    assert_eq!(
        (sparse_stats, sparse_states),
        (dense_stats, dense_states),
        "schedulers must produce identical results"
    );
    SparseTail {
        n,
        tail_rounds: dense_stats.rounds - 1,
        sum_active: dense_stats.node_rounds,
        dense_ms,
        sparse_ms,
        speedup: dense_ms / sparse_ms.max(1e-9),
    }
}

/// Smoke-mode guard for the parallel generators: one R-MAT instance
/// whose sample count crosses the `gen::RMAT_BLOCK` boundary (so the
/// multi-block seeding path is exercised, not just the byte-compatible
/// single-block prefix), generated sequentially and at 4 threads, and
/// asserted byte-identical. The full proptest lives in
/// `crates/graph/tests/gen_parallel.rs`; this one cell makes the CI
/// scale-smoke job fail fast if determinism regresses.
fn gen_identity_smoke() {
    let n = 10_000;
    let m = gen::RMAT_BLOCK + gen::RMAT_BLOCK / 2;
    let start = Instant::now();
    let sequential = gen::rmat_threads(n, m, SEED, 1);
    let parallel = gen::rmat_threads(n, m, SEED, 4);
    assert_eq!(
        sequential, parallel,
        "parallel R-MAT generation must be byte-identical to sequential"
    );
    println!(
        "gen identity: rmat n={n} m={m} · 1 vs 4 threads byte-identical ({} edges, {} ms)",
        sequential.m(),
        f2(start.elapsed().as_secs_f64() * 1000.0)
    );
}

/// Generates one (family, n) scenario, runs `name` on it, prints the
/// table row, and pushes the JSON cell.
fn run_cell(
    family: &FamilySpec,
    n: usize,
    name: &str,
    threads: usize,
    table: &mut Table,
    cells: &mut Vec<ScaleCell>,
) {
    let spec = ScenarioSpec::new(family.clone(), n, SEED).with_threads(threads);
    let gen_start = Instant::now();
    let scn = spec.build().expect("huge families build at any n");
    let gen_wall_ms = gen_start.elapsed().as_secs_f64() * 1000.0;
    let algo = find_algorithm(name).expect("registered algorithm");
    let mut eng = scn.engine_with_threads(threads);
    let run_start = Instant::now();
    let record = algo
        .run(&mut eng, &scn)
        .unwrap_or_else(|e| panic!("{name} on {} failed: {e}", spec.label()));
    let run_ms = run_start.elapsed().as_secs_f64() * 1000.0;
    let resident_bytes_per_node = eng.resident_bytes().per_node(n);
    assert!(
        record.verdict.ok(),
        "{name} on {} failed verification",
        spec.label()
    );
    table.row(vec![
        family.name().to_string(),
        n.to_string(),
        name.to_string(),
        scn.graph.m().to_string(),
        f2(gen_wall_ms),
        f2(run_ms),
        f2(resident_bytes_per_node),
        record.rounds.to_string(),
        record.metric("peak_active").unwrap_or(0).to_string(),
        record.metric("sum_active").unwrap_or(0).to_string(),
        format!("{:?}", record.verdict),
    ]);
    cells.push(ScaleCell {
        family: family.name().to_string(),
        n,
        algorithm: name.to_string(),
        edges: scn.graph.m(),
        gen_wall_ms,
        run_ms,
        resident_bytes_per_node,
        record,
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = cli_threads(&args);
    let ns: &[usize] = if smoke {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let families = [
        FamilySpec::Rmat { edge_factor: 8 },
        FamilySpec::Hyperbolic {
            alpha: 0.75,
            c: 0.0,
        },
    ];

    let mut table = Table::new(&[
        "family", "n", "algo", "edges", "gen ms", "run ms", "B/node", "rounds", "peak_act",
        "sum_act", "verdict",
    ]);
    let mut cells = Vec::new();
    for &n in ns {
        for family in &families {
            // broadcast scales to every size; the multi-thousand-round
            // BFS protocol is pinned at the smallest cell only. Smoke mode
            // (the CI scale-smoke job) runs just the checkable protocol so
            // the job can gate on "every record Verified" — broadcast is a
            // checker-less baseline whose verdict is Unchecked by design.
            let algos: &[&str] = if smoke {
                &["bfs"]
            } else if n <= 10_000 {
                &["bfs", "broadcast"]
            } else {
                &["broadcast"]
            };
            for &name in algos {
                run_cell(family, n, name, threads, &mut table, &mut cells);
            }
        }
    }
    if !smoke {
        // The n = 10⁷ rung: R-MAT only — the hyperbolic angular scan's
        // constant factor makes it an hours-long cell at this size on a
        // single core, while 8·10⁷ R-MAT samples stream in seconds.
        run_cell(
            &FamilySpec::Rmat { edge_factor: 8 },
            10_000_000,
            "broadcast",
            threads,
            &mut table,
            &mut cells,
        );
    }
    table.print();

    if smoke {
        gen_identity_smoke();
    }

    let tail = sparse_tail_bench(smoke);
    println!(
        "\nsparse tail (n={}, {} quiescent-tail rounds, sum_active={}):",
        tail.n, tail.tail_rounds, tail.sum_active
    );
    println!(
        "  scan-everything {} ms · dirty-set {} ms · speedup {}x",
        f2(tail.dense_ms),
        f2(tail.sparse_ms),
        f2(tail.speedup)
    );

    if let Some(path) = cli_json(&args) {
        let bench = ScaleBench {
            experiment: "exp22_scale".into(),
            seed: SEED,
            wall_clock: true,
            threads,
            smoke,
            gen_identity_checked: smoke,
            cells,
            sparse_tail: tail,
        };
        let json = serde_json::to_string_pretty(&bench).expect("bench serializes") + "\n";
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
