//! E15 — Lemma 4.11 / model compliance: across every algorithm, no node
//! ever sends or receives more than `O(log n)` messages per round, and the
//! default capacity constants produce **zero drops**.
//!
//! Prints peak per-node per-round load, the configured cap, and the ratio
//! `peak / log₂ n` — the hidden constant of the `O(log n)` claim.

use ncc_bench::{arboricity_workload, engine, f2, lg, prepare, Table, SEED};
use ncc_core::AlgoReport;
use ncc_graph::gen;

fn main() {
    println!("# E15 — Lemma 4.11: peak per-node load is O(log n), zero drops");
    let n = 256usize;
    let g = arboricity_workload(n, 4, SEED);
    let mut t = Table::new(&[
        "algorithm",
        "n",
        "peak_load",
        "cap",
        "peak/log2n",
        "drops",
        "violations",
    ]);

    // MST pipeline
    {
        let wg = gen::with_random_weights(&g, (n * n) as u64, SEED);
        let mut eng = engine(n, SEED);
        let mut report = AlgoReport::default();
        let shared = ncc_bench::agree_randomness(&mut eng, &mut report, SEED);
        let r = ncc_core::mst(&mut eng, &shared, &wg).expect("mst");
        report.push("mst", r.report.total);
        t.row(vec![
            "MST".into(),
            n.to_string(),
            report.total.peak_load().to_string(),
            eng.config().capacity.send.to_string(),
            f2(report.total.peak_load() as f64 / lg(n)),
            report.total.dropped.to_string(),
            report.total.send_cap_violations.to_string(),
        ]);
    }

    // §5 pipeline + each algorithm
    let mut eng = engine(n, SEED + 1);
    let cap = eng.config().capacity.send;
    let (shared, bt, prep) = prepare(&mut eng, &g, SEED + 2);
    fn add(t: &mut Table, name: &str, n: usize, cap: usize, total: ncc_model::ExecStats) {
        t.row(vec![
            name.into(),
            n.to_string(),
            total.peak_load().to_string(),
            cap.to_string(),
            f2(total.peak_load() as f64 / lg(n)),
            total.dropped.to_string(),
            total.send_cap_violations.to_string(),
        ]);
    }
    add(&mut t, "orientation+trees", n, cap, prep.total);
    let r = ncc_core::bfs(&mut eng, &shared, &bt, &g, 0).expect("bfs");
    add(&mut t, "BFS", n, cap, r.report.total);
    let r = ncc_core::mis(&mut eng, &shared, &bt, &g).expect("mis");
    add(&mut t, "MIS", n, cap, r.report.total);
    let r = ncc_core::maximal_matching(&mut eng, &shared, &bt, &g).expect("mm");
    add(&mut t, "Matching", n, cap, r.report.total);
    let r = ncc_core::coloring(&mut eng, &shared, &bt.orientation, &g).expect("col");
    add(&mut t, "Coloring", n, cap, r.report.total);

    t.print();
    println!("\nexpected: drops = 0 and violations = 0 everywhere; peak/log2(n) ≤ κ = 8.");
}
