//! E11 — Theorem 5.4: Maximal Matching in `O((a + log n) log n)` rounds.
//!
//! Declarative scenario sweep through the runner registry; matching size
//! reported next to the sequential greedy baseline's. `--json <path>`
//! writes the records.

use ncc_bench::{cli_json, cli_threads, f2, lg, spec_graph, write_records_json, Table, SEED};
use ncc_runner::{run_named_threads, FamilySpec, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli_threads(&args);
    let json = cli_json(&args);

    let mut grid: Vec<(usize, ScenarioSpec)> = Vec::new();
    for &a in &[1usize, 2, 4, 8, 16] {
        grid.push((
            a,
            ScenarioSpec::new(FamilySpec::Forests { k: a }, 256, SEED + a as u64 * 5),
        ));
    }
    for &n in &[64usize, 128, 256, 512] {
        grid.push((
            3,
            ScenarioSpec::new(FamilySpec::Forests { k: 3 }, n, SEED + 6),
        ));
    }

    println!("# E11 — Theorem 5.4 (Maximal Matching): rounds vs (a + log n)·log n");
    let mut t = Table::new(&[
        "n", "a", "phases", "|M|", "|greedy|", "rounds", "bound", "ratio", "ok",
    ]);
    let mut records = Vec::new();
    for (a, spec) in &grid {
        let rec = run_named_threads("matching", spec, threads).expect("matching");
        let greedy = ncc_baselines::greedy_matching(&spec_graph(spec))
            .iter()
            .filter(|m| m.is_some())
            .count()
            / 2;
        let bound = (*a as f64 + lg(spec.n)) * lg(spec.n);
        t.row(vec![
            spec.n.to_string(),
            a.to_string(),
            rec.phases.unwrap_or(0).to_string(),
            rec.metric("pairs").unwrap_or(0).to_string(),
            greedy.to_string(),
            rec.rounds.to_string(),
            f2(bound),
            f2(rec.rounds as f64 / bound),
            rec.verdict.ok().to_string(),
        ]);
        records.push(rec);
    }
    t.print();
    println!("\nexpected: flat ratio; matching size comparable to greedy.");
    if let Some(path) = json {
        write_records_json(&path, "exp11_matching", &records);
    }
}
