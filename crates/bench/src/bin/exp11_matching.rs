//! E11 — Theorem 5.4: Maximal Matching in `O((a + log n) log n)` rounds.

use ncc_bench::{arboricity_workload, engine, f2, lg, prepare, Table, SEED};
use ncc_graph::check;

fn run(n: usize, a: usize, t: &mut Table) {
    let g = arboricity_workload(n, a, SEED + a as u64 * 5);
    let mut eng = engine(n, SEED + (n + 31 * a) as u64);
    let (shared, bt, prep) = prepare(&mut eng, &g, SEED + 6);
    let r = ncc_core::maximal_matching(&mut eng, &shared, &bt, &g).expect("matching");
    let ok = check::check_matching(&g, &r.mate).is_ok();
    let size = r.mate.iter().filter(|m| m.is_some()).count() / 2;
    let greedy = ncc_baselines::greedy_matching(&g)
        .iter()
        .filter(|m| m.is_some())
        .count()
        / 2;
    let rounds = prep.total.rounds + r.report.total.rounds;
    let bound = (a as f64 + lg(n)) * lg(n);
    t.row(vec![
        n.to_string(),
        a.to_string(),
        r.phases.to_string(),
        size.to_string(),
        greedy.to_string(),
        rounds.to_string(),
        f2(bound),
        f2(rounds as f64 / bound),
        ok.to_string(),
    ]);
}

fn main() {
    println!("# E11 — Theorem 5.4 (Maximal Matching): rounds vs (a + log n)·log n");
    let mut t = Table::new(&[
        "n", "a", "phases", "|M|", "|greedy|", "rounds", "bound", "ratio", "ok",
    ]);
    for a in [1usize, 2, 4, 8, 16] {
        run(256, a, &mut t);
    }
    for n in [64usize, 128, 256, 512] {
        run(n, 3, &mut t);
    }
    t.print();
    println!("\nexpected: flat ratio; matching size comparable to greedy.");
}
