//! E20 (supplementary) — NCC vs Congested-Clique-style capacity.
//!
//! §1 contrasts the models: the Congested Clique moves `Θ̃(n²)` bits per
//! round (per-edge bandwidth, no node cap), the NCC only `Θ̃(n)`. Running
//! the same protocols under `Capacity::unbounded()` quantifies exactly what
//! the node cap costs: gossip collapses from `Θ(n/log n)` rounds to one,
//! while the butterfly primitives barely change — they never relied on
//! more than `O(log n)` messages per node in the first place, which is the
//! design point of the paper.

use ncc_baselines::gossip_all;
use ncc_bench::{engine, f2, Table, SEED};
use ncc_butterfly::{aggregate_and_broadcast, SumU64};
use ncc_model::{Capacity, Engine, NetConfig};

fn main() {
    println!("# E20 — node-capacitated vs unbounded (Congested-Clique-style) capacity");
    let mut t = Table::new(&["protocol", "n", "NCC rounds", "unbounded rounds", "ratio"]);
    for &n in &[256usize, 1024, 4096] {
        // gossip: the protocol adapts its batch size to the configured cap
        let mut ncc = engine(n, SEED);
        let r_ncc = gossip_all(&mut ncc).expect("gossip ncc").rounds;
        let mut cc = Engine::new(NetConfig::new(n, SEED).with_capacity(Capacity::unbounded()));
        let r_cc = gossip_all(&mut cc).expect("gossip cc").rounds;
        t.row(vec![
            "gossip".into(),
            n.to_string(),
            r_ncc.to_string(),
            r_cc.to_string(),
            f2(r_ncc as f64 / r_cc as f64),
        ]);

        // aggregate-and-broadcast: structured around the butterfly, the
        // node cap is never the bottleneck
        let mut ncc = engine(n, SEED + 1);
        let inputs: Vec<Option<u64>> = (0..n as u64).map(Some).collect();
        let (_, s_ncc) = aggregate_and_broadcast(&mut ncc, inputs.clone(), &SumU64).unwrap();
        let mut cc = Engine::new(NetConfig::new(n, SEED + 1).with_capacity(Capacity::unbounded()));
        let (_, s_cc) = aggregate_and_broadcast(&mut cc, inputs, &SumU64).unwrap();
        t.row(vec![
            "agg-&-bcast".into(),
            n.to_string(),
            s_ncc.rounds.to_string(),
            s_cc.rounds.to_string(),
            f2(s_ncc.rounds as f64 / s_cc.rounds as f64),
        ]);
    }
    t.print();
    println!("\nexpected: gossip pays Θ(n/log n)× for the node cap (the §1 separation);");
    println!("the butterfly primitives pay 1× — they are already node-capacity-optimal.");
}
