//! E20 (supplementary) — the same protocols across all four execution
//! models.
//!
//! §1 contrasts the models: the Congested Clique moves `Θ̃(n²)` bits per
//! round (per-edge bandwidth, no node cap), the NCC only `Θ̃(n)`; Appendix
//! A prices executions in the k-machine model; and the hybrid setting adds
//! CONGEST-style local edges. This experiment is a declarative sweep over
//! the algorithm registry × the model registry: each cell is a
//! `ScenarioSpec` with a `model` field, dispatched through the runner —
//! no per-model engine hacks (the old version faked the Congested Clique
//! with `Capacity::unbounded()` and no per-edge accounting at all).
//!
//! Expected shape: gossip pays Θ(n/log n)× for the node cap (the §1
//! separation) and collapses under the per-edge Congested Clique, while
//! the butterfly primitives barely change — they never relied on more than
//! `O(log n)` messages per node, which is the design point of the paper.
//! The k-machine column charges `km_rounds` honestly, and the hybrid
//! column reports the local-edge load it actually used.
//!
//! With `--json <path>` every cell's `RunRecord` is written in the
//! `BENCH_*.json` schema (the scenario echo carries the model).

use ncc_bench::{cli_json, f2, write_records_json, Table, SEED};
use ncc_runner::{run_record, ModelSpec, RunRecord, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = cli_json(&args);

    println!(
        "# E20 — protocols across execution models (ncc / congested-clique / kmachine / hybrid)"
    );
    let mut t = Table::new(&[
        "protocol",
        "n",
        "model",
        "rounds",
        "vs ncc",
        "km_rounds",
        "edge_load",
        "drops",
    ]);
    let mut records: Vec<RunRecord> = Vec::new();

    for &algo in &["gossip", "broadcast", "butterfly-aggregation", "mis"] {
        for &n in &[256usize, 1024] {
            let base =
                ScenarioSpec::new(ncc_runner::FamilySpec::Gnp { p: 16.0 / n as f64 }, n, SEED);
            let models = std::iter::once(ModelSpec::Ncc)
                .chain(ncc_runner::standard_models(n))
                .collect::<Vec<_>>();
            let mut ncc_rounds = 0u64;
            for model in models {
                let spec = base.clone().with_model(model);
                let rec = run_record(ncc_runner::find_algorithm(algo).expect("registered"), &spec)
                    .unwrap_or_else(|e| panic!("{algo} under {}: {e}", model.name()));
                if model == ModelSpec::Ncc {
                    ncc_rounds = rec.rounds;
                }
                t.row(vec![
                    algo.into(),
                    n.to_string(),
                    model.name().into(),
                    rec.rounds.to_string(),
                    f2(rec.rounds as f64 / ncc_rounds.max(1) as f64),
                    rec.km_rounds.to_string(),
                    rec.report.total.max_edge_load.to_string(),
                    rec.dropped.to_string(),
                ]);
                records.push(rec);
            }
        }
    }
    t.print();
    println!("\nexpected: gossip collapses under the congested clique (per-edge Θ̃(n²) bits");
    println!("vs the node cap's Θ̃(n)); butterfly primitives pay ≈1× everywhere — they are");
    println!("already node-capacity-optimal; kmachine charges Õ(n·T/k²) km_rounds on top.");

    if let Some(path) = json_path {
        write_records_json(&path, "exp20_model_comparison", &records);
    }
}
