//! E5 — Theorem 2.5: Multicast in `O(C + ℓ̂/log n + log n)` rounds.
//!
//! Builds tree families of increasing congestion `C` and measures the
//! delivery rounds of a full multicast against the bound.

use ncc_bench::{engine, f2, lg, Table, SEED};
use ncc_butterfly::{multicast, multicast_setup, self_joins, GroupId};
use ncc_hashing::SharedRandomness;

fn main() {
    let n = 1024usize;
    let shared = SharedRandomness::new(SEED);
    println!("# E5 — Theorem 2.5 (Multicast), n = {n}");
    let mut t = Table::new(&[
        "groups",
        "members",
        "C",
        "l_hat",
        "rounds",
        "bound",
        "ratio",
        "delivered",
        "clean",
    ]);
    for (groups, members) in [(n / 8, 8usize), (n / 2, 4), (n, 4), (n, 16), (n, 64)] {
        let mut joins: Vec<Vec<GroupId>> = vec![Vec::new(); n];
        for gi in 0..groups {
            for m in 0..members {
                let member = (gi * 7919 + m * 104729 + 13) % n;
                joins[member].push(GroupId::new(gi as u32, 22));
            }
        }
        let ell = joins.iter().map(Vec::len).max().unwrap_or(1);
        let mut eng = engine(n, SEED + (groups * members) as u64);
        let (trees, _) = multicast_setup(&mut eng, &shared, self_joins(joins)).expect("setup");
        let c = trees.congestion();

        let messages: Vec<Option<(GroupId, u64)>> = (0..n)
            .map(|u| {
                if u < groups {
                    Some((GroupId::new(u as u32, 22), 5000 + u as u64))
                } else {
                    None
                }
            })
            .collect();
        let (out, stats) = multicast(&mut eng, &shared, &trees, messages, ell).expect("multicast");
        let delivered: usize = out.iter().map(Vec::len).sum();
        let bound = c as f64 + ell as f64 / lg(n) + lg(n);
        t.row(vec![
            groups.to_string(),
            members.to_string(),
            c.to_string(),
            ell.to_string(),
            stats.rounds.to_string(),
            f2(bound),
            f2(stats.rounds as f64 / bound),
            delivered.to_string(),
            stats.clean().to_string(),
        ]);
    }
    t.print();
    println!("\nexpected: ratio flat; delivered counts duplicates-free per membership.");
}
