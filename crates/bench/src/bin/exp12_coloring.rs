//! E12 — Theorem 5.5: `O(a)`-coloring in `O((a + log n) log^{3/2} n)`
//! rounds. The palette must scale with `a` (not with Δ — the star row is
//! the discriminating case) and every coloring must be proper.

use ncc_bench::{arboricity_workload, engine, f2, lg, prepare, Table, SEED};
use ncc_graph::{check, gen, Graph};

fn run(name: &str, g: &Graph, a_nominal: usize, t: &mut Table) {
    let n = g.n();
    let mut eng = engine(n, SEED + (n + 7 * a_nominal) as u64);
    let (shared, bt, prep) = prepare(&mut eng, g, SEED + 7);
    let r = ncc_core::coloring(&mut eng, &shared, &bt.orientation, g).expect("coloring");
    let ok = check::check_coloring(g, &r.colors, r.palette).is_ok();
    let used = r.colors.iter().copied().max().map_or(0, |c| c + 1);
    let (greedy_colors, greedy_used) = ncc_baselines::greedy_coloring(g);
    let _ = greedy_colors;
    let rounds = prep.total.rounds + r.report.total.rounds;
    let bound = (a_nominal as f64 + lg(n)) * lg(n).powf(1.5);
    t.row(vec![
        name.into(),
        n.to_string(),
        a_nominal.to_string(),
        g.max_degree().to_string(),
        r.palette.to_string(),
        used.to_string(),
        greedy_used.to_string(),
        rounds.to_string(),
        f2(bound),
        f2(rounds as f64 / bound),
        ok.to_string(),
    ]);
}

fn main() {
    println!("# E12 — Theorem 5.5 (O(a)-Coloring): palette O(a), rounds vs (a+log n)·log^1.5 n");
    let mut t = Table::new(&[
        "graph", "n", "a", "deg_max", "palette", "used", "greedy", "rounds", "bound", "ratio", "ok",
    ]);
    for a in [1usize, 2, 4, 8, 16] {
        let g = arboricity_workload(256, a, SEED + a as u64 * 7);
        run("forests", &g, a, &mut t);
    }
    // the palette-vs-Δ discriminator: a = 1 but Δ = n−1
    run("star", &gen::star(256), 1, &mut t);
    run("grid", &gen::grid(16, 16), 2, &mut t);
    for n in [64usize, 128, 256, 512] {
        let g = arboricity_workload(n, 3, SEED + 11);
        run("forests", &g, 3, &mut t);
    }
    t.print();
    println!("\nexpected: palette tracks a (star stays constant!); ratio flat.");
}
