//! E12 — Theorem 5.5: `O(a)`-coloring in `O((a + log n) log^{3/2} n)`
//! rounds. The palette must scale with `a` (not with Δ — the star row is
//! the discriminating case) and every coloring must be proper.
//!
//! Declarative scenario sweep through the runner registry. `--json <path>`
//! writes the records.

use ncc_bench::{cli_json, cli_threads, f2, lg, spec_graph, write_records_json, Table, SEED};
use ncc_runner::{run_named_threads, FamilySpec, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli_threads(&args);
    let json = cli_json(&args);

    let mut grid: Vec<(&str, usize, ScenarioSpec)> = Vec::new();
    for &a in &[1usize, 2, 4, 8, 16] {
        grid.push((
            "forests",
            a,
            ScenarioSpec::new(FamilySpec::Forests { k: a }, 256, SEED + a as u64 * 7),
        ));
    }
    // the palette-vs-Δ discriminator: a = 1 but Δ = n−1
    grid.push(("star", 1, ScenarioSpec::new(FamilySpec::Star, 256, SEED)));
    grid.push(("grid", 2, ScenarioSpec::grid(16, 16, SEED)));
    for &n in &[64usize, 128, 256, 512] {
        grid.push((
            "forests",
            3,
            ScenarioSpec::new(FamilySpec::Forests { k: 3 }, n, SEED + 11),
        ));
    }

    println!("# E12 — Theorem 5.5 (O(a)-Coloring): palette O(a), rounds vs (a+log n)·log^1.5 n");
    let mut t = Table::new(&[
        "graph", "n", "a", "deg_max", "palette", "used", "greedy", "rounds", "bound", "ratio", "ok",
    ]);
    let mut records = Vec::new();
    for (name, a, spec) in &grid {
        let rec = run_named_threads("coloring", spec, threads).expect("coloring");
        let g = spec_graph(spec);
        let (_, greedy_used) = ncc_baselines::greedy_coloring(&g);
        let bound = (*a as f64 + lg(spec.n)) * lg(spec.n).powf(1.5);
        t.row(vec![
            (*name).into(),
            spec.n.to_string(),
            a.to_string(),
            g.max_degree().to_string(),
            rec.metric("palette").unwrap_or(0).to_string(),
            rec.metric("colors_used").unwrap_or(0).to_string(),
            greedy_used.to_string(),
            rec.rounds.to_string(),
            f2(bound),
            f2(rec.rounds as f64 / bound),
            rec.verdict.ok().to_string(),
        ]);
        records.push(rec);
    }
    t.print();
    println!("\nexpected: palette tracks a (star stays constant!); ratio flat.");
    if let Some(path) = json {
        write_records_json(&path, "exp12_coloring", &records);
    }
}
